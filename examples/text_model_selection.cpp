// Text model selection: ranks NLP checkpoints (BERT/RoBERTa/ELECTRA/...
// families) for a tweet-classification target, comparing two fine-tuning
// protocols -- full fine-tuning and LoRA -- as in the paper's §VII-F.
#include <cstdio>

#include "core/pipeline.h"
#include "core/recommender.h"
#include "util/logging.h"
#include "zoo/model_zoo.h"

int main() {
  using namespace tg;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kWarning);

  zoo::ModelZooConfig zoo_config;
  zoo_config.catalog.num_text_models = 80;
  zoo::ModelZoo zoo(zoo_config);
  core::Pipeline pipeline(&zoo, zoo::Modality::kText);

  size_t target = 0;
  for (size_t d : zoo.EvaluationTargets(zoo::Modality::kText)) {
    if (zoo.datasets()[d].name == "tweet_eval/hate") target = d;
  }
  std::printf("target: %s\n\n", zoo.datasets()[target].name.c_str());

  core::PipelineConfig config;
  config.strategy.predictor = core::PredictorKind::kXgboost;
  config.strategy.learner = core::GraphLearner::kNode2VecPlus;
  config.strategy.features = core::FeatureSet::kAll;
  config.node2vec.skipgram.dim = 64;
  config.predictor.gbdt.num_trees = 200;

  for (zoo::FineTuneMethod method :
       {zoo::FineTuneMethod::kFullFineTune, zoo::FineTuneMethod::kLora}) {
    core::PipelineConfig run = config;
    run.graph.history_method = method;
    run.evaluation_method = method;
    core::TargetEvaluation evaluation =
        pipeline.EvaluateTarget(run, target);
    std::printf("--- fine-tuning method: %s (tau = %.3f) ---\n",
                zoo::FineTuneMethodName(method), evaluation.pearson);
    for (const core::Recommendation& rec :
         core::TopModels(evaluation, zoo, 5)) {
      std::printf("  %-26s predicted %.3f actual %.3f\n",
                  rec.model_name.c_str(), rec.predicted_score,
                  zoo.FineTuneAccuracy(rec.model_index, target, method));
    }
    std::printf("\n");
  }
  return 0;
}
