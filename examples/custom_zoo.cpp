// Building a custom zoo configuration and inspecting the constructed graph:
// shows the lower-level APIs -- catalog sizing, graph construction with
// custom pruning thresholds, graph statistics, and direct Node2Vec use --
// for users who want to embed TransferGraph's pieces in their own systems.
#include <cstdio>

#include "core/graph_builder.h"
#include "embedding/node2vec.h"
#include "graph/graph_stats.h"
#include "numeric/stats.h"
#include "util/logging.h"
#include "zoo/model_zoo.h"

int main() {
  using namespace tg;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kWarning);

  // A small custom zoo: 48 image models, capped sample generation.
  zoo::ModelZooConfig zoo_config;
  zoo_config.catalog.num_image_models = 48;
  zoo_config.world.max_samples_per_dataset = 200;
  zoo::ModelZoo zoo(zoo_config);

  // Build graphs under different pruning thresholds and compare density.
  for (double threshold : {0.3, 0.5, 0.7}) {
    core::GraphBuildOptions options;
    options.accuracy_threshold = threshold;
    options.transferability_threshold = threshold;
    options.negative_threshold = threshold;
    core::BuiltGraph built =
        core::BuildModelZooGraph(&zoo, zoo::Modality::kImage, options);
    GraphStats stats = ComputeGraphStats(built.graph);
    std::printf("threshold %.1f -> %s\n", threshold,
                stats.ToString().c_str());
  }

  // Learn embeddings directly on the default graph and inspect whether a
  // model lands near its pre-training source dataset.
  core::BuiltGraph built = core::BuildModelZooGraph(
      &zoo, zoo::Modality::kImage, core::GraphBuildOptions{});
  Node2VecConfig n2v;
  n2v.skipgram.dim = 64;
  Matrix embeddings = Node2VecEmbed(built.graph, n2v, /*seed=*/3);

  const size_t model = zoo.ModelsOfModality(zoo::Modality::kImage)[0];
  const size_t source = zoo.models()[model].source_dataset;
  const NodeId model_node = built.model_node.at(model);
  const NodeId source_node = built.dataset_node.at(source);

  double to_source = CosineSimilarity(embeddings.Row(model_node),
                                      embeddings.Row(source_node));
  // Compare with the average similarity to all other datasets.
  double to_rest = 0.0;
  int count = 0;
  for (const auto& [dataset, node] : built.dataset_node) {
    if (dataset == source) continue;
    to_rest += CosineSimilarity(embeddings.Row(model_node),
                                embeddings.Row(node));
    ++count;
  }
  to_rest /= count;
  std::printf(
      "\nmodel '%s' embedding: cosine to its source '%s' = %.3f, "
      "average cosine to other datasets = %.3f\n",
      zoo.models()[model].name.c_str(), zoo.datasets()[source].name.c_str(),
      to_source, to_rest);
  return 0;
}
