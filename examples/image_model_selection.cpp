// Image model selection across all eight evaluation targets: compares the
// LogME baseline against the graph-learning strategy on every image target
// (the workload behind the paper's Figure 7a) and reports per-dataset
// correlations and top-5 accuracy.
#include <cstdio>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "zoo/model_zoo.h"

int main() {
  using namespace tg;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kWarning);

  zoo::ModelZooConfig zoo_config;
  zoo_config.catalog.num_image_models = 100;
  zoo::ModelZoo zoo(zoo_config);
  core::Pipeline pipeline(&zoo, zoo::Modality::kImage);

  core::PipelineConfig config;
  config.strategy.predictor = core::PredictorKind::kLinearRegression;
  config.strategy.learner = core::GraphLearner::kNode2Vec;
  config.strategy.features = core::FeatureSet::kAll;
  config.node2vec.skipgram.dim = 64;

  TablePrinter table({"dataset", "LogME tau", "TG tau", "LogME top-5",
                      "TG top-5"});
  double logme_avg = 0.0;
  double tg_avg = 0.0;
  const auto targets = zoo.EvaluationTargets(zoo::Modality::kImage);
  for (size_t target : targets) {
    core::TargetEvaluation logme = core::EvaluateEstimatorBaseline(
        &zoo, target, core::EstimatorBaseline::kLogMe);
    core::TargetEvaluation tg = pipeline.EvaluateTarget(config, target);
    logme_avg += logme.pearson;
    tg_avg += tg.pearson;
    table.AddRow({zoo.datasets()[target].name,
                  FormatDouble(logme.pearson, 3), FormatDouble(tg.pearson, 3),
                  FormatDouble(logme.TopKMeanAccuracy(5), 3),
                  FormatDouble(tg.TopKMeanAccuracy(5), 3)});
  }
  table.AddRow({"average",
                FormatDouble(logme_avg / targets.size(), 3),
                FormatDouble(tg_avg / targets.size(), 3), "", ""});
  table.Print();
  return 0;
}
