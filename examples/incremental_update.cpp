// Incremental zoo updates + explanation: the "a new checkpoint was just
// uploaded" scenario from the paper's future-work discussion (§VII-G).
//
// Trains the graph learner and the prediction model once, then scores a
// brand-new model -- approximating its node embedding inductively from the
// datasets it connects to -- without retraining anything, and explains which
// feature groups drive the predictor.
#include <cstdio>

#include "core/explain.h"
#include "core/incremental.h"
#include "util/logging.h"
#include "zoo/model_zoo.h"

int main() {
  using namespace tg;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kWarning);

  zoo::ModelZooConfig zoo_config;
  zoo_config.catalog.num_image_models = 64;
  zoo::ModelZoo zoo(zoo_config);

  core::PipelineConfig config;
  config.strategy.predictor = core::PredictorKind::kXgboost;
  config.strategy.learner = core::GraphLearner::kNode2Vec;
  config.strategy.features = core::FeatureSet::kAll;
  config.node2vec.skipgram.dim = 64;
  config.predictor.gbdt.num_trees = 200;

  std::printf("training the index once over the full zoo...\n");
  core::IncrementalRecommender index(&zoo, zoo::Modality::kImage, config);

  size_t target = 0;
  for (size_t d : zoo.EvaluationTargets(zoo::Modality::kImage)) {
    if (zoo.datasets()[d].name == "dtd") target = d;
  }

  // A new upload: metadata of a mid-sized ViT pre-trained on imagenet21k,
  // with two observed fine-tuning results reported by its author.
  zoo::ModelInfo upload;
  upload.name = "vit-base-community-upload";
  upload.modality = zoo::Modality::kImage;
  upload.architecture = zoo::Architecture::kViT;
  upload.num_parameters_millions = 86.6;
  upload.memory_mb = 86.6 * 4.0;
  upload.input_size = 224;
  upload.pretrain_accuracy = 0.84;
  for (size_t d = 0; d < zoo.num_datasets(); ++d) {
    if (zoo.datasets()[d].name == "imagenet21k") upload.source_dataset = d;
  }
  std::vector<core::NewModelObservation> observations;
  for (size_t d : zoo.PublicDatasets(zoo::Modality::kImage)) {
    if (zoo.datasets()[d].name == "cifar100") {
      observations.push_back(core::NewModelObservation{d, 0.78});
    }
    if (zoo.datasets()[d].name == "flowers") {
      observations.push_back(core::NewModelObservation{d, 0.88});
    }
  }

  const double score = index.ScoreNewModel(upload, observations, target);
  std::printf(
      "\nnew model '%s' scored %.3f on '%s' (no retraining performed)\n",
      upload.name.c_str(), score, zoo.datasets()[target].name.c_str());

  // How does it compare to the existing zoo?
  int better_than = 0;
  const auto models = zoo.ModelsOfModality(zoo::Modality::kImage);
  for (size_t m : models) {
    if (score > index.ScoreExisting(m, target)) ++better_than;
  }
  std::printf("predicted to beat %d of %zu existing models on this target\n",
              better_than, models.size());

  // Which feature groups does the trained predictor rely on?
  std::printf("\npredictor feature attribution (top groups):\n%s",
              core::RenderAttributions(core::ExplainPredictor(
                                           index.predictor(),
                                           index.feature_names(), 6))
                  .c_str());
  return 0;
}
