// Quickstart: pick the best pre-trained models for a target dataset.
//
// Builds a (small) model zoo, runs the TransferGraph pipeline with Node2Vec
// graph features and an XGBoost prediction model, and prints the top-10
// recommended models for `stanfordcars` together with how good the ranking
// actually is (Pearson correlation against the simulated fine-tuning
// ground truth).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/budget_search.h"
#include "core/pipeline.h"
#include "core/recommender.h"
#include "util/logging.h"
#include "zoo/model_zoo.h"

int main() {
  using namespace tg;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kWarning);

  // 1. Build the model zoo (a modest one so the example runs in seconds).
  zoo::ModelZooConfig zoo_config;
  zoo_config.catalog.num_image_models = 80;
  zoo::ModelZoo zoo(zoo_config);

  // 2. Pick the target dataset.
  size_t target = 0;
  for (size_t d : zoo.EvaluationTargets(zoo::Modality::kImage)) {
    if (zoo.datasets()[d].name == "stanfordcars") target = d;
  }
  std::printf("target dataset: %s (%zu samples, %d classes)\n",
              zoo.datasets()[target].name.c_str(),
              zoo.datasets()[target].num_samples,
              zoo.datasets()[target].num_classes);

  // 3. Configure the strategy: TG:XGB,N2V,all -- Node2Vec graph features
  //    plus metadata and dataset distance, fed to an XGBoost regressor.
  core::PipelineConfig config;
  config.strategy.predictor = core::PredictorKind::kXgboost;
  config.strategy.learner = core::GraphLearner::kNode2Vec;
  config.strategy.features = core::FeatureSet::kAll;
  config.node2vec.skipgram.dim = 64;
  config.node2vec.skipgram.epochs = 3;
  config.predictor.gbdt.num_trees = 200;

  // 4. Rank all models for the target (leave-one-out: the pipeline never
  //    sees fine-tuning results on the target).
  core::Pipeline pipeline(&zoo, zoo::Modality::kImage);
  core::TargetEvaluation evaluation =
      pipeline.EvaluateTarget(config, target);

  std::printf("\nstrategy %s achieved Pearson correlation %.3f\n",
              config.strategy.DisplayName().c_str(), evaluation.pearson);
  std::printf("top-5 picked models reach mean accuracy %.3f\n\n",
              evaluation.TopKMeanAccuracy(5));

  // 5. Show the recommendation list a user would fine-tune.
  std::printf("%-28s %-10s %s\n", "model", "predicted", "actual");
  for (const core::Recommendation& rec :
       core::TopModels(evaluation, zoo, 10)) {
    double actual = zoo.FineTuneAccuracy(rec.model_index, target);
    std::printf("%-28s %-10.3f %.3f\n", rec.model_name.c_str(),
                rec.predicted_score, actual);
  }

  // 6. Under a concrete fine-tuning budget, plan which of them to run.
  core::BudgetOptions budget;
  budget.budget_gpu_hours = 20.0;
  core::BudgetPlan plan = core::PlanFineTuning(zoo, evaluation, budget);
  std::printf(
      "\nwith a %.0f GPU-hour budget, fine-tune these %zu models "
      "(expected best accuracy %.3f, cost %.1f GPU-hours):\n",
      budget.budget_gpu_hours, plan.selected.size(),
      plan.expected_best_accuracy, plan.total_cost_gpu_hours);
  for (const core::BudgetPlanEntry& entry : plan.selected) {
    std::printf("  %-28s predicted %.3f  est. cost %.2f h\n",
                entry.model_name.c_str(), entry.predicted_score,
                entry.estimated_cost_gpu_hours);
  }
  return 0;
}
