// Transferability estimator playground: scores a handful of models on one
// target dataset with all four implemented estimators (LogME, LEEP, NCE,
// PARC) and shows how each correlates with actual fine-tuning accuracy --
// the "feature-based model selection" family from the paper's §II-A.
#include <cstdio>

#include "core/baselines.h"
#include "numeric/stats.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "zoo/model_zoo.h"

int main() {
  using namespace tg;  // NOLINT(build/namespaces)
  SetLogLevel(LogLevel::kWarning);

  zoo::ModelZooConfig zoo_config;
  zoo_config.catalog.num_image_models = 60;
  zoo::ModelZoo zoo(zoo_config);

  size_t target = 0;
  for (size_t d : zoo.EvaluationTargets(zoo::Modality::kImage)) {
    if (zoo.datasets()[d].name == "pets") target = d;
  }
  std::printf("target: %s\n\n", zoo.datasets()[target].name.c_str());

  // Per-estimator correlation with the fine-tuning ground truth.
  TablePrinter summary({"estimator", "pearson", "spearman", "top-5 acc"});
  for (core::EstimatorBaseline baseline :
       {core::EstimatorBaseline::kLogMe, core::EstimatorBaseline::kLeep,
        core::EstimatorBaseline::kNce, core::EstimatorBaseline::kParc,
        core::EstimatorBaseline::kHScore}) {
    core::TargetEvaluation eval =
        core::EvaluateEstimatorBaseline(&zoo, target, baseline);
    summary.AddRow({core::EstimatorBaselineName(baseline),
                    FormatDouble(eval.pearson, 3),
                    FormatDouble(eval.spearman, 3),
                    FormatDouble(eval.TopKMeanAccuracy(5), 3)});
  }
  summary.Print();

  // Raw scores for a few individual models.
  std::printf("\nper-model scores (first 8 models):\n");
  TablePrinter table(
      {"model", "LogME", "LEEP", "NCE", "PARC", "H-Score", "actual"});
  const auto models = zoo.ModelsOfModality(zoo::Modality::kImage);
  for (size_t i = 0; i < 8; ++i) {
    const size_t m = models[i];
    table.AddRow({zoo.models()[m].name, FormatDouble(zoo.LogMe(m, target), 3),
                  FormatDouble(zoo.Leep(m, target), 3),
                  FormatDouble(zoo.Nce(m, target), 3),
                  FormatDouble(zoo.Parc(m, target), 1),
                  FormatDouble(zoo.HScoreOf(m, target), 2),
                  FormatDouble(zoo.FineTuneAccuracy(m, target), 3)});
  }
  table.Print();
  return 0;
}
