// Figure 13 (appendix B) reproduction: effect of the training-history input
// ratio {0.3, 0.5, 0.7, 1.0} on LR{all,LogME} (no graph features) vs
// TG:LR,N2V+,all. Paper finding: the metadata strategy is robust to scarce
// history while the graph strategy degrades sharply at ratio 0.3 (sparse,
// fragmented graph).
#include "bench_common.h"

namespace tg::bench {
namespace {

void Run(zoo::ModelZoo* zoo) {
  core::Pipeline pipeline(zoo, zoo::Modality::kImage);
  const std::vector<double> ratios = {0.3, 0.5, 0.7, 1.0};

  const std::vector<core::Strategy> strategies = {
      MakeStrategy(core::PredictorKind::kLinearRegression,
                   core::GraphLearner::kNone,
                   core::FeatureSet::kAllWithLogMe),
      MakeStrategy(core::PredictorKind::kLinearRegression,
                   core::GraphLearner::kNode2VecPlus, core::FeatureSet::kAll),
  };

  PrintSectionHeader(
      "Figure 13 (image): effect of the training-history input ratio");
  TablePrinter table({"strategy", "ratio=0.3", "ratio=0.5", "ratio=0.7",
                      "ratio=1.0"});
  CsvWriter csv(CsvPath("fig13_image.csv"));
  csv.WriteRow({"strategy", "ratio", "avg_pearson"});

  for (const core::Strategy& strategy : strategies) {
    std::vector<std::string> row = {strategy.DisplayName()};
    for (double ratio : ratios) {
      core::PipelineConfig config = DefaultPipelineConfig();
      config.strategy = strategy;
      config.graph.history_ratio = ratio;
      core::StrategySummary summary =
          core::EvaluateStrategy(&pipeline, config);
      row.push_back(FormatDouble(summary.mean_pearson, 3));
      csv.WriteRow({strategy.DisplayName(), FormatDouble(ratio, 1),
                    FormatDouble(summary.mean_pearson, 4)});
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("[csv] wrote fig13_image.csv\n");
}

}  // namespace
}  // namespace tg::bench

int main() {
  tg::SetLogLevel(tg::LogLevel::kWarning);
  auto zoo = tg::bench::MakePaperScaleZoo();
  tg::bench::Run(zoo.get());
  return 0;
}
