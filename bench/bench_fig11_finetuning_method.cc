// Figure 11 reproduction: effect of the fine-tuning method (LoRA) on the
// text datasets.
//   (a) the entire experiment repeated with LoRA results (history edges,
//       training labels, and ground truth all use LoRA);
//   (b) the graph keeps the previous full-fine-tuning history, but the new
//       LoRA results are the ground truth for the unseen dataset.
// Paper finding: the graph-based approach stays ahead of the baselines in
// both settings, with only a slight correlation drop in (b).
#include "bench_common.h"

namespace tg::bench {
namespace {

std::vector<core::Strategy> Strategies() {
  return {
      MakeStrategy(core::PredictorKind::kLinearRegression,
                   core::GraphLearner::kNone,
                   core::FeatureSet::kMetadataOnly),
      MakeStrategy(core::PredictorKind::kLinearRegression,
                   core::GraphLearner::kNone,
                   core::FeatureSet::kAllWithLogMe),
      MakeStrategy(core::PredictorKind::kLinearRegression,
                   core::GraphLearner::kNode2Vec, core::FeatureSet::kAll),
      MakeStrategy(core::PredictorKind::kXgboost,
                   core::GraphLearner::kNode2Vec, core::FeatureSet::kAll),
  };
}

void RunSetting(zoo::ModelZoo* zoo, const std::string& title,
                zoo::FineTuneMethod history_method,
                zoo::FineTuneMethod evaluation_method,
                const std::string& csv_name) {
  core::Pipeline pipeline(zoo, zoo::Modality::kText);
  std::vector<core::StrategySummary> summaries;
  for (const core::Strategy& strategy : Strategies()) {
    core::PipelineConfig config = DefaultPipelineConfig();
    config.strategy = strategy;
    config.graph.history_method = history_method;
    config.evaluation_method = evaluation_method;
    summaries.push_back(core::EvaluateStrategy(&pipeline, config));
  }
  PrintSectionHeader(title);
  TablePrinter table(SummaryHeader(summaries[0]));
  for (const auto& summary : summaries) AddSummaryRow(&table, summary);
  table.Print();
  WriteSummariesCsv(csv_name, summaries);
}

}  // namespace
}  // namespace tg::bench

int main() {
  tg::SetLogLevel(tg::LogLevel::kWarning);
  auto zoo = tg::bench::MakePaperScaleZoo();
  tg::bench::RunSetting(
      zoo.get(),
      "Figure 11a (text): LoRA used in both training and prediction stage",
      tg::zoo::FineTuneMethod::kLora, tg::zoo::FineTuneMethod::kLora,
      "fig11a_text.csv");
  tg::bench::RunSetting(
      zoo.get(),
      "Figure 11b (text): full-fine-tune graph, LoRA ground truth",
      tg::zoo::FineTuneMethod::kFullFineTune, tg::zoo::FineTuneMethod::kLora,
      "fig11b_text.csv");
  return 0;
}
