// Component micro-benchmarks (google-benchmark): the building blocks whose
// cost dominates the pipeline -- alias sampling, biased walks, skip-gram
// training, LogME scoring, GBDT fitting, one GNN training epoch, and graph
// construction. Before the google-benchmark suite runs, a parallel-speedup
// section times the ParallelFor-backed components at 1 thread vs the
// configured TG_THREADS count and writes bench_csv/bench_timings.json.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <functional>
#include <string_view>

#include "bench_common.h"
#include "core/graph_builder.h"
#include "embedding/node2vec.h"
#include "embedding/skipgram.h"
#include "gnn/link_prediction.h"
#include "gnn/sage.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "numeric/kernels.h"
#include "numeric/stats.h"
#include "obs/trace.h"
#include "transferability/logme.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "zoo/model_zoo.h"

namespace tg {
namespace {

Graph MakeBenchmarkGraph(size_t num_nodes, size_t avg_degree) {
  Graph g;
  Rng rng(1);
  for (size_t i = 0; i < num_nodes; ++i) {
    g.AddNode(i % 4 == 0 ? NodeType::kDataset : NodeType::kModel,
              "n" + std::to_string(i));
  }
  const size_t num_edges = num_nodes * avg_degree / 2;
  for (size_t e = 0; e < num_edges; ++e) {
    NodeId a = static_cast<NodeId>(rng.NextBelow(num_nodes));
    NodeId b = static_cast<NodeId>(rng.NextBelow(num_nodes));
    if (a == b) continue;
    g.AddUndirectedEdge(a, b, EdgeType::kDatasetDataset,
                        0.1 + 0.9 * rng.NextDouble());
  }
  return g;
}

void BM_AliasTableSample(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> weights(1000);
  for (double& w : weights) w = rng.NextDouble();
  AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(&rng));
  }
}
BENCHMARK(BM_AliasTableSample);

// --- skipgram_kernels: the dense inner loops behind the skip-gram trainer ---
// Args cover the embedding dim used by the pipeline (128) and an off-unroll
// length (129) so the tail path shows up in the numbers.

std::vector<double> BenchVector(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.NextUniform(-1.0, 1.0);
  return v;
}

void BM_KernelDot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double> a = BenchVector(n, 21);
  const std::vector<double> b = BenchVector(n, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::Dot(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KernelDot)->Arg(128)->Arg(129);

void BM_KernelDotScalarRef(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double> a = BenchVector(n, 21);
  const std::vector<double> b = BenchVector(n, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::DotScalarRef(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KernelDotScalarRef)->Arg(128)->Arg(129);

void BM_KernelAxpy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double> x = BenchVector(n, 23);
  std::vector<double> y = BenchVector(n, 24);
  for (auto _ : state) {
    kernels::Axpy(0.01, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KernelAxpy)->Arg(128)->Arg(129);

void BM_KernelFusedDotSigmoidUpdate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double> w = BenchVector(n, 25);
  std::vector<double> c = BenchVector(n, 26);
  std::vector<double> grad(n, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::FusedDotSigmoidUpdate(
        w.data(), c.data(), grad.data(), n, 1.0, 0.025));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KernelFusedDotSigmoidUpdate)->Arg(128)->Arg(129);

void BM_SigmoidTabulated(benchmark::State& state) {
  const std::vector<double> xs = BenchVector(1024, 27);
  size_t i = 0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += kernels::TabulatedSigmoid(10.0 * xs[i++ & 1023]);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SigmoidTabulated);

void BM_SigmoidExact(benchmark::State& state) {
  const std::vector<double> xs = BenchVector(1024, 27);
  size_t i = 0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += kernels::ExactSigmoid(10.0 * xs[i++ & 1023]);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SigmoidExact);

void BM_BiasedRandomWalk(benchmark::State& state) {
  Graph g = MakeBenchmarkGraph(260, 20);
  WalkConfig config;
  config.walk_length = static_cast<int>(state.range(0));
  RandomWalkGenerator walker(g, config);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(walker.Walk(0, &rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BiasedRandomWalk)->Arg(20)->Arg(40)->Arg(80);

void BM_Node2VecFull(benchmark::State& state) {
  Graph g = MakeBenchmarkGraph(260, 20);
  Node2VecConfig config;
  config.walk.walks_per_node = 4;
  config.walk.walk_length = 20;
  config.skipgram.dim = static_cast<size_t>(state.range(0));
  config.skipgram.epochs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Node2VecEmbed(g, config, 7));
  }
}
BENCHMARK(BM_Node2VecFull)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_LogMeScore(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  Matrix features = Matrix::Gaussian(n, 32, &rng);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i % 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LogMeScore(features, labels, 10));
  }
}
BENCHMARK(BM_LogMeScore)->Arg(200)->Arg(400)->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_GbdtFit(benchmark::State& state) {
  Rng rng(5);
  const size_t n = 1000;
  const size_t d = static_cast<size_t>(state.range(0));
  ml::TabularDataset data;
  data.x = Matrix::Gaussian(n, d, &rng);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    data.y[i] = data.x(i, 0) + rng.NextGaussian(0.0, 0.1);
  }
  ml::GbdtConfig config;
  config.num_trees = 50;
  for (auto _ : state) {
    ml::Gbdt model(config);
    benchmark::DoNotOptimize(model.Fit(data));
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_GbdtFit)->Arg(32)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_RandomForestFit(benchmark::State& state) {
  Rng rng(6);
  const size_t n = 1000;
  ml::TabularDataset data;
  data.x = Matrix::Gaussian(n, 64, &rng);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    data.y[i] = data.x(i, 3) + rng.NextGaussian(0.0, 0.1);
  }
  ml::RandomForestConfig config;
  config.num_trees = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ml::RandomForest model(config);
    benchmark::DoNotOptimize(model.Fit(data));
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(10)->Arg(50)
    ->Unit(benchmark::kMillisecond);

void BM_GraphSageEpoch(benchmark::State& state) {
  Graph g = MakeBenchmarkGraph(260, 20);
  gnn::EdgeIndex edges = gnn::BuildEdgeIndex(g, true);
  Rng rng(7);
  gnn::SageConfig config;
  config.hidden_dim = 64;
  config.output_dim = 128;
  gnn::GraphSage encoder(edges, 64, config, &rng);
  Matrix features = Matrix::Gaussian(g.num_nodes(), 64, &rng);
  gnn::LinkPredictionConfig lp;
  lp.epochs = 1;
  for (auto _ : state) {
    Rng epoch_rng(8);
    benchmark::DoNotOptimize(
        gnn::TrainLinkPrediction(g, &encoder, features, {}, lp, &epoch_rng));
  }
}
BENCHMARK(BM_GraphSageEpoch)->Unit(benchmark::kMillisecond);

void BM_PearsonCorrelation(benchmark::State& state) {
  Rng rng(9);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.NextGaussian();
    b[i] = rng.NextGaussian();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(PearsonCorrelation(a, b));
  }
}
BENCHMARK(BM_PearsonCorrelation)->Arg(185)->Arg(1000);

void BM_GraphConstruction(benchmark::State& state) {
  zoo::ModelZooConfig config;
  config.catalog.num_image_models = 64;
  config.world.max_samples_per_dataset = 100;
  zoo::ModelZoo zoo(config);
  core::GraphBuildOptions options;
  // Warm the LogME cache so the benchmark isolates graph assembly.
  core::BuildModelZooGraph(&zoo, zoo::Modality::kImage, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::BuildModelZooGraph(&zoo, zoo::Modality::kImage, options));
  }
}
BENCHMARK(BM_GraphConstruction)->Unit(benchmark::kMillisecond);

// Times one component at 1 thread and at the configured thread count
// (TG_THREADS / hardware), prints the speedup, and records both timings for
// bench_csv/bench_timings.json. Each configuration gets one warmup run.
// Timings come from the span tracer rather than an external stopwatch: the
// measured interval is the component's own `span_name` root spans, so setup
// work inside the lambda (RNG seeding, corpus copies) is excluded.
void ReportOneSpeedup(const std::string& name, std::string_view span_name,
                      const std::function<void()>& run) {
  const size_t n_threads = ThreadCount();
  auto timed = [&](size_t threads) {
    SetThreadCount(threads);
    run();  // warmup
    obs::ResetSpans();
    run();
    double seconds = 0.0;
    for (const obs::SpanRecord& span : obs::SnapshotSpans()) {
      if (span.parent == 0 && span_name == span.name) {
        seconds +=
            static_cast<double>(span.end_ns - span.start_ns) * 1e-9;
      }
    }
    bench::RecordTiming(name, threads, seconds);
    return seconds;
  };
  const double t1 = timed(1);
  const double tn = timed(n_threads);
  SetThreadCount(0);
  std::printf("  %-24s %8.3fs (1 thread) %8.3fs (%zu threads)  %.2fx\n",
              name.c_str(), t1, tn, n_threads, tn > 0.0 ? t1 / tn : 0.0);
}

void ReportParallelSpeedups() {
  bench::PrintSectionHeader("parallel speedup: 1 thread vs TG_THREADS=" +
                            std::to_string(ThreadCount()));

  Graph g = MakeBenchmarkGraph(260, 20);
  WalkConfig walk_config;
  walk_config.walks_per_node = 8;
  walk_config.walk_length = 40;
  walk_config.q = 0.5;
  RandomWalkGenerator walker(g, walk_config);
  ReportOneSpeedup("random_walk_corpus", "walk_corpus", [&] {
    Rng rng(11);
    benchmark::DoNotOptimize(walker.GenerateAll(&rng));
  });

  std::vector<std::vector<uint32_t>> corpus;
  {
    Rng rng(11);
    for (const std::vector<NodeId>& walk : walker.GenerateAll(&rng)) {
      corpus.emplace_back(walk.begin(), walk.end());
    }
  }
  SkipGramConfig sg_config;
  sg_config.dim = 128;
  sg_config.epochs = 2;
  ReportOneSpeedup("skipgram_sharded", "skipgram_train", [&] {
    Rng rng(12);
    SkipGramTrainer trainer(g.num_nodes(), sg_config);
    trainer.Train(corpus, &rng);
    benchmark::DoNotOptimize(trainer.embeddings());
  });

  Rng data_rng(13);
  ml::TabularDataset data;
  data.x = Matrix::Gaussian(2000, 64, &data_rng);
  data.y.resize(2000);
  for (size_t i = 0; i < data.y.size(); ++i) {
    data.y[i] = data.x(i, 3) + data_rng.NextGaussian(0.0, 0.1);
  }
  ml::RandomForestConfig rf_config;
  rf_config.num_trees = 50;
  ReportOneSpeedup("random_forest_fit", "forest_fit", [&] {
    ml::RandomForest model(rf_config);
    benchmark::DoNotOptimize(model.Fit(data));
  });

  // Same forest workload under the histogram engine. Recorded as its own
  // stage so exact and hist trend independently in BENCH_history.json.
  ml::RandomForestConfig rf_hist_config = rf_config;
  rf_hist_config.tree.engine = ml::TreeEngineChoice::kHist;
  ReportOneSpeedup("random_forest_fit_hist", "forest_fit", [&] {
    ml::RandomForest model(rf_hist_config);
    benchmark::DoNotOptimize(model.Fit(data));
  });

  ml::GbdtConfig gbdt_config;
  gbdt_config.num_trees = 50;
  ReportOneSpeedup("gbdt_fit", "gbdt_fit", [&] {
    ml::Gbdt model(gbdt_config);
    benchmark::DoNotOptimize(model.Fit(data));
  });

  // Exact vs hist at 10x the pipeline's row count: binning's O(bins) split
  // scan only pulls ahead of the pre-sorted exact walk once rows dominate,
  // which is exactly the regime the pipeline grows into.
  Rng big_rng(14);
  ml::TabularDataset big;
  big.x = Matrix::Gaussian(20000, 64, &big_rng);
  big.y.resize(20000);
  for (size_t i = 0; i < big.y.size(); ++i) {
    big.y[i] = big.x(i, 3) + big_rng.NextGaussian(0.0, 0.1);
  }
  ml::RandomForestConfig big_config = rf_config;
  big_config.num_trees = 20;
  ReportOneSpeedup("forest_fit_10x_exact", "forest_fit", [&] {
    ml::RandomForest model(big_config);
    benchmark::DoNotOptimize(model.Fit(big));
  });
  ml::RandomForestConfig big_hist = big_config;
  big_hist.tree.engine = ml::TreeEngineChoice::kHist;
  ReportOneSpeedup("forest_fit_10x_hist", "forest_fit", [&] {
    ml::RandomForest model(big_hist);
    benchmark::DoNotOptimize(model.Fit(big));
  });
}

}  // namespace
}  // namespace tg

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // The speedup section reads its timings from span records; tracing goes
  // back off for the google-benchmark loops so their iterations don't
  // accumulate span buffers. Metrics stay on: stage histograms and pool
  // counters land next to the timings in bench_timings.json.
  // TG_BENCH_SPEEDUPS=0 skips the (slow) speedup section and the timings
  // JSON -- the mode tools/run_checks.sh uses for its kernels smoke run.
  const char* speedups_env = std::getenv("TG_BENCH_SPEEDUPS");
  const bool run_speedups =
      speedups_env == nullptr || std::string_view(speedups_env) != "0";
  tg::obs::SetMetricsEnabled(true);
  if (run_speedups) {
    tg::obs::SetTraceEnabled(true);
    tg::ReportParallelSpeedups();
    tg::obs::SetTraceEnabled(false);
    tg::obs::ResetSpans();
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (run_speedups) tg::bench::WriteTimingsJson();
  return 0;
}
