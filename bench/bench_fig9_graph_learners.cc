// Figure 9 reproduction: effect of the graph learner (GraphSAGE, GAT,
// Node2Vec+, Node2Vec), all with the LR prediction model and the full
// feature set. Paper finding: the Node2Vec family outperforms the GNNs on
// this small graph (265 nodes).
#include "bench_common.h"

namespace tg::bench {
namespace {

void Run(zoo::ModelZoo* zoo, zoo::Modality modality) {
  core::Pipeline pipeline(zoo, modality);
  const core::PipelineConfig base = DefaultPipelineConfig();

  const std::vector<core::GraphLearner> learners = {
      core::GraphLearner::kGraphSage,
      core::GraphLearner::kGat,
      core::GraphLearner::kNode2VecPlus,
      core::GraphLearner::kNode2Vec,
  };

  std::vector<core::StrategySummary> summaries;
  for (core::GraphLearner learner : learners) {
    core::PipelineConfig config = base;
    config.strategy = MakeStrategy(core::PredictorKind::kLinearRegression,
                                   learner, core::FeatureSet::kAll);
    obs::WallTimer timer;
    summaries.push_back(core::EvaluateStrategy(&pipeline, config));
    std::printf("[timing] %-20s %5.1fs\n",
                config.strategy.DisplayName().c_str(),
                timer.ElapsedSeconds());
  }

  PrintSectionHeader(std::string("Figure 9 (") + zoo::ModalityName(modality) +
                     "): effect of the graph learner (LR predictor)");
  TablePrinter table(SummaryHeader(summaries[0]));
  for (const auto& summary : summaries) AddSummaryRow(&table, summary);
  table.Print();
  WriteSummariesCsv(std::string("fig9_") + zoo::ModalityName(modality) +
                        ".csv",
                    summaries);
}

}  // namespace
}  // namespace tg::bench

int main() {
  tg::SetLogLevel(tg::LogLevel::kWarning);
  auto zoo = tg::bench::MakePaperScaleZoo();
  tg::bench::Run(zoo.get(), tg::zoo::Modality::kImage);
  tg::bench::Run(zoo.get(), tg::zoo::Modality::kText);
  return 0;
}
