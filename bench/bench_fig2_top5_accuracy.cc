// Figure 2 reproduction: average fine-tuned accuracy of the top-5 models
// selected by each strategy on `stanfordcars`. The paper reports Random at
// 0.52 with the graph-based strategy well ahead of LogME.
#include "bench_common.h"

namespace tg::bench {
namespace {

void Run(zoo::ModelZoo* zoo) {
  size_t target = 0;
  bool found = false;
  for (size_t d : zoo->EvaluationTargets(zoo::Modality::kImage)) {
    if (zoo->datasets()[d].name == "stanfordcars") {
      target = d;
      found = true;
    }
  }
  TG_CHECK(found);

  core::Pipeline pipeline(zoo, zoo::Modality::kImage);
  const core::PipelineConfig base = DefaultPipelineConfig();

  PrintSectionHeader(
      "Figure 2: top-5 mean fine-tuned accuracy on stanfordcars");
  TablePrinter table({"strategy", "top-5 mean accuracy", "pearson"});

  // Random selection, averaged over seeds.
  {
    double total = 0.0;
    const int trials = 20;
    for (int seed = 0; seed < trials; ++seed) {
      total += core::EvaluateRandomBaseline(zoo, target,
                                            static_cast<uint64_t>(seed))
                   .TopKMeanAccuracy(5);
    }
    table.AddRow({"Random", FormatDouble(total / trials, 3), "-"});
  }

  {
    core::TargetEvaluation logme = core::EvaluateEstimatorBaseline(
        zoo, target, core::EstimatorBaseline::kLogMe);
    table.AddRow({"LogME", FormatDouble(logme.TopKMeanAccuracy(5), 3),
                  FormatDouble(logme.pearson, 3)});
  }

  const std::vector<core::Strategy> strategies = {
      MakeStrategy(core::PredictorKind::kLinearRegression,
                   core::GraphLearner::kNone,
                   core::FeatureSet::kMetadataOnly),
      MakeStrategy(core::PredictorKind::kLinearRegression,
                   core::GraphLearner::kNone,
                   core::FeatureSet::kAllWithLogMe),
      MakeStrategy(core::PredictorKind::kLinearRegression,
                   core::GraphLearner::kNode2Vec, core::FeatureSet::kAll),
      MakeStrategy(core::PredictorKind::kXgboost,
                   core::GraphLearner::kNode2Vec, core::FeatureSet::kAll),
  };
  for (const core::Strategy& strategy : strategies) {
    core::PipelineConfig config = base;
    config.strategy = strategy;
    core::TargetEvaluation eval = pipeline.EvaluateTarget(config, target);
    table.AddRow({strategy.DisplayName(),
                  FormatDouble(eval.TopKMeanAccuracy(5), 3),
                  FormatDouble(eval.pearson, 3)});
  }

  // Upper bound: the 5 actually-best models.
  {
    core::TargetEvaluation oracle;
    oracle.predicted = oracle.actual =
        core::EvaluateRandomBaseline(zoo, target, 0).actual;
    table.AddRow({"Oracle (best possible)",
                  FormatDouble(oracle.TopKMeanAccuracy(5), 3), "1.000"});
  }
  table.Print();
  std::printf("\npaper reference: Random ~0.52; TG clearly above LogME\n");
}

}  // namespace
}  // namespace tg::bench

int main() {
  tg::SetLogLevel(tg::LogLevel::kWarning);
  auto zoo = tg::bench::MakePaperScaleZoo();
  tg::bench::Run(zoo.get());
  return 0;
}
