// Figure 8 reproduction: feature ablation with a fixed LR prediction model:
//   i)   metadata only                     (LR)
//   ii)  metadata + similarity + LogME     (LR{all,LogME})
//   iii) graph features only               (TG:LR,N2V)
//   iv)  metadata + similarity + graph     (TG:LR,N2V,all)
#include "bench_common.h"

namespace tg::bench {
namespace {

void Run(zoo::ModelZoo* zoo, zoo::Modality modality) {
  core::Pipeline pipeline(zoo, modality);
  const core::PipelineConfig base = DefaultPipelineConfig();

  const std::vector<core::Strategy> strategies = {
      MakeStrategy(core::PredictorKind::kLinearRegression,
                   core::GraphLearner::kNone,
                   core::FeatureSet::kMetadataOnly),
      MakeStrategy(core::PredictorKind::kLinearRegression,
                   core::GraphLearner::kNone,
                   core::FeatureSet::kAllWithLogMe),
      MakeStrategy(core::PredictorKind::kLinearRegression,
                   core::GraphLearner::kNode2Vec,
                   core::FeatureSet::kGraphOnly),
      MakeStrategy(core::PredictorKind::kLinearRegression,
                   core::GraphLearner::kNode2Vec, core::FeatureSet::kAll),
  };

  std::vector<core::StrategySummary> summaries;
  for (const core::Strategy& strategy : strategies) {
    core::PipelineConfig config = base;
    config.strategy = strategy;
    summaries.push_back(core::EvaluateStrategy(&pipeline, config));
  }

  PrintSectionHeader(std::string("Figure 8 (") + zoo::ModalityName(modality) +
                     "): feature ablation with the LR prediction model");
  TablePrinter table(SummaryHeader(summaries[0]));
  for (const auto& summary : summaries) AddSummaryRow(&table, summary);
  table.Print();
  WriteSummariesCsv(std::string("fig8_") + zoo::ModalityName(modality) +
                        ".csv",
                    summaries);
}

}  // namespace
}  // namespace tg::bench

int main() {
  tg::SetLogLevel(tg::LogLevel::kWarning);
  auto zoo = tg::bench::MakePaperScaleZoo();
  tg::bench::Run(zoo.get(), tg::zoo::Modality::kImage);
  tg::bench::Run(zoo.get(), tg::zoo::Modality::kText);
  return 0;
}
