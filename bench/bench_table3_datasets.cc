// Table III reproduction: properties (samples / classes) of the evaluation
// target datasets, plus the roster sizes of the full collection (12 + 61
// image, 8 + 16 text datasets; 185 + 163 models).
#include "bench_common.h"

namespace tg::bench {
namespace {

void Run(zoo::ModelZoo* zoo) {
  for (zoo::Modality modality :
       {zoo::Modality::kImage, zoo::Modality::kText}) {
    PrintSectionHeader(std::string("Table III (") +
                       zoo::ModalityName(modality) +
                       "): target dataset properties");
    TablePrinter table({"dataset", "samples", "classes", "domain group"});
    for (size_t d : zoo->EvaluationTargets(modality)) {
      const zoo::DatasetInfo& info = zoo->datasets()[d];
      table.AddRow({info.name, std::to_string(info.num_samples),
                    std::to_string(info.num_classes),
                    std::to_string(info.domain)});
    }
    table.Print();
  }

  PrintSectionHeader("collection sizes");
  TablePrinter sizes({"collection", "image", "text"});
  auto count_datasets = [&](zoo::Modality modality, bool is_public) {
    int count = 0;
    for (const zoo::DatasetInfo& d : zoo->datasets()) {
      if (d.modality == modality && d.is_public == is_public) ++count;
    }
    return count;
  };
  sizes.AddRow({"public datasets",
                std::to_string(count_datasets(zoo::Modality::kImage, true)),
                std::to_string(count_datasets(zoo::Modality::kText, true))});
  sizes.AddRow({"source datasets",
                std::to_string(count_datasets(zoo::Modality::kImage, false)),
                std::to_string(count_datasets(zoo::Modality::kText, false))});
  sizes.AddRow(
      {"models",
       std::to_string(zoo->ModelsOfModality(zoo::Modality::kImage).size()),
       std::to_string(zoo->ModelsOfModality(zoo::Modality::kText).size())});
  sizes.Print();
}

}  // namespace
}  // namespace tg::bench

int main() {
  tg::SetLogLevel(tg::LogLevel::kWarning);
  auto zoo = tg::bench::MakePaperScaleZoo();
  tg::bench::Run(zoo.get());
  return 0;
}
