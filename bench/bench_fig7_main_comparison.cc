// Figure 7 reproduction: average Pearson correlation between predicted
// scores and fine-tuning accuracy across the 8 image and 8 text evaluation
// targets, comparing the feature-based baseline (LogME), learning-based
// baselines (LR, LR{all,LogME}) and the graph-learning strategies
// (TG:{LR,RF,XGB} with Node2Vec graph features + metadata + distance).
#include "bench_common.h"

namespace tg::bench {
namespace {

void RunModality(zoo::ModelZoo* zoo, zoo::Modality modality) {
  core::Pipeline pipeline(zoo, modality);
  const core::PipelineConfig base = DefaultPipelineConfig();

  std::vector<core::StrategySummary> summaries;

  // --- Feature-based baseline: LogME ---
  {
    std::vector<core::TargetEvaluation> evals;
    for (size_t target : zoo->EvaluationTargets(modality)) {
      evals.push_back(core::EvaluateEstimatorBaseline(
          zoo, target, core::EstimatorBaseline::kLogMe));
    }
    summaries.push_back(core::Summarize("LogME", evals));
  }

  // --- Learning-based baselines and graph strategies ---
  const std::vector<core::Strategy> strategies = {
      MakeStrategy(core::PredictorKind::kLinearRegression,
                   core::GraphLearner::kNone,
                   core::FeatureSet::kMetadataOnly),
      MakeStrategy(core::PredictorKind::kLinearRegression,
                   core::GraphLearner::kNone,
                   core::FeatureSet::kAllWithLogMe),
      MakeStrategy(core::PredictorKind::kLinearRegression,
                   core::GraphLearner::kNode2Vec, core::FeatureSet::kAll),
      MakeStrategy(core::PredictorKind::kRandomForest,
                   core::GraphLearner::kNode2Vec, core::FeatureSet::kAll),
      MakeStrategy(core::PredictorKind::kXgboost,
                   core::GraphLearner::kNode2Vec, core::FeatureSet::kAll),
  };
  for (const core::Strategy& strategy : strategies) {
    core::PipelineConfig config = base;
    config.strategy = strategy;
    obs::WallTimer timer;
    summaries.push_back(core::EvaluateStrategy(&pipeline, config));
    std::printf("[timing] %-18s %5.1fs\n", strategy.DisplayName().c_str(),
                timer.ElapsedSeconds());
  }

  PrintSectionHeader(std::string("Figure 7 (") + zoo::ModalityName(modality) +
                     "): Pearson correlation per target dataset");
  TablePrinter table(SummaryHeader(summaries[0]));
  for (const auto& summary : summaries) AddSummaryRow(&table, summary);
  table.Print();

  // Paper-style headline: improvement of the best TG variant over the best
  // baseline.
  double best_tg = -2.0;
  double best_baseline = -2.0;
  for (const auto& s : summaries) {
    if (StartsWith(s.name, "TG:")) {
      best_tg = std::max(best_tg, s.mean_pearson);
    } else {
      best_baseline = std::max(best_baseline, s.mean_pearson);
    }
  }
  std::printf("best TG avg=%.3f vs best baseline avg=%.3f (+%.0f%%)\n",
              best_tg, best_baseline,
              100.0 * (best_tg - best_baseline) / std::max(best_baseline,
                                                           1e-9));

  WriteSummariesCsv(std::string("fig7_") + zoo::ModalityName(modality) +
                        ".csv",
                    summaries);
}

}  // namespace
}  // namespace tg::bench

int main() {
  tg::SetLogLevel(tg::LogLevel::kWarning);
  auto zoo = tg::bench::MakePaperScaleZoo();
  tg::bench::RunModality(zoo.get(), tg::zoo::Modality::kImage);
  tg::bench::RunModality(zoo.get(), tg::zoo::Modality::kText);
  return 0;
}
