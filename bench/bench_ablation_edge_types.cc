// Design-choice ablation (paper §VII-G "we do not discuss the contribution
// and importance of each type of features embedded in a graph"): measures
// the contribution of each edge type by building the graph with
//   i)   D-D similarity edges only,
//   ii)  D-D + M-D transferability edges,
//   iii) D-D + M-D training-performance edges,
//   iv)  all three (the paper's full graph),
// and evaluating TG:LR,N2V,all on the image targets.
#include "bench_common.h"

namespace tg::bench {
namespace {

void Run(zoo::ModelZoo* zoo) {
  core::Pipeline pipeline(zoo, zoo::Modality::kImage);

  struct Setting {
    const char* name;
    bool accuracy_edges;
    bool transferability_edges;
  };
  const Setting settings[] = {
      {"D-D only", false, false},
      {"D-D + transferability", false, true},
      {"D-D + training performance", true, false},
      {"all edge types", true, true},
  };

  PrintSectionHeader(
      "Ablation: contribution of each edge type (image, TG:LR,N2V,all)");
  std::vector<core::StrategySummary> summaries;
  for (const Setting& setting : settings) {
    core::PipelineConfig config = DefaultPipelineConfig();
    config.strategy = MakeStrategy(core::PredictorKind::kLinearRegression,
                                   core::GraphLearner::kNode2Vec,
                                   core::FeatureSet::kAll);
    config.graph.include_accuracy_edges = setting.accuracy_edges;
    config.graph.include_transferability_edges =
        setting.transferability_edges;
    core::StrategySummary summary = core::EvaluateStrategy(&pipeline, config);
    summary.name = setting.name;
    summaries.push_back(std::move(summary));
  }
  TablePrinter table(SummaryHeader(summaries[0]));
  for (const auto& summary : summaries) AddSummaryRow(&table, summary);
  table.Print();
  WriteSummariesCsv("ablation_edge_types_image.csv", summaries);
}

}  // namespace
}  // namespace tg::bench

int main() {
  tg::SetLogLevel(tg::LogLevel::kWarning);
  auto zoo = tg::bench::MakePaperScaleZoo();
  tg::bench::Run(zoo.get());
  return 0;
}
