// §VII-C "Scenarios without training history" reproduction: the graph keeps
// only transferability-score (LogME) edges and D-D similarity edges -- the
// cold-start situation of a fresh model zoo. Paper reference: average
// correlation 0.47 (metadata + similarity + graph) and 0.42 (graph only) on
// the image datasets, still above the baselines.
#include "bench_common.h"

namespace tg::bench {
namespace {

void Run(zoo::ModelZoo* zoo) {
  core::Pipeline pipeline(zoo, zoo::Modality::kImage);

  std::vector<core::StrategySummary> summaries;

  // Baseline for context: LogME direct ranking.
  {
    std::vector<core::TargetEvaluation> evals;
    for (size_t target : zoo->EvaluationTargets(zoo::Modality::kImage)) {
      evals.push_back(core::EvaluateEstimatorBaseline(
          zoo, target, core::EstimatorBaseline::kLogMe));
    }
    summaries.push_back(core::Summarize("LogME", evals));
  }

  for (core::FeatureSet features :
       {core::FeatureSet::kAll, core::FeatureSet::kGraphOnly}) {
    core::PipelineConfig config = DefaultPipelineConfig();
    config.strategy = MakeStrategy(core::PredictorKind::kLinearRegression,
                                   core::GraphLearner::kNode2Vec, features);
    config.graph.include_accuracy_edges = false;  // no training history
    config.use_transferability_labels = true;     // LogME pseudo-labels
    core::StrategySummary summary = core::EvaluateStrategy(&pipeline, config);
    summary.name += " [no history]";
    summaries.push_back(std::move(summary));
  }

  PrintSectionHeader(
      "SecVII-C (image): scenario without training history (LogME edges "
      "only)");
  TablePrinter table(SummaryHeader(summaries[0]));
  for (const auto& summary : summaries) AddSummaryRow(&table, summary);
  table.Print();
  std::printf("\npaper reference: avg 0.47 (all features) / 0.42 (graph "
              "only)\n");
  WriteSummariesCsv("no_history_image.csv", summaries);
}

}  // namespace
}  // namespace tg::bench

int main() {
  tg::SetLogLevel(tg::LogLevel::kWarning);
  auto zoo = tg::bench::MakePaperScaleZoo();
  tg::bench::Run(zoo.get());
  return 0;
}
