// Figure 12 (appendix A) reproduction: effect of the dataset representation
// (Domain Similarity vs Task2Vec) on TG:XGB,GraphSAGE,all and
// TG:XGB,N2V+,all over the image datasets. For Node2Vec+ the representation
// only enters through the dataset-distance edges; for GraphSAGE it also
// provides the node features.
#include "bench_common.h"

namespace tg::bench {
namespace {

void Run(zoo::ModelZoo* zoo) {
  core::Pipeline pipeline(zoo, zoo::Modality::kImage);

  std::vector<core::StrategySummary> summaries;
  for (core::GraphLearner learner :
       {core::GraphLearner::kGraphSage, core::GraphLearner::kNode2VecPlus}) {
    for (zoo::DatasetRepresentation repr :
         {zoo::DatasetRepresentation::kDomainSimilarity,
          zoo::DatasetRepresentation::kTask2Vec}) {
      core::PipelineConfig config = DefaultPipelineConfig();
      config.strategy = MakeStrategy(core::PredictorKind::kXgboost, learner,
                                     core::FeatureSet::kAll);
      config.graph.representation = repr;
      obs::WallTimer timer;
      core::StrategySummary summary =
          core::EvaluateStrategy(&pipeline, config);
      summary.name += repr == zoo::DatasetRepresentation::kTask2Vec
                          ? " [Task2Vec]"
                          : " [DomainSim]";
      std::printf("[timing] %-36s %5.1fs\n", summary.name.c_str(),
                  timer.ElapsedSeconds());
      summaries.push_back(std::move(summary));
    }
  }

  PrintSectionHeader(
      "Figure 12 (image): effect of the dataset representation");
  TablePrinter table(SummaryHeader(summaries[0]));
  for (const auto& summary : summaries) AddSummaryRow(&table, summary);
  table.Print();
  WriteSummariesCsv("fig12_image.csv", summaries);
}

}  // namespace
}  // namespace tg::bench

int main() {
  tg::SetLogLevel(tg::LogLevel::kWarning);
  auto zoo = tg::bench::MakePaperScaleZoo();
  tg::bench::Run(zoo.get());
  return 0;
}
