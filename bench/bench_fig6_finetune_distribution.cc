// Figure 6 reproduction: distribution of fine-tuning accuracy of all models
// over each public dataset, sorted by standard deviation. Low-variance
// datasets (e.g. eurosat, paper: std 0.005) are excluded from evaluation.
#include <algorithm>

#include "bench_common.h"

#include "numeric/stats.h"

namespace tg::bench {
namespace {

void Run(zoo::ModelZoo* zoo, zoo::Modality modality) {
  struct Row {
    std::string name;
    bool evaluated;
    double mean, stddev, min, q25, median, q75, max;
  };
  std::vector<Row> rows;
  for (size_t d : zoo->PublicDatasets(modality)) {
    std::vector<double> accs;
    for (size_t m : zoo->ModelsOfModality(modality)) {
      accs.push_back(zoo->FineTuneAccuracy(m, d));
    }
    Row row;
    row.name = zoo->datasets()[d].name;
    row.evaluated = zoo->datasets()[d].is_evaluation_target;
    row.mean = Mean(accs);
    row.stddev = StdDev(accs);
    row.min = Min(accs);
    row.q25 = Quantile(accs, 0.25);
    row.median = Quantile(accs, 0.5);
    row.q75 = Quantile(accs, 0.75);
    row.max = Max(accs);
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.stddev < b.stddev; });

  PrintSectionHeader(std::string("Figure 6 (") + zoo::ModalityName(modality) +
                     "): fine-tuning accuracy distribution, sorted by std");
  TablePrinter table({"dataset", "std", "mean", "min", "q25", "median", "q75",
                      "max", "evaluated"});
  for (const Row& row : rows) {
    table.AddRow({row.name, FormatDouble(row.stddev, 3),
                  FormatDouble(row.mean, 3), FormatDouble(row.min, 3),
                  FormatDouble(row.q25, 3), FormatDouble(row.median, 3),
                  FormatDouble(row.q75, 3), FormatDouble(row.max, 3),
                  row.evaluated ? "yes" : "no (low variance)"});
  }
  table.Print();
}

}  // namespace
}  // namespace tg::bench

int main() {
  tg::SetLogLevel(tg::LogLevel::kWarning);
  auto zoo = tg::bench::MakePaperScaleZoo();
  tg::bench::Run(zoo.get(), tg::zoo::Modality::kImage);
  tg::bench::Run(zoo.get(), tg::zoo::Modality::kText);
  return 0;
}
