// Design-choice ablation (paper §VII-G "Graph construction ... simple
// threshold-based edge pruning"): sweep the positive-edge pruning threshold
// and measure both the resulting graph density and the selection quality of
// TG:LR,N2V,all on the image targets. Not a figure in the paper -- it
// motivates the 0.5 heuristic the paper fixes in Table II.
#include "bench_common.h"

#include "graph/graph_stats.h"

namespace tg::bench {
namespace {

void Run(zoo::ModelZoo* zoo) {
  core::Pipeline pipeline(zoo, zoo::Modality::kImage);

  PrintSectionHeader(
      "Ablation: positive-edge pruning threshold (image, TG:LR,N2V,all)");
  TablePrinter table({"threshold", "acc edges", "transf edges",
                      "neg pairs", "avg pearson"});

  for (double threshold : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    core::PipelineConfig config = DefaultPipelineConfig();
    config.strategy = MakeStrategy(core::PredictorKind::kLinearRegression,
                                   core::GraphLearner::kNode2Vec,
                                   core::FeatureSet::kAll);
    config.graph.accuracy_threshold = threshold;
    config.graph.transferability_threshold = threshold;
    config.graph.negative_threshold = threshold;

    // Density of the full (non-LOO) graph at this threshold.
    core::BuiltGraph built =
        core::BuildModelZooGraph(zoo, zoo::Modality::kImage, config.graph);
    GraphStats stats = ComputeGraphStats(built.graph);

    core::StrategySummary summary = core::EvaluateStrategy(&pipeline, config);
    table.AddRow({FormatDouble(threshold, 1),
                  std::to_string(stats.model_dataset_accuracy_edges),
                  std::to_string(stats.model_dataset_transferability_edges),
                  std::to_string(built.negative_edges.size()),
                  FormatDouble(summary.mean_pearson, 3)});
  }
  table.Print();
}

}  // namespace
}  // namespace tg::bench

int main() {
  tg::SetLogLevel(tg::LogLevel::kWarning);
  auto zoo = tg::bench::MakePaperScaleZoo();
  tg::bench::Run(zoo.get());
  return 0;
}
