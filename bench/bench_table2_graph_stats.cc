// Table II reproduction: statistics of the constructed model-zoo graphs for
// both modalities (thresholds, node counts, average degree, per-type edge
// counts). Paper reference values: image graph 265 nodes / 5256 D-D edges /
// 1753 accuracy edges / 916 transferability edges; text graph 188 nodes /
// 550 D-D edges / 918 accuracy edges / 419 transferability edges.
#include "bench_common.h"

#include "core/graph_builder.h"
#include "graph/graph_stats.h"

namespace tg::bench {
namespace {

void Run(zoo::ModelZoo* zoo) {
  core::GraphBuildOptions options;  // Table II thresholds (0.5 everywhere)

  PrintSectionHeader("Table II: statistics of the graph properties");
  TablePrinter table({"graph property", "image", "text"});

  core::BuiltGraph image =
      core::BuildModelZooGraph(zoo, zoo::Modality::kImage, options);
  core::BuiltGraph text =
      core::BuildModelZooGraph(zoo, zoo::Modality::kText, options);
  GraphStats image_stats = ComputeGraphStats(image.graph);
  GraphStats text_stats = ComputeGraphStats(text.graph);

  auto row = [&](const std::string& name, auto image_value, auto text_value) {
    table.AddRow({name, std::to_string(image_value),
                  std::to_string(text_value)});
  };
  table.AddRow({"graph type", "homogenous", "homogenous"});
  table.AddRow({"threshold on transferability score for edge pruning",
                FormatDouble(options.transferability_threshold, 1),
                FormatDouble(options.transferability_threshold, 1)});
  table.AddRow({"threshold on accuracy for edge pruning",
                FormatDouble(options.accuracy_threshold, 1),
                FormatDouble(options.accuracy_threshold, 1)});
  table.AddRow({"threshold of negative edge identification on accuracy",
                FormatDouble(options.negative_threshold, 1),
                FormatDouble(options.negative_threshold, 1)});
  row("number of nodes", image_stats.num_nodes, text_stats.num_nodes);
  table.AddRow({"average node degree",
                FormatDouble(image_stats.average_degree, 1),
                FormatDouble(text_stats.average_degree, 1)});
  row("number of dataset-dataset edges", image_stats.dataset_dataset_edges,
      text_stats.dataset_dataset_edges);
  row("number of model-dataset edges with accuracy weight",
      image_stats.model_dataset_accuracy_edges,
      text_stats.model_dataset_accuracy_edges);
  row("number of model-dataset edges with transferability weight",
      image_stats.model_dataset_transferability_edges,
      text_stats.model_dataset_transferability_edges);
  row("number of labeled negative pairs", image.negative_edges.size(),
      text.negative_edges.size());
  row("connected components", image_stats.connected_components,
      text_stats.connected_components);
  table.Print();

  std::printf(
      "\npaper reference: image 265 nodes / 5256 D-D / 1753 acc / 916 "
      "transf; text 188 nodes / 550 D-D / 918 acc / 419 transf\n");
}

}  // namespace
}  // namespace tg::bench

int main() {
  tg::SetLogLevel(tg::LogLevel::kWarning);
  auto zoo = tg::bench::MakePaperScaleZoo();
  tg::bench::Run(zoo.get());
  return 0;
}
