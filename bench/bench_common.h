// Shared setup for the benchmark harness: the full paper-scale model zoo
// (185 image / 163 text models, 73 image / 24 text datasets) and the default
// pipeline configuration used across the table/figure reproductions.
#ifndef TG_BENCH_BENCH_COMMON_H_
#define TG_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "core/recommender.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/resource_sampler.h"
#include "obs/trace.h"  // obs::WallTimer: the bench timing source
#include "util/atomic_file.h"
#include "util/build_info.h"
#include "util/csv.h"
#include "util/json_util.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "zoo/model_zoo.h"

namespace tg::bench {

inline std::unique_ptr<zoo::ModelZoo> MakePaperScaleZoo() {
  zoo::ModelZooConfig config;  // paper-scale defaults
  return std::make_unique<zoo::ModelZoo>(config);
}

// Full-scale defaults: 128-d embeddings (paper §VI-B), 500-tree XGBoost and
// 100-tree RF (paper §VI-C).
inline core::PipelineConfig DefaultPipelineConfig() {
  core::PipelineConfig config;
  config.node2vec.walk.walks_per_node = 8;
  config.node2vec.walk.walk_length = 40;
  // At p=q=1 the Node2Vec and Node2Vec+ walk laws coincide; a DFS-leaning
  // q < 1 puts the benches in the regime where the + variant's weighted
  // in/out rule actually changes the walks.
  config.node2vec.walk.p = 1.0;
  config.node2vec.walk.q = 0.5;
  config.node2vec.skipgram.dim = 128;
  config.node2vec.skipgram.window = 5;
  config.node2vec.skipgram.epochs = 3;
  config.sage.hidden_dim = 64;
  config.sage.output_dim = 128;
  config.gat.hidden_dim = 64;
  config.gat.output_dim = 128;
  config.gat.num_heads = 2;
  config.link_prediction.epochs = 100;
  return config;
}

inline core::Strategy MakeStrategy(core::PredictorKind predictor,
                                   core::GraphLearner learner,
                                   core::FeatureSet features) {
  core::Strategy s;
  s.predictor = predictor;
  s.learner = learner;
  s.features = features;
  return s;
}

// Renders one summary row: name, per-target Pearson values, and the mean.
inline void AddSummaryRow(TablePrinter* table,
                          const core::StrategySummary& summary) {
  std::vector<std::string> row = {summary.name};
  for (double tau : summary.per_target_pearson) {
    row.push_back(FormatDouble(tau, 3));
  }
  row.push_back(FormatDouble(summary.mean_pearson, 3));
  table->AddRow(std::move(row));
}

inline std::vector<std::string> SummaryHeader(
    const core::StrategySummary& reference) {
  std::vector<std::string> header = {"strategy"};
  for (const std::string& name : reference.target_names) {
    header.push_back(name);
  }
  header.push_back("avg");
  return header;
}

// CSV artifacts go into ./bench_csv (created on demand) so the bench binary
// directory stays runnable with `for b in build/bench/*; do $b; done`.
inline std::string CsvPath(const std::string& filename) {
  std::error_code ec;
  std::filesystem::create_directories("bench_csv", ec);
  return "bench_csv/" + filename;
}

// Writes summaries as CSV for plot regeneration.
inline void WriteSummariesCsv(
    const std::string& name,
    const std::vector<core::StrategySummary>& summaries) {
  if (summaries.empty()) return;
  const std::string filename = CsvPath(name);
  CsvWriter csv(filename);
  if (!csv.ok()) {
    TG_LOG(Warning) << "could not open " << filename;
    return;
  }
  std::vector<std::string> header = {"strategy"};
  for (const std::string& name : summaries[0].target_names) {
    header.push_back(name);
  }
  header.push_back("avg");
  csv.WriteRow(header);
  for (const core::StrategySummary& s : summaries) {
    std::vector<std::string> row = {s.name};
    for (double tau : s.per_target_pearson) row.push_back(FormatDouble(tau, 4));
    row.push_back(FormatDouble(s.mean_pearson, 4));
    csv.WriteRow(row);
  }
  Status closed = csv.Close();
  if (!closed.ok()) {
    TG_LOG(Warning) << "could not write " << filename << ": "
                    << closed.ToString();
    return;
  }
  std::printf("[csv] wrote %s\n", filename.c_str());
}

inline void PrintSectionHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// --- Machine-readable component timings (bench_csv/bench_timings.json) ---
// Benches call RecordTiming() per measured component and WriteTimingsJson()
// once before exiting; plots and CI diffing consume the JSON.

struct TimingRecord {
  std::string component;
  size_t threads = 1;
  double wall_seconds = 0.0;
};

inline std::vector<TimingRecord>& TimingRecords() {
  static std::vector<TimingRecord> records;
  return records;
}

inline void RecordTiming(const std::string& component, size_t threads,
                         double wall_seconds) {
  TimingRecords().push_back({component, threads, wall_seconds});
}

inline void WriteTimingsJson(
    const std::string& filename = "bench_timings.json") {
  const std::vector<TimingRecord>& records = TimingRecords();
  if (records.empty()) return;
  const std::string path = CsvPath(filename);
  // Composed into one string and published atomically (temp + fsync +
  // rename), with the exact byte layout the direct-fprintf writer produced.
  char buf[256];
  std::string json = "{\n  \"build_info\": " + BuildInfoJson() + ",\n";
  // Peak RSS of this bench process so bench_history can gate on memory
  // regressions alongside stage times. ok=false leaves zeros, which the
  // history compare treats as "no reading".
  const obs::ResourceUsage usage = obs::ReadSelfResourceUsage();
  std::snprintf(buf, sizeof(buf),
                "  \"resources\": {\"peak_rss_bytes\": %llu, "
                "\"rss_bytes\": %llu, \"major_faults\": %llu},\n",
                static_cast<unsigned long long>(usage.peak_rss_bytes),
                static_cast<unsigned long long>(usage.rss_bytes),
                static_cast<unsigned long long>(usage.major_faults));
  json += buf;
  json += "  \"timings\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const TimingRecord& r = records[i];
    std::snprintf(buf, sizeof(buf),
                  ", \"threads\": %zu, \"wall_seconds\": %.6f}%s\n",
                  r.threads, r.wall_seconds,
                  i + 1 < records.size() ? "," : "");
    json += "    {\"component\": " + JsonQuote(r.component) + buf;
  }
  json += "  ],\n";
  // Hardware-counter provenance + per-stage totals: the status object says
  // whether the counters array means anything ("disabled"/"unavailable"
  // runs stamp why instead of emitting silently-zero numbers); the array
  // feeds the bench_history counter-ratio gate.
  json += "  \"perf_counters\": " + obs::PerfCountersStatusJson() + ",\n";
  json += "  \"counters\": " + obs::StagePerfCountersJson() + ",\n";
  json += "  \"metrics\": " +
          obs::MetricsRegistry::Instance().ToJson() + "\n}\n";
  Status written = WriteFileAtomic(path, json);
  if (!written.ok()) {
    TG_LOG(Warning) << "could not write " << path << ": "
                    << written.ToString();
    return;
  }
  std::printf("[json] wrote %s\n", path.c_str());
}

}  // namespace tg::bench

#endif  // TG_BENCH_BENCH_COMMON_H_
