// Figure 10 reproduction: effect of the prediction model (LR, RF, XGB) with
// Node2Vec graph features and the full feature set. Paper finding: no
// dominant prediction model; feature selection matters more.
#include "bench_common.h"

namespace tg::bench {
namespace {

void Run(zoo::ModelZoo* zoo, zoo::Modality modality) {
  core::Pipeline pipeline(zoo, modality);
  const core::PipelineConfig base = DefaultPipelineConfig();

  std::vector<core::StrategySummary> summaries;
  for (core::PredictorKind predictor :
       {core::PredictorKind::kLinearRegression,
        core::PredictorKind::kRandomForest, core::PredictorKind::kXgboost}) {
    core::PipelineConfig config = base;
    config.strategy = MakeStrategy(predictor, core::GraphLearner::kNode2Vec,
                                   core::FeatureSet::kAll);
    summaries.push_back(core::EvaluateStrategy(&pipeline, config));
  }

  PrintSectionHeader(std::string("Figure 10 (") +
                     zoo::ModalityName(modality) +
                     "): effect of the prediction model (N2V features)");
  TablePrinter table(SummaryHeader(summaries[0]));
  for (const auto& summary : summaries) AddSummaryRow(&table, summary);
  table.Print();

  // Spread between best and worst prediction model per dataset.
  double max_gap = 0.0;
  for (size_t t = 0; t < summaries[0].per_target_pearson.size(); ++t) {
    double lo = 2.0;
    double hi = -2.0;
    for (const auto& s : summaries) {
      lo = std::min(lo, s.per_target_pearson[t]);
      hi = std::max(hi, s.per_target_pearson[t]);
    }
    max_gap = std::max(max_gap, hi - lo);
  }
  std::printf("max per-dataset gap between prediction models: %.3f\n",
              max_gap);
  WriteSummariesCsv(std::string("fig10_") + zoo::ModalityName(modality) +
                        ".csv",
                    summaries);
}

}  // namespace
}  // namespace tg::bench

int main() {
  tg::SetLogLevel(tg::LogLevel::kWarning);
  auto zoo = tg::bench::MakePaperScaleZoo();
  tg::bench::Run(zoo.get(), tg::zoo::Modality::kImage);
  tg::bench::Run(zoo.get(), tg::zoo::Modality::kText);
  return 0;
}
