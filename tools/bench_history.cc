// bench_history: accumulates bench_csv/bench_timings.json snapshots into a
// persistent bench_csv/BENCH_history.json and gates on run-over-run
// regressions. See src/obs/bench_history.h for the schema and
// docs/observability.md for the workflow.
//
// Subcommands:
//   append  --timings FILE --history FILE     add a run (creates history)
//   compare --history FILE [options]          diff latest vs baseline; exit
//                                             1 on regression
//   show    --history FILE                    list recorded runs
//
// compare options:
//   --baseline N            history index to compare against (default: the
//                           run before the latest)
//   --max-time-ratio R      stage-time regression threshold (default 1.30)
//   --max-rss-ratio R       peak-RSS regression threshold (default 1.50)
//   --min-seconds S         ignore stages whose baseline is below S
//                           (default 0.01)
//   --inject-time-ratio R   multiply the latest run's stage times by R
//                           before comparing -- a self-test hook letting
//                           CI prove the gate actually fails (run_checks.sh
//                           injects 2.0 and expects a non-zero exit)
//   --stage-max-ratio LIST  per-stage max-time-ratio overrides, e.g.
//                           "skipgram_sharded@1=0.70,gbdt_fit@1=1.2"
//                           (comma-separated stage=ratio pairs; overridden
//                           stages skip the min-seconds floor)
//   --stage-max-seconds LIST  absolute wall-time ceilings on the LATEST run,
//                           e.g. "random_forest_fit@1=0.38" (comma-separated
//                           stage=S pairs). Baseline-independent, so the
//                           gate stays meaningful as ratio baselines drift;
//                           enforced even on a single-run history, and a
//                           listed stage missing from the latest run fails
//   --min-ipc-ratio R       hardware-counter gate: fail when a stage's
//                           latest IPC drops below R x baseline IPC
//                           (default 0 = disabled; runs without counter
//                           fields skip the gate with a note)
//   --max-cache-miss-ratio R  counterpart gate on cache-miss rate: fail
//                           when latest miss rate exceeds R x baseline
//                           (default 0 = disabled)
//   --min-counter-cycles N  skip counter gates for stages whose baseline
//                           saw fewer than N cycles (default 10000000)
#include <cstdio>
#include <cstring>
#include <ctime>
#include <map>
#include <string>
#include <vector>

#include "obs/bench_history.h"
#include "util/atomic_file.h"
#include "util/json_util.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tg {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_history <append|compare|show> [--option value ...]\n"
      "  append  --timings FILE --history FILE\n"
      "  compare --history FILE [--baseline N] [--max-time-ratio R]\n"
      "          [--max-rss-ratio R] [--min-seconds S]"
      " [--inject-time-ratio R]\n"
      "          [--stage-max-ratio stage=R[,stage=R...]]\n"
      "          [--stage-max-seconds stage=S[,stage=S...]]\n"
      "          [--min-ipc-ratio R] [--max-cache-miss-ratio R]\n"
      "          [--min-counter-cycles N]\n"
      "  show    --history FILE\n");
  return 2;
}

std::string NowUtcIso() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

Result<Args> ParseArgs(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing command");
  Args args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      return Status::InvalidArgument(std::string("expected --option, got ") +
                                     argv[i]);
    }
    args.options[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

// Loads history entries; a missing file is an empty history (first append
// and compare-without-baseline both hit this path).
Result<std::vector<obs::BenchRun>> LoadHistory(const std::string& path) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) {
    if (text.status().code() == StatusCode::kNotFound) {
      return std::vector<obs::BenchRun>{};
    }
    return text.status();
  }
  return obs::ParseHistoryJson(text.value());
}

int RunAppend(const Args& args) {
  const std::string timings_path = args.Get("timings", "");
  const std::string history_path = args.Get("history", "");
  if (timings_path.empty() || history_path.empty()) return Usage();

  Result<std::string> timings_text = ReadFileToString(timings_path);
  if (!timings_text.ok()) {
    std::fprintf(stderr, "%s\n", timings_text.status().ToString().c_str());
    return 1;
  }
  Result<obs::BenchRun> run =
      obs::BenchRunFromTimingsJson(timings_text.value(), NowUtcIso());
  if (!run.ok()) {
    std::fprintf(stderr, "%s: %s\n", timings_path.c_str(),
                 run.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<obs::BenchRun>> history = LoadHistory(history_path);
  if (!history.ok()) {
    std::fprintf(stderr, "%s: %s\n", history_path.c_str(),
                 history.status().ToString().c_str());
    return 1;
  }
  history.value().push_back(run.value());

  const std::string json = obs::HistoryToJson(history.value());
  Status valid = JsonValidate(json);
  if (!valid.ok()) {
    std::fprintf(stderr, "history serialization failed self-check: %s\n",
                 valid.ToString().c_str());
    return 1;
  }
  Status written = WriteFileAtomic(history_path, json);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("appended run %zu to %s (git %s, %zu stages)\n",
              history.value().size(), history_path.c_str(),
              run.value().git_sha.c_str(), run.value().stage_seconds.size());
  return 0;
}

int RunCompare(const Args& args) {
  const std::string history_path = args.Get("history", "");
  if (history_path.empty()) return Usage();
  Result<std::vector<obs::BenchRun>> history = LoadHistory(history_path);
  if (!history.ok()) {
    std::fprintf(stderr, "%s: %s\n", history_path.c_str(),
                 history.status().ToString().c_str());
    return 1;
  }
  const std::vector<obs::BenchRun>& runs = history.value();

  obs::CompareOptions options;
  options.max_time_ratio = std::stod(args.Get("max-time-ratio", "1.30"));
  options.max_rss_ratio = std::stod(args.Get("max-rss-ratio", "1.50"));
  options.min_seconds = std::stod(args.Get("min-seconds", "0.01"));
  options.min_ipc_ratio = std::stod(args.Get("min-ipc-ratio", "0"));
  options.max_cache_miss_ratio =
      std::stod(args.Get("max-cache-miss-ratio", "0"));
  if (!ParseUint64(args.Get("min-counter-cycles", "10000000"),
                   &options.min_counter_cycles)) {
    std::fprintf(stderr, "--min-counter-cycles: not a number\n");
    return 2;
  }
  const std::string stage_overrides = args.Get("stage-max-ratio", "");
  if (!stage_overrides.empty()) {
    for (const std::string& pair : Split(stage_overrides, ',')) {
      const std::vector<std::string> kv = Split(pair, '=');
      double ratio = 0.0;
      if (kv.size() != 2 || kv[0].empty() || !ParseDouble(kv[1], &ratio)) {
        std::fprintf(stderr,
                     "--stage-max-ratio: bad entry '%s' (want stage=R)\n",
                     pair.c_str());
        return 2;
      }
      options.stage_max_ratio[kv[0]] = ratio;
    }
  }
  const std::string stage_ceilings = args.Get("stage-max-seconds", "");
  if (!stage_ceilings.empty()) {
    for (const std::string& pair : Split(stage_ceilings, ',')) {
      const std::vector<std::string> kv = Split(pair, '=');
      double seconds = 0.0;
      if (kv.size() != 2 || kv[0].empty() || !ParseDouble(kv[1], &seconds) ||
          seconds <= 0.0) {
        std::fprintf(stderr,
                     "--stage-max-seconds: bad entry '%s' (want stage=S)\n",
                     pair.c_str());
        return 2;
      }
      options.stage_max_seconds[kv[0]] = seconds;
    }
  }

  if (runs.size() < 2) {
    // No baseline: ratio gates cannot run, but absolute ceilings judge the
    // latest run alone, so a fresh history still enforces them.
    int exit_code = 0;
    if (!runs.empty() && !options.stage_max_seconds.empty()) {
      for (const obs::CeilingDelta& delta :
           obs::EvaluateCeilings(options.stage_max_seconds, runs.back())) {
        std::printf("ceiling %s: latest %s vs max %s  %s\n",
                    delta.stage.c_str(),
                    delta.missing ? "missing"
                                  : FormatDouble(delta.latest_seconds,
                                                 4).c_str(),
                    FormatDouble(delta.ceiling_seconds, 4).c_str(),
                    delta.regressed ? "REGRESSED" : "ok");
        if (delta.regressed) exit_code = 1;
      }
    }
    std::printf("bench-compare: %zu run(s) in %s; no baseline yet (%s)\n",
                runs.size(), history_path.c_str(),
                exit_code == 0 ? "passing" : "ceiling REGRESSION");
    return exit_code;
  }

  const size_t latest_index = runs.size() - 1;
  size_t baseline_index = latest_index - 1;
  const std::string baseline_arg = args.Get("baseline", "");
  if (!baseline_arg.empty()) {
    baseline_index = static_cast<size_t>(std::stoul(baseline_arg));
    if (baseline_index >= latest_index) {
      std::fprintf(stderr, "--baseline %zu is not before the latest run %zu\n",
                   baseline_index, latest_index);
      return 2;
    }
  }

  obs::BenchRun latest = runs[latest_index];
  const double inject = std::stod(args.Get("inject-time-ratio", "1.0"));
  if (inject != 1.0) {
    for (auto& [stage, seconds] : latest.stage_seconds) seconds *= inject;
    std::printf("(self-test: latest stage times scaled by %.2f)\n", inject);
  }

  const obs::CompareReport report =
      obs::CompareBenchRuns(runs[baseline_index], latest, options);
  std::printf("comparing run %zu (%s) against baseline %zu (%s):\n",
              latest_index, latest.timestamp.c_str(), baseline_index,
              runs[baseline_index].timestamp.c_str());
  std::printf("%s", report.Render().c_str());
  return report.ok ? 0 : 1;
}

int RunShow(const Args& args) {
  const std::string history_path = args.Get("history", "");
  if (history_path.empty()) return Usage();
  Result<std::vector<obs::BenchRun>> history = LoadHistory(history_path);
  if (!history.ok()) {
    std::fprintf(stderr, "%s: %s\n", history_path.c_str(),
                 history.status().ToString().c_str());
    return 1;
  }
  TablePrinter table({"run", "timestamp", "git", "build", "sanitizer",
                      "threads", "stages", "peak RSS MB"});
  size_t index = 0;
  for (const obs::BenchRun& run : history.value()) {
    table.AddRow({std::to_string(index++), run.timestamp, run.git_sha,
                  run.build_type, run.sanitizer,
                  std::to_string(run.tg_threads),
                  std::to_string(run.stage_seconds.size()),
                  FormatDouble(static_cast<double>(run.peak_rss_bytes) /
                                   1048576.0,
                               1)});
  }
  table.Print();
  return 0;
}

int Run(int argc, char** argv) {
  Result<Args> parsed = ParseArgs(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return Usage();
  }
  const Args& args = parsed.value();
  if (args.command == "append") return RunAppend(args);
  if (args.command == "compare") return RunCompare(args);
  if (args.command == "show") return RunShow(args);
  return Usage();
}

}  // namespace
}  // namespace tg

int main(int argc, char** argv) { return tg::Run(argc, argv); }
