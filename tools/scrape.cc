// scrape: minimal client for the embedded telemetry plane (tg_cli
// --telemetry-port). Fetches one endpoint from 127.0.0.1 and optionally
// asserts on the exposition, so shell gates (tools/run_checks.sh) can poll a
// live sweep without curl or a Prometheus install.
//
// Usage:
//   scrape --port P [--path /metrics] [--timeout-ms 2000] [--retries N]
//          [--quiet] [--print-metric NAME] [--assert-histogram-activity]
//
//   --port P          required; the server's bound port
//   --path PATH       endpoint (default /metrics)
//   --retries N       retry the GET up to N times, 100 ms apart, before
//                     failing (a just-started server may not be bound yet)
//   --print-metric NAME   print only the value of exposition sample NAME
//                     (exact first-token match, e.g. tg_sweep_targets_done);
//                     exit 1 when absent
//   --assert-histogram-activity   exit 1 unless at least one histogram
//                     _count sample is nonzero
//   --quiet           suppress the body dump (asserts still run)
//
// Exit codes: 0 ok, 1 assertion/HTTP failure, 2 usage.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "util/http_server.h"

namespace tg {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: scrape --port P [--path /metrics] [--timeout-ms MS] "
               "[--retries N]\n"
               "              [--quiet] [--print-metric NAME] "
               "[--assert-histogram-activity]\n");
  return 2;
}

// One exposition line is "<name>[{labels}] <value>"; returns the name with
// the label set stripped, so bucket series compare equal to their family.
std::string SampleName(const std::string& line) {
  const size_t space = line.find(' ');
  std::string name = space == std::string::npos ? line : line.substr(0, space);
  const size_t brace = name.find('{');
  if (brace != std::string::npos) name = name.substr(0, brace);
  return name;
}

int Run(int argc, char** argv) {
  int port = 0;
  std::string path = "/metrics";
  int timeout_ms = 2000;
  int retries = 0;
  bool quiet = false;
  bool assert_histogram_activity = false;
  std::string print_metric;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* value = next();
      if (value == nullptr) return Usage();
      port = std::atoi(value);
    } else if (arg == "--path") {
      const char* value = next();
      if (value == nullptr) return Usage();
      path = value;
    } else if (arg == "--timeout-ms") {
      const char* value = next();
      if (value == nullptr) return Usage();
      timeout_ms = std::atoi(value);
    } else if (arg == "--retries") {
      const char* value = next();
      if (value == nullptr) return Usage();
      retries = std::atoi(value);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--assert-histogram-activity") {
      assert_histogram_activity = true;
    } else if (arg == "--print-metric") {
      const char* value = next();
      if (value == nullptr) return Usage();
      print_metric = value;
    } else {
      return Usage();
    }
  }
  if (port <= 0) return Usage();

  Result<HttpGetResult> fetched = Status::Internal("unreached");
  for (int attempt = 0;; ++attempt) {
    fetched = HttpGet(port, path, timeout_ms);
    if (fetched.ok() || attempt >= retries) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!fetched.ok()) {
    std::fprintf(stderr, "scrape: %s\n", fetched.status().ToString().c_str());
    return 1;
  }
  const HttpGetResult& response = fetched.value();
  if (response.status != 200) {
    std::fprintf(stderr, "scrape: HTTP %d from %s\n", response.status,
                 path.c_str());
    return 1;
  }

  if (!print_metric.empty()) {
    std::istringstream lines(response.body);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] == '#') continue;
      if (SampleName(line) == print_metric) {
        const size_t space = line.rfind(' ');
        std::printf("%s\n", line.substr(space + 1).c_str());
        return 0;
      }
    }
    std::fprintf(stderr, "scrape: metric %s not found\n",
                 print_metric.c_str());
    return 1;
  }

  if (!quiet) std::fwrite(response.body.data(), 1, response.body.size(),
                          stdout);

  if (assert_histogram_activity) {
    std::istringstream lines(response.body);
    std::string line;
    bool active = false;
    while (std::getline(lines, line) && !active) {
      if (line.empty() || line[0] == '#') continue;
      const std::string name = SampleName(line);
      if (name.size() < 6 ||
          name.compare(name.size() - 6, 6, "_count") != 0) {
        continue;
      }
      const size_t space = line.rfind(' ');
      active = space != std::string::npos &&
               std::strtoull(line.c_str() + space + 1, nullptr, 10) > 0;
    }
    if (!active) {
      std::fprintf(stderr,
                   "scrape: no histogram with a nonzero _count in %s\n",
                   path.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace tg

int main(int argc, char** argv) { return tg::Run(argc, argv); }
