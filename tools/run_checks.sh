#!/usr/bin/env bash
# Pre-PR gate: Release + ThreadSanitizer builds, both test suites (the TSan
# pass covers the concurrent allocation tracking in obs_memory_test), an
# UndefinedBehaviorSanitizer pass over the kernel layer, a kernel-backend
# dispatch gate (kernels_test under TG_ISA=scalar and under the widest
# host-supported backend, plus a forced-unavailable hard-error check), a
# kernels micro-bench smoke run, a bench-history append + regression compare
# (with an injected-regression self-test of the gate, pinned
# skipgram_sharded/random_forest_fit stage ratios, an absolute
# random_forest_fit wall-time ceiling, and hardware-counter ratio gates), a
# tree-engine gate (TG_TREE resolution, a bogus-value hard-error check, and
# a TG_TREE=hist rank smoke under ASan), a distributed-sweep chaos gate
# (three workers sharing a workdir with one kill -9'd mid-run: the
# survivors must reclaim the expired lease and sweep-merge must emit an
# artifact byte-identical to a serial sweep under TG_THREADS=1 and =4,
# plus an ASan pass of the claim/lease/merge protocol with injected
# claim.rename and merge.read faults), an
# end-to-end smoke check of the tg_cli observability path
# (--trace/--metrics/--mem/--rss-sample), including validity of the exported
# Chrome-trace JSON, and a profiling gate: `tg_cli rank --profile` must
# attribute >0 samples to named pipeline spans in a parsable
# collapsed-stack file, the profiler test suite must pass under ASan (the
# TSan ctest pass above covers the signal handler's race freedom), and a
# forced TG_FAULT=perf_open=always run must degrade to a labeled
# "perf counters unavailable" state with a clean exit.
#
# Usage: tools/run_checks.sh [--skip-tsan] [--skip-ubsan]
# TG_BENCH_SPEEDUPS=0 skips the multi-second speedup section AND the
# bench-history step that depends on its timings JSON.
# Build trees land in build-release/, build-tsan/ and build-ubsan/ at the
# repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
SKIP_TSAN=0
SKIP_UBSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-ubsan) SKIP_UBSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

section() { printf '\n=== %s ===\n' "$1"; }

section "Release build + tests"
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "$JOBS"
ctest --test-dir build-release --output-on-failure

if [ "$SKIP_TSAN" -eq 1 ]; then
  section "ThreadSanitizer build + tests (SKIPPED)"
else
  section "ThreadSanitizer build + tests"
  cmake -B build-tsan -S . -DTG_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure
fi

if [ "$SKIP_UBSAN" -eq 1 ]; then
  section "UBSan kernel-layer tests (SKIPPED)"
else
  section "UBSan kernel-layer tests"
  # Focused pass: the unrolled kernels and the sigmoid table are the code
  # most exposed to pointer/index arithmetic mistakes, so they get a
  # dedicated UB check even when the full-matrix sanitizer suite is too
  # slow for the pre-PR loop.
  cmake -B build-ubsan -S . -DTG_SANITIZE=undefined \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-ubsan -j "$JOBS" --target kernels_test
  ./build-ubsan/tests/kernels_test
fi

section "kernel backend dispatch gate"
# The kernel suite must pass with dispatch forced to the exact-order scalar
# backend AND under the widest backend this binary+CPU supports (what
# TG_ISA=auto resolves to). `tg_cli backend` prints both facts; forcing a
# backend that does not exist must be a hard error, never a silent
# fallback (see docs/performance.md).
cmake --build build-release -j "$JOBS" --target kernels_test tg_cli
./build-release/tools/tg_cli backend
BEST_BACKEND="$(./build-release/tools/tg_cli backend \
    | sed -n 's/^active: //p')"
TG_ISA=scalar ./build-release/tests/kernels_test \
    --gtest_brief=1
if [ "$BEST_BACKEND" != "scalar" ]; then
  TG_ISA="$BEST_BACKEND" ./build-release/tests/kernels_test \
      --gtest_brief=1
else
  echo "(no vector backend available on this host; scalar pass already ran)"
fi
if TG_ISA=definitely-not-a-backend ./build-release/tools/tg_cli backend \
    >/dev/null 2>&1; then
  echo "TG_ISA with a bogus backend must fail hard, not fall back" >&2
  exit 1
fi
echo "dispatch gate passed (best backend: $BEST_BACKEND)"

section "kernels micro-bench smoke"
# TG_BENCH_SPEEDUPS=0 skips the multi-second parallel-speedup section and
# the timings JSON; the kernel/sigmoid benches themselves take well under a
# second and catch gross perf or correctness breakage in the hot loops.
cmake --build build-release -j "$JOBS" --target bench_micro_components
TG_BENCH_SPEEDUPS=0 ./build-release/bench/bench_micro_components \
    --benchmark_filter='BM_(Kernel|Sigmoid)' \
    --benchmark_min_time=0.05

if [ "${TG_BENCH_SPEEDUPS:-1}" = "0" ]; then
  section "bench history append + compare (SKIPPED: TG_BENCH_SPEEDUPS=0)"
else
  section "bench history append + compare"
  # The speedup section of the micro bench writes
  # bench_csv/bench_timings.json (stage wall times + build_info + peak RSS);
  # '^$' filters out every google-benchmark case so only that section runs.
  # The appended history accumulates in bench_csv/BENCH_history.json and the
  # compare gates on run-over-run stage-time and peak-RSS regressions (see
  # docs/observability.md). First run on a fresh checkout has no baseline
  # and passes trivially.
  cmake --build build-release -j "$JOBS" --target bench_history
  # TG_PERF_COUNTERS=1 makes the run stamp hardware-counter provenance (and
  # per-stage counter totals when the host exposes a PMU) into the timings
  # JSON, which feeds the compare's counter-ratio gates below.
  TG_PERF_COUNTERS=1 \
      ./build-release/bench/bench_micro_components --benchmark_filter='^$'
  # The timings JSON must record which kernel backend produced the numbers;
  # a timing without its backend stamp is not reproducible evidence.
  grep -q '"numeric_backend"' bench_csv/bench_timings.json || {
    echo "bench_timings.json must record numeric_backend via build_info" >&2
    exit 1
  }
  # Likewise the counter provenance stamp: "ok" runs carry real per-stage
  # counts, "unavailable"/"disabled" runs say so instead of silently
  # emitting zeros.
  grep -q '"perf_counters"' bench_csv/bench_timings.json || {
    echo "bench_timings.json must stamp hardware-counter provenance" >&2
    exit 1
  }
  ./build-release/tools/bench_history append \
      --timings bench_csv/bench_timings.json \
      --history bench_csv/BENCH_history.json
  # Looser thresholds than the library defaults: sub-100ms stages on shared
  # hardware jitter 30-40% run to run, so the pre-PR gate only trips on
  # >=1.6x slowdowns of stages that take at least 50ms. skipgram_sharded is
  # pinned tighter than the generic threshold: it is the stage the SIMD
  # dispatch layer exists to accelerate, and a quiet drift back toward the
  # scalar baseline must trip the gate before a human would notice it.
  # The counter gates only engage when both runs carry counter totals
  # (PMU-less CI hosts skip them with a note): a stage losing >30% of its
  # baseline IPC or doubling its cache-miss rate is a regression even when
  # wall time hides it behind frequency scaling.
  # random_forest_fit@1 carries both a ratio pin (like skipgram_sharded, the
  # stage a dedicated optimization landed in -- the pre-sorted tree engine)
  # and an absolute 0.38s ceiling: the seed's per-node-sort forest took
  # ~0.75s here, so the ceiling keeps roughly half that speedup banked
  # permanently, baseline drift or not.
  ./build-release/tools/bench_history compare \
      --history bench_csv/BENCH_history.json \
      --max-time-ratio 1.60 --min-seconds 0.05 \
      --stage-max-ratio "skipgram_sharded@1=1.25,random_forest_fit@1=1.25" \
      --stage-max-seconds "random_forest_fit@1=0.38" \
      --min-ipc-ratio 0.70 --max-cache-miss-ratio 2.0
  # Gate self-test: a synthetic 2x stage-time regression must make the
  # compare exit non-zero, otherwise the gate is decorative.
  if ./build-release/tools/bench_history compare \
      --history bench_csv/BENCH_history.json \
      --max-time-ratio 1.60 --min-seconds 0.05 \
      --inject-time-ratio 2.0 >/dev/null 2>&1; then
    HISTORY_RUNS="$(grep -o '"timestamp"' bench_csv/BENCH_history.json \
        | wc -l)"
    if [ "$HISTORY_RUNS" -ge 2 ]; then
      echo "bench-compare gate failed to flag an injected 2x regression" >&2
      exit 1
    fi
    echo "(single run in history; injected-regression self-test deferred)"
  else
    echo "injected 2x regression correctly rejected"
  fi
fi

section "chaos gate: fault injection under ASan/UBSan"
# The chaos tests randomize fault schedules across the sweep's I/O,
# dispatch, and checkpoint paths; running them under
# AddressSanitizer+UBSan catches the use-after-free / double-close /
# leak bugs that error paths love to hide (see docs/robustness.md).
cmake -B build-asan -S . -DTG_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$JOBS" \
    --target fault_injection_test chaos_pipeline_test
./build-asan/tests/fault_injection_test
./build-asan/tests/chaos_pipeline_test
cmake --build build-ubsan -j "$JOBS" \
    --target fault_injection_test chaos_pipeline_test 2>/dev/null && {
  ./build-ubsan/tests/fault_injection_test
  ./build-ubsan/tests/chaos_pipeline_test
} || echo "(UBSan tree unavailable; ASan chaos pass already ran)"

section "chaos gate: tg_cli under injected I/O fault"
# An injected write fault must surface as a clean Status + non-zero exit --
# never an abort (exit 134) -- and must leave no half-written temp file.
FAULT_OUT="$(mktemp -d /tmp/tg_fault.XXXXXX)"
trap 'rm -rf "$FAULT_OUT"' EXIT
set +e
TG_FAULT="atomic_file.write=always" ./build-release/tools/tg_cli \
    export-graph --out "$FAULT_OUT/graph.tsv" --models 16 \
    2> "$FAULT_OUT/stderr.txt"
FAULT_CODE=$?
set -e
if [ "$FAULT_CODE" -eq 0 ] || [ "$FAULT_CODE" -ge 128 ]; then
  echo "expected clean non-zero exit under TG_FAULT, got $FAULT_CODE" >&2
  cat "$FAULT_OUT/stderr.txt" >&2
  exit 1
fi
grep -q "injected fault" "$FAULT_OUT/stderr.txt" || {
  echo "expected 'injected fault' in stderr" >&2; exit 1;
}
if ls "$FAULT_OUT"/*.tmp >/dev/null 2>&1; then
  echo "injected fault leaked a .tmp file" >&2; exit 1
fi
[ ! -e "$FAULT_OUT/graph.tsv" ] || {
  echo "failed export must not publish the output file" >&2; exit 1;
}
# Same command without the fault must succeed and publish.
./build-release/tools/tg_cli export-graph --out "$FAULT_OUT/graph.tsv" \
    --models 16 >/dev/null
[ -s "$FAULT_OUT/graph.tsv" ] || {
  echo "fault-free export should have produced the graph" >&2; exit 1;
}
echo "injected I/O fault handled cleanly (exit $FAULT_CODE)"

section "distributed sweep chaos gate: kill -9, lease reclaim, merge"
# Three workers share a workdir; one is kill -9'd mid-target. The survivors
# must steal its expired lease (--lease-sec 2), finish every target, exit 0,
# and sweep-merge must produce an artifact byte-identical to an
# uninterrupted serial checkpointed sweep -- under TG_THREADS=1 and =4
# alike (see docs/robustness.md). The heavy strategy keeps each target slow
# enough (~seconds) that the kill reliably lands mid-run.
DIST_DIR="$(mktemp -d /tmp/tg_dist.XXXXXX)"
trap 'rm -rf "$FAULT_OUT" "$DIST_DIR"' EXIT
DIST_FLAGS="--modality image --models 48 \
    --learner n2v --features all --predictor xgb"
# shellcheck disable=SC2086  # DIST_FLAGS is a deliberate word list
./build-release/tools/tg_cli sweep $DIST_FLAGS \
    --checkpoint "$DIST_DIR/serial.json" > /dev/null
for T in 1 4; do
  WD="$DIST_DIR/wd$T"
  WORKER_PIDS=()
  for W in 0 1 2; do
    # shellcheck disable=SC2086
    TG_THREADS="$T" ./build-release/tools/tg_cli sweep $DIST_FLAGS \
        --workdir "$WD" --worker-id "w$W" --lease-sec 2 \
        > "$DIST_DIR/w$W.t$T.log" 2>&1 &
    WORKER_PIDS[W]=$!
  done
  sleep 2.5
  if kill -9 "${WORKER_PIDS[1]}" 2>/dev/null; then
    echo "(TG_THREADS=$T: killed worker w1 mid-run)"
  else
    echo "(TG_THREADS=$T: w1 finished before the kill; reclaim not" \
        "exercised this round)"
  fi
  wait "${WORKER_PIDS[1]}" 2>/dev/null || true
  for W in 0 2; do
    wait "${WORKER_PIDS[W]}" || {
      echo "surviving worker w$W (TG_THREADS=$T) exited non-zero" >&2
      cat "$DIST_DIR/w$W.t$T.log" >&2
      exit 1
    }
  done
  # shellcheck disable=SC2086
  ./build-release/tools/tg_cli sweep-merge $DIST_FLAGS --workdir "$WD" \
      --out "$WD/merged.json"
  cmp "$DIST_DIR/serial.json" "$WD/merged.json" || {
    echo "merged artifact (TG_THREADS=$T) differs from the serial sweep" >&2
    exit 1
  }
  echo "TG_THREADS=$T: survivors reclaimed and merged bit-identical"
done

# The same protocol under ASan with a 20% injected claim-rename failure
# rate: claim losses must stay transient (workers retry and finish), the
# merge must survive a transient read fault, and the artifact must still be
# byte-identical to a serial sweep from the SAME ASan binary (cross-binary
# byte comparisons would conflate FP codegen differences with protocol
# bugs). Fast strategy: ASan makes the heavy one needlessly slow here.
cmake --build build-asan -j "$JOBS" --target tg_cli distributed_sweep_test
./build-asan/tests/distributed_sweep_test
ASAN_FLAGS="--modality image --models 48 \
    --learner none --features metadata --predictor lr"
# shellcheck disable=SC2086
./build-asan/tools/tg_cli sweep $ASAN_FLAGS \
    --checkpoint "$DIST_DIR/asan_serial.json" > /dev/null
ASAN_WD="$DIST_DIR/asan_wd"
ASAN_PIDS=()
for W in 0 1; do
  # shellcheck disable=SC2086
  TG_FAULT="claim.rename=prob:0.2:seed:1$W" \
      ./build-asan/tools/tg_cli sweep $ASAN_FLAGS \
      --workdir "$ASAN_WD" --worker-id "w$W" --lease-sec 2 \
      > "$DIST_DIR/asan_w$W.log" 2>&1 &
  ASAN_PIDS[W]=$!
done
for W in 0 1; do
  wait "${ASAN_PIDS[W]}" || {
    echo "ASan worker w$W under claim.rename=prob:0.2 exited non-zero" >&2
    cat "$DIST_DIR/asan_w$W.log" >&2
    exit 1
  }
done
# shellcheck disable=SC2086
TG_FAULT="merge.read=hit:2" ./build-asan/tools/tg_cli sweep-merge \
    $ASAN_FLAGS --workdir "$ASAN_WD" --out "$ASAN_WD/merged.json"
cmp "$DIST_DIR/asan_serial.json" "$ASAN_WD/merged.json" || {
  echo "ASan faulted-claim merge differs from the ASan serial sweep" >&2
  exit 1
}
echo "ASan claim-fault workers + faulted merge stayed bit-identical"

section "tree engine gate: TG_TREE dispatch + hist smoke under ASan"
# TG_TREE follows the TG_ISA discipline: `backend` reports the resolved
# engine, and forcing an engine that does not exist must be a hard error,
# never a silent fallback to exact.
./build-release/tools/tg_cli backend | grep -q "tree engine: exact" || {
  echo "expected the default tree engine to resolve to exact" >&2; exit 1;
}
TG_TREE=hist ./build-release/tools/tg_cli backend \
    | grep -q "tree engine: hist" || {
  echo "TG_TREE=hist must resolve to the hist engine" >&2; exit 1;
}
if TG_TREE=bogus ./build-release/tools/tg_cli backend >/dev/null 2>&1; then
  echo "TG_TREE with a bogus engine must fail hard, not fall back" >&2
  exit 1
fi
# Full rank pipeline on the histogram engine under ASan: the recycled
# histogram buffers and the in-place sibling subtraction are exactly the
# kind of raw-pointer lifetime code ASan exists for. The run must also
# produce a non-degenerate ranking (a real pearson, not the 0.000 of a
# constant prediction).
cmake --build build-asan -j "$JOBS" --target tg_cli
HIST_OUT="$(mktemp /tmp/tg_hist.XXXXXX.txt)"
trap 'rm -f "$HIST_OUT"; rm -rf "$FAULT_OUT" "$DIST_DIR"' EXIT
TG_TREE=hist ./build-asan/tools/tg_cli rank --modality image --target 0 \
    --predictor rf | tee "$HIST_OUT"
# Accept plain decimals, e-notation, and nan/-nan so a degenerate pearson is
# reported as degenerate instead of "missing".
HIST_PEARSON="$(sed -n \
    's/.*pearson \(-\{0,1\}\([0-9.][0-9.eE+-]*\|nan\)\),.*/\1/p' "$HIST_OUT")"
if [ -z "$HIST_PEARSON" ]; then
  echo "TG_TREE=hist rank printed no pearson line" >&2; exit 1
fi
case "$HIST_PEARSON" in
  0.000|-0.000|nan|-nan)
    echo "TG_TREE=hist rank produced a degenerate ranking" \
         "(pearson $HIST_PEARSON)" >&2
    exit 1
    ;;
esac
echo "hist engine smoke passed (pearson $HIST_PEARSON)"
# The exact engine's order-expansion slack (decision_tree.cc) is only
# exercised by bootstrap samples, so run the default-engine RF rank under
# ASan too -- the hist smoke above never touches that code path.
./build-asan/tools/tg_cli rank --modality image --target 0 \
    --predictor rf >/dev/null
echo "exact engine RF rank passed under ASan"

section "tg_cli trace/metrics smoke check"
TRACE_FILE="$(mktemp /tmp/tg_trace.XXXXXX.json)"
trap 'rm -f "$TRACE_FILE" "$HIST_OUT"; \
     rm -rf "$FAULT_OUT" "$DIST_DIR"' EXIT
# TG_THREADS=2 forces the pool path so the trace includes pool_drain spans
# (worker-side parent handoff) even on a single-core machine. --mem and
# --rss-sample exercise the allocation accounting and the background RSS
# sampler on the same run.
TG_THREADS=2 ./build-release/tools/tg_cli rank --modality image --target 0 \
    --trace "$TRACE_FILE" --metrics --mem --rss-sample 20

# The CLI already self-validates with the strict in-tree JSON checker;
# cross-check with an independent parser when one is available.
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$TRACE_FILE" >/dev/null
  echo "trace JSON parses ($(wc -c < "$TRACE_FILE") bytes)"
else
  echo "python3 not found; relying on tg_cli's built-in JSON validation"
fi
grep -q '"pool_drain"' "$TRACE_FILE" || {
  echo "expected pool_drain spans in trace" >&2; exit 1;
}
grep -q '"evaluate_target"' "$TRACE_FILE" || {
  echo "expected evaluate_target span in trace" >&2; exit 1;
}
grep -q '"alloc_bytes"' "$TRACE_FILE" || {
  echo "expected alloc_bytes span args in trace (--mem)" >&2; exit 1;
}
grep -q '"process_memory_mb"' "$TRACE_FILE" || {
  echo "expected process_memory_mb counter track in trace (--rss-sample)" \
      >&2; exit 1;
}

section "profiler + hardware-counter gate"
# The sampling profiler must attribute real samples to named pipeline spans
# and emit a parsable collapsed-stack file; counters must either produce a
# per-stage table or say why they cannot. 997 Hz (prime) keeps this short
# rank run well-sampled without phase-locking against periodic work.
PROF_DIR="$(mktemp -d /tmp/tg_prof.XXXXXX)"
trap 'rm -f "$TRACE_FILE" "$HIST_OUT"; \
     rm -rf "$FAULT_OUT" "$PROF_DIR" "$DIST_DIR"' EXIT
TG_THREADS=2 ./build-release/tools/tg_cli rank --modality image --target 0 \
    --profile=997 --profile-out "$PROF_DIR/profile.collapsed" \
    --perf-counters | tee "$PROF_DIR/stdout.txt"
SAMPLES="$(sed -n 's/^profiler: \([0-9][0-9]*\) samples.*/\1/p' \
    "$PROF_DIR/stdout.txt")"
if [ -z "$SAMPLES" ] || [ "$SAMPLES" -eq 0 ]; then
  echo "expected >0 profiler samples from rank --profile" >&2; exit 1
fi
[ -s "$PROF_DIR/profile.collapsed" ] || {
  echo "rank --profile produced no collapsed-stack file" >&2; exit 1;
}
# Collapsed-stack grammar: every line is "frame;frame;...;leaf N", N > 0.
awk 'NF < 2 || $NF !~ /^[0-9]+$/ || $NF == 0 { exit 1 }' \
    "$PROF_DIR/profile.collapsed" || {
  echo "collapsed-stack lines must be 'frames... positive-count'" >&2
  exit 1
}
# Stacks are rooted at the span chain, so the rank pipeline's root span
# must appear: samples attributed to named spans, not just raw PCs.
grep -q "evaluate_target" "$PROF_DIR/profile.collapsed" || {
  echo "expected evaluate_target-rooted stacks in collapsed output" >&2
  exit 1
}
# --perf-counters must resolve to a table or a labeled degradation, never
# silence: "ok" hosts print per-stage IPC, PMU-less hosts print the reason.
grep -Eq "per-stage hardware counters|perf counters unavailable" \
    "$PROF_DIR/stdout.txt" || {
  echo "expected a counter table or a labeled unavailable state" >&2
  exit 1
}
echo "profile smoke passed ($SAMPLES samples)"

# Forced perf_event_open failure: the run must finish (exit 0) and label
# the degradation with the injected reason -- on every host, PMU or not.
set +e
TG_FAULT="perf_open=always" ./build-release/tools/tg_cli rank \
    --modality image --target 0 --perf-counters \
    > "$PROF_DIR/fault_stdout.txt" 2>&1
PERF_FAULT_CODE=$?
set -e
if [ "$PERF_FAULT_CODE" -ne 0 ]; then
  echo "rank must survive TG_FAULT=perf_open=always, got exit" \
      "$PERF_FAULT_CODE" >&2
  cat "$PROF_DIR/fault_stdout.txt" >&2
  exit 1
fi
grep -q "perf counters unavailable: injected fault at perf_open" \
    "$PROF_DIR/fault_stdout.txt" || {
  echo "expected the injected perf_open fault to be the labeled reason" >&2
  exit 1
}
echo "injected perf_open fault degraded cleanly"

# The profiler suite under ASan catches buffer-lifetime mistakes in the
# signal path; the TSan ctest pass above already covers its race freedom.
cmake --build build-asan -j "$JOBS" --target obs_profiler_test
./build-asan/tests/obs_profiler_test

section "telemetry gate: live scrape of a running sweep"
# A sweep served on an ephemeral port must be scrapeable mid-run: the bound
# port is announced on stderr, at least one stage histogram must show a
# nonzero _count, and the sweep.targets_done gauge must advance between two
# scrapes. The heavy strategy (node2vec + all features + GBDT) keeps the
# sweep alive long enough to observe from outside.
cmake --build build-release -j "$JOBS" --target scrape tg_cli
TELEM_DIR="$(mktemp -d /tmp/tg_telem.XXXXXX)"
trap 'rm -f "$TRACE_FILE" "$HIST_OUT"; \
     rm -rf "$FAULT_OUT" "$PROF_DIR" "$TELEM_DIR" "$DIST_DIR"' EXIT
./build-release/tools/tg_cli sweep --modality image --models 48 \
    --learner n2v --features all --predictor xgb --telemetry-port 0 \
    > "$TELEM_DIR/stdout.txt" 2> "$TELEM_DIR/stderr.txt" &
SWEEP_PID=$!
TELEM_PORT=""
for _ in $(seq 1 100); do
  TELEM_PORT="$(sed -n \
      's/^telemetry: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$TELEM_DIR/stderr.txt")"
  [ -n "$TELEM_PORT" ] && break
  kill -0 "$SWEEP_PID" 2>/dev/null || break
  sleep 0.1
done
if [ -z "$TELEM_PORT" ]; then
  echo "sweep --telemetry-port 0 never announced its bound port" >&2
  cat "$TELEM_DIR/stderr.txt" >&2
  kill "$SWEEP_PID" 2>/dev/null || true
  exit 1
fi
DONE_FIRST="$(./build-release/tools/scrape --port "$TELEM_PORT" \
    --retries 50 --print-metric tg_sweep_targets_done)"
ADVANCED=0
HIST_ACTIVE=0
for _ in $(seq 1 120); do
  kill -0 "$SWEEP_PID" 2>/dev/null || break
  DONE_NOW="$(./build-release/tools/scrape --port "$TELEM_PORT" \
      --print-metric tg_sweep_targets_done 2>/dev/null || echo \
      "$DONE_FIRST")"
  if [ "${DONE_NOW%.*}" -gt "${DONE_FIRST%.*}" ] 2>/dev/null; then
    ADVANCED=1
    # Progress implies closed spans, so the stage histograms must be live
    # on the same still-running server.
    if ./build-release/tools/scrape --port "$TELEM_PORT" --quiet \
        --assert-histogram-activity; then
      HIST_ACTIVE=1
    fi
    break
  fi
  sleep 0.5
done
wait "$SWEEP_PID" || {
  echo "telemetry-served sweep exited non-zero" >&2
  cat "$TELEM_DIR/stderr.txt" >&2
  exit 1
}
if [ "$ADVANCED" -ne 1 ]; then
  echo "tg_sweep_targets_done never advanced across live scrapes" >&2
  exit 1
fi
if [ "$HIST_ACTIVE" -ne 1 ]; then
  echo "no stage histogram showed a nonzero _count mid-sweep" >&2
  exit 1
fi
echo "live scrape gate passed (port $TELEM_PORT," \
    "targets_done $DONE_FIRST -> ${DONE_NOW})"

# A poisoned bind must degrade, not kill the run: the sweep finishes with
# exit 0 and stderr labels the plane unavailable with the injected reason.
set +e
TG_FAULT="telemetry_bind=always" ./build-release/tools/tg_cli sweep \
    --modality image --models 24 --learner none --features metadata \
    --predictor lr --telemetry-port 0 \
    > /dev/null 2> "$TELEM_DIR/fault_stderr.txt"
TELEM_FAULT_CODE=$?
set -e
if [ "$TELEM_FAULT_CODE" -ne 0 ]; then
  echo "sweep must survive TG_FAULT=telemetry_bind=always, got exit" \
      "$TELEM_FAULT_CODE" >&2
  cat "$TELEM_DIR/fault_stderr.txt" >&2
  exit 1
fi
grep -q "telemetry unavailable" "$TELEM_DIR/fault_stderr.txt" || {
  echo "expected a labeled 'telemetry unavailable' degradation" >&2
  cat "$TELEM_DIR/fault_stderr.txt" >&2
  exit 1
}
echo "injected telemetry_bind fault degraded cleanly"

# The telemetry suite under ASan (socket/buffer lifetimes in the server and
# the event-log drainer); the TSan ctest pass above already ran it for race
# freedom (scrape-during-ParallelFor, cross-thread span stacks).
cmake --build build-asan -j "$JOBS" --target obs_telemetry_test
./build-asan/tests/obs_telemetry_test

section "all checks passed"
