// tg_cli: command-line front end for the TransferGraph library.
//
// Subcommands:
//   catalog                         list datasets and models of the zoo
//   rank --target D [options]       rank models for a target dataset
//   sweep [options]                 evaluate every target (resumable via
//                                   --checkpoint FILE; --no-degrade turns
//                                   off the metadata-only failure fallback).
//                                   With --workdir DIR --worker-id K the
//                                   process joins a distributed sweep: N
//                                   such workers claim targets from DIR via
//                                   atomic-rename leases, steal leases idle
//                                   longer than --lease-sec (default 30),
//                                   and survive each other's kill -9.
//                                   SIGTERM/SIGINT drain gracefully: the
//                                   in-flight target finishes, the lease is
//                                   released, and the process exits 0.
//   sweep-merge --workdir DIR       validate every shard of a distributed
//                                   sweep (duplicates, missing, torn,
//                                   stale-build) and write --out (default
//                                   DIR/merged.json) bit-identical to a
//                                   serial sweep's final checkpoint
//   graph-stats [--modality M]      Table II-style graph statistics
//   export-graph --out FILE         write the constructed graph as TSV
//   export-history --out FILE       write the training history as CSV
//   backend                         print active + available kernel backends
//                                   (honors TG_ISA; see docs/performance.md)
//   profile [rank options]          rank (default --target 0) under the
//                                   sampling profiler and print the report
//                                   (implies --profile; honors --profile-out)
//
// Common options:
//   --modality image|text           (default image)
//   --learner n2v|n2v+|sage|gat     graph learner      (default n2v)
//   --predictor lr|rf|xgb|auto      prediction model   (default xgb)
//   --features metadata|all|graph   feature set        (default all)
//   --top K                         list length for rank (default 10)
//   --models N                      zoo size knob (default 185/163)
//   --log-level debug|info|warning|error   stderr verbosity (default warning)
//
// Observability (see docs/observability.md):
//   --trace FILE    write a Chrome trace-event JSON of the run (open in
//                   chrome://tracing or https://ui.perfetto.dev)
//   --metrics       after `rank`, re-evaluate the target once more (warm
//                   caches), print the per-stage timing table (cold vs warm)
//                   and the full metrics dump
//   --mem           count heap allocations per span (adds alloc columns to
//                   the --metrics stage table and alloc_bytes/allocs args
//                   to trace events); also enabled by TG_MEM_TRACK=1
//   --rss-sample MS sample process RSS / peak RSS / major faults every MS
//                   milliseconds on a background thread; with --trace the
//                   samples appear as Perfetto counter tracks
//   --profile[=HZ]  sample the run with the SIGPROF profiler (default rate
//                   ~97 Hz, or TG_PROFILE_HZ); prints the top-N symbol
//                   table and per-span sample counts, and writes a
//                   collapsed-stack file (flamegraph.pl / speedscope)
//   --profile-out FILE   collapsed-stack path (default tg_profile.collapsed)
//   --perf-counters per-stage hardware counters (cycles, instructions,
//                   cache + branch misses) via perf_event_open; prints the
//                   per-stage IPC / cache-miss table after the run, or the
//                   reason counters were unavailable; also TG_PERF_COUNTERS=1
//   --telemetry-port P   serve /metrics (Prometheus text), /statusz (JSON)
//                   and /healthz on 127.0.0.1:P for the whole run; P=0 (or
//                   the bare flag) picks an ephemeral port, announced on
//                   stderr; also TG_TELEMETRY_PORT=P. A failed bind degrades
//                   to "telemetry unavailable", never a crash.
//   TG_EVENT_LOG=F  route every log line, slow span close, and sweep
//                   heartbeat event to F as structured JSON lines
//                   (TG_EVENT_LOG_RATE / TG_EVENT_LOG_SPAN_MS tune shedding)
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/distributed_sweep.h"
#include "core/graph_builder.h"
#include "core/pipeline.h"
#include "core/recommender.h"
#include "graph/graph_stats.h"
#include "graph/serialization.h"
#include "ml/tree_engine.h"
#include "numeric/kernel_backend.h"
#include "obs/event_log.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/profiler.h"
#include "obs/resource_sampler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/json_util.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "zoo/history_export.h"
#include "zoo/model_zoo.h"

namespace tg {
namespace {

struct CliArgs {
  std::string command;
  std::map<std::string, std::string> options;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }

  bool Flag(const std::string& key) const {
    auto it = options.find(key);
    return it != options.end() && it->second != "false" && it->second != "0";
  }
};

int Usage() {
  std::fprintf(stderr,
               "usage: tg_cli <catalog|rank|sweep|sweep-merge|graph-stats|"
               "export-graph|export-history|backend|profile> "
               "[--option value ...]\n"
               "  rank requires --target <dataset name | evaluation index>\n"
               "  sweep evaluates every target; --checkpoint FILE resumes an\n"
               "    interrupted sweep, --no-degrade disables the metadata-only\n"
               "    retry for failed targets (see docs/robustness.md)\n"
               "  sweep --workdir DIR --worker-id K [--lease-sec S] joins a\n"
               "    distributed sweep: workers claim targets via atomic-rename\n"
               "    leases and reclaim leases idle longer than S (default 30);\n"
               "    SIGTERM drains gracefully (finish in-flight, exit 0)\n"
               "  sweep-merge --workdir DIR [--out FILE] validates every shard\n"
               "    and writes the merged artifact (default DIR/merged.json),\n"
               "    bit-identical to a serial sweep checkpoint\n"
               "  export-* require --out <path>\n"
               "  observability: --trace FILE (Chrome trace JSON), "
               "--metrics (stage table + counters after rank),\n"
               "                 --mem (per-span allocation accounting), "
               "--rss-sample MS (background RSS sampler),\n"
               "                 --profile[=HZ] + --profile-out FILE "
               "(sampling profiler, collapsed-stack output),\n"
               "                 --perf-counters (per-stage IPC / cache-miss "
               "table via perf_event_open),\n"
               "                 --telemetry-port P (serve /metrics /statusz "
               "/healthz on 127.0.0.1:P; 0 = ephemeral),\n"
               "                 --log-level debug|info|warning|error\n"
               "  profile runs rank (default --target 0) under the profiler "
               "and prints the report\n");
  return 2;
}

// SIGTERM/SIGINT request a graceful sweep drain instead of killing the
// process mid-write: the handler is one async-signal-safe atomic store, the
// sweep loops poll it between targets, and the process exits 0 with its
// checkpoint/leases consistent. A second signal falls back to the default
// disposition (the handler resets itself), so a stuck worker can still be
// interrupted the hard way.
void HandleDrainSignal(int /*signum*/) { core::RequestSweepDrain(); }

void InstallDrainHandlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleDrainSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESETHAND;  // second signal kills for real
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

Result<CliArgs> ParseArgs(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing command");
  CliArgs args;
  args.command = argv[1];
  for (int i = 2; i < argc;) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      return Status::InvalidArgument(std::string("expected --option, got ") +
                                     argv[i]);
    }
    std::string key = argv[i] + 2;
    // --option=value form (e.g. --profile=397).
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      args.options[key.substr(0, eq)] = key.substr(eq + 1);
      i += 1;
      continue;
    }
    // Boolean flags (e.g. --metrics) take no value: the next token is either
    // absent or another --option.
    if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
      args.options[key] = "true";
      i += 1;
    } else {
      args.options[key] = argv[i + 1];
      i += 2;
    }
  }
  return args;
}

Result<zoo::Modality> ParseModality(const std::string& text) {
  if (text == "image") return zoo::Modality::kImage;
  if (text == "text") return zoo::Modality::kText;
  return Status::InvalidArgument("unknown modality: " + text);
}

Result<core::GraphLearner> ParseLearner(const std::string& text) {
  if (text == "n2v") return core::GraphLearner::kNode2Vec;
  if (text == "n2v+") return core::GraphLearner::kNode2VecPlus;
  if (text == "sage") return core::GraphLearner::kGraphSage;
  if (text == "gat") return core::GraphLearner::kGat;
  if (text == "none") return core::GraphLearner::kNone;
  return Status::InvalidArgument("unknown learner: " + text);
}

Result<core::PredictorKind> ParsePredictor(const std::string& text) {
  if (text == "lr") return core::PredictorKind::kLinearRegression;
  if (text == "rf") return core::PredictorKind::kRandomForest;
  if (text == "xgb") return core::PredictorKind::kXgboost;
  if (text == "auto") return core::PredictorKind::kAuto;
  return Status::InvalidArgument("unknown predictor: " + text);
}

Result<core::FeatureSet> ParseFeatures(const std::string& text) {
  if (text == "metadata") return core::FeatureSet::kMetadataOnly;
  if (text == "all") return core::FeatureSet::kAll;
  if (text == "graph") return core::FeatureSet::kGraphOnly;
  if (text == "all+logme") return core::FeatureSet::kAllWithLogMe;
  return Status::InvalidArgument("unknown feature set: " + text);
}

Result<LogLevel> ParseLogLevel(const std::string& text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warning") return LogLevel::kWarning;
  if (text == "error") return LogLevel::kError;
  return Status::InvalidArgument("unknown log level: " + text);
}

zoo::ModelZooConfig ZooConfigFrom(const CliArgs& args) {
  zoo::ModelZooConfig config;
  const std::string models = args.Get("models", "");
  if (!models.empty()) {
    config.catalog.num_image_models = std::stoi(models);
    config.catalog.num_text_models = std::stoi(models);
  }
  return config;
}

int RunCatalog(const CliArgs& args) {
  zoo::ModelZoo zoo(ZooConfigFrom(args));
  TablePrinter datasets({"dataset", "modality", "samples", "classes",
                         "role"});
  for (const zoo::DatasetInfo& d : zoo.datasets()) {
    datasets.AddRow({d.name, zoo::ModalityName(d.modality),
                     std::to_string(d.num_samples),
                     std::to_string(d.num_classes),
                     d.is_evaluation_target ? "evaluation target"
                     : d.is_public          ? "public"
                                            : "source"});
  }
  datasets.Print();
  std::printf("\n%zu models (%zu image / %zu text)\n", zoo.num_models(),
              zoo.ModelsOfModality(zoo::Modality::kImage).size(),
              zoo.ModelsOfModality(zoo::Modality::kText).size());
  return 0;
}

// Prints the per-stage wall-clock table from the stage histograms: the cold
// column is the first evaluation, the warm column the cached re-evaluation
// (the delta between the two registry snapshots). This is the CLI view of
// the paper's Fig. 5 stage costs.
void PrintStageTable(const obs::MetricsSnapshot& cold,
                     const obs::MetricsSnapshot& warm) {
  constexpr const char* kPrefix = "stage.";
  constexpr const char* kSuffix = ".seconds";
  const bool mem = obs::MemoryTrackingEnabled();
  std::vector<std::string> header = {"stage", "cold calls", "cold s",
                                     "warm calls", "warm s"};
  if (mem) {
    header.push_back("cold alloc MB");
    header.push_back("warm alloc MB");
  }
  TablePrinter table(header);
  for (const auto& [name, total] : warm.histograms) {
    if (!StartsWith(name, kPrefix) || !EndsWith(name, kSuffix)) continue;
    const size_t body = name.size() - std::strlen(kPrefix) -
                        std::strlen(kSuffix);
    const std::string stage = name.substr(std::strlen(kPrefix), body);
    obs::HistogramStats first;  // zero when the stage only ran warm
    auto it = cold.histograms.find(name);
    if (it != cold.histograms.end()) first = it->second;
    std::vector<std::string> row = {stage, std::to_string(first.count),
                                    FormatDouble(first.sum, 4),
                                    std::to_string(total.count - first.count),
                                    FormatDouble(total.sum - first.sum, 4)};
    if (mem) {
      // The alloc histograms share the stage name with a different suffix;
      // the same snapshot-delta logic yields cold vs warm bytes.
      const std::string alloc_name = std::string(kPrefix) + stage +
                                     ".alloc_bytes";
      obs::HistogramStats alloc_cold;
      obs::HistogramStats alloc_total;
      if (auto ac = cold.histograms.find(alloc_name);
          ac != cold.histograms.end()) {
        alloc_cold = ac->second;
      }
      if (auto aw = warm.histograms.find(alloc_name);
          aw != warm.histograms.end()) {
        alloc_total = aw->second;
      }
      row.push_back(FormatDouble(alloc_cold.sum / 1048576.0, 1));
      row.push_back(FormatDouble((alloc_total.sum - alloc_cold.sum) /
                                     1048576.0,
                                 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

int RunRank(const CliArgs& args) {
  const std::string target_name = args.Get("target", "");
  if (target_name.empty() || target_name == "true") return Usage();

  Result<zoo::Modality> modality = ParseModality(args.Get("modality",
                                                          "image"));
  if (!modality.ok()) return Usage();

  zoo::ModelZoo zoo(ZooConfigFrom(args));
  size_t target = 0;
  bool found = false;
  const bool numeric = !target_name.empty() &&
                       std::isdigit(static_cast<unsigned char>(
                           target_name[0]));
  if (numeric) {
    // Numeric targets index the modality's evaluation-target roster (the
    // paper's Table III rows): `--modality image --target 0` = caltech101.
    const std::vector<size_t> eval_targets =
        zoo.EvaluationTargets(modality.value());
    const size_t index = static_cast<size_t>(std::stoul(target_name));
    if (index < eval_targets.size()) {
      target = eval_targets[index];
      found = true;
    }
  } else {
    for (size_t d = 0; d < zoo.num_datasets(); ++d) {
      if (zoo.datasets()[d].name == target_name &&
          zoo.datasets()[d].is_public) {
        target = d;
        found = true;
      }
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown %s target: %s\n",
                 numeric ? "evaluation-index" : "public dataset",
                 target_name.c_str());
    return 1;
  }

  core::PipelineConfig config;
  Result<core::GraphLearner> learner = ParseLearner(args.Get("learner",
                                                             "n2v"));
  Result<core::PredictorKind> predictor =
      ParsePredictor(args.Get("predictor", "xgb"));
  Result<core::FeatureSet> features = ParseFeatures(args.Get("features",
                                                             "all"));
  if (!learner.ok() || !predictor.ok() || !features.ok()) return Usage();
  config.strategy.learner = learner.value();
  config.strategy.predictor = predictor.value();
  config.strategy.features = features.value();

  core::Pipeline pipeline(&zoo, zoo.datasets()[target].modality);
  core::TargetEvaluation evaluation =
      pipeline.EvaluateTarget(config, target);
  std::printf("strategy %s on %s: pearson %.3f, top-5 accuracy %.3f\n\n",
              config.strategy.DisplayName().c_str(),
              zoo.datasets()[target].name.c_str(), evaluation.pearson,
              evaluation.TopKMeanAccuracy(5));

  const int top = std::stoi(args.Get("top", "10"));
  TablePrinter table({"rank", "model", "predicted", "actual"});
  int rank = 1;
  for (const core::Recommendation& rec :
       core::TopModels(evaluation, zoo, static_cast<size_t>(top))) {
    table.AddRow({std::to_string(rank++), rec.model_name,
                  FormatDouble(rec.predicted_score, 3),
                  FormatDouble(zoo.FineTuneAccuracy(rec.model_index, target),
                               3)});
  }
  table.Print();

  if (args.Flag("metrics")) {
    // Second evaluation of the same target: the embedding and zoo score
    // caches are warm now, so the stage table contrasts cold vs warm costs
    // and the hit counters below prove the caches actually serve.
    const obs::MetricsSnapshot cold =
        obs::MetricsRegistry::Instance().Snapshot();
    const core::TargetEvaluation warm_eval =
        pipeline.EvaluateTarget(config, target);
    // The determinism contract: telemetry must never change results.
    TG_CHECK(warm_eval.predicted == evaluation.predicted);
    const obs::MetricsSnapshot warm =
        obs::MetricsRegistry::Instance().Snapshot();
    std::printf("\nper-stage timings (cold = first evaluation, warm = "
                "cached re-evaluation):\n");
    PrintStageTable(cold, warm);
    std::printf("\nmetrics:\n%s",
                obs::MetricsRegistry::Instance().RenderTable().c_str());
  }
  return 0;
}

// Strategy flags shared by `sweep`, the distributed worker branch, and
// `sweep-merge` -- the merger must resolve the exact same PipelineConfig
// (and hence SweepFingerprint) as the workers whose shards it validates.
Result<core::PipelineConfig> SweepConfigFrom(const CliArgs& args) {
  Result<core::GraphLearner> learner = ParseLearner(args.Get("learner",
                                                             "n2v"));
  Result<core::PredictorKind> predictor =
      ParsePredictor(args.Get("predictor", "xgb"));
  Result<core::FeatureSet> features = ParseFeatures(args.Get("features",
                                                             "all"));
  if (!learner.ok()) return learner.status();
  if (!predictor.ok()) return predictor.status();
  if (!features.ok()) return features.status();
  core::PipelineConfig config;
  config.strategy.learner = learner.value();
  config.strategy.predictor = predictor.value();
  config.strategy.features = features.value();
  return config;
}

// Distributed worker: claim/steal/evaluate/publish against a shared
// --workdir until the whole sweep is resolved or a drain is requested.
// Exercised by the distributed chaos gate in tools/run_checks.sh.
int RunSweepWorkerCli(const CliArgs& args, const core::PipelineConfig& config,
                      zoo::Modality modality) {
  core::DistributedSweepOptions options;
  options.workdir = args.Get("workdir", "");
  options.worker_id = args.Get("worker-id", "");
  options.lease_sec = std::stod(args.Get("lease-sec", "30"));
  options.degrade_on_failure = !args.Flag("no-degrade");
  if (options.worker_id.empty() || options.worker_id == "true") {
    std::fprintf(stderr, "sweep --workdir requires --worker-id\n");
    return Usage();
  }

  zoo::ModelZoo zoo(ZooConfigFrom(args));
  core::Pipeline pipeline(&zoo, modality);
  Result<core::WorkerReport> ran =
      core::RunSweepWorker(&pipeline, config, options);
  if (!ran.ok()) {
    std::fprintf(stderr, "%s\n", ran.status().ToString().c_str());
    return 1;
  }
  const core::WorkerReport& report = ran.value();
  std::printf("worker %s: sweep %s, %zu/%zu targets evaluated here, "
              "%zu claims, %zu steals, %zu lease expiries, %zu retried, "
              "%zu degraded, %zu failed, %zu tmp reclaimed%s\n",
              options.worker_id.c_str(),
              report.complete ? "complete" : "incomplete", report.evaluated,
              report.targets_total, report.claims, report.steals,
              report.lease_expiries, report.retried, report.degraded,
              report.failed, report.tmp_reclaimed,
              report.drained ? " (drained)" : "");
  for (const std::string& error : report.errors) {
    std::fprintf(stderr, "worker %s: %s\n", options.worker_id.c_str(),
                 error.c_str());
  }
  // A drain (SIGTERM/SIGINT) is a clean, orchestrated exit: the in-flight
  // target finished, the lease pool is consistent, and a restarted worker
  // resumes exactly where this one stopped.
  if (report.drained) return 0;
  if (!report.complete || report.failed > 0) return 1;
  return 0;
}

int RunSweepMerge(const CliArgs& args) {
  Result<zoo::Modality> modality = ParseModality(args.Get("modality",
                                                          "image"));
  if (!modality.ok()) return Usage();
  Result<core::PipelineConfig> config = SweepConfigFrom(args);
  if (!config.ok()) return Usage();
  const std::string workdir = args.Get("workdir", "");
  if (workdir.empty() || workdir == "true") {
    std::fprintf(stderr, "sweep-merge requires --workdir\n");
    return Usage();
  }
  std::string out = args.Get("out", "");
  if (out.empty() || out == "true") out = workdir + "/merged.json";

  zoo::ModelZoo zoo(ZooConfigFrom(args));
  core::Pipeline pipeline(&zoo, modality.value());
  Result<core::MergeReport> merged =
      core::MergeSweepShards(&pipeline, config.value(), workdir, out);
  if (!merged.ok()) {
    std::fprintf(stderr, "%s\n", merged.status().ToString().c_str());
    return 1;
  }
  const core::MergeReport& report = merged.value();
  if (!report.ok()) {
    std::fprintf(stderr, "sweep-merge: %zu/%zu shards unusable:\n",
                 report.problems.size(), report.targets_total);
    for (const std::string& problem : report.problems) {
      std::fprintf(stderr, "  %s\n", problem.c_str());
    }
    return 1;
  }
  std::printf("merged %zu shards -> %s\n", report.merged,
              report.artifact_path.c_str());
  return 0;
}

// Leave-one-out sweep over every evaluation target of the modality, with
// graceful degradation and optional --checkpoint resume. Exercised by the
// chaos gate in tools/run_checks.sh; see docs/robustness.md.
int RunSweep(const CliArgs& args) {
  Result<zoo::Modality> modality = ParseModality(args.Get("modality",
                                                          "image"));
  if (!modality.ok()) return Usage();
  Result<core::PipelineConfig> parsed_config = SweepConfigFrom(args);
  if (!parsed_config.ok()) return Usage();
  const core::PipelineConfig& config = parsed_config.value();

  const std::string workdir = args.Get("workdir", "");
  if (!workdir.empty() && workdir != "true") {
    return RunSweepWorkerCli(args, config, modality.value());
  }

  core::SweepOptions options;
  options.checkpoint_path = args.Get("checkpoint", "");
  if (options.checkpoint_path == "true") options.checkpoint_path.clear();
  options.degrade_on_failure = !args.Flag("no-degrade");

  zoo::ModelZoo zoo(ZooConfigFrom(args));
  core::Pipeline pipeline(&zoo, modality.value());
  const core::SweepResult result =
      pipeline.EvaluateAllTargetsResumable(config, options);

  TablePrinter table({"target", "pearson", "spearman", "top-5 acc", "note"});
  double pearson_sum = 0.0;
  size_t scored = 0;
  for (const core::TargetEvaluation& eval : result.evaluations) {
    if (eval.failed) {
      table.AddRow({eval.target_name, "-", "-", "-", "FAILED: " + eval.error});
      continue;
    }
    pearson_sum += eval.pearson;
    ++scored;
    table.AddRow({eval.target_name, FormatDouble(eval.pearson, 3),
                  FormatDouble(eval.spearman, 3),
                  FormatDouble(eval.TopKMeanAccuracy(5), 3),
                  eval.degraded ? "degraded" : ""});
  }
  table.Print();
  std::printf("\n%zu/%zu targets scored (mean pearson %.3f); "
              "%zu resumed, %zu retried, %zu degraded, %zu failed\n",
              scored, result.evaluations.size(),
              scored > 0 ? pearson_sum / static_cast<double>(scored) : 0.0,
              result.resumed, result.retried, result.degraded, result.failed);
  if (result.drained) {
    // SIGTERM/SIGINT drain: in-flight targets finished and were
    // checkpointed; the rest are left for a resumed run. Exit 0 so
    // orchestrators can tell a graceful drain from a failure.
    std::printf("sweep drained; resume with the same --checkpoint to "
                "finish\n");
    return 0;
  }
  if (!result.complete) {
    for (const std::string& error : result.errors) {
      std::fprintf(stderr, "target failed: %s\n", error.c_str());
    }
    return 1;
  }
  return 0;
}

int RunGraphStats(const CliArgs& args) {
  zoo::ModelZoo zoo(ZooConfigFrom(args));
  Result<zoo::Modality> modality = ParseModality(args.Get("modality",
                                                          "image"));
  if (!modality.ok()) return Usage();
  core::BuiltGraph built = core::BuildModelZooGraph(
      &zoo, modality.value(), core::GraphBuildOptions{});
  std::printf("%s\n", ComputeGraphStats(built.graph).ToString().c_str());
  return 0;
}

int RunExportGraph(const CliArgs& args) {
  const std::string out = args.Get("out", "");
  if (out.empty()) return Usage();
  zoo::ModelZoo zoo(ZooConfigFrom(args));
  Result<zoo::Modality> modality = ParseModality(args.Get("modality",
                                                          "image"));
  if (!modality.ok()) return Usage();
  core::BuiltGraph built = core::BuildModelZooGraph(
      &zoo, modality.value(), core::GraphBuildOptions{});
  Status status = WriteGraphToFile(built.graph, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu nodes, %zu edges)\n", out.c_str(),
              built.graph.num_nodes(), built.graph.num_undirected_edges());
  return 0;
}

int RunExportHistory(const CliArgs& args) {
  const std::string out = args.Get("out", "");
  if (out.empty()) return Usage();
  zoo::ModelZoo zoo(ZooConfigFrom(args));
  Result<zoo::Modality> modality = ParseModality(args.Get("modality",
                                                          "image"));
  if (!modality.ok()) return Usage();
  zoo::HistoryExportOptions options;
  options.include_logme = args.Get("logme", "true") != "false";
  Status status =
      zoo::ExportTrainingHistoryCsv(&zoo, modality.value(), out, options);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

// Prints the resolved kernel backend and everything this binary+CPU could
// run, one fact per line so shell gates can grep it. Resolution happens on
// the ActiveBackendName() call, so TG_ISA errors (forcing an unavailable
// backend) surface here exactly as they would in a real run; likewise the
// DefaultTreeEngine() call makes a bad TG_TREE fail here, not mid-pipeline.
int RunBackend(const CliArgs& args) {
  (void)args;
  std::printf("active: %s\n", kernels::ActiveBackendName());
  std::string joined;
  for (const std::string& name : kernels::AvailableBackendNames()) {
    if (!joined.empty()) joined += " ";
    joined += name;
  }
  std::printf("available: %s\n", joined.c_str());
  std::printf("tree engine: %s (available: exact hist)\n",
              ml::TreeEngineName(ml::DefaultTreeEngine()));
  return 0;
}

int Dispatch(const CliArgs& args) {
  if (args.command == "catalog") return RunCatalog(args);
  if (args.command == "backend") return RunBackend(args);
  if (args.command == "rank") return RunRank(args);
  if (args.command == "profile") {
    // Profile report subcommand: rank under the profiler (Run() started it
    // because of the command name) with a default target.
    CliArgs ranked = args;
    if (ranked.Get("target", "").empty()) ranked.options["target"] = "0";
    return RunRank(ranked);
  }
  if (args.command == "sweep") return RunSweep(args);
  if (args.command == "sweep-merge") return RunSweepMerge(args);
  if (args.command == "graph-stats") return RunGraphStats(args);
  if (args.command == "export-graph") return RunExportGraph(args);
  if (args.command == "export-history") return RunExportHistory(args);
  return Usage();
}

int Run(int argc, char** argv) {
  Result<CliArgs> parsed = ParseArgs(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return Usage();
  }
  const CliArgs& args = parsed.value();

  Result<LogLevel> level = ParseLogLevel(args.Get("log-level", "warning"));
  if (!level.ok()) return Usage();
  SetLogLevel(level.value());

  const std::string trace_path = args.Get("trace", "");
  if (!trace_path.empty()) obs::SetTraceEnabled(true);
  if (args.Flag("metrics")) obs::SetMetricsEnabled(true);
  if (args.Flag("mem")) obs::SetMemoryTrackingEnabled(true);
  if (args.Flag("perf-counters")) obs::SetPerfCountersEnabled(true);
  obs::SetCurrentThreadName("main");

  // Graceful shutdown for long sweeps (serial or distributed): SIGTERM and
  // SIGINT drain instead of killing mid-write.
  if (args.command == "sweep") InstallDrainHandlers();

  // Structured event log (TG_EVENT_LOG) and telemetry plane
  // (--telemetry-port / TG_TELEMETRY_PORT). Both degrade to a stderr
  // warning, never a failed run.
  obs::MaybeStartEventLogFromEnv();
  bool telemetry_started = false;
  const std::string telemetry_port = args.Get("telemetry-port", "");
  if (!telemetry_port.empty()) {
    // Bare --telemetry-port means "any port": 0 binds ephemeral and the
    // announcement below carries the resolved port.
    const int port = telemetry_port == "true" ? 0 : std::stoi(telemetry_port);
    Status started = obs::StartTelemetry(port);
    if (started.ok()) {
      telemetry_started = true;
      std::fprintf(stderr, "telemetry: listening on 127.0.0.1:%d\n",
                   obs::TelemetryPort());
    } else {
      std::fprintf(stderr, "telemetry unavailable: %s\n",
                   started.ToString().c_str());
    }
  } else {
    telemetry_started = obs::MaybeStartTelemetryFromEnv();
  }

  // --profile[=HZ], or the `profile` subcommand (which implies it).
  const std::string profile_arg = args.Get("profile", "");
  const bool profiling = !profile_arg.empty() || args.command == "profile";
  if (profiling) {
    int hz = 0;  // 0 = TG_PROFILE_HZ or the 97 Hz default
    if (!profile_arg.empty() && profile_arg != "true") {
      hz = std::stoi(profile_arg);
    }
    Status started = obs::StartProfiler(hz);
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
  }

  const std::string rss_interval = args.Get("rss-sample", "");
  if (!rss_interval.empty() && rss_interval != "true") {
    obs::ResourceSamplerOptions sampler_options;
    sampler_options.interval_ms = std::stoi(rss_interval);
    obs::ResourceSampler::Instance().Start(sampler_options);
  }

  const int code = Dispatch(args);

  if (profiling) {
    (void)obs::StopProfiler();  // drains every thread's sample buffer
    const uint64_t samples = obs::ProfilerSampleCount();
    const uint64_t dropped = obs::ProfilerDroppedSampleCount();
    const std::string collapsed_path =
        args.Get("profile-out", "tg_profile.collapsed");
    Status written = obs::WriteCollapsedStacks(collapsed_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return code != 0 ? code : 1;
    }
    std::printf("\nprofiler: %llu samples at %d Hz (%llu dropped), "
                "collapsed stacks in %s\n",
                static_cast<unsigned long long>(samples), obs::ProfilerHz(),
                static_cast<unsigned long long>(dropped),
                collapsed_path.c_str());
    const std::string report = obs::ProfileReportTable(20);
    if (!report.empty()) {
      std::printf("\nhottest symbols (self = leaf frame, total = anywhere "
                  "in stack):\n%s",
                  report.c_str());
    }
    const std::map<std::string, uint64_t> span_samples =
        obs::SpanProfileSampleCounts();
    if (!span_samples.empty()) {
      TablePrinter spans({"span", "samples"});
      for (const auto& [span, count] : span_samples) {
        spans.AddRow({span, std::to_string(count)});
      }
      std::printf("\nsamples by innermost open span:\n%s",
                  spans.Render().c_str());
    }
  }

  if (obs::PerfCountersEnabled()) {
    if (obs::PerfCountersAvailable()) {
      const std::string counter_table = obs::StagePerfTable();
      if (!counter_table.empty()) {
        std::printf("\nper-stage hardware counters:\n%s",
                    counter_table.c_str());
      }
    } else {
      std::printf("\nperf counters unavailable: %s\n",
                  obs::PerfCountersUnavailableReason().c_str());
    }
  }

  if (obs::ResourceSampler::Instance().running()) {
    obs::ResourceSampler::Instance().Stop();
    const std::vector<obs::ResourceSample> samples =
        obs::ResourceSampler::Instance().Samples();
    if (!samples.empty()) {
      const obs::ResourceUsage& last = samples.back().usage;
      std::printf("\nresource sampler: %zu samples, final RSS %.1f MB, "
                  "peak RSS %.1f MB, major faults %llu\n",
                  samples.size(),
                  static_cast<double>(last.rss_bytes) / 1048576.0,
                  static_cast<double>(last.peak_rss_bytes) / 1048576.0,
                  static_cast<unsigned long long>(last.major_faults));
    }
  }

  if (!trace_path.empty()) {
    Status written = obs::WriteChromeTrace(trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return code != 0 ? code : 1;
    }
    // Self-check: the exporter hand-writes JSON, so lint what landed on
    // disk before telling anyone to load it into Perfetto.
    Status valid = JsonValidate(obs::ChromeTraceJson());
    if (!valid.ok()) {
      std::fprintf(stderr, "trace self-check failed: %s\n",
                   valid.ToString().c_str());
      return code != 0 ? code : 1;
    }
    std::printf("wrote trace %s (open in chrome://tracing or "
                "https://ui.perfetto.dev)\n",
                trace_path.c_str());
  }

  if (telemetry_started) obs::StopTelemetry();
  obs::StopEventLog();  // idempotent; flushes the tail of the JSON log
  return code;
}

}  // namespace
}  // namespace tg

int main(int argc, char** argv) { return tg::Run(argc, argv); }
