file(REMOVE_RECURSE
  "CMakeFiles/ml_edge_cases_test.dir/ml_edge_cases_test.cc.o"
  "CMakeFiles/ml_edge_cases_test.dir/ml_edge_cases_test.cc.o.d"
  "ml_edge_cases_test"
  "ml_edge_cases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
