# Empty dependencies file for zoo_history_export_test.
# This may be replaced when dependencies are built.
