file(REMOVE_RECURSE
  "CMakeFiles/zoo_history_export_test.dir/zoo_history_export_test.cc.o"
  "CMakeFiles/zoo_history_export_test.dir/zoo_history_export_test.cc.o.d"
  "zoo_history_export_test"
  "zoo_history_export_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_history_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
