# Empty compiler generated dependencies file for ml_model_selection_test.
# This may be replaced when dependencies are built.
