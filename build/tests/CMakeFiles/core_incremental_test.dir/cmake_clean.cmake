file(REMOVE_RECURSE
  "CMakeFiles/core_incremental_test.dir/core_incremental_test.cc.o"
  "CMakeFiles/core_incremental_test.dir/core_incremental_test.cc.o.d"
  "core_incremental_test"
  "core_incremental_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
