file(REMOVE_RECURSE
  "CMakeFiles/transferability_test.dir/transferability_test.cc.o"
  "CMakeFiles/transferability_test.dir/transferability_test.cc.o.d"
  "transferability_test"
  "transferability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transferability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
