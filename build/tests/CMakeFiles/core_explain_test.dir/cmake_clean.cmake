file(REMOVE_RECURSE
  "CMakeFiles/core_explain_test.dir/core_explain_test.cc.o"
  "CMakeFiles/core_explain_test.dir/core_explain_test.cc.o.d"
  "core_explain_test"
  "core_explain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
