# Empty compiler generated dependencies file for zoo_catalog_test.
# This may be replaced when dependencies are built.
