file(REMOVE_RECURSE
  "CMakeFiles/zoo_catalog_test.dir/zoo_catalog_test.cc.o"
  "CMakeFiles/zoo_catalog_test.dir/zoo_catalog_test.cc.o.d"
  "zoo_catalog_test"
  "zoo_catalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
