file(REMOVE_RECURSE
  "CMakeFiles/zoo_property_sweeps_test.dir/zoo_property_sweeps_test.cc.o"
  "CMakeFiles/zoo_property_sweeps_test.dir/zoo_property_sweeps_test.cc.o.d"
  "zoo_property_sweeps_test"
  "zoo_property_sweeps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_property_sweeps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
