file(REMOVE_RECURSE
  "CMakeFiles/ml_gbdt_test.dir/ml_gbdt_test.cc.o"
  "CMakeFiles/ml_gbdt_test.dir/ml_gbdt_test.cc.o.d"
  "ml_gbdt_test"
  "ml_gbdt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_gbdt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
