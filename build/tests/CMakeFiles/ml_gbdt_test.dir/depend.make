# Empty dependencies file for ml_gbdt_test.
# This may be replaced when dependencies are built.
