file(REMOVE_RECURSE
  "CMakeFiles/core_budget_search_test.dir/core_budget_search_test.cc.o"
  "CMakeFiles/core_budget_search_test.dir/core_budget_search_test.cc.o.d"
  "core_budget_search_test"
  "core_budget_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_budget_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
