# Empty compiler generated dependencies file for core_budget_search_test.
# This may be replaced when dependencies are built.
