# Empty dependencies file for skipgram_test.
# This may be replaced when dependencies are built.
