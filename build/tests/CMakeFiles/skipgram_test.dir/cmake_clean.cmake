file(REMOVE_RECURSE
  "CMakeFiles/skipgram_test.dir/skipgram_test.cc.o"
  "CMakeFiles/skipgram_test.dir/skipgram_test.cc.o.d"
  "skipgram_test"
  "skipgram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipgram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
