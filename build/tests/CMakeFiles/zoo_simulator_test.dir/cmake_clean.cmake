file(REMOVE_RECURSE
  "CMakeFiles/zoo_simulator_test.dir/zoo_simulator_test.cc.o"
  "CMakeFiles/zoo_simulator_test.dir/zoo_simulator_test.cc.o.d"
  "zoo_simulator_test"
  "zoo_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
