file(REMOVE_RECURSE
  "CMakeFiles/zoo_world_test.dir/zoo_world_test.cc.o"
  "CMakeFiles/zoo_world_test.dir/zoo_world_test.cc.o.d"
  "zoo_world_test"
  "zoo_world_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
