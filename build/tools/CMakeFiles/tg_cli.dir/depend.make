# Empty dependencies file for tg_cli.
# This may be replaced when dependencies are built.
