file(REMOVE_RECURSE
  "CMakeFiles/tg_cli.dir/tg_cli.cc.o"
  "CMakeFiles/tg_cli.dir/tg_cli.cc.o.d"
  "tg_cli"
  "tg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
