
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/ops.cc" "src/CMakeFiles/transfergraph.dir/autograd/ops.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/autograd/ops.cc.o.d"
  "/root/repo/src/autograd/tape.cc" "src/CMakeFiles/transfergraph.dir/autograd/tape.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/autograd/tape.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/CMakeFiles/transfergraph.dir/core/baselines.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/core/baselines.cc.o.d"
  "/root/repo/src/core/budget_search.cc" "src/CMakeFiles/transfergraph.dir/core/budget_search.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/core/budget_search.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/CMakeFiles/transfergraph.dir/core/evaluation.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/core/evaluation.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/CMakeFiles/transfergraph.dir/core/explain.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/core/explain.cc.o.d"
  "/root/repo/src/core/feature_table.cc" "src/CMakeFiles/transfergraph.dir/core/feature_table.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/core/feature_table.cc.o.d"
  "/root/repo/src/core/graph_builder.cc" "src/CMakeFiles/transfergraph.dir/core/graph_builder.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/core/graph_builder.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/CMakeFiles/transfergraph.dir/core/incremental.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/core/incremental.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/transfergraph.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/recommender.cc" "src/CMakeFiles/transfergraph.dir/core/recommender.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/core/recommender.cc.o.d"
  "/root/repo/src/core/strategy.cc" "src/CMakeFiles/transfergraph.dir/core/strategy.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/core/strategy.cc.o.d"
  "/root/repo/src/embedding/node2vec.cc" "src/CMakeFiles/transfergraph.dir/embedding/node2vec.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/embedding/node2vec.cc.o.d"
  "/root/repo/src/embedding/random_walk.cc" "src/CMakeFiles/transfergraph.dir/embedding/random_walk.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/embedding/random_walk.cc.o.d"
  "/root/repo/src/embedding/skipgram.cc" "src/CMakeFiles/transfergraph.dir/embedding/skipgram.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/embedding/skipgram.cc.o.d"
  "/root/repo/src/features/domain_similarity.cc" "src/CMakeFiles/transfergraph.dir/features/domain_similarity.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/features/domain_similarity.cc.o.d"
  "/root/repo/src/features/probe_network.cc" "src/CMakeFiles/transfergraph.dir/features/probe_network.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/features/probe_network.cc.o.d"
  "/root/repo/src/features/task2vec.cc" "src/CMakeFiles/transfergraph.dir/features/task2vec.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/features/task2vec.cc.o.d"
  "/root/repo/src/gnn/gat.cc" "src/CMakeFiles/transfergraph.dir/gnn/gat.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/gnn/gat.cc.o.d"
  "/root/repo/src/gnn/link_prediction.cc" "src/CMakeFiles/transfergraph.dir/gnn/link_prediction.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/gnn/link_prediction.cc.o.d"
  "/root/repo/src/gnn/sage.cc" "src/CMakeFiles/transfergraph.dir/gnn/sage.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/gnn/sage.cc.o.d"
  "/root/repo/src/graph/alias_table.cc" "src/CMakeFiles/transfergraph.dir/graph/alias_table.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/graph/alias_table.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/transfergraph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/CMakeFiles/transfergraph.dir/graph/graph_stats.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/graph/graph_stats.cc.o.d"
  "/root/repo/src/graph/negative_sampler.cc" "src/CMakeFiles/transfergraph.dir/graph/negative_sampler.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/graph/negative_sampler.cc.o.d"
  "/root/repo/src/graph/serialization.cc" "src/CMakeFiles/transfergraph.dir/graph/serialization.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/graph/serialization.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/transfergraph.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/gbdt.cc" "src/CMakeFiles/transfergraph.dir/ml/gbdt.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/ml/gbdt.cc.o.d"
  "/root/repo/src/ml/linear_regression.cc" "src/CMakeFiles/transfergraph.dir/ml/linear_regression.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/ml/linear_regression.cc.o.d"
  "/root/repo/src/ml/model_selection.cc" "src/CMakeFiles/transfergraph.dir/ml/model_selection.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/ml/model_selection.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/CMakeFiles/transfergraph.dir/ml/random_forest.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/ml/random_forest.cc.o.d"
  "/root/repo/src/ml/tabular.cc" "src/CMakeFiles/transfergraph.dir/ml/tabular.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/ml/tabular.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/transfergraph.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/transfergraph.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/transfergraph.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/numeric/linalg.cc" "src/CMakeFiles/transfergraph.dir/numeric/linalg.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/numeric/linalg.cc.o.d"
  "/root/repo/src/numeric/matrix.cc" "src/CMakeFiles/transfergraph.dir/numeric/matrix.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/numeric/matrix.cc.o.d"
  "/root/repo/src/numeric/pca.cc" "src/CMakeFiles/transfergraph.dir/numeric/pca.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/numeric/pca.cc.o.d"
  "/root/repo/src/numeric/stats.cc" "src/CMakeFiles/transfergraph.dir/numeric/stats.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/numeric/stats.cc.o.d"
  "/root/repo/src/transferability/hscore.cc" "src/CMakeFiles/transfergraph.dir/transferability/hscore.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/transferability/hscore.cc.o.d"
  "/root/repo/src/transferability/leep.cc" "src/CMakeFiles/transfergraph.dir/transferability/leep.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/transferability/leep.cc.o.d"
  "/root/repo/src/transferability/logme.cc" "src/CMakeFiles/transfergraph.dir/transferability/logme.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/transferability/logme.cc.o.d"
  "/root/repo/src/transferability/nce.cc" "src/CMakeFiles/transfergraph.dir/transferability/nce.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/transferability/nce.cc.o.d"
  "/root/repo/src/transferability/parc.cc" "src/CMakeFiles/transfergraph.dir/transferability/parc.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/transferability/parc.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/transfergraph.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/util/csv.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/transfergraph.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/transfergraph.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/transfergraph.dir/util/status.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/transfergraph.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/transfergraph.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/util/table_printer.cc.o.d"
  "/root/repo/src/zoo/catalog.cc" "src/CMakeFiles/transfergraph.dir/zoo/catalog.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/zoo/catalog.cc.o.d"
  "/root/repo/src/zoo/finetune_simulator.cc" "src/CMakeFiles/transfergraph.dir/zoo/finetune_simulator.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/zoo/finetune_simulator.cc.o.d"
  "/root/repo/src/zoo/history_export.cc" "src/CMakeFiles/transfergraph.dir/zoo/history_export.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/zoo/history_export.cc.o.d"
  "/root/repo/src/zoo/model_zoo.cc" "src/CMakeFiles/transfergraph.dir/zoo/model_zoo.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/zoo/model_zoo.cc.o.d"
  "/root/repo/src/zoo/synthetic_world.cc" "src/CMakeFiles/transfergraph.dir/zoo/synthetic_world.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/zoo/synthetic_world.cc.o.d"
  "/root/repo/src/zoo/types.cc" "src/CMakeFiles/transfergraph.dir/zoo/types.cc.o" "gcc" "src/CMakeFiles/transfergraph.dir/zoo/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
