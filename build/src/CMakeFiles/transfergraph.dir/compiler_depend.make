# Empty compiler generated dependencies file for transfergraph.
# This may be replaced when dependencies are built.
