file(REMOVE_RECURSE
  "libtransfergraph.a"
)
