# Empty dependencies file for example_incremental_update.
# This may be replaced when dependencies are built.
