file(REMOVE_RECURSE
  "CMakeFiles/example_incremental_update.dir/incremental_update.cpp.o"
  "CMakeFiles/example_incremental_update.dir/incremental_update.cpp.o.d"
  "incremental_update"
  "incremental_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_incremental_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
