# Empty dependencies file for example_text_model_selection.
# This may be replaced when dependencies are built.
