file(REMOVE_RECURSE
  "CMakeFiles/example_text_model_selection.dir/text_model_selection.cpp.o"
  "CMakeFiles/example_text_model_selection.dir/text_model_selection.cpp.o.d"
  "text_model_selection"
  "text_model_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_text_model_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
