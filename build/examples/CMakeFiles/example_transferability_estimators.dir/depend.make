# Empty dependencies file for example_transferability_estimators.
# This may be replaced when dependencies are built.
