file(REMOVE_RECURSE
  "CMakeFiles/example_transferability_estimators.dir/transferability_estimators.cpp.o"
  "CMakeFiles/example_transferability_estimators.dir/transferability_estimators.cpp.o.d"
  "transferability_estimators"
  "transferability_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_transferability_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
