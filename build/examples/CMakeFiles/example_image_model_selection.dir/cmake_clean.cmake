file(REMOVE_RECURSE
  "CMakeFiles/example_image_model_selection.dir/image_model_selection.cpp.o"
  "CMakeFiles/example_image_model_selection.dir/image_model_selection.cpp.o.d"
  "image_model_selection"
  "image_model_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_image_model_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
