# Empty compiler generated dependencies file for example_custom_zoo.
# This may be replaced when dependencies are built.
