file(REMOVE_RECURSE
  "CMakeFiles/example_custom_zoo.dir/custom_zoo.cpp.o"
  "CMakeFiles/example_custom_zoo.dir/custom_zoo.cpp.o.d"
  "custom_zoo"
  "custom_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
