file(REMOVE_RECURSE
  "../bench/bench_ablation_edge_types"
  "../bench/bench_ablation_edge_types.pdb"
  "CMakeFiles/bench_ablation_edge_types.dir/bench_ablation_edge_types.cc.o"
  "CMakeFiles/bench_ablation_edge_types.dir/bench_ablation_edge_types.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_edge_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
