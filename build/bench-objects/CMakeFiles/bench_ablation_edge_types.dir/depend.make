# Empty dependencies file for bench_ablation_edge_types.
# This may be replaced when dependencies are built.
