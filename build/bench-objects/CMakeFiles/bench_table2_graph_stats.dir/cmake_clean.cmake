file(REMOVE_RECURSE
  "../bench/bench_table2_graph_stats"
  "../bench/bench_table2_graph_stats.pdb"
  "CMakeFiles/bench_table2_graph_stats.dir/bench_table2_graph_stats.cc.o"
  "CMakeFiles/bench_table2_graph_stats.dir/bench_table2_graph_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_graph_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
