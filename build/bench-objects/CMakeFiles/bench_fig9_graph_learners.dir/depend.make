# Empty dependencies file for bench_fig9_graph_learners.
# This may be replaced when dependencies are built.
