file(REMOVE_RECURSE
  "../bench/bench_fig9_graph_learners"
  "../bench/bench_fig9_graph_learners.pdb"
  "CMakeFiles/bench_fig9_graph_learners.dir/bench_fig9_graph_learners.cc.o"
  "CMakeFiles/bench_fig9_graph_learners.dir/bench_fig9_graph_learners.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_graph_learners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
