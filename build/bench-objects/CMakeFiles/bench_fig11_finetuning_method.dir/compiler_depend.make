# Empty compiler generated dependencies file for bench_fig11_finetuning_method.
# This may be replaced when dependencies are built.
