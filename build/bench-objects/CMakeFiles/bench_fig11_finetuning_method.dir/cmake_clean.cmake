file(REMOVE_RECURSE
  "../bench/bench_fig11_finetuning_method"
  "../bench/bench_fig11_finetuning_method.pdb"
  "CMakeFiles/bench_fig11_finetuning_method.dir/bench_fig11_finetuning_method.cc.o"
  "CMakeFiles/bench_fig11_finetuning_method.dir/bench_fig11_finetuning_method.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_finetuning_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
