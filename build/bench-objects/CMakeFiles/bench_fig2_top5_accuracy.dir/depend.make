# Empty dependencies file for bench_fig2_top5_accuracy.
# This may be replaced when dependencies are built.
