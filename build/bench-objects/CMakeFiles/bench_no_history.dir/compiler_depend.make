# Empty compiler generated dependencies file for bench_no_history.
# This may be replaced when dependencies are built.
