file(REMOVE_RECURSE
  "../bench/bench_no_history"
  "../bench/bench_no_history.pdb"
  "CMakeFiles/bench_no_history.dir/bench_no_history.cc.o"
  "CMakeFiles/bench_no_history.dir/bench_no_history.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_no_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
