file(REMOVE_RECURSE
  "../bench/bench_fig8_feature_ablation"
  "../bench/bench_fig8_feature_ablation.pdb"
  "CMakeFiles/bench_fig8_feature_ablation.dir/bench_fig8_feature_ablation.cc.o"
  "CMakeFiles/bench_fig8_feature_ablation.dir/bench_fig8_feature_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_feature_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
