# Empty compiler generated dependencies file for bench_fig10_prediction_models.
# This may be replaced when dependencies are built.
