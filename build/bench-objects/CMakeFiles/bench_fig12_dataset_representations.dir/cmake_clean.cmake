file(REMOVE_RECURSE
  "../bench/bench_fig12_dataset_representations"
  "../bench/bench_fig12_dataset_representations.pdb"
  "CMakeFiles/bench_fig12_dataset_representations.dir/bench_fig12_dataset_representations.cc.o"
  "CMakeFiles/bench_fig12_dataset_representations.dir/bench_fig12_dataset_representations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_dataset_representations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
