# Empty dependencies file for bench_fig12_dataset_representations.
# This may be replaced when dependencies are built.
