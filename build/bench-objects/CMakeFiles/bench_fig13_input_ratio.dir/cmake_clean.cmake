file(REMOVE_RECURSE
  "../bench/bench_fig13_input_ratio"
  "../bench/bench_fig13_input_ratio.pdb"
  "CMakeFiles/bench_fig13_input_ratio.dir/bench_fig13_input_ratio.cc.o"
  "CMakeFiles/bench_fig13_input_ratio.dir/bench_fig13_input_ratio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_input_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
