file(REMOVE_RECURSE
  "../bench/bench_ablation_thresholds"
  "../bench/bench_ablation_thresholds.pdb"
  "CMakeFiles/bench_ablation_thresholds.dir/bench_ablation_thresholds.cc.o"
  "CMakeFiles/bench_ablation_thresholds.dir/bench_ablation_thresholds.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
