// First-order optimizers updating autograd parameters in place.
#ifndef TG_NN_OPTIMIZER_H_
#define TG_NN_OPTIMIZER_H_

#include <vector>

#include "autograd/tape.h"
#include "numeric/matrix.h"

namespace tg::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Var> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update using the accumulated gradients.
  virtual void Step() = 0;

  void ZeroGrad();

 protected:
  std::vector<autograd::Var> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<autograd::Var> params, double lr, double weight_decay = 0.0)
      : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

  void Step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_;
  double weight_decay_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<autograd::Var> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);

  void Step() override;

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  long step_count_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace tg::nn

#endif  // TG_NN_OPTIMIZER_H_
