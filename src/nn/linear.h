// A dense layer y = x W + b over autograd Vars.
#ifndef TG_NN_LINEAR_H_
#define TG_NN_LINEAR_H_

#include <cstddef>
#include <vector>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "util/rng.h"

namespace tg::nn {

class Linear {
 public:
  // Weights use Glorot-uniform init; bias starts at zero (optional).
  Linear(size_t in_dim, size_t out_dim, Rng* rng, bool use_bias = true);

  // x: (batch x in_dim) -> (batch x out_dim).
  autograd::Var Forward(const autograd::Var& x) const;

  // Trainable parameters (weight, then bias if present).
  std::vector<autograd::Var> Parameters() const;

  const autograd::Var& weight() const { return weight_; }
  const autograd::Var& bias() const { return bias_; }

 private:
  autograd::Var weight_;
  autograd::Var bias_;  // nullptr when use_bias is false
};

}  // namespace tg::nn

#endif  // TG_NN_LINEAR_H_
