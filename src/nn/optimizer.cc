#include "nn/optimizer.h"

#include <cmath>

#include "numeric/kernels.h"

namespace tg::nn {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p->ZeroGrad();
}

void Sgd::Step() {
  for (auto& p : params_) {
    if (p->grad().empty()) continue;
    // p -= lr * (g + wd * p), kernelized without temporaries: fold the decay
    // into the parameter scale, then apply the gradient step.
    double* value = p->mutable_value().data();
    const size_t n = p->value().size();
    if (weight_decay_ > 0.0) {
      kernels::Scale(value, 1.0 - lr_ * weight_decay_, n);
    }
    kernels::Axpy(-lr_, p->grad().data(), value, n);
  }
}

Adam::Adam(std::vector<autograd::Var> params, double lr, double beta1,
           double beta2, double eps, double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p->value().rows(), p->value().cols());
    v_.emplace_back(p->value().rows(), p->value().cols());
  }
}

void Adam::Step() {
  ++step_count_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (p->grad().empty()) continue;
    Matrix g = p->grad();
    if (weight_decay_ > 0.0) g += p->value() * weight_decay_;
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    const size_t n = g.size();
    kernels::ScaleAdd(m.data(), beta1_, 1.0 - beta1_, g.data(), n);
    double* vd = v.data();
    double* value = p->mutable_value().data();
    const double* md = m.data();
    const double* gd = g.data();
    const double beta2 = beta2_;
    const double one_minus_beta2 = 1.0 - beta2_;
    for (size_t j = 0; j < n; ++j) {
      vd[j] = beta2 * vd[j] + one_minus_beta2 * gd[j] * gd[j];
      const double m_hat = md[j] / bc1;
      const double v_hat = vd[j] / bc2;
      value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace tg::nn
