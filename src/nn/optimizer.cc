#include "nn/optimizer.h"

#include <cmath>

namespace tg::nn {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p->ZeroGrad();
}

void Sgd::Step() {
  for (auto& p : params_) {
    if (p->grad().empty()) continue;
    Matrix update = p->grad();
    if (weight_decay_ > 0.0) update += p->value() * weight_decay_;
    p->mutable_value() -= update * lr_;
  }
}

Adam::Adam(std::vector<autograd::Var> params, double lr, double beta1,
           double beta2, double eps, double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p->value().rows(), p->value().cols());
    v_.emplace_back(p->value().rows(), p->value().cols());
  }
}

void Adam::Step() {
  ++step_count_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (p->grad().empty()) continue;
    Matrix g = p->grad();
    if (weight_decay_ > 0.0) g += p->value() * weight_decay_;
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (size_t r = 0; r < g.rows(); ++r) {
      for (size_t c = 0; c < g.cols(); ++c) {
        m(r, c) = beta1_ * m(r, c) + (1.0 - beta1_) * g(r, c);
        v(r, c) = beta2_ * v(r, c) + (1.0 - beta2_) * g(r, c) * g(r, c);
        const double m_hat = m(r, c) / bc1;
        const double v_hat = v(r, c) / bc2;
        p->mutable_value()(r, c) -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
      }
    }
  }
}

}  // namespace tg::nn
