#include "nn/init.h"

#include <cmath>

namespace tg::nn {

Matrix GlorotUniform(size_t fan_in, size_t fan_out, Rng* rng) {
  const double a =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return Matrix::Uniform(fan_in, fan_out, rng, -a, a);
}

Matrix HeNormal(size_t fan_in, size_t fan_out, Rng* rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  return Matrix::Gaussian(fan_in, fan_out, rng, 0.0, stddev);
}

}  // namespace tg::nn
