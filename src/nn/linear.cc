#include "nn/linear.h"

#include "nn/init.h"

namespace tg::nn {

Linear::Linear(size_t in_dim, size_t out_dim, Rng* rng, bool use_bias) {
  weight_ = autograd::MakeParameter(GlorotUniform(in_dim, out_dim, rng));
  if (use_bias) {
    bias_ = autograd::MakeParameter(Matrix(1, out_dim));
  }
}

autograd::Var Linear::Forward(const autograd::Var& x) const {
  autograd::Var out = autograd::MatMul(x, weight_);
  if (bias_ != nullptr) out = autograd::AddRowBroadcast(out, bias_);
  return out;
}

std::vector<autograd::Var> Linear::Parameters() const {
  std::vector<autograd::Var> params = {weight_};
  if (bias_ != nullptr) params.push_back(bias_);
  return params;
}

}  // namespace tg::nn
