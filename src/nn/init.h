// Weight initialization schemes for the neural substrates.
#ifndef TG_NN_INIT_H_
#define TG_NN_INIT_H_

#include <cstddef>

#include "numeric/matrix.h"
#include "util/rng.h"

namespace tg::nn {

// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Matrix GlorotUniform(size_t fan_in, size_t fan_out, Rng* rng);

// He/Kaiming normal: N(0, sqrt(2 / fan_in)), for ReLU networks.
Matrix HeNormal(size_t fan_in, size_t fan_out, Rng* rng);

}  // namespace tg::nn

#endif  // TG_NN_INIT_H_
