// Process resource sampler: an opt-in background thread reading
// /proc/self/status and /proc/self/stat (RSS, peak RSS, major faults) at a
// configurable interval. Each tick updates the process.* gauges in the
// metrics registry and appends a sample stamped on the trace clock, so the
// Chrome-trace exporter can render an RSS timeline (counter track) under
// the span rows in Perfetto.
//
// Strictly read-only telemetry: the sampler thread touches no pipeline
// state and no RNG, so enabling it cannot perturb results. It is never
// started implicitly -- callers opt in via Start() (tg_cli --rss-sample,
// benches, tests). On non-Linux systems /proc is absent and Start() is a
// no-op that reports failure through running().
#ifndef TG_OBS_RESOURCE_SAMPLER_H_
#define TG_OBS_RESOURCE_SAMPLER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tg::obs {

// One-shot reading of the process's memory/fault numbers. `ok` is false
// when /proc could not be read (non-Linux).
struct ResourceUsage {
  uint64_t rss_bytes = 0;       // VmRSS
  uint64_t peak_rss_bytes = 0;  // VmHWM (high-water mark)
  uint64_t major_faults = 0;    // majflt, cumulative
  bool ok = false;
};

ResourceUsage ReadSelfResourceUsage();

struct ResourceSample {
  uint64_t t_ns = 0;  // trace clock (obs::TraceNowNs)
  ResourceUsage usage;
};

struct ResourceSamplerOptions {
  int interval_ms = 50;
  // Samples kept in memory for export; one per tick, so the default covers
  // 100 s at the default interval. Oldest samples are dropped beyond this.
  size_t max_samples = 2000;
};

// The process-wide sampler. Start/Stop are idempotent and may be called
// from any thread (internally serialized); the sampling thread itself only
// reads /proc and writes gauges + the sample buffer.
class ResourceSampler {
 public:
  static ResourceSampler& Instance();

  // Spawns the sampling thread (no-op if already running). Takes an
  // immediate first sample so even sub-interval runs record something.
  void Start(const ResourceSamplerOptions& options = {});

  // Joins the sampling thread after one final sample (no-op if stopped).
  void Stop();

  bool running() const;

  // Copy of the samples recorded since process start (Start/Stop cycles
  // append; ClearSamples resets).
  std::vector<ResourceSample> Samples() const;
  void ClearSamples();

 private:
  ResourceSampler() = default;
};

// Comma-joined Chrome trace-event counter objects ("ph":"C") for the
// recorded samples -- process_memory_mb (rss/peak series) and
// process_major_faults tracks. Empty string when no samples exist. Spliced
// into ChromeTraceJson()'s traceEvents array.
std::string ResourceCounterEventsJson();

}  // namespace tg::obs

#endif  // TG_OBS_RESOURCE_SAMPLER_H_
