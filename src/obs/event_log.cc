#include "obs/event_log.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json_util.h"

namespace tg::obs {

namespace internal_event_log {
std::atomic<bool> g_enabled{false};
}  // namespace internal_event_log

namespace {

// --- Per-thread lock-free record buffers ------------------------------------
//
// Same discipline as the span buffers in obs/trace.cc: the owner thread
// appends into a chain of fixed-size blocks and release-publishes a count;
// the single drainer acquire-loads the count, formats the records, and frees
// blocks it has fully consumed (safe: the writer never revisits a block it
// has moved past, and only the drainer advances the drain cursor).

constexpr size_t kEventBlockSize = 64;

struct EventRecord {
  uint64_t ts_ns = 0;
  const char* kind = "";   // static storage ("log", "span", event literals)
  LogLevel level = LogLevel::kInfo;  // kind "log"
  const char* file = "";             // kind "log"
  int line = 0;                      // kind "log"
  const char* span_name = "";        // kind "span"
  uint64_t start_ns = 0;             // kind "span"
  uint64_t end_ns = 0;               // kind "span"
  std::string message;
  std::string detail;
  std::vector<std::string> span_chain;
};

struct EventBlock {
  EventRecord slots[kEventBlockSize];
  std::atomic<EventBlock*> next{nullptr};
};

struct ThreadEventBuffer {
  uint32_t tid = 0;
  EventBlock head;
  // Owner thread only.
  EventBlock* write_block = &head;
  uint64_t write_count = 0;
  std::atomic<uint64_t> published{0};
  // Drainer only.
  EventBlock* drain_block = &head;
  uint64_t drained = 0;

  void Append(EventRecord&& record) {
    const size_t slot = write_count % kEventBlockSize;
    if (slot == 0 && write_count != 0) {
      EventBlock* fresh = new EventBlock;
      write_block->next.store(fresh, std::memory_order_release);
      write_block = fresh;
    }
    write_block->slots[slot] = std::move(record);
    ++write_count;
    published.store(write_count, std::memory_order_release);
  }
};

struct EventBufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadEventBuffer>> buffers;
};

EventBufferRegistry& Buffers() {
  // Leaked (like the trace buffer registry) so late emitters during process
  // teardown never touch a destroyed registry.
  static EventBufferRegistry* registry = new EventBufferRegistry;
  return *registry;
}

ThreadEventBuffer* LocalBuffer() {
  thread_local std::shared_ptr<ThreadEventBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadEventBuffer>();
    EventBufferRegistry& registry = Buffers();
    std::lock_guard<std::mutex> lock(registry.mu);
    fresh->tid = static_cast<uint32_t>(registry.buffers.size());
    registry.buffers.push_back(fresh);
    return fresh;
  }();
  return buffer.get();
}

// --- Process-wide log state -------------------------------------------------

std::atomic<uint64_t> g_emitted{0};
std::atomic<uint64_t> g_dropped{0};
std::atomic<uint64_t> g_span_threshold_ns{10'000'000};  // 10 ms default
// Token bucket, in whole events. Writers take one token per accepted event;
// the drainer refills from the configured rate.
std::atomic<int64_t> g_tokens{0};

struct EventLogState {
  std::mutex mu;  // serializes Start/Stop
  std::FILE* file = nullptr;
  std::thread drainer;
  std::atomic<bool> stop{false};
  EventLogOptions options;
  std::string path;
  bool write_failed = false;
  // Drainer-only refill bookkeeping.
  uint64_t last_refill_ns = 0;
  double refill_carry = 0.0;
};

EventLogState& State() {
  static EventLogState* state = new EventLogState;
  return *state;
}

Counter& EmittedCounter() {
  static Counter& counter =
      MetricsRegistry::Instance().GetCounter("event_log.events");
  return counter;
}

Counter& DroppedCounter() {
  static Counter& counter =
      MetricsRegistry::Instance().GetCounter("event_log.dropped_events");
  return counter;
}

// Take one token or shed the event. Shedding is counted, never blocking.
bool TryTakeToken() {
  if (g_tokens.fetch_sub(1, std::memory_order_relaxed) <= 0) {
    g_tokens.fetch_add(1, std::memory_order_relaxed);
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    DroppedCounter().Increment();
    return false;
  }
  g_emitted.fetch_add(1, std::memory_order_relaxed);
  EmittedCounter().Increment();
  return true;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::string FormatRecord(const EventRecord& record, uint32_t tid) {
  std::string out = "{\"ts_ns\":" + std::to_string(record.ts_ns);
  out += ",\"tid\":" + std::to_string(tid);
  out += ",\"kind\":" + JsonQuote(record.kind);
  if (std::strcmp(record.kind, "log") == 0) {
    out += ",\"level\":" + JsonQuote(LevelName(record.level));
    out += ",\"file\":" + JsonQuote(record.file);
    out += ",\"line\":" + std::to_string(record.line);
    out += ",\"msg\":" + JsonQuote(record.message);
  } else if (std::strcmp(record.kind, "span") == 0) {
    out += ",\"name\":" + JsonQuote(record.span_name);
    if (!record.detail.empty()) {
      out += ",\"detail\":" + JsonQuote(record.detail);
    }
    out += ",\"start_ns\":" + std::to_string(record.start_ns);
    out += ",\"dur_ns\":" + std::to_string(record.end_ns - record.start_ns);
  } else {
    out += ",\"msg\":" + JsonQuote(record.message);
    if (!record.detail.empty()) {
      out += ",\"detail\":" + JsonQuote(record.detail);
    }
  }
  out += ",\"spans\":[";
  for (size_t i = 0; i < record.span_chain.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonQuote(record.span_chain[i]);
  }
  out += "]}\n";
  return out;
}

// Drains one buffer: formats (or discards) every published-but-undrained
// record and frees blocks left fully behind. Drainer thread (or Start/Stop
// under the state mutex with the drainer not running) only.
void DrainBuffer(EventLogState& state, ThreadEventBuffer* buffer,
                 bool discard) {
  const uint64_t published = buffer->published.load(std::memory_order_acquire);
  while (buffer->drained < published) {
    const size_t slot = buffer->drained % kEventBlockSize;
    if (slot == 0 && buffer->drained != 0) {
      EventBlock* next = buffer->drain_block->next.load(
          std::memory_order_acquire);
      if (buffer->drain_block != &buffer->head) delete buffer->drain_block;
      buffer->drain_block = next;
    }
    EventRecord& record = buffer->drain_block->slots[slot];
    if (!discard && state.file != nullptr && !state.write_failed) {
      const std::string line = FormatRecord(record, buffer->tid);
      if (std::fwrite(line.data(), 1, line.size(), state.file) !=
          line.size()) {
        // Keep draining (bounding memory) but stop writing; stderr, not
        // TG_LOG, to avoid re-entering the event log.
        std::fprintf(stderr, "event log write failed (%s); disabling file\n",
                     state.path.c_str());
        state.write_failed = true;
      }
    }
    if (discard) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      DroppedCounter().Increment();
    }
    record = EventRecord();  // release the strings promptly
    ++buffer->drained;
  }
}

void DrainAll(EventLogState& state, bool discard) {
  // Snapshot the buffer list under its lock, drain outside it: new threads
  // can register while we write.
  std::vector<std::shared_ptr<ThreadEventBuffer>> buffers;
  {
    EventBufferRegistry& registry = Buffers();
    std::lock_guard<std::mutex> lock(registry.mu);
    buffers = registry.buffers;
  }
  for (const auto& buffer : buffers) DrainBuffer(state, buffer.get(), discard);
}

void RefillTokens(EventLogState& state) {
  const uint64_t now = TraceNowNs();
  if (state.last_refill_ns == 0) state.last_refill_ns = now;
  const double dt = static_cast<double>(now - state.last_refill_ns) * 1e-9;
  state.last_refill_ns = now;
  const double refill = dt * state.options.rate_per_sec + state.refill_carry;
  const int64_t whole = static_cast<int64_t>(refill);
  state.refill_carry = refill - static_cast<double>(whole);
  if (whole <= 0) return;
  const int64_t burst = static_cast<int64_t>(state.options.burst);
  int64_t current = g_tokens.load(std::memory_order_relaxed);
  while (current < burst &&
         !g_tokens.compare_exchange_weak(
             current, std::min(burst, current + whole),
             std::memory_order_relaxed)) {
  }
}

void DrainerLoop(EventLogState& state) {
  while (!state.stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(state.options.flush_interval_ms));
    RefillTokens(state);
    DrainAll(state, /*discard=*/false);
    if (state.file != nullptr && !state.write_failed) std::fflush(state.file);
  }
  // Final drain after the enabled flag went down: everything accepted
  // before the flip lands in the file.
  DrainAll(state, /*discard=*/false);
  if (state.file != nullptr && !state.write_failed) std::fflush(state.file);
}

std::vector<std::string> CaptureSpanChain() {
  // CurrentSpanStack is maintained whenever any obs mode bit is on, which
  // includes the event-log bit itself.
  return CurrentSpanStack();
}

void AppendRecord(EventRecord&& record) {
  record.ts_ns = TraceNowNs();
  LocalBuffer()->Append(std::move(record));
}

// Installed as the util/logging.h sink while the log runs: every TG_LOG
// line becomes a structured record instead of a raw stderr line.
void LogSinkToEventLog(LogLevel level, const char* file, int line,
                       const std::string& message) {
  EmitLogEvent(level, file, line, message);
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

}  // namespace

Status StartEventLog(const std::string& path, const EventLogOptions& options) {
  EventLogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.file != nullptr) {
    return Status::FailedPrecondition("event log already running (" +
                                      state.path + ")");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("event log open " + path + ": " +
                            std::strerror(errno));
  }
  // Records that raced past a previous Stop are stale; shed them (counted)
  // so the new file starts at its own epoch.
  DrainAll(state, /*discard=*/true);
  state.file = file;
  state.path = path;
  state.options = options;
  state.write_failed = false;
  state.last_refill_ns = TraceNowNs();
  state.refill_carry = 0.0;
  state.stop.store(false, std::memory_order_release);
  g_span_threshold_ns.store(
      static_cast<uint64_t>(std::max(0.0, options.span_threshold_ms) * 1e6),
      std::memory_order_relaxed);
  g_tokens.store(static_cast<int64_t>(options.burst),
                 std::memory_order_relaxed);
  state.drainer = std::thread([&state] { DrainerLoop(state); });
  SetEventLogSpansEnabled(true);
  internal_event_log::g_enabled.store(true, std::memory_order_relaxed);
  SetLogSink(&LogSinkToEventLog);
  return Status::OK();
}

void StopEventLog() {
  EventLogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.file == nullptr) return;
  SetLogSink(nullptr);
  internal_event_log::g_enabled.store(false, std::memory_order_relaxed);
  SetEventLogSpansEnabled(false);
  state.stop.store(true, std::memory_order_release);
  if (state.drainer.joinable()) state.drainer.join();
  std::fclose(state.file);
  state.file = nullptr;
  state.path.clear();
}

bool MaybeStartEventLogFromEnv() {
  if (EventLogEnabled()) return true;
  const char* path = std::getenv("TG_EVENT_LOG");
  if (path == nullptr || *path == '\0') return false;
  EventLogOptions options;
  const double rate = EnvDouble("TG_EVENT_LOG_RATE", 0.0);
  if (rate > 0.0) {
    options.rate_per_sec = rate;
    options.burst = 2.0 * rate;
  }
  const double span_ms = EnvDouble("TG_EVENT_LOG_SPAN_MS", -1.0);
  if (span_ms >= 0.0) options.span_threshold_ms = span_ms;
  Status started = StartEventLog(path, options);
  if (!started.ok()) {
    std::fprintf(stderr, "event log unavailable: %s\n",
                 started.ToString().c_str());
    return false;
  }
  return true;
}

std::string EventLogPath() {
  EventLogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.path;
}

void EmitLogEvent(LogLevel level, const char* file, int line,
                  const std::string& message) {
  if (!EventLogEnabled() || !TryTakeToken()) return;
  EventRecord record;
  record.kind = "log";
  record.level = level;
  record.file = file;
  record.line = line;
  record.message = message;
  record.span_chain = CaptureSpanChain();
  AppendRecord(std::move(record));
}

void EmitEvent(const char* kind, const std::string& message,
               const std::string& detail) {
  if (!EventLogEnabled() || !TryTakeToken()) return;
  EventRecord record;
  record.kind = kind;
  record.message = message;
  record.detail = detail;
  record.span_chain = CaptureSpanChain();
  AppendRecord(std::move(record));
}

void MaybeEmitSpanEvent(const char* name, const std::string& detail,
                        uint64_t start_ns, uint64_t end_ns) {
  if (!EventLogEnabled()) return;
  if (end_ns - start_ns <
      g_span_threshold_ns.load(std::memory_order_relaxed)) {
    return;
  }
  if (!TryTakeToken()) return;
  EventRecord record;
  record.kind = "span";
  record.span_name = name;
  record.detail = detail;
  record.start_ns = start_ns;
  record.end_ns = end_ns;
  // ~Span emits after restoring the open chain, so the captured chain is
  // the enclosing stack (the span itself is the "name" field).
  record.span_chain = CaptureSpanChain();
  AppendRecord(std::move(record));
}

uint64_t EventLogEmittedCount() {
  return g_emitted.load(std::memory_order_relaxed);
}

uint64_t EventLogDroppedCount() {
  return g_dropped.load(std::memory_order_relaxed);
}

}  // namespace tg::obs
