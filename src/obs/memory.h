// Allocation accounting: global operator new interposition feeding
// thread-local allocation counters, attributed to the active span by
// obs::Span (alloc_bytes / allocs on every SpanRecord, plus
// "stage.<name>.alloc_bytes" histograms when metrics are enabled).
//
// Cost model: the replacement operator new begins with one relaxed atomic
// load of the tracking flag. When tracking is disabled (the default) that
// load is the entire added cost -- allocation then forwards straight to
// malloc, exactly as the default operator new does. operator delete is never
// instrumented at all (frees are not netted; see below), so the disabled
// hot path is provably one relaxed load per allocation and zero per free.
//
// What is counted: requested bytes and call count of every successful
// operator new / new[] (aligned and nothrow variants included) on the
// calling thread, from the moment tracking is enabled. What is NOT counted:
// frees (the counters are gross allocation, not live bytes -- use the
// resource sampler for RSS), malloc/calloc called directly by C code, and
// allocations made before a thread's counters are registered inside the
// first tracked allocation (the registration itself is excluded via a
// re-entrancy guard).
//
// Determinism contract: tracking only increments counters that nothing in
// numeric code ever reads back, and the replacement operator new returns
// malloc's pointer untouched in both modes -- pipeline outputs are
// bit-identical with tracking on or off (tests/obs_memory_test.cc).
//
// Enabling: SetMemoryTrackingEnabled() at runtime, the TG_MEM_TRACK
// environment variable at startup, or `tg_cli --mem`.
#ifndef TG_OBS_MEMORY_H_
#define TG_OBS_MEMORY_H_

#include <cstdint>

namespace tg::obs {

// Turns allocation accounting on or off process-wide. Counters freeze (not
// reset) when disabled, so sections can be bracketed.
void SetMemoryTrackingEnabled(bool enabled);
bool MemoryTrackingEnabled();

struct AllocStats {
  uint64_t bytes = 0;  // requested bytes, gross (frees not subtracted)
  uint64_t count = 0;  // number of operator new calls

  AllocStats operator-(const AllocStats& other) const {
    return {bytes - other.bytes, count - other.count};
  }
};

// This thread's counters since its first tracked allocation. Owner-thread
// relaxed loads: cheap enough for obs::Span to snapshot on open and close.
AllocStats ThreadAllocStats();

// Sum over every thread that ever allocated under tracking (counters of
// exited threads are retained, like trace buffers). Takes the registry lock;
// for reports, not hot paths.
AllocStats TotalAllocStats();

}  // namespace tg::obs

#endif  // TG_OBS_MEMORY_H_
