// Structured JSON-lines event log: every TG_LOG call, every span close above
// a duration threshold, and explicit events (sweep heartbeat) become one
// self-describing JSON object on one line -- the debuggable alternative to
// interleaved stderr when the pipeline runs across a pool, a telemetry
// thread, and (eventually) multiple sweep workers.
//
// Record shape (all records):
//   {"ts_ns":..,"tid":..,"kind":"log|span|<event kind>", ...kind fields...,
//    "spans":["outermost","...","innermost"]}
// kind "log" adds level/file/line/msg; kind "span" adds name/detail/
// start_ns/dur_ns; explicit events add msg (and detail when present).
// Timestamps are obs::TraceNowNs() -- the same monotonic clock as every
// other obs artifact, so event-log lines and Chrome-trace spans line up.
//
// Write path: emitters append to lock-free per-thread block buffers (the
// obs/trace.cc discipline: release-published counters, blocks only ever
// appended); a single drainer thread formats and writes the JSON lines in
// the background and frees fully-drained blocks. Emission is rate-limited
// by a token bucket (rate/burst in EventLogOptions); shed events are
// counted, never blocked on -- the "event_log.dropped_events" counter and
// EventLogDroppedCount() make the loss visible.
//
// Cost model: every emission site starts with one relaxed atomic load of
// the enabled flag; when the log is off (the default) that load is the
// entire cost, matching every other obs substrate.
//
// Determinism contract: the event log is write-only telemetry on the same
// clock discipline as tracing -- it never touches RNG, never reorders work,
// and is never read back, so pipeline outputs are bit-identical with the
// log on or off (tests/obs_telemetry_test.cc).
//
// Enabling: StartEventLog(path) at runtime, or the TG_EVENT_LOG=path
// environment variable via MaybeStartEventLogFromEnv() (tg_cli does this at
// startup). TG_EVENT_LOG_RATE / TG_EVENT_LOG_SPAN_MS tune the defaults.
#ifndef TG_OBS_EVENT_LOG_H_
#define TG_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/logging.h"
#include "util/status.h"

namespace tg::obs {

namespace internal_event_log {
// Constant-initialized so emitters can load it at any point of process
// startup (logging runs before main).
extern std::atomic<bool> g_enabled;
}  // namespace internal_event_log

// One relaxed load; false unless StartEventLog succeeded and StopEventLog
// has not run.
inline bool EventLogEnabled() {
  return internal_event_log::g_enabled.load(std::memory_order_relaxed);
}

struct EventLogOptions {
  // Token-bucket shed policy: steady-state events/second and the burst the
  // bucket absorbs before shedding. TG_EVENT_LOG_RATE overrides the rate
  // (burst follows at 2x) when > 0.
  double rate_per_sec = 2000.0;
  double burst = 4000.0;
  // Span closes shorter than this never reach the log (they would drown
  // it: a skip-gram epoch closes thousands of sub-millisecond spans).
  // TG_EVENT_LOG_SPAN_MS overrides when >= 0.
  double span_threshold_ms = 10.0;
  // Drainer wakeup period: latency between an emission and its line being
  // durable in the file.
  int flush_interval_ms = 50;
};

// Opens `path` (truncating) and starts the drainer thread. Also flips the
// span bookkeeping bit (SetEventLogSpansEnabled) so span durations are
// measured even when tracing/metrics are off. Fails with a Status on I/O
// errors; FailedPrecondition if already started.
Status StartEventLog(const std::string& path,
                     const EventLogOptions& options = {});

// Drains everything emitted so far, joins the drainer, closes the file.
// Idempotent.
void StopEventLog();

// Starts the log from TG_EVENT_LOG (honoring TG_EVENT_LOG_RATE and
// TG_EVENT_LOG_SPAN_MS) when the variable is set and non-empty. Returns
// true iff the log is running afterwards; a failed open logs a warning and
// returns false -- a bad path must never take the pipeline down.
bool MaybeStartEventLogFromEnv();

// The path of the running log ("" when stopped), for /statusz.
std::string EventLogPath();

// --- Emission ---------------------------------------------------------------
// All emitters are cheap no-ops (one relaxed load) when the log is off, and
// may be called from any thread, including pool workers.

// One TG_LOG line (util/logging.cc routes here when the log is enabled).
void EmitLogEvent(LogLevel level, const char* file, int line,
                  const std::string& message);

// One explicit structured event, e.g. kind "sweep.target_begin". `kind`
// must have static storage duration (callers pass literals).
void EmitEvent(const char* kind, const std::string& message,
               const std::string& detail = "");

// One span close; called by obs::Span when the event-log mode bit is on.
// Applies the duration threshold internally.
void MaybeEmitSpanEvent(const char* name, const std::string& detail,
                        uint64_t start_ns, uint64_t end_ns);

// --- Accounting -------------------------------------------------------------

// Events written to (or queued for) the file / shed by the rate limiter /
// shed because a record arrived after StopEventLog began draining. The
// "event_log.events" and "event_log.dropped_events" registry counters track
// the same numbers for /metrics.
uint64_t EventLogEmittedCount();
uint64_t EventLogDroppedCount();

}  // namespace tg::obs

#endif  // TG_OBS_EVENT_LOG_H_
