#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/json_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tg::obs {

Histogram::Histogram(const HistogramOptions& options)
    : options_(options), buckets_(options.num_buckets + 1) {
  // buckets_ value-initializes its atomics to zero (C++20).
}

double Histogram::BucketUpperBound(size_t i) const {
  if (i + 1 >= buckets_.size()) {
    return std::numeric_limits<double>::infinity();
  }
  return options_.first_bound * std::pow(options_.growth,
                                         static_cast<double>(i));
}

void Histogram::Observe(double value) {
  size_t bucket = 0;
  if (value > options_.first_bound) {
    // ceil(log_growth(value / first_bound)), clamped into the overflow
    // bucket. log-based rather than a scan: O(1) for any bucket count.
    const double exact =
        std::log(value / options_.first_bound) / std::log(options_.growth);
    bucket = static_cast<size_t>(std::min(
        static_cast<double>(buckets_.size() - 1), std::ceil(exact - 1e-12)));
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // CAS loops for min/max: contention is negligible (span closes are coarse).
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  const uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += BucketCount(i);
    if (seen >= rank) {
      return i + 1 < buckets_.size() ? BucketUpperBound(i) : max();
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(options);
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot(bool include_buckets) const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramStats s;
    s.count = h->count();
    s.sum = h->sum();
    s.min = s.count > 0 ? h->min() : 0.0;
    s.max = s.count > 0 ? h->max() : 0.0;
    s.p50 = h->Quantile(0.5);
    s.p95 = h->Quantile(0.95);
    s.p99 = h->Quantile(0.99);
    if (include_buckets) {
      s.buckets.reserve(h->num_buckets());
      for (size_t i = 0; i < h->num_buckets(); ++i) {
        s.buckets.emplace_back(h->BucketUpperBound(i), h->BucketCount(i));
      }
    }
    snap.histograms[name] = std::move(s);
  }
  return snap;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(name) + ":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(name) + ":" + JsonNumber(g->value(), 9);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    const uint64_t count = h->count();
    out += JsonQuote(name) + ":{\"count\":" + std::to_string(count);
    out += ",\"sum\":" + JsonNumber(h->sum(), 9);
    out += ",\"min\":" + JsonNumber(count > 0 ? h->min() : 0.0, 9);
    out += ",\"max\":" + JsonNumber(count > 0 ? h->max() : 0.0, 9);
    out += ",\"p50\":" + JsonNumber(h->Quantile(0.5), 9);
    out += ",\"p95\":" + JsonNumber(h->Quantile(0.95), 9);
    out += ",\"p99\":" + JsonNumber(h->Quantile(0.99), 9);
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (size_t i = 0; i < h->num_buckets(); ++i) {
      const uint64_t n = h->BucketCount(i);
      if (n == 0) continue;
      if (!first_bucket) out += ",";
      first_bucket = false;
      const double le = h->BucketUpperBound(i);
      out += "{\"le\":";
      out += std::isfinite(le) ? JsonNumber(le, 9) : JsonQuote("inf");
      out += ",\"count\":" + std::to_string(n) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::RenderTable() const {
  const MetricsSnapshot snap = Snapshot();
  TablePrinter table({"metric", "type", "count", "value", "mean", "p50",
                      "p95", "p99", "max"});
  for (const auto& [name, value] : snap.counters) {
    table.AddRow({name, "counter", std::to_string(value), "", "", "", "", "",
                  ""});
  }
  for (const auto& [name, value] : snap.gauges) {
    table.AddRow({name, "gauge", "", FormatDouble(value, 6), "", "", "", "",
                  ""});
  }
  for (const auto& [name, h] : snap.histograms) {
    const double mean =
        h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
    table.AddRow({name, "histogram", std::to_string(h.count),
                  FormatDouble(h.sum, 6), FormatDouble(mean, 6),
                  FormatDouble(h.p50, 6), FormatDouble(h.p95, 6),
                  FormatDouble(h.p99, 6), FormatDouble(h.max, 6)});
  }
  return table.Render();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

Histogram& StageHistogram(const std::string& span_name) {
  return MetricsRegistry::Instance().GetHistogram("stage." + span_name +
                                                  ".seconds");
}

Histogram& StageAllocHistogram(const std::string& span_name) {
  // Byte-scale buckets: 1 KiB * 2^i, 36 finite buckets (~32 TiB) + overflow.
  HistogramOptions options;
  options.first_bound = 1024.0;
  options.growth = 2.0;
  options.num_buckets = 36;
  return MetricsRegistry::Instance().GetHistogram(
      "stage." + span_name + ".alloc_bytes", options);
}

}  // namespace tg::obs
