#include "obs/memory.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

#include "util/fault.h"

namespace tg::obs {
namespace {

// Constant-initialized (no static-init guard) so the replacement operator
// new can load it at any point of process startup, including allocations
// made during dynamic initialization of other translation units.
std::atomic<bool> g_mem_tracking{false};

// Per-thread counters. The owner thread writes with relaxed stores;
// TotalAllocStats reads other threads' counters with relaxed loads (counts
// may lag by a few events mid-flight, which is fine for telemetry).
struct ThreadCounters {
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> count{0};
};

struct CounterRegistry {
  std::mutex mu;
  // shared_ptr keeps counters of exited threads alive for TotalAllocStats,
  // mirroring the span buffer registry in trace.cc.
  std::vector<std::shared_ptr<ThreadCounters>> counters;
};

CounterRegistry& Registry() {
  // Leaked on purpose: operator new can run during static destruction
  // (global dtors free and allocate), so the registry must never die.
  static CounterRegistry* registry = new CounterRegistry;
  return *registry;
}

// No dynamic initialization on either thread_local: the raw pointer and the
// guard flag must be readable from inside operator new without tripping a
// thread-safe-init guard (which could itself allocate).
thread_local ThreadCounters* t_counters = nullptr;
// True while this thread is inside the tracking slow path; allocations made
// there (registration, vector growth) are deliberately not counted, which
// also makes the hook re-entrancy safe.
thread_local bool t_in_hook = false;

ThreadCounters* RegisterThread() {
  auto fresh = std::make_shared<ThreadCounters>();
  CounterRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.counters.push_back(fresh);
  t_counters = fresh.get();
  // The shared_ptr in the registry is the owner; the thread keeps a raw
  // pointer so thread exit needs no unregistration hook.
  return t_counters;
}

inline void CountAllocation(size_t size) {
  if (t_in_hook) return;
  t_in_hook = true;
  ThreadCounters* counters = t_counters;
  if (counters == nullptr) counters = RegisterThread();
  counters->bytes.fetch_add(size, std::memory_order_relaxed);
  counters->count.fetch_add(1, std::memory_order_relaxed);
  t_in_hook = false;
}

bool EnvFlagSet(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

// Seeds the flag from TG_MEM_TRACK during dynamic initialization.
// Allocations before this runs are simply uncounted.
const bool g_env_seeded = [] {
  if (EnvFlagSet("TG_MEM_TRACK")) {
    g_mem_tracking.store(true, std::memory_order_relaxed);
  }
  return true;
}();

// malloc-backed allocation honoring the new-handler protocol. `alignment`
// of 0 means the default (malloc already satisfies max_align_t).
void* AllocateOrHandler(size_t size, size_t alignment) {
  if (size == 0) size = 1;  // distinct non-null pointers, as new requires
  // Fault injection for allocation failure (site "alloc", weight = request
  // size, so rules can use min:BYTES to spare small control-flow allocs).
  // ShouldFail itself never allocates, which is what makes this hook legal
  // inside operator new.
  if (tg::fault::Armed() && tg::fault::ShouldFail("alloc", size)) {
    return nullptr;
  }
  for (;;) {
    void* ptr = nullptr;
    if (alignment == 0) {
      ptr = std::malloc(size);
    } else if (posix_memalign(&ptr, alignment, size) != 0) {
      ptr = nullptr;
    }
    if (ptr != nullptr) {
      if (g_mem_tracking.load(std::memory_order_relaxed)) {
        CountAllocation(size);
      }
      return ptr;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

void* AllocateOrThrow(size_t size, size_t alignment) {
  void* ptr = AllocateOrHandler(size, alignment);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

}  // namespace

void SetMemoryTrackingEnabled(bool enabled) {
  g_mem_tracking.store(enabled, std::memory_order_relaxed);
}

bool MemoryTrackingEnabled() {
  return g_mem_tracking.load(std::memory_order_relaxed);
}

AllocStats ThreadAllocStats() {
  const ThreadCounters* counters = t_counters;
  if (counters == nullptr) return {};
  return {counters->bytes.load(std::memory_order_relaxed),
          counters->count.load(std::memory_order_relaxed)};
}

AllocStats TotalAllocStats() {
  AllocStats total;
  CounterRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& counters : registry.counters) {
    total.bytes += counters->bytes.load(std::memory_order_relaxed);
    total.count += counters->count.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace tg::obs

// --- Global operator new/delete replacement ---------------------------------
//
// Replacing operator new is what makes the accounting see *every* C++
// allocation in the process (std::vector growth, std::string, map nodes)
// without touching any call site. All variants forward to the same two
// helpers above; operator delete stays exactly free() so the disabled path
// adds nothing there. posix_memalign handles the aligned variants
// (std::aligned_alloc would reject sizes not a multiple of the alignment,
// which operator new must accept). Frees go through free() in every case:
// posix_memalign memory is free()-compatible.

void* operator new(size_t size) { return tg::obs::AllocateOrThrow(size, 0); }

void* operator new[](size_t size) { return tg::obs::AllocateOrThrow(size, 0); }

void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return tg::obs::AllocateOrHandler(size, 0);
}

void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return tg::obs::AllocateOrHandler(size, 0);
}

void* operator new(size_t size, std::align_val_t alignment) {
  return tg::obs::AllocateOrThrow(size, static_cast<size_t>(alignment));
}

void* operator new[](size_t size, std::align_val_t alignment) {
  return tg::obs::AllocateOrThrow(size, static_cast<size_t>(alignment));
}

void* operator new(size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return tg::obs::AllocateOrHandler(size, static_cast<size_t>(alignment));
}

void* operator new[](size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return tg::obs::AllocateOrHandler(size, static_cast<size_t>(alignment));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(ptr);
}
