// Span tracer: RAII scopes with thread-local parent nesting, lock-free
// per-thread record buffers merged at flush, explicit parent handoff across
// ThreadPool::ParallelFor, and a Chrome trace-event exporter
// (chrome://tracing / Perfetto).
//
// Cost model: every span begins with one relaxed atomic load of the global
// mode word. When neither tracing nor metrics are enabled that load is the
// entire cost -- no clocks, no allocation, no buffer writes -- so the
// instrumentation is compiled-in everywhere and left on in production code.
//
// Determinism contract: tracing records wall-clock timestamps but never
// touches any RNG, never reorders work, and is never read back by numeric
// code, so pipeline outputs are bit-identical with tracing enabled or
// disabled (asserted by tests/obs_test.cc).
//
// Enabling: SetTraceEnabled()/SetMetricsEnabled() at runtime, or the TG_TRACE
// / TG_METRICS environment variables (any non-empty value other than "0") at
// startup. See docs/observability.md.
#ifndef TG_OBS_TRACE_H_
#define TG_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/perf_counters.h"
#include "util/status.h"

namespace tg::obs {

// --- Mode control -----------------------------------------------------------

// Tracing: spans are recorded into per-thread buffers for export.
void SetTraceEnabled(bool enabled);
bool TraceEnabled();

// Metrics: span close feeds the "stage.<name>.seconds" histogram.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

// Profiler bookkeeping: keeps spans maintaining the thread-local id /
// open-span chain (without recording or histograms) when neither tracing
// nor metrics is on, so SIGPROF samples can attribute to spans. Driven by
// StartProfiler/StopProfiler (obs/profiler.h), not set directly.
void SetProfilerSpansEnabled(bool enabled);

// Event-log bookkeeping: spans measure durations and report closes above
// the configured threshold to the structured event log (obs/event_log.h).
// Driven by StartEventLog/StopEventLog, not set directly.
void SetEventLogSpansEnabled(bool enabled);

// Telemetry bookkeeping: spans additionally publish their (static-storage)
// names into a per-thread atomic stack that AllThreadsOpenSpans() reads
// cross-thread, so /statusz can show the stages in flight on every thread.
// Driven by StartTelemetry/StopTelemetry (obs/telemetry.h), not set
// directly.
void SetTelemetrySpansEnabled(bool enabled);

// --- Clock ------------------------------------------------------------------

// Nanoseconds since the process trace epoch (steady clock; the epoch is
// fixed on first use). Every obs timestamp -- span start/end, resource
// sampler ticks, WallTimer -- comes from this one clock.
uint64_t TraceNowNs();

// Wall-clock timer on the trace clock, for coarse timing in log lines and
// bench loops that do not want a span. (Folded in from the former
// util/stopwatch.h so the repo has a single timing source.)
class WallTimer {
 public:
  WallTimer() : start_ns_(TraceNowNs()) {}

  void Reset() { start_ns_ = TraceNowNs(); }

  double ElapsedSeconds() const {
    return static_cast<double>(TraceNowNs() - start_ns_) * 1e-9;
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  uint64_t start_ns_;
};

// --- Spans ------------------------------------------------------------------

// One closed span. `name` must have static storage duration (the TG_TRACE_*
// macros pass string literals); `detail` carries optional dynamic context
// (target name, learner name) without exploding the span-name cardinality.
struct SpanRecord {
  const char* name = "";
  std::string detail;
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = root
  uint64_t start_ns = 0;  // relative to the process trace epoch
  uint64_t end_ns = 0;
  // Allocation accounting over the span's lifetime on its thread, inclusive
  // of child spans, when obs::MemoryTrackingEnabled() (see obs/memory.h);
  // zero otherwise. Allocations made by pool workers on behalf of this span
  // appear on the workers' pool_drain spans, not here.
  uint64_t alloc_bytes = 0;
  uint64_t allocs = 0;
  // Hardware-counter delta over the span's lifetime on its thread (see
  // obs/perf_counters.h); ok=false unless counters were enabled and
  // available for the whole span.
  PerfCounterValues perf;
  uint32_t tid = 0;  // dense per-thread index, see ThreadNames()
};

// RAII span scope. Construction snapshots the thread-local current span as
// parent and makes this span current; destruction records it (when tracing)
// and feeds the stage histogram (when metrics).
class Span {
 public:
  explicit Span(const char* name);
  Span(const char* name, std::string detail);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  uint64_t id() const { return id_; }

 private:
  friend std::vector<std::string> CurrentSpanStack();
  friend const char* CurrentSpanName();
  friend size_t OpenSpanNamesForSignal(const char** names, size_t max_names);

  const char* name_ = "";
  std::string detail_;
  uint64_t id_ = 0;
  uint64_t prev_current_ = 0;
  uint64_t start_ns_ = 0;
  uint64_t alloc_bytes_start_ = 0;
  uint64_t allocs_start_ = 0;
  PerfCounterValues perf_start_;
  bool active_ = false;
  // Whether this span pushed its name onto the cross-thread-readable open
  // stack (telemetry mode); the pop in ~Span must mirror the push even if
  // telemetry is toggled mid-span.
  bool published_open_ = false;
  // Link in the thread-local open-span chain behind CurrentSpanStack().
  Span* prev_open_ = nullptr;
};

// Names (with details) of the spans currently open on this thread,
// outermost first. Empty unless tracing or metrics is enabled. The TG_CHECK
// failure hook prints this so a crash report shows where in the pipeline
// the invariant broke.
std::vector<std::string> CurrentSpanStack();

// Static-storage name of the innermost span open on this thread, or nullptr
// when none is open (or no obs mode is active). One thread-local read;
// util/logging.cc stamps it onto log lines so logs and spans correlate.
const char* CurrentSpanName();

// Cross-thread view of the open spans, for /statusz: each entry is one
// thread that has ever recorded spans, with the names of its currently open
// spans outermost first. Populated only while telemetry span publication is
// on (SetTelemetrySpansEnabled); the names are read from per-thread atomic
// slots, so a stack observed mid-transition may be one frame stale but is
// never torn and never dereferences freed memory (span names have static
// storage duration).
struct ThreadOpenSpans {
  uint32_t tid = 0;
  std::string thread_name;
  std::vector<std::string> spans;
};
std::vector<ThreadOpenSpans> AllThreadsOpenSpans();

// Async-signal-safe variant for the SIGPROF handler: fills `names` with the
// open spans' static-storage name pointers, innermost first, and returns
// the count (capped at max_names). Reads only thread-local pointers; never
// allocates or locks.
size_t OpenSpanNamesForSignal(const char** names, size_t max_names);

#define TG_TRACE_CONCAT_INNER(a, b) a##b
#define TG_TRACE_CONCAT(a, b) TG_TRACE_CONCAT_INNER(a, b)
// Opens a span for the rest of the enclosing scope.
#define TG_TRACE_SPAN(name) \
  ::tg::obs::Span TG_TRACE_CONCAT(tg_trace_span_, __LINE__)(name)
#define TG_TRACE_SPAN2(name, detail) \
  ::tg::obs::Span TG_TRACE_CONCAT(tg_trace_span_, __LINE__)((name), (detail))

// Id of the innermost open span on this thread (0 if none). Cheap: a
// thread-local read, valid whether or not tracing is enabled.
uint64_t CurrentSpanId();

// Explicit parent handoff: makes `parent_span` the current span for the
// lifetime of the scope, so spans opened on this thread (e.g. inside a pool
// worker draining ParallelFor chunks) attach to the span that enqueued the
// work rather than to whatever the worker ran last.
class ParentScope {
 public:
  explicit ParentScope(uint64_t parent_span);
  ~ParentScope();

  ParentScope(const ParentScope&) = delete;
  ParentScope& operator=(const ParentScope&) = delete;

 private:
  uint64_t prev_;
};

// --- Thread identity --------------------------------------------------------

// Names this thread in trace exports ("tg-worker-3"); threads that never
// call it show up as "thread-<tid>".
void SetCurrentThreadName(std::string name);

// (tid, name) for every thread that recorded spans or registered a name.
std::vector<std::pair<uint32_t, std::string>> ThreadNames();

// --- Flush / export ---------------------------------------------------------

// Merges every thread's buffer into one list (spans recorded since the last
// ResetSpans). Safe to call while other threads are still tracing: each
// buffer is published with release/acquire ordering, so only fully-written
// records are visible. Does not consume.
std::vector<SpanRecord> SnapshotSpans();

// Marks everything currently published as consumed so the next
// SnapshotSpans starts fresh. Spans still open stay unaffected (they are
// recorded on close). For benches/tests sectioning one process run.
void ResetSpans();

// Chrome trace-event JSON (the "JSON Object Format": {"traceEvents":[...]})
// with one complete ("ph":"X") event per span, parent/detail in args, and
// thread-name metadata events. Load via chrome://tracing or
// https://ui.perfetto.dev.
std::string ChromeTraceJson();

// ChromeTraceJson written to `path`.
Status WriteChromeTrace(const std::string& path);

}  // namespace tg::obs

#endif  // TG_OBS_TRACE_H_
