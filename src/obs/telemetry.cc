#include "obs/telemetry.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "ml/tree_engine.h"
#include "numeric/kernel_backend.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/resource_sampler.h"
#include "obs/trace.h"
#include "util/build_info.h"
#include "util/http_server.h"
#include "util/json_util.h"

namespace tg::obs {

namespace {

enum class PlaneState { kDisabled, kOk, kUnavailable };

struct TelemetryState {
  // Lifecycle (Start/Stop) lock. NOT taken by the status latch: the server
  // thread latches "unavailable" from its error callback while Stop() may
  // hold this lock and join that same thread.
  std::mutex mu;
  std::unique_ptr<HttpServer> server;
  int bound_port = 0;

  // Latched process-wide status, under its own lock.
  std::mutex status_mu;
  PlaneState state = PlaneState::kDisabled;
  std::string reason;
};

TelemetryState& State() {
  static TelemetryState* state = new TelemetryState;  // leaked; see trace.cc
  return *state;
}

void LatchUnavailable(const std::string& reason) {
  TelemetryState& state = State();
  std::lock_guard<std::mutex> lock(state.status_mu);
  state.state = PlaneState::kUnavailable;
  state.reason = reason;
}

std::string FormatSample(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

bool LegalExpositionName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (alpha || c == '_' || c == ':') continue;
    if (digit && i > 0) continue;
    return false;
  }
  return true;
}

// Refreshes the process-level gauges the exposition and /statusz read, so a
// scrape always sees current values even when the resource sampler thread is
// not running.
void UpdateProcessGauges() {
  static Gauge& uptime =
      MetricsRegistry::Instance().GetGauge("process.uptime_seconds");
  static Gauge& rss = MetricsRegistry::Instance().GetGauge("process.rss_bytes");
  static Gauge& peak =
      MetricsRegistry::Instance().GetGauge("process.peak_rss_bytes");
  uptime.Set(static_cast<double>(TraceNowNs()) * 1e-9);
  const ResourceUsage usage = ReadSelfResourceUsage();
  rss.Set(static_cast<double>(usage.rss_bytes));
  peak.Set(static_cast<double>(usage.peak_rss_bytes));
}

double GaugeOrZero(const MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.gauges.find(name);
  return it == snap.gauges.end() ? 0.0 : it->second;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "tg_";
  out.reserve(name.size() + 3);
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_';
  }
  return out;
}

Status CheckPrometheusExposition() {
  const MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  std::map<std::string, std::string> seen;  // expanded name -> registry name
  auto claim = [&seen](const std::string& expanded,
                       const std::string& origin) -> Status {
    if (!LegalExpositionName(expanded)) {
      return Status::InvalidArgument("metric \"" + origin +
                                     "\" maps to illegal exposition name \"" +
                                     expanded + "\"");
    }
    auto [it, inserted] = seen.emplace(expanded, origin);
    if (!inserted) {
      return Status::InvalidArgument(
          "exposition name collision: \"" + expanded + "\" from \"" + origin +
          "\" and \"" + it->second + "\"");
    }
    return Status::OK();
  };
  for (const auto& [name, value] : snap.counters) {
    (void)value;
    TG_RETURN_IF_ERROR(claim(PrometheusName(name) + "_total", name));
  }
  for (const auto& [name, value] : snap.gauges) {
    (void)value;
    TG_RETURN_IF_ERROR(claim(PrometheusName(name), name));
  }
  for (const auto& [name, stats] : snap.histograms) {
    (void)stats;
    const std::string base = PrometheusName(name);
    TG_RETURN_IF_ERROR(claim(base + "_bucket", name));
    TG_RETURN_IF_ERROR(claim(base + "_sum", name));
    TG_RETURN_IF_ERROR(claim(base + "_count", name));
  }
  return Status::OK();
}

std::string RenderPrometheusText() {
  const MetricsSnapshot snap =
      MetricsRegistry::Instance().Snapshot(/*include_buckets=*/true);
  std::string out;
  out.reserve(snap.counters.size() * 64 + snap.gauges.size() * 64 +
              snap.histograms.size() * 1024);
  for (const auto& [name, value] : snap.counters) {
    const std::string family = PrometheusName(name) + "_total";
    out += "# TYPE " + family + " counter\n";
    out += family + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string family = PrometheusName(name);
    out += "# TYPE " + family + " gauge\n";
    out += family + " " + FormatSample(value) + "\n";
  }
  for (const auto& [name, stats] : snap.histograms) {
    const std::string family = PrometheusName(name);
    out += "# TYPE " + family + " histogram\n";
    // Cumulative series from the raw bucket reads; the final derived total
    // keeps _bucket{le="+Inf"} == _count even when the scrape races an
    // Observe() that has bumped a bucket but not yet the count field.
    uint64_t cumulative = 0;
    for (const auto& [upper, bucket_count] : stats.buckets) {
      cumulative += bucket_count;
      out += family + "_bucket{le=\"" + FormatSample(upper) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += family + "_sum " + FormatSample(stats.sum) + "\n";
    out += family + "_count " + std::to_string(cumulative) + "\n";
  }
  return out;
}

std::string RenderStatusz() {
  UpdateProcessGauges();
  const MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  const ResourceUsage usage = ReadSelfResourceUsage();

  std::string out = "{\"build_info\":" + BuildInfoJson();
  out += ",\"uptime_seconds\":" +
         JsonNumber(static_cast<double>(TraceNowNs()) * 1e-9, 6);

  out += ",\"telemetry\":{\"status\":" + JsonQuote(TelemetryStatusString());
  out += ",\"port\":" + std::to_string(TelemetryPort()) + "}";

  out += ",\"event_log\":{\"enabled\":";
  out += EventLogEnabled() ? "true" : "false";
  out += ",\"path\":" + JsonQuote(EventLogPath());
  out += ",\"emitted\":" + std::to_string(EventLogEmittedCount());
  out += ",\"dropped\":" + std::to_string(EventLogDroppedCount()) + "}";

  out += ",\"rss_bytes\":" + std::to_string(usage.rss_bytes);
  out += ",\"peak_rss_bytes\":" + std::to_string(usage.peak_rss_bytes);

  out += ",\"backends\":{\"numeric\":" + JsonQuote(kernels::ActiveBackendName());
  out += ",\"tree\":" +
         JsonQuote(ml::TreeEngineName(ml::DefaultTreeEngine())) + "}";

  // Sweep heartbeat gauges (core/pipeline.cc publishes these).
  const double total = GaugeOrZero(snap, "sweep.targets_total");
  const double done = GaugeOrZero(snap, "sweep.targets_done");
  out += ",\"sweep\":{\"targets_total\":" + JsonNumber(total, 0);
  out += ",\"targets_done\":" + JsonNumber(done, 0);
  out += ",\"targets_retried\":" +
         JsonNumber(GaugeOrZero(snap, "sweep.targets_retried"), 0);
  out += ",\"targets_degraded\":" +
         JsonNumber(GaugeOrZero(snap, "sweep.targets_degraded"), 0);
  out += ",\"targets_failed\":" +
         JsonNumber(GaugeOrZero(snap, "sweep.targets_failed"), 0);
  // Distributed-worker gauges (core/distributed_sweep.cc): this process's
  // claim/steal/reclaim activity against the shared workdir, plus janitor
  // work (the counter lives in snap.counters, not gauges).
  out += ",\"claims\":" + JsonNumber(GaugeOrZero(snap, "sweep.claims"), 0);
  out += ",\"steals\":" + JsonNumber(GaugeOrZero(snap, "sweep.steals"), 0);
  out += ",\"lease_expiries\":" +
         JsonNumber(GaugeOrZero(snap, "sweep.lease_expiries"), 0);
  {
    auto tmp = snap.counters.find("sweep.tmp_reclaimed");
    out += ",\"tmp_reclaimed\":" +
           std::to_string(tmp == snap.counters.end() ? 0 : tmp->second);
  }
  out += ",\"in_progress\":";
  out += (total > 0.0 && done < total) ? "true" : "false";
  out += "}";

  out += ",\"threads\":[";
  bool first = true;
  for (const ThreadOpenSpans& thread : AllThreadsOpenSpans()) {
    if (!first) out += ",";
    first = false;
    out += "{\"tid\":" + std::to_string(thread.tid);
    out += ",\"name\":" + JsonQuote(thread.thread_name);
    out += ",\"spans\":[";
    for (size_t i = 0; i < thread.spans.size(); ++i) {
      if (i > 0) out += ",";
      out += JsonQuote(thread.spans[i]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

Status StartTelemetry(int port) {
  TelemetryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.server != nullptr) {
    return Status::FailedPrecondition(
        "telemetry already running on port " +
        std::to_string(state.bound_port));
  }
  auto server = std::make_unique<HttpServer>();
  server->Handle("/metrics", [](const std::string&, const std::string&) {
    static Counter& scrapes =
        MetricsRegistry::Instance().GetCounter("telemetry.scrapes");
    scrapes.Increment();
    UpdateProcessGauges();
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = RenderPrometheusText();
    return response;
  });
  server->Handle("/statusz", [](const std::string&, const std::string&) {
    HttpResponse response;
    response.content_type = "application/json; charset=utf-8";
    response.body = RenderStatusz();
    return response;
  });
  server->Handle("/healthz", [](const std::string&, const std::string&) {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  });
  server->set_error_callback([](const Status& error) {
    LatchUnavailable(error.ToString());
    std::fprintf(stderr, "telemetry serve loop down: %s\n",
                 error.ToString().c_str());
  });
  Status started = server->Start(port);
  if (!started.ok()) {
    LatchUnavailable(started.ToString());
    return started;
  }
  state.server = std::move(server);
  state.bound_port = state.server->bound_port();
  {
    std::lock_guard<std::mutex> status_lock(state.status_mu);
    state.state = PlaneState::kOk;
    state.reason.clear();
  }
  // The endpoints are only useful with instruments feeding; metrics share
  // the write-only / bit-identical contract, so flipping them on here never
  // changes pipeline outputs.
  SetMetricsEnabled(true);
  SetTelemetrySpansEnabled(true);
  return Status::OK();
}

void StopTelemetry() {
  TelemetryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.server == nullptr) return;
  SetTelemetrySpansEnabled(false);
  state.server->Stop();
  state.server.reset();
  state.bound_port = 0;
  std::lock_guard<std::mutex> status_lock(state.status_mu);
  // A latched failure (accept fault killed the loop) survives Stop so the
  // run's artifacts still say the plane was unavailable.
  if (state.state == PlaneState::kOk) state.state = PlaneState::kDisabled;
}

bool TelemetryRunning() {
  TelemetryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.server != nullptr && state.server->running();
}

int TelemetryPort() {
  TelemetryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.server != nullptr ? state.bound_port : 0;
}

std::string TelemetryStatusString() {
  TelemetryState& state = State();
  std::lock_guard<std::mutex> lock(state.status_mu);
  switch (state.state) {
    case PlaneState::kDisabled:
      return "disabled";
    case PlaneState::kOk:
      return "ok";
    case PlaneState::kUnavailable:
      return "unavailable (" + state.reason + ")";
  }
  return "disabled";
}

bool MaybeStartTelemetryFromEnv() {
  if (TelemetryRunning()) return true;
  const char* value = std::getenv("TG_TELEMETRY_PORT");
  if (value == nullptr || *value == '\0') return false;
  char* end = nullptr;
  const long port = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || port < 0 || port > 65535) {
    std::fprintf(stderr, "TG_TELEMETRY_PORT=%s: not a port; telemetry off\n",
                 value);
    return false;
  }
  Status started = StartTelemetry(static_cast<int>(port));
  if (!started.ok()) {
    std::fprintf(stderr, "telemetry unavailable: %s\n",
                 started.ToString().c_str());
    return false;
  }
  std::fprintf(stderr, "telemetry: listening on 127.0.0.1:%d\n",
               TelemetryPort());
  return true;
}

}  // namespace tg::obs
