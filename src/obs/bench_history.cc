#include "obs/bench_history.h"

#include <cmath>

#include "util/json_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tg::obs {
namespace {

constexpr int kSchemaVersion = 1;

std::string StageKey(const std::string& component, uint64_t threads) {
  return component + "@" + std::to_string(threads);
}

uint64_t AsU64(const JsonValue* value) {
  if (value == nullptr || !value->is_number()) return 0;
  const double d = value->AsDouble();
  return d > 0.0 ? static_cast<uint64_t>(d) : 0;
}

std::string AsStr(const JsonValue* value, const std::string& fallback) {
  return value != nullptr && value->is_string() ? value->AsString() : fallback;
}

void ReadBuildInfo(const JsonValue* build_info, BenchRun* run) {
  if (build_info == nullptr || !build_info->is_object()) return;
  run->git_sha = AsStr(build_info->Find("git_sha"), "unknown");
  run->compiler = AsStr(build_info->Find("compiler"), "unknown");
  run->flags = AsStr(build_info->Find("flags"), "");
  run->build_type = AsStr(build_info->Find("build_type"), "unknown");
  run->sanitizer = AsStr(build_info->Find("sanitizer"), "none");
  run->tg_threads = AsU64(build_info->Find("tg_threads"));
}

Status ReadTimingsArray(const JsonValue* timings, BenchRun* run) {
  if (timings == nullptr || !timings->is_array()) {
    return Status::InvalidArgument("missing \"timings\" array");
  }
  for (size_t i = 0; i < timings->size(); ++i) {
    const JsonValue& entry = timings->at(i);
    const JsonValue* component = entry.Find("component");
    const JsonValue* seconds = entry.Find("wall_seconds");
    if (component == nullptr || !component->is_string() ||
        seconds == nullptr || !seconds->is_number()) {
      return Status::InvalidArgument("malformed timings entry " +
                                     std::to_string(i));
    }
    const uint64_t threads = AsU64(entry.Find("threads"));
    run->stage_seconds[StageKey(component->AsString(),
                                threads == 0 ? 1 : threads)] =
        seconds->AsDouble();
  }
  return Status::OK();
}

std::string BuildInfoObjectJson(const BenchRun& run) {
  std::string out = "{";
  out += "\"git_sha\":" + JsonQuote(run.git_sha);
  out += ",\"compiler\":" + JsonQuote(run.compiler);
  out += ",\"flags\":" + JsonQuote(run.flags);
  out += ",\"build_type\":" + JsonQuote(run.build_type);
  out += ",\"sanitizer\":" + JsonQuote(run.sanitizer);
  out += ",\"tg_threads\":" + std::to_string(run.tg_threads);
  out += "}";
  return out;
}

}  // namespace

Result<BenchRun> BenchRunFromTimingsJson(const std::string& timings_json,
                                         const std::string& timestamp) {
  Result<JsonValue> parsed = JsonValue::Parse(timings_json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& doc = parsed.value();
  if (!doc.is_object()) {
    return Status::InvalidArgument("timings document is not a JSON object");
  }
  BenchRun run;
  run.timestamp = timestamp;
  ReadBuildInfo(doc.Find("build_info"), &run);
  TG_RETURN_IF_ERROR(ReadTimingsArray(doc.Find("timings"), &run));
  if (const JsonValue* resources = doc.Find("resources")) {
    run.peak_rss_bytes = AsU64(resources->Find("peak_rss_bytes"));
  }
  return run;
}

Result<std::vector<BenchRun>> ParseHistoryJson(const std::string& json) {
  Result<JsonValue> parsed = JsonValue::Parse(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& doc = parsed.value();
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_number() ||
      static_cast<int>(schema->AsDouble()) != kSchemaVersion) {
    return Status::InvalidArgument(
        "BENCH_history.json schema missing or unsupported (want " +
        std::to_string(kSchemaVersion) + ")");
  }
  const JsonValue* runs = doc.Find("runs");
  if (runs == nullptr || !runs->is_array()) {
    return Status::InvalidArgument("missing \"runs\" array");
  }
  std::vector<BenchRun> out;
  out.reserve(runs->size());
  for (size_t i = 0; i < runs->size(); ++i) {
    const JsonValue& entry = runs->at(i);
    BenchRun run;
    run.timestamp = AsStr(entry.Find("timestamp"), "");
    ReadBuildInfo(entry.Find("build_info"), &run);
    run.peak_rss_bytes = AsU64(entry.Find("peak_rss_bytes"));
    TG_RETURN_IF_ERROR(ReadTimingsArray(entry.Find("timings"), &run));
    out.push_back(std::move(run));
  }
  return out;
}

std::string HistoryToJson(const std::vector<BenchRun>& runs) {
  std::string out = "{\"schema\":" + std::to_string(kSchemaVersion) +
                    ",\"runs\":[";
  bool first_run = true;
  for (const BenchRun& run : runs) {
    if (!first_run) out += ",";
    first_run = false;
    out += "{\"timestamp\":" + JsonQuote(run.timestamp);
    out += ",\"build_info\":" + BuildInfoObjectJson(run);
    out += ",\"peak_rss_bytes\":" + std::to_string(run.peak_rss_bytes);
    out += ",\"timings\":[";
    bool first_stage = true;
    for (const auto& [key, seconds] : run.stage_seconds) {
      if (!first_stage) out += ",";
      first_stage = false;
      // Split "component@threads" back into fields.
      const size_t at = key.rfind('@');
      const std::string component =
          at == std::string::npos ? key : key.substr(0, at);
      const std::string threads =
          at == std::string::npos ? "1" : key.substr(at + 1);
      out += "{\"component\":" + JsonQuote(component);
      out += ",\"threads\":" + threads;
      out += ",\"wall_seconds\":" + JsonNumber(seconds, 9) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

CompareReport CompareBenchRuns(const BenchRun& baseline,
                               const BenchRun& latest,
                               const CompareOptions& options) {
  CompareReport report;
  report.has_baseline = true;

  if (baseline.build_type != latest.build_type ||
      baseline.sanitizer != latest.sanitizer ||
      baseline.compiler != latest.compiler) {
    report.notes.push_back(
        "build stamps differ (baseline " + baseline.build_type + "/" +
        baseline.sanitizer + "/" + baseline.compiler + " vs latest " +
        latest.build_type + "/" + latest.sanitizer + "/" + latest.compiler +
        "); ratios are not apples-to-apples");
  }
  if (baseline.tg_threads != latest.tg_threads) {
    report.notes.push_back("thread counts differ (baseline " +
                           std::to_string(baseline.tg_threads) +
                           " vs latest " +
                           std::to_string(latest.tg_threads) + ")");
  }

  for (const auto& [stage, base_seconds] : baseline.stage_seconds) {
    auto it = latest.stage_seconds.find(stage);
    if (it == latest.stage_seconds.end()) {
      report.only_in_baseline.push_back(stage);
      continue;
    }
    StageDelta delta;
    delta.stage = stage;
    delta.baseline_seconds = base_seconds;
    delta.latest_seconds = it->second;
    delta.ratio = base_seconds > 0.0 ? it->second / base_seconds : 0.0;
    const auto override_it = options.stage_max_ratio.find(stage);
    if (override_it != options.stage_max_ratio.end()) {
      delta.skipped_below_floor = false;
      delta.regressed = delta.ratio > override_it->second;
    } else {
      delta.skipped_below_floor = base_seconds < options.min_seconds;
      delta.regressed = !delta.skipped_below_floor &&
                        delta.ratio > options.max_time_ratio;
    }
    if (delta.regressed) report.ok = false;
    report.stages.push_back(std::move(delta));
  }
  for (const auto& [stage, seconds] : latest.stage_seconds) {
    (void)seconds;
    if (baseline.stage_seconds.find(stage) == baseline.stage_seconds.end()) {
      report.only_in_latest.push_back(stage);
    }
  }

  if (baseline.peak_rss_bytes > 0 && latest.peak_rss_bytes > 0) {
    report.rss_ratio = static_cast<double>(latest.peak_rss_bytes) /
                       static_cast<double>(baseline.peak_rss_bytes);
    report.rss_regressed = report.rss_ratio > options.max_rss_ratio;
    if (report.rss_regressed) report.ok = false;
  }

  return report;
}

std::string CompareReport::Render() const {
  if (!has_baseline) {
    return "no baseline run in history; nothing to compare (passing)\n";
  }
  TablePrinter table({"stage", "baseline s", "latest s", "ratio", "verdict"});
  for (const StageDelta& delta : stages) {
    table.AddRow({delta.stage, FormatDouble(delta.baseline_seconds, 4),
                  FormatDouble(delta.latest_seconds, 4),
                  FormatDouble(delta.ratio, 3),
                  delta.regressed             ? "REGRESSED"
                  : delta.skipped_below_floor ? "below floor"
                                              : "ok"});
  }
  std::string out = table.Render();
  if (rss_ratio > 0.0) {
    out += "peak RSS ratio " + FormatDouble(rss_ratio, 3) +
           (rss_regressed ? "  REGRESSED\n" : "  ok\n");
  }
  for (const std::string& stage : only_in_baseline) {
    out += "note: stage only in baseline: " + stage + "\n";
  }
  for (const std::string& stage : only_in_latest) {
    out += "note: stage only in latest: " + stage + "\n";
  }
  for (const std::string& note : notes) {
    out += "note: " + note + "\n";
  }
  out += ok ? "bench-compare: OK\n" : "bench-compare: REGRESSION\n";
  return out;
}

}  // namespace tg::obs
