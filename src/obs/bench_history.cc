#include "obs/bench_history.h"

#include <cmath>

#include "util/json_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tg::obs {
namespace {

constexpr int kSchemaVersion = 1;

std::string StageKey(const std::string& component, uint64_t threads) {
  return component + "@" + std::to_string(threads);
}

uint64_t AsU64(const JsonValue* value) {
  if (value == nullptr || !value->is_number()) return 0;
  const double d = value->AsDouble();
  return d > 0.0 ? static_cast<uint64_t>(d) : 0;
}

std::string AsStr(const JsonValue* value, const std::string& fallback) {
  return value != nullptr && value->is_string() ? value->AsString() : fallback;
}

void ReadBuildInfo(const JsonValue* build_info, BenchRun* run) {
  if (build_info == nullptr || !build_info->is_object()) return;
  run->git_sha = AsStr(build_info->Find("git_sha"), "unknown");
  run->compiler = AsStr(build_info->Find("compiler"), "unknown");
  run->flags = AsStr(build_info->Find("flags"), "");
  run->build_type = AsStr(build_info->Find("build_type"), "unknown");
  run->sanitizer = AsStr(build_info->Find("sanitizer"), "none");
  run->tg_threads = AsU64(build_info->Find("tg_threads"));
}

Status ReadTimingsArray(const JsonValue* timings, BenchRun* run) {
  if (timings == nullptr || !timings->is_array()) {
    return Status::InvalidArgument("missing \"timings\" array");
  }
  for (size_t i = 0; i < timings->size(); ++i) {
    const JsonValue& entry = timings->at(i);
    const JsonValue* component = entry.Find("component");
    const JsonValue* seconds = entry.Find("wall_seconds");
    if (component == nullptr || !component->is_string() ||
        seconds == nullptr || !seconds->is_number()) {
      return Status::InvalidArgument("malformed timings entry " +
                                     std::to_string(i));
    }
    const uint64_t threads = AsU64(entry.Find("threads"));
    run->stage_seconds[StageKey(component->AsString(),
                                threads == 0 ? 1 : threads)] =
        seconds->AsDouble();
  }
  return Status::OK();
}

// Tolerant by design: "counters" is optional (runs appended before the
// counter schema, or runs where perf counters were off/unavailable), and
// malformed or partial entries are skipped rather than failing the parse --
// counter data is advisory telemetry, not part of the core schema contract.
void ReadCountersArray(const JsonValue* counters, BenchRun* run) {
  if (counters == nullptr || !counters->is_array()) return;
  for (size_t i = 0; i < counters->size(); ++i) {
    const JsonValue& entry = counters->at(i);
    const JsonValue* stage = entry.Find("stage");
    if (stage == nullptr || !stage->is_string()) continue;
    StagePerfTotals totals;
    totals.cycles = AsU64(entry.Find("cycles"));
    totals.instructions = AsU64(entry.Find("instructions"));
    totals.cache_references = AsU64(entry.Find("cache_references"));
    totals.cache_misses = AsU64(entry.Find("cache_misses"));
    totals.branch_misses = AsU64(entry.Find("branch_misses"));
    totals.spans = AsU64(entry.Find("spans"));
    run->stage_counters[stage->AsString()] = totals;
  }
}

std::string CountersArrayJson(const BenchRun& run) {
  std::string out = "[";
  bool first = true;
  for (const auto& [stage, t] : run.stage_counters) {
    if (!first) out += ",";
    first = false;
    out += "{\"stage\":" + JsonQuote(stage);
    out += ",\"cycles\":" + std::to_string(t.cycles);
    out += ",\"instructions\":" + std::to_string(t.instructions);
    out += ",\"cache_references\":" + std::to_string(t.cache_references);
    out += ",\"cache_misses\":" + std::to_string(t.cache_misses);
    out += ",\"branch_misses\":" + std::to_string(t.branch_misses);
    out += ",\"spans\":" + std::to_string(t.spans) + "}";
  }
  out += "]";
  return out;
}

std::string BuildInfoObjectJson(const BenchRun& run) {
  std::string out = "{";
  out += "\"git_sha\":" + JsonQuote(run.git_sha);
  out += ",\"compiler\":" + JsonQuote(run.compiler);
  out += ",\"flags\":" + JsonQuote(run.flags);
  out += ",\"build_type\":" + JsonQuote(run.build_type);
  out += ",\"sanitizer\":" + JsonQuote(run.sanitizer);
  out += ",\"tg_threads\":" + std::to_string(run.tg_threads);
  out += "}";
  return out;
}

}  // namespace

Result<BenchRun> BenchRunFromTimingsJson(const std::string& timings_json,
                                         const std::string& timestamp) {
  Result<JsonValue> parsed = JsonValue::Parse(timings_json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& doc = parsed.value();
  if (!doc.is_object()) {
    return Status::InvalidArgument("timings document is not a JSON object");
  }
  BenchRun run;
  run.timestamp = timestamp;
  ReadBuildInfo(doc.Find("build_info"), &run);
  TG_RETURN_IF_ERROR(ReadTimingsArray(doc.Find("timings"), &run));
  ReadCountersArray(doc.Find("counters"), &run);
  if (const JsonValue* resources = doc.Find("resources")) {
    run.peak_rss_bytes = AsU64(resources->Find("peak_rss_bytes"));
  }
  return run;
}

Result<std::vector<BenchRun>> ParseHistoryJson(const std::string& json) {
  Result<JsonValue> parsed = JsonValue::Parse(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& doc = parsed.value();
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_number() ||
      static_cast<int>(schema->AsDouble()) != kSchemaVersion) {
    return Status::InvalidArgument(
        "BENCH_history.json schema missing or unsupported (want " +
        std::to_string(kSchemaVersion) + ")");
  }
  const JsonValue* runs = doc.Find("runs");
  if (runs == nullptr || !runs->is_array()) {
    return Status::InvalidArgument("missing \"runs\" array");
  }
  std::vector<BenchRun> out;
  out.reserve(runs->size());
  for (size_t i = 0; i < runs->size(); ++i) {
    const JsonValue& entry = runs->at(i);
    BenchRun run;
    run.timestamp = AsStr(entry.Find("timestamp"), "");
    ReadBuildInfo(entry.Find("build_info"), &run);
    run.peak_rss_bytes = AsU64(entry.Find("peak_rss_bytes"));
    TG_RETURN_IF_ERROR(ReadTimingsArray(entry.Find("timings"), &run));
    ReadCountersArray(entry.Find("counters"), &run);
    out.push_back(std::move(run));
  }
  return out;
}

std::string HistoryToJson(const std::vector<BenchRun>& runs) {
  std::string out = "{\"schema\":" + std::to_string(kSchemaVersion) +
                    ",\"runs\":[";
  bool first_run = true;
  for (const BenchRun& run : runs) {
    if (!first_run) out += ",";
    first_run = false;
    out += "{\"timestamp\":" + JsonQuote(run.timestamp);
    out += ",\"build_info\":" + BuildInfoObjectJson(run);
    out += ",\"peak_rss_bytes\":" + std::to_string(run.peak_rss_bytes);
    out += ",\"timings\":[";
    bool first_stage = true;
    for (const auto& [key, seconds] : run.stage_seconds) {
      if (!first_stage) out += ",";
      first_stage = false;
      // Split "component@threads" back into fields.
      const size_t at = key.rfind('@');
      const std::string component =
          at == std::string::npos ? key : key.substr(0, at);
      const std::string threads =
          at == std::string::npos ? "1" : key.substr(at + 1);
      out += "{\"component\":" + JsonQuote(component);
      out += ",\"threads\":" + threads;
      out += ",\"wall_seconds\":" + JsonNumber(seconds, 9) + "}";
    }
    out += "]";
    // Optional: omitted entirely for counter-less runs so schema-1 history
    // files round-trip unchanged.
    if (!run.stage_counters.empty()) {
      out += ",\"counters\":" + CountersArrayJson(run);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::vector<CeilingDelta> EvaluateCeilings(
    const std::map<std::string, double>& stage_max_seconds,
    const BenchRun& latest) {
  std::vector<CeilingDelta> out;
  out.reserve(stage_max_seconds.size());
  for (const auto& [stage, ceiling] : stage_max_seconds) {
    CeilingDelta delta;
    delta.stage = stage;
    delta.ceiling_seconds = ceiling;
    const auto it = latest.stage_seconds.find(stage);
    if (it == latest.stage_seconds.end()) {
      delta.missing = true;
      delta.regressed = true;
    } else {
      delta.latest_seconds = it->second;
      delta.regressed = it->second > ceiling;
    }
    out.push_back(std::move(delta));
  }
  return out;
}

CompareReport CompareBenchRuns(const BenchRun& baseline,
                               const BenchRun& latest,
                               const CompareOptions& options) {
  CompareReport report;
  report.has_baseline = true;

  if (baseline.build_type != latest.build_type ||
      baseline.sanitizer != latest.sanitizer ||
      baseline.compiler != latest.compiler) {
    report.notes.push_back(
        "build stamps differ (baseline " + baseline.build_type + "/" +
        baseline.sanitizer + "/" + baseline.compiler + " vs latest " +
        latest.build_type + "/" + latest.sanitizer + "/" + latest.compiler +
        "); ratios are not apples-to-apples");
  }
  if (baseline.tg_threads != latest.tg_threads) {
    report.notes.push_back("thread counts differ (baseline " +
                           std::to_string(baseline.tg_threads) +
                           " vs latest " +
                           std::to_string(latest.tg_threads) + ")");
  }

  for (const auto& [stage, base_seconds] : baseline.stage_seconds) {
    auto it = latest.stage_seconds.find(stage);
    if (it == latest.stage_seconds.end()) {
      report.only_in_baseline.push_back(stage);
      continue;
    }
    StageDelta delta;
    delta.stage = stage;
    delta.baseline_seconds = base_seconds;
    delta.latest_seconds = it->second;
    delta.ratio = base_seconds > 0.0 ? it->second / base_seconds : 0.0;
    const auto override_it = options.stage_max_ratio.find(stage);
    if (override_it != options.stage_max_ratio.end()) {
      delta.skipped_below_floor = false;
      delta.regressed = delta.ratio > override_it->second;
    } else {
      delta.skipped_below_floor = base_seconds < options.min_seconds;
      delta.regressed = !delta.skipped_below_floor &&
                        delta.ratio > options.max_time_ratio;
    }
    if (delta.regressed) report.ok = false;
    report.stages.push_back(std::move(delta));
  }
  for (const auto& [stage, seconds] : latest.stage_seconds) {
    (void)seconds;
    if (baseline.stage_seconds.find(stage) == baseline.stage_seconds.end()) {
      report.only_in_latest.push_back(stage);
    }
  }

  // Absolute ceilings judge the latest run alone -- the baseline plays no
  // role, so they hold even as ratio baselines drift downward.
  report.ceilings = EvaluateCeilings(options.stage_max_seconds, latest);
  for (const CeilingDelta& delta : report.ceilings) {
    if (delta.regressed) report.ok = false;
  }

  const bool counter_gates_requested =
      options.min_ipc_ratio > 0.0 || options.max_cache_miss_ratio > 0.0;
  if (baseline.stage_counters.empty() || latest.stage_counters.empty()) {
    // Older-schema history entries (or counters-unavailable environments)
    // have no counter fields; the gates skip with a note instead of
    // erroring so a new binary can still compare against old baselines.
    if (counter_gates_requested) {
      report.notes.push_back(
          std::string("hardware counters missing in ") +
          (baseline.stage_counters.empty() ? "baseline" : "latest") +
          " run (older schema or counters unavailable); counter gates "
          "skipped");
    }
  } else {
    for (const auto& [stage, base_counters] : baseline.stage_counters) {
      const auto it = latest.stage_counters.find(stage);
      if (it == latest.stage_counters.end()) continue;
      const StagePerfTotals& latest_counters = it->second;
      CounterDelta delta;
      delta.stage = stage;
      delta.baseline_ipc = base_counters.Ipc();
      delta.latest_ipc = latest_counters.Ipc();
      delta.ipc_ratio = delta.baseline_ipc > 0.0
                            ? delta.latest_ipc / delta.baseline_ipc
                            : 0.0;
      delta.baseline_miss_rate = base_counters.CacheMissRate();
      delta.latest_miss_rate = latest_counters.CacheMissRate();
      delta.miss_ratio = delta.baseline_miss_rate > 0.0
                             ? delta.latest_miss_rate /
                                   delta.baseline_miss_rate
                             : 0.0;
      delta.skipped_below_floor =
          base_counters.cycles < options.min_counter_cycles;
      if (!delta.skipped_below_floor) {
        const bool ipc_regressed = options.min_ipc_ratio > 0.0 &&
                                   delta.baseline_ipc > 0.0 &&
                                   delta.ipc_ratio < options.min_ipc_ratio;
        const bool miss_regressed =
            options.max_cache_miss_ratio > 0.0 &&
            delta.baseline_miss_rate > 0.0 &&
            delta.miss_ratio > options.max_cache_miss_ratio;
        delta.regressed = ipc_regressed || miss_regressed;
      }
      if (delta.regressed) report.ok = false;
      report.counters.push_back(std::move(delta));
    }
  }

  if (baseline.peak_rss_bytes > 0 && latest.peak_rss_bytes > 0) {
    report.rss_ratio = static_cast<double>(latest.peak_rss_bytes) /
                       static_cast<double>(baseline.peak_rss_bytes);
    report.rss_regressed = report.rss_ratio > options.max_rss_ratio;
    if (report.rss_regressed) report.ok = false;
  }

  return report;
}

std::string CompareReport::Render() const {
  if (!has_baseline) {
    return "no baseline run in history; nothing to compare (passing)\n";
  }
  TablePrinter table({"stage", "baseline s", "latest s", "ratio", "verdict"});
  for (const StageDelta& delta : stages) {
    table.AddRow({delta.stage, FormatDouble(delta.baseline_seconds, 4),
                  FormatDouble(delta.latest_seconds, 4),
                  FormatDouble(delta.ratio, 3),
                  delta.regressed             ? "REGRESSED"
                  : delta.skipped_below_floor ? "below floor"
                                              : "ok"});
  }
  std::string out = table.Render();
  if (!ceilings.empty()) {
    TablePrinter ceiling_table({"stage", "ceiling s", "latest s", "verdict"});
    for (const CeilingDelta& delta : ceilings) {
      ceiling_table.AddRow(
          {delta.stage, FormatDouble(delta.ceiling_seconds, 4),
           delta.missing ? "missing" : FormatDouble(delta.latest_seconds, 4),
           delta.regressed ? "REGRESSED" : "ok"});
    }
    out += ceiling_table.Render();
  }
  if (!counters.empty()) {
    TablePrinter counter_table({"stage", "base IPC", "latest IPC",
                                "IPC ratio", "base miss%", "latest miss%",
                                "verdict"});
    for (const CounterDelta& delta : counters) {
      counter_table.AddRow(
          {delta.stage, FormatDouble(delta.baseline_ipc, 2),
           FormatDouble(delta.latest_ipc, 2),
           FormatDouble(delta.ipc_ratio, 3),
           FormatDouble(delta.baseline_miss_rate * 100.0, 2),
           FormatDouble(delta.latest_miss_rate * 100.0, 2),
           delta.regressed             ? "REGRESSED"
           : delta.skipped_below_floor ? "below floor"
                                       : "ok"});
    }
    out += counter_table.Render();
  }
  if (rss_ratio > 0.0) {
    out += "peak RSS ratio " + FormatDouble(rss_ratio, 3) +
           (rss_regressed ? "  REGRESSED\n" : "  ok\n");
  }
  for (const std::string& stage : only_in_baseline) {
    out += "note: stage only in baseline: " + stage + "\n";
  }
  for (const std::string& stage : only_in_latest) {
    out += "note: stage only in latest: " + stage + "\n";
  }
  for (const std::string& note : notes) {
    out += "note: " + note + "\n";
  }
  out += ok ? "bench-compare: OK\n" : "bench-compare: REGRESSION\n";
  return out;
}

}  // namespace tg::obs
