// Hardware performance counters: RAII perf_event_open counter groups
// (cycles, instructions, cache-references, cache-misses, branch-misses)
// scoped to spans, with per-stage aggregates feeding the metrics registry
// (stage.<name>.ipc / stage.<name>.cache_miss_rate gauges) and the
// bench_timings.json "counters" section consumed by the bench_history
// counter-ratio gate.
//
// Cost model: every read site begins with one relaxed atomic load of the
// enabled flag. When counters are disabled (the default) that load is the
// entire cost -- no syscalls, no fd state -- matching the tracing / memory
// / fault-injection substrates, so the hooks are compiled-in everywhere.
//
// Graceful degradation: the first enabled read on a thread opens that
// thread's counter group. If perf_event_open is denied
// (kernel.perf_event_paranoid, seccomp'd containers, missing PMU) or the
// "perf_open" fault-injection site fires (TG_FAULT=perf_open=always), the
// substrate latches a process-wide "unavailable" state with a reason
// string; every subsequent read returns ok=false and nothing else changes.
// bench_timings.json stamps the state via PerfCountersStatusJson() so a
// run without counters is labeled, never silently zero.
//
// Determinism contract: counters are read-only telemetry on retired
// instructions; enabling them never touches RNG or reorders work, so
// pipeline outputs are bit-identical with counters on or off
// (tests/obs_profiler_test.cc).
//
// Enabling: SetPerfCountersEnabled() at runtime, the TG_PERF_COUNTERS
// environment variable at startup, or `tg_cli --perf-counters`.
#ifndef TG_OBS_PERF_COUNTERS_H_
#define TG_OBS_PERF_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>

namespace tg::obs {

// Turns hardware-counter reads on or off process-wide. Enabling does not
// open any fds by itself; each thread opens its group lazily on first read.
void SetPerfCountersEnabled(bool enabled);
bool PerfCountersEnabled();

// One reading (or delta) of the counter group. `ok` is false when counters
// are disabled or unavailable; all counts are then zero. Counts are scaled
// for multiplexing (time_enabled / time_running) by the reader.
struct PerfCounterValues {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_references = 0;
  uint64_t cache_misses = 0;
  uint64_t branch_misses = 0;
  bool ok = false;

  PerfCounterValues operator-(const PerfCounterValues& other) const {
    PerfCounterValues d;
    d.cycles = cycles - other.cycles;
    d.instructions = instructions - other.instructions;
    d.cache_references = cache_references - other.cache_references;
    d.cache_misses = cache_misses - other.cache_misses;
    d.branch_misses = branch_misses - other.branch_misses;
    d.ok = ok && other.ok;
    return d;
  }
};

// This thread's cumulative counter-group reading since its group was
// opened. One relaxed load when disabled; one read() syscall when enabled.
// The first enabled call on a thread opens its group (never from a signal
// handler -- obs::Span and PerfCounterScope both construct off-signal).
PerfCounterValues ThreadPerfCounters();

// Availability probe: true once any thread successfully opened its group.
// A false return after an enabled read means the process is degraded; the
// reason (errno text, paranoid hint, or the injected-fault marker) is kept
// for reports. Probing without any prior read attempts an open on the
// calling thread.
bool PerfCountersAvailable();
std::string PerfCountersUnavailableReason();

// "disabled" | "ok" | "unavailable" -- the one-word state for stamps.
const char* PerfCountersStatusString();

// {"status":"ok"} or {"status":"unavailable","reason":"..."} or
// {"status":"disabled"} -- embedded in bench_timings.json so every timings
// artifact records whether its counter fields mean anything.
std::string PerfCountersStatusJson();

// RAII counter scope: snapshots the thread's group at construction and
// accumulates the delta into the per-stage aggregates at destruction.
// obs::Span does this implicitly for every traced span; this class is for
// bracketing non-span sections (benches, tests) and nests freely -- inner
// scopes' counts are included in outer scopes' deltas, like wall time.
class PerfCounterScope {
 public:
  explicit PerfCounterScope(const char* name);
  ~PerfCounterScope();

  PerfCounterScope(const PerfCounterScope&) = delete;
  PerfCounterScope& operator=(const PerfCounterScope&) = delete;

  // Counters consumed so far inside this scope (ok=false when degraded).
  PerfCounterValues Delta() const;

 private:
  const char* name_;
  PerfCounterValues start_;
};

// Running totals for one stage (span name), summed over every closed
// span/scope of that name on every thread.
struct StagePerfTotals {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_references = 0;
  uint64_t cache_misses = 0;
  uint64_t branch_misses = 0;
  uint64_t spans = 0;  // closes accumulated

  double Ipc() const {
    return cycles > 0
               ? static_cast<double>(instructions) / static_cast<double>(cycles)
               : 0.0;
  }
  double CacheMissRate() const {
    return cache_references > 0 ? static_cast<double>(cache_misses) /
                                      static_cast<double>(cache_references)
                                : 0.0;
  }
};

// Adds one span's delta to its stage totals and refreshes the
// stage.<name>.ipc / stage.<name>.cache_miss_rate gauges. No-op for
// deltas with ok=false. Called by obs::Span on close; public so custom
// instrumentation can feed the same aggregates.
void AccumulateStageCounters(const char* name, const PerfCounterValues& delta);

// Copy of every stage's totals (stage name -> totals). Takes a lock; for
// reports, not hot paths.
std::map<std::string, StagePerfTotals> StagePerfSnapshot();

// Clears the aggregates (tests/benches sectioning one process run).
void ResetStagePerf();

// JSON array for bench_timings.json: one object per stage with raw counts
// plus derived ipc / cache_miss_rate. "[]" when nothing accumulated.
std::string StagePerfCountersJson();

// Aligned text table of the aggregates (stage, cycles, instructions, IPC,
// cache-miss %, branch-miss rate); empty string when nothing accumulated.
std::string StagePerfTable();

}  // namespace tg::obs

#endif  // TG_OBS_PERF_COUNTERS_H_
