// Timer-based sampling CPU profiler: a POSIX CPU-time timer delivers
// SIGPROF at a configurable rate (default ~97 Hz -- prime, so it cannot
// phase-lock with millisecond-periodic work); the async-signal-safe handler
// captures a frame-pointer backtrace plus the open-span name chain into a
// lock-free thread-local ring buffer (same release/acquire block-buffer
// design as trace.cc), which is drained off-signal into per-span and
// per-symbol aggregates, a collapsed-stack dump (flamegraph.pl /
// speedscope-ready), and a top-N self/total table.
//
// Signal-safety: the handler touches only thread-local memory that was
// allocated off-signal, relaxed/release atomics, the trace clock, and the
// ucontext registers. It never allocates, locks, or calls into the C
// library beyond clock_gettime. Threads that have not yet registered a
// buffer (no span opened since profiling started) drop their samples into
// a counter instead of sampling unsafely.
//
// Attribution: every sample records the open-span *name* chain (static
// string pointers, safe to read from the handler) in addition to raw PCs,
// so samples attribute to pipeline stages even when -fomit-frame-pointer
// leaves the PC walk with a single frame. Collapsed stacks are rooted at
// the span chain: `walk_corpus;skipgram_train;SymbolA;SymbolB 42`.
//
// Cost model: when the profiler is stopped (the default) the per-span hook
// is covered by the same single relaxed mode-word load that gates tracing;
// there is no timer, no signal handler, and no buffer memory.
//
// Determinism contract: sampling observes execution, never steers it --
// SA_RESTART keeps syscalls transparent and nothing numeric reads profiler
// state -- so pipeline outputs are bit-identical with profiling on or off
// (tests/obs_profiler_test.cc).
//
// Enabling: StartProfiler()/StopProfiler() at runtime or `tg_cli
// --profile[=HZ]`; TG_PROFILE_HZ overrides the default rate.
#ifndef TG_OBS_PROFILER_H_
#define TG_OBS_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>

#include "util/status.h"

namespace tg::obs {

// Sampling rate used when StartProfiler(0) is called: TG_PROFILE_HZ when
// set to a positive integer, else 97.
int ProfilerDefaultHz();

// Starts the SIGPROF sampling timer at `hz` samples/sec of process CPU
// time (0 = ProfilerDefaultHz()). Also enables span bookkeeping
// (SetProfilerSpansEnabled) so samples can attribute to spans. Fails if
// already running or if the timer cannot be created.
Status StartProfiler(int hz = 0);

// Disarms and deletes the timer and drains every thread's buffer into the
// aggregates. The SIGPROF handler stays installed but inert (restoring the
// default disposition could terminate the process on a signal already in
// flight when the timer was disarmed). Idempotent.
Status StopProfiler();

bool ProfilerRunning();

// The rate passed to StartProfiler for the current/last run (0 = never ran).
int ProfilerHz();

// Registers the calling thread's sample ring buffer (allocating it
// off-signal). Called by obs::Span construction while profiling is active,
// so any thread that opens a span becomes sampleable; cheap no-op when
// already registered or when profiling is off.
void ProfilerEnsureThreadRegistered();

// Drains published-but-unconsumed samples from every registered thread
// into the aggregates. Called by StopProfiler and by every report getter;
// call it periodically in very long runs to keep ring buffers from
// saturating (a saturated ring drops samples and counts the drops).
void ProfilerDrain();

// Samples aggregated so far (post-drain) / samples dropped because a
// thread had no buffer or a full ring.
uint64_t ProfilerSampleCount();
uint64_t ProfilerDroppedSampleCount();

// Clears aggregates and counts (tests/benches sectioning one process run).
// Must not be called while the profiler is running.
void ResetProfile();

// Collapsed-stack text: one "frame;frame;...;leaf count" line per unique
// stack, rooted at the span-name chain, newline-terminated. Feed to
// flamegraph.pl or speedscope. Empty string when no samples.
std::string CollapsedStacks();

// CollapsedStacks() written atomically to `path`.
Status WriteCollapsedStacks(const std::string& path);

// Aligned table of the hottest symbols: self samples (leaf frames), total
// samples (anywhere in the stack), and self%. `top_n` rows, hottest first.
std::string ProfileReportTable(size_t top_n = 20);

// Sample counts keyed by innermost open span name at sample time; samples
// taken outside any span land under "(no span)".
std::map<std::string, uint64_t> SpanProfileSampleCounts();

// Sample counts keyed by innermost open span *id* -- consumed by the
// Chrome-trace exporter to stamp "profile_samples" onto span args.
std::map<uint64_t, uint64_t> SpanIdProfileSampleCounts();

// Chrome-trace "ph":"C" counter events (one "profiler_samples" track of
// cumulative sample count on the TraceNowNs clock, so the track lines up
// with span rows). Comma-separated event objects, no brackets; empty when
// no samples. Spliced into ChromeTraceJson next to the RSS track.
std::string ProfilerCounterEventsJson();

// {"hz":97,"samples":N,"dropped":M} -- stamped into bench_timings.json.
std::string ProfileSummaryJson();

}  // namespace tg::obs

#endif  // TG_OBS_PROFILER_H_
