// Process-wide metrics registry: named counters, gauges (accumulating
// doubles), and fixed-exponential-bucket histograms.
//
// Hot-path contract: instruments are resolved by name ONCE (call sites hold a
// function-local static reference) and then updated with a single relaxed
// atomic RMW -- safe from any thread, including pool workers, and never
// observable in pipeline results (metrics are write-only telemetry; nothing
// in the numeric code reads them back).
//
// Naming convention (see docs/observability.md):
//   <subsystem>.<object>.<event>        counters   e.g. pipeline.embedding_cache.hit
//   stage.<span_name>.seconds           histograms fed by obs::Span on close
//   thread_pool.worker_busy_seconds     gauges accumulate
#ifndef TG_OBS_METRICS_H_
#define TG_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tg::obs {

class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A double-valued instrument supporting both Set (last-write-wins gauge
// semantics) and Add (accumulator semantics, e.g. busy-seconds).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) {
    // std::atomic<double>::fetch_add is a C++20 library feature
    // (P0020R6); older standard libraries declare atomic<double> without
    // it, so fall back to a CAS loop where the feature macro is absent.
#if defined(__cpp_lib_atomic_float) && __cpp_lib_atomic_float >= 201711L
    value_.fetch_add(v, std::memory_order_relaxed);
#else
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + v,
                                         std::memory_order_relaxed)) {
    }
#endif
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramOptions {
  // Bucket i covers (first_bound * growth^(i-1), first_bound * growth^i];
  // bucket 0 covers (-inf, first_bound]. One extra overflow bucket catches
  // everything above the last finite bound. Defaults span 1us .. ~34s in
  // powers of two -- suited to stage durations in seconds.
  double first_bound = 1e-6;
  double growth = 2.0;
  size_t num_buckets = 36;
};

class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options = {});

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // +inf / -inf respectively when empty.
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }

  // Finite buckets + one overflow bucket.
  size_t num_buckets() const { return buckets_.size(); }
  // Inclusive upper bound of bucket i; +inf for the overflow bucket.
  double BucketUpperBound(size_t i) const;
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Bucket-resolution quantile estimate (returns the upper bound of the
  // bucket containing the q-quantile); 0 when empty.
  double Quantile(double q) const;

  void Reset();

  const HistogramOptions& options() const { return options_; }

 private:
  HistogramOptions options_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

// Point-in-time copy of one histogram's summary statistics. Quantiles are
// bucket-resolution estimates (see Histogram::Quantile).
struct HistogramStats {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  // Per-bucket (inclusive upper bound, raw count) pairs, the overflow bucket
  // last with an infinite bound. Filled only by Snapshot(true) -- the
  // Prometheus exposition path -- and left empty otherwise so the common
  // snapshot stays cheap.
  std::vector<std::pair<double, uint64_t>> buckets;
};

// Point-in-time copy of the whole registry, for diffing (cold vs warm
// passes) and rendering without holding the registry lock.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  // Resolve-or-create by name. The returned references live as long as the
  // process; call sites cache them (function-local static) so the map lookup
  // happens once per site, not per event.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          const HistogramOptions& options = {});

  // Point-in-time copy of the registry. `include_buckets` additionally
  // copies every histogram's raw bucket counts (the /metrics exposition
  // needs the full distribution, not just quantiles). Individual bucket
  // loads are relaxed, so a snapshot taken mid-Observe can carry a bucket
  // increment the count_ field has not seen yet; consumers that need an
  // internally consistent series (cumulative _bucket/_count) must derive
  // the total from the buckets themselves.
  MetricsSnapshot Snapshot(bool include_buckets = false) const;

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  // Histograms include count/sum/min/max/p50/p95 and the nonzero buckets.
  std::string ToJson() const;

  // Aligned text table of every instrument (counters sorted first), rendered
  // through TablePrinter.
  std::string RenderTable() const;

  // Zeroes every registered instrument. For tests and benches only: callers
  // must be quiescent (no concurrent updates) or counts may be torn across
  // the reset boundary (individual operations stay atomic).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// The "stage.<span_name>.seconds" histogram fed by obs::Span when metrics
// are enabled; exposed so benches/CLI can read stage timings back.
Histogram& StageHistogram(const std::string& span_name);

// The "stage.<span_name>.alloc_bytes" histogram fed by obs::Span when
// metrics AND memory tracking (obs/memory.h) are both enabled: one
// observation per span close, valued at the span's inclusive allocated
// bytes. Buckets span 1 KiB .. ~32 TiB in powers of two.
Histogram& StageAllocHistogram(const std::string& span_name);

}  // namespace tg::obs

#endif  // TG_OBS_METRICS_H_
