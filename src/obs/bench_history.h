// Run-over-run benchmark history: parse one bench_timings.json snapshot
// into a BenchRun, accumulate runs into bench_csv/BENCH_history.json, and
// diff the latest run against a baseline with regression thresholds. The
// tools/bench_history CLI wraps these (append / compare / show);
// tools/run_checks.sh uses compare as a pre-PR gate.
//
// BENCH_history.json schema (schema version 1):
//   {
//     "schema": 1,
//     "runs": [
//       {
//         "timestamp": "<ISO-8601 UTC, append time>",
//         "build_info": {"git_sha": "...", "compiler": "...", "flags": "...",
//                        "build_type": "...", "sanitizer": "...",
//                        "cxx_standard": N, "tg_threads": N},
//         "peak_rss_bytes": N,
//         "timings": [
//           {"component": "...", "threads": N, "wall_seconds": S}, ...
//         ],
//         "counters": [        // optional (absent before PR 7, or when
//           {"stage": "...",   //  hardware counters were off/unavailable)
//            "cycles": N, "instructions": N, "cache_references": N,
//            "cache_misses": N, "branch_misses": N, "spans": N}, ...
//         ]
//       }, ...
//     ]
//   }
#ifndef TG_OBS_BENCH_HISTORY_H_
#define TG_OBS_BENCH_HISTORY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/perf_counters.h"
#include "util/status.h"

namespace tg::obs {

// One benchmark run: build provenance plus per-stage wall times keyed
// "component@threads" (e.g. "skipgram_sharded@1").
struct BenchRun {
  std::string timestamp;
  std::string git_sha;
  std::string compiler;
  std::string flags;
  std::string build_type;
  std::string sanitizer;
  uint64_t tg_threads = 0;
  uint64_t peak_rss_bytes = 0;
  std::map<std::string, double> stage_seconds;
  // Hardware-counter totals keyed by plain stage (span) name -- no @threads
  // suffix, since counter totals merge every thread configuration of a
  // stage. Empty when the run predates the counter schema or counters were
  // disabled/unavailable; every consumer must tolerate that.
  std::map<std::string, StagePerfTotals> stage_counters;
};

// Parses a bench_csv/bench_timings.json document (the format
// bench_common.h's WriteTimingsJson emits: "timings" array + "build_info" +
// "resources"). `timestamp` is stamped by the caller at append time.
Result<BenchRun> BenchRunFromTimingsJson(const std::string& timings_json,
                                         const std::string& timestamp);

// Parses a BENCH_history.json document. An unknown schema version is an
// error; an empty runs array is fine.
Result<std::vector<BenchRun>> ParseHistoryJson(const std::string& json);

// Serializes runs back to the schema above (validates round-trip clean).
std::string HistoryToJson(const std::vector<BenchRun>& runs);

struct CompareOptions {
  // A stage regresses when latest/baseline exceeds this ratio...
  double max_time_ratio = 1.30;
  // ...unless the baseline is below this floor (sub-centisecond stages are
  // dominated by scheduler noise on shared CI hardware).
  double min_seconds = 0.01;
  // Peak-RSS regression threshold (ratio of latest to baseline).
  double max_rss_ratio = 1.50;
  // Per-stage overrides of max_time_ratio, keyed "component@threads". A
  // value below 1.0 demands an improvement: the dispatch gate pins
  // "skipgram_sharded@1" under 1/1.5 so the SIMD speedup cannot silently
  // erode. Overridden stages ignore the min_seconds floor (pinning a stage
  // is an explicit statement that its baseline is trustworthy).
  std::map<std::string, double> stage_max_ratio;
  // Absolute wall-time ceilings in seconds, keyed "component@threads",
  // evaluated against the LATEST run only. Unlike a sub-1.0 ratio pin --
  // which starts failing the run after the improvement it demanded lands in
  // the baseline -- an absolute ceiling is stable run over run, so it is the
  // right way to make a speedup permanently improvement-demanding. A ceiling
  // stage missing from the latest run regresses (a gate that silently
  // stopped measuring is not a passing gate).
  std::map<std::string, double> stage_max_seconds;
  // Hardware-counter gates (0 = disabled). A stage regresses when
  // latest_ipc / baseline_ipc drops below min_ipc_ratio, or when
  // latest_miss_rate / baseline_miss_rate exceeds max_cache_miss_ratio.
  // Stages whose baseline saw fewer than min_counter_cycles cycles are
  // skipped as noise. Runs missing counters entirely (appended before the
  // counter schema, or counters unavailable in that environment) produce a
  // note and skip the gates -- never an error.
  double min_ipc_ratio = 0.0;
  double max_cache_miss_ratio = 0.0;
  uint64_t min_counter_cycles = 10000000;
};

struct StageDelta {
  std::string stage;       // "component@threads"
  double baseline_seconds = 0.0;
  double latest_seconds = 0.0;
  double ratio = 0.0;      // latest / baseline
  bool regressed = false;
  bool skipped_below_floor = false;
};

struct CounterDelta {
  std::string stage;  // plain stage name (no @threads)
  double baseline_ipc = 0.0;
  double latest_ipc = 0.0;
  double ipc_ratio = 0.0;        // latest / baseline (0 when baseline is 0)
  double baseline_miss_rate = 0.0;
  double latest_miss_rate = 0.0;
  double miss_ratio = 0.0;       // latest / baseline (0 when baseline is 0)
  bool regressed = false;
  bool skipped_below_floor = false;  // baseline cycles under the noise floor
};

// One absolute-ceiling verdict (CompareOptions::stage_max_seconds).
struct CeilingDelta {
  std::string stage;  // "component@threads"
  double ceiling_seconds = 0.0;
  double latest_seconds = 0.0;  // 0 when missing
  bool missing = false;         // stage absent from the latest run
  bool regressed = false;
};

struct CompareReport {
  bool has_baseline = false;  // false: nothing to compare against, passes
  bool ok = true;             // false iff any stage or RSS regressed
  std::vector<StageDelta> stages;      // stages present in both runs
  std::vector<CeilingDelta> ceilings;  // absolute stage_max_seconds gates
  std::vector<CounterDelta> counters;  // stages with counters in both runs
  std::vector<std::string> only_in_baseline;
  std::vector<std::string> only_in_latest;
  double rss_ratio = 0.0;     // 0 when either run lacks a peak-RSS reading
  bool rss_regressed = false;
  std::vector<std::string> notes;  // e.g. build-stamp mismatches

  // Human-readable multi-line rendering (table + verdict line).
  std::string Render() const;
};

// Evaluates absolute stage ceilings against a single run. Needs no
// baseline, so callers can gate the very first run in a fresh history;
// CompareBenchRuns routes CompareOptions::stage_max_seconds through this.
std::vector<CeilingDelta> EvaluateCeilings(
    const std::map<std::string, double>& stage_max_seconds,
    const BenchRun& latest);

// Diffs `latest` against `baseline`. Build-stamp mismatches (different
// build_type / sanitizer / compiler) do not fail the compare but are noted
// in the report, since cross-build ratios are not meaningful evidence.
CompareReport CompareBenchRuns(const BenchRun& baseline,
                               const BenchRun& latest,
                               const CompareOptions& options = {});

}  // namespace tg::obs

#endif  // TG_OBS_BENCH_HISTORY_H_
