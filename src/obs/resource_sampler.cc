#include "obs/resource_sampler.h"

#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json_util.h"

namespace tg::obs {
namespace {

// Parses "VmRSS:     123 kB" style lines from /proc/self/status.
bool ParseStatusLineKb(const char* line, const char* key, uint64_t* out_kb) {
  const size_t key_len = std::strlen(key);
  if (std::strncmp(line, key, key_len) != 0) return false;
  uint64_t kb = 0;
  if (std::sscanf(line + key_len, " %" SCNu64, &kb) != 1) return false;
  *out_kb = kb;
  return true;
}

struct SamplerState {
  mutable std::mutex mu;
  std::condition_variable cv;
  bool running = false;
  bool stop_requested = false;
  std::thread thread;
  ResourceSamplerOptions options;
  std::vector<ResourceSample> samples;
};

SamplerState& State() {
  // Leaked: the sampler thread may outlive static destruction checks and
  // the sample buffer must stay valid for a final trace export.
  static SamplerState* state = new SamplerState;
  return *state;
}

void RecordSample(SamplerState& state) {
  ResourceSample sample;
  sample.t_ns = TraceNowNs();
  sample.usage = ReadSelfResourceUsage();
  if (!sample.usage.ok) return;

  static Gauge& rss =
      MetricsRegistry::Instance().GetGauge("process.rss_bytes");
  static Gauge& peak =
      MetricsRegistry::Instance().GetGauge("process.peak_rss_bytes");
  static Gauge& faults =
      MetricsRegistry::Instance().GetGauge("process.major_faults");
  rss.Set(static_cast<double>(sample.usage.rss_bytes));
  peak.Set(static_cast<double>(sample.usage.peak_rss_bytes));
  faults.Set(static_cast<double>(sample.usage.major_faults));

  std::lock_guard<std::mutex> lock(state.mu);
  if (state.samples.size() >= state.options.max_samples &&
      !state.samples.empty()) {
    state.samples.erase(state.samples.begin());
  }
  state.samples.push_back(sample);
}

void SamplerLoop(SamplerState& state) {
  SetCurrentThreadName("tg-resource-sampler");
  RecordSample(state);
  std::unique_lock<std::mutex> lock(state.mu);
  const auto interval = std::chrono::milliseconds(state.options.interval_ms);
  while (!state.stop_requested) {
    state.cv.wait_for(lock, interval,
                      [&state] { return state.stop_requested; });
    if (state.stop_requested) break;
    lock.unlock();
    RecordSample(state);
    lock.lock();
  }
}

}  // namespace

ResourceUsage ReadSelfResourceUsage() {
  ResourceUsage usage;
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return usage;
  char line[256];
  uint64_t rss_kb = 0;
  uint64_t peak_kb = 0;
  bool have_rss = false;
  bool have_peak = false;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    have_rss = have_rss || ParseStatusLineKb(line, "VmRSS:", &rss_kb);
    have_peak = have_peak || ParseStatusLineKb(line, "VmHWM:", &peak_kb);
    if (have_rss && have_peak) break;
  }
  std::fclose(status);
  if (!have_rss) return usage;
  usage.rss_bytes = rss_kb * 1024;
  usage.peak_rss_bytes = peak_kb * 1024;

  // majflt is field 12 of /proc/self/stat; comm (field 2) may contain
  // spaces but is parenthesized, so scan from after the closing paren.
  std::FILE* stat = std::fopen("/proc/self/stat", "r");
  if (stat != nullptr) {
    char buffer[1024];
    if (std::fgets(buffer, sizeof(buffer), stat) != nullptr) {
      const char* after_comm = std::strrchr(buffer, ')');
      if (after_comm != nullptr) {
        // after ')': state(3) ppid(4) pgrp(5) session(6) tty(7) tpgid(8)
        // flags(9) minflt(10) cminflt(11) majflt(12)
        uint64_t majflt = 0;
        if (std::sscanf(after_comm + 1,
                        " %*c %*d %*d %*d %*d %*d %*u %*u %*u %" SCNu64,
                        &majflt) == 1) {
          usage.major_faults = majflt;
        }
      }
    }
    std::fclose(stat);
  }
  usage.ok = true;
  return usage;
}

ResourceSampler& ResourceSampler::Instance() {
  static ResourceSampler* sampler = new ResourceSampler;
  return *sampler;
}

void ResourceSampler::Start(const ResourceSamplerOptions& options) {
  SamplerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.running) return;
  state.options = options;
  if (state.options.interval_ms < 1) state.options.interval_ms = 1;
  if (state.options.max_samples < 2) state.options.max_samples = 2;
  state.stop_requested = false;
  state.running = true;
  state.thread = std::thread([&state] { SamplerLoop(state); });
}

void ResourceSampler::Stop() {
  SamplerState& state = State();
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.running) return;
    state.stop_requested = true;
    to_join = std::move(state.thread);
  }
  state.cv.notify_all();
  to_join.join();
  // Final sample so the exported timeline covers the full run.
  RecordSample(state);
  std::lock_guard<std::mutex> lock(state.mu);
  state.running = false;
}

bool ResourceSampler::running() const {
  SamplerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.running;
}

std::vector<ResourceSample> ResourceSampler::Samples() const {
  SamplerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.samples;
}

void ResourceSampler::ClearSamples() {
  SamplerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.samples.clear();
}

std::string ResourceCounterEventsJson() {
  const std::vector<ResourceSample> samples =
      ResourceSampler::Instance().Samples();
  std::string out;
  bool first = true;
  for (const ResourceSample& sample : samples) {
    if (!first) out += ",";
    first = false;
    const std::string ts =
        JsonNumber(static_cast<double>(sample.t_ns) / 1e3, 15);
    out += "{\"ph\":\"C\",\"pid\":1,\"name\":\"process_memory_mb\",\"ts\":" +
           ts + ",\"args\":{\"rss\":" +
           JsonNumber(static_cast<double>(sample.usage.rss_bytes) / 1048576.0,
                      9) +
           ",\"peak_rss\":" +
           JsonNumber(
               static_cast<double>(sample.usage.peak_rss_bytes) / 1048576.0,
               9) +
           "}}";
    out += ",{\"ph\":\"C\",\"pid\":1,\"name\":\"process_major_faults\","
           "\"ts\":" +
           ts + ",\"args\":{\"major_faults\":" +
           std::to_string(sample.usage.major_faults) + "}}";
  }
  return out;
}

}  // namespace tg::obs
