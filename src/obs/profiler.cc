#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "obs/trace.h"
#include "util/atomic_file.h"
#include "util/json_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

#if defined(__linux__)
#include <dlfcn.h>
#include <pthread.h>
#include <ucontext.h>
#include <cxxabi.h>
#endif

namespace tg::obs {
namespace {

constexpr size_t kMaxSpanDepth = 8;
constexpr size_t kMaxFrames = 24;
// Ring capacity per thread: ~42s of samples at the default 97 Hz before a
// drain is needed; a full ring drops (and counts) rather than overwrites,
// so the drain side never races a writer on the same slot.
constexpr size_t kRingCapacity = 4096;

// One sample, written entirely inside the signal handler. Span names are
// static-storage string pointers captured from the open-span chain
// (innermost first); PCs come from the frame-pointer walk (innermost
// first, pcs[0] = interrupted instruction).
struct RawSample {
  uint64_t t_ns = 0;
  uint64_t span_id = 0;
  uint32_t num_names = 0;
  uint32_t num_pcs = 0;
  const char* names[kMaxSpanDepth];
  uintptr_t pcs[kMaxFrames];
};

// Lock-free SPSC ring: the owning thread's signal handler publishes with a
// release store of `published`; the drain thread consumes with an acquire
// load and advances `consumed` with a release store the handler reads with
// an acquire load before reusing a slot.
struct ThreadSampleBuffer {
  std::atomic<uint64_t> published{0};
  std::atomic<uint64_t> consumed{0};
  uintptr_t stack_lo = 0;  // pthread stack bounds for FP-walk validation;
  uintptr_t stack_hi = 0;  // 0 = unknown, PC-only samples
  RawSample slots[kRingCapacity];
};

struct SampleRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadSampleBuffer>> buffers;
};

SampleRegistry& Registry() {
  // Leaked (like the trace-buffer registry) so buffers outlive thread exit
  // and remain drainable until process end.
  static SampleRegistry* registry = new SampleRegistry;
  return *registry;
}

// Raw pointer read by the signal handler; the shared_ptr holder (plus the
// registry) keeps the buffer alive. Signals on this thread are sequenced
// with these writes, so a plain store plus a signal fence suffices.
thread_local ThreadSampleBuffer* t_buffer_raw = nullptr;
thread_local std::shared_ptr<ThreadSampleBuffer> t_buffer_holder;

std::atomic<bool> g_running{false};
std::atomic<uint64_t> g_dropped{0};
std::mutex g_lifecycle_mu;
int g_hz = 0;  // guarded by g_lifecycle_mu for writes; reports read racily
#if defined(__linux__)
timer_t g_timer;
bool g_handler_installed = false;  // guarded by g_lifecycle_mu
#endif

// --- Signal handler ---------------------------------------------------------

#if defined(__linux__)

// Frame-pointer chain walk, validated so a garbage RBP (the default -O2
// build omits frame pointers) terminates cleanly instead of faulting:
// every candidate frame must lie inside the thread's stack, be
// pointer-aligned, and move monotonically toward the stack base.
size_t CaptureBacktrace(void* uc_void, const ThreadSampleBuffer* buf,
                        uintptr_t* pcs, size_t max) {
  if (uc_void == nullptr) return 0;
  const ucontext_t* uc = static_cast<const ucontext_t*>(uc_void);
  uintptr_t pc = 0;
  uintptr_t fp = 0;
#if defined(__x86_64__)
  pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  return 0;
#endif
  size_t n = 0;
  if (pc != 0 && n < max) pcs[n++] = pc;
  if (buf->stack_lo == 0 || buf->stack_hi == 0) return n;
  while (n < max && fp >= buf->stack_lo &&
         fp + 2 * sizeof(uintptr_t) <= buf->stack_hi &&
         fp % sizeof(uintptr_t) == 0) {
    const uintptr_t next_fp = *reinterpret_cast<const uintptr_t*>(fp);
    const uintptr_t ret =
        *reinterpret_cast<const uintptr_t*>(fp + sizeof(uintptr_t));
    if (ret == 0) break;
    pcs[n++] = ret;
    if (next_fp <= fp) break;
    fp = next_fp;
  }
  return n;
}

// Async-signal-safe by construction: thread-local memory allocated
// off-signal, relaxed/acquire/release atomics, the (primed) trace clock,
// and ucontext register reads. No allocation, no locks, no stdio.
void SigprofHandler(int /*signo*/, siginfo_t* /*info*/, void* uc_void) {
  const int saved_errno = errno;
  if (g_running.load(std::memory_order_relaxed)) {
    ThreadSampleBuffer* buf = t_buffer_raw;
    if (buf == nullptr) {
      // Thread never opened a span since profiling started: no buffer was
      // allocated off-signal, so the sample is dropped, not taken unsafely.
      g_dropped.fetch_add(1, std::memory_order_relaxed);
    } else {
      const uint64_t w = buf->published.load(std::memory_order_relaxed);
      if (w - buf->consumed.load(std::memory_order_acquire) >=
          kRingCapacity) {
        g_dropped.fetch_add(1, std::memory_order_relaxed);
      } else {
        RawSample& s = buf->slots[w % kRingCapacity];
        s.t_ns = TraceNowNs();
        s.span_id = CurrentSpanId();
        s.num_names = static_cast<uint32_t>(
            OpenSpanNamesForSignal(s.names, kMaxSpanDepth));
        s.num_pcs =
            static_cast<uint32_t>(CaptureBacktrace(uc_void, buf, s.pcs,
                                                   kMaxFrames));
        buf->published.store(w + 1, std::memory_order_release);
      }
    }
  }
  errno = saved_errno;
}

#endif  // __linux__

// --- Aggregates (off-signal) ------------------------------------------------

struct SymbolStat {
  uint64_t self = 0;
  uint64_t total = 0;
};

struct ProfileAggregates {
  std::mutex mu;
  uint64_t samples = 0;
  std::map<std::string, uint64_t> stacks;       // collapsed key -> count
  std::map<std::string, uint64_t> span_counts;  // innermost span name
  std::map<uint64_t, uint64_t> span_id_counts;
  std::map<std::string, SymbolStat> symbols;
  std::map<uintptr_t, std::string> symbol_cache;
  std::vector<uint64_t> sample_times_ns;
};

ProfileAggregates& Aggregates() {
  static ProfileAggregates* agg = new ProfileAggregates;
  return *agg;
}

std::string SymbolizePc(uintptr_t pc, bool is_return_address,
                        std::map<uintptr_t, std::string>* cache) {
  const auto it = cache->find(pc);
  if (it != cache->end()) return it->second;
  std::string name;
#if defined(__linux__)
  // Return addresses point just past the call; back up one byte so the
  // lookup lands inside the calling function, not whatever follows it.
  const uintptr_t lookup = is_return_address && pc != 0 ? pc - 1 : pc;
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  if (dladdr(reinterpret_cast<void*>(lookup), &info) != 0 &&
      info.dli_sname != nullptr) {
    int demangle_status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr,
                                          &demangle_status);
    if (demangle_status == 0 && demangled != nullptr) {
      name = demangled;
    } else {
      name = info.dli_sname;
    }
    std::free(demangled);
  }
#else
  (void)is_return_address;
#endif
  if (name.empty()) {
    char hex[2 + 2 * sizeof(uintptr_t) + 1];
    std::snprintf(hex, sizeof(hex), "0x%zx", static_cast<size_t>(pc));
    name = hex;
  }
  // Collapsed-stack separators must not appear inside a frame name.
  std::replace(name.begin(), name.end(), ';', ',');
  (*cache)[pc] = name;
  return name;
}

void AggregateSample(const RawSample& s, ProfileAggregates* agg) {
  agg->samples += 1;
  agg->sample_times_ns.push_back(s.t_ns);
  const char* innermost =
      s.num_names > 0 ? s.names[0] : "(no span)";
  agg->span_counts[innermost] += 1;
  if (s.span_id != 0) agg->span_id_counts[s.span_id] += 1;

  // Collapsed key, root first: outermost span .. innermost span, then
  // outermost frame .. the interrupted PC.
  std::string key;
  for (size_t i = s.num_names; i > 0; --i) {
    if (!key.empty()) key += ';';
    key += s.names[i - 1];
  }
  std::vector<std::string> frame_names;
  frame_names.reserve(s.num_pcs);
  for (size_t i = 0; i < s.num_pcs; ++i) {
    frame_names.push_back(
        SymbolizePc(s.pcs[i], /*is_return_address=*/i > 0,
                    &agg->symbol_cache));
  }
  for (size_t i = frame_names.size(); i > 0; --i) {
    if (!key.empty()) key += ';';
    key += frame_names[i - 1];
  }
  if (key.empty()) key = "(unattributed)";
  agg->stacks[key] += 1;

  // Per-symbol: self = leaf frame only, total = once per sample for every
  // symbol present anywhere in the stack (recursion counts once).
  if (!frame_names.empty()) {
    agg->symbols[frame_names[0]].self += 1;
  } else {
    // No walkable frames: attribute self time to the innermost span so the
    // report stays meaningful under -fomit-frame-pointer.
    agg->symbols[std::string("span:") + innermost].self += 1;
    agg->symbols[std::string("span:") + innermost].total += 1;
  }
  const std::set<std::string> unique(frame_names.begin(), frame_names.end());
  for (const std::string& sym : unique) {
    agg->symbols[sym].total += 1;
  }
}

void DrainInto(ProfileAggregates* agg) {
  SampleRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& buf : registry.buffers) {
    const uint64_t published = buf->published.load(std::memory_order_acquire);
    const uint64_t consumed = buf->consumed.load(std::memory_order_relaxed);
    for (uint64_t i = consumed; i < published; ++i) {
      AggregateSample(buf->slots[i % kRingCapacity], agg);
    }
    buf->consumed.store(published, std::memory_order_release);
  }
}

}  // namespace

int ProfilerDefaultHz() {
  const char* env = std::getenv("TG_PROFILE_HZ");
  if (env != nullptr && *env != '\0') {
    const int hz = std::atoi(env);
    if (hz > 0) return hz;
  }
  return 97;
}

bool ProfilerRunning() { return g_running.load(std::memory_order_relaxed); }

int ProfilerHz() { return g_hz; }

void ProfilerEnsureThreadRegistered() {
  if (t_buffer_raw != nullptr) return;
  if (!g_running.load(std::memory_order_relaxed)) return;
  auto fresh = std::make_shared<ThreadSampleBuffer>();
#if defined(__linux__)
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* stack_addr = nullptr;
    size_t stack_size = 0;
    if (pthread_attr_getstack(&attr, &stack_addr, &stack_size) == 0) {
      fresh->stack_lo = reinterpret_cast<uintptr_t>(stack_addr);
      fresh->stack_hi = fresh->stack_lo + stack_size;
    }
    pthread_attr_destroy(&attr);
  }
#endif
  {
    SampleRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.buffers.push_back(fresh);
  }
  t_buffer_holder = fresh;
  // Publish to the signal handler last; the fence keeps the buffer's
  // initialization from sinking below the pointer store.
  std::atomic_signal_fence(std::memory_order_release);
  t_buffer_raw = fresh.get();
}

Status StartProfiler(int hz) {
#if !defined(__linux__)
  (void)hz;
  return Status::FailedPrecondition(
      "sampling profiler requires Linux (timer_create/SIGPROF)");
#else
  std::lock_guard<std::mutex> lock(g_lifecycle_mu);
  if (g_running.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("profiler already running");
  }
  if (hz == 0) hz = ProfilerDefaultHz();
  if (hz < 1 || hz > 10000) {
    return Status::InvalidArgument("profile rate out of range [1,10000]: " +
                                   std::to_string(hz));
  }
  (void)TraceNowNs();  // prime the trace epoch off-signal
  if (!g_handler_installed) {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = &SigprofHandler;
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&action.sa_mask);
    if (sigaction(SIGPROF, &action, nullptr) != 0) {
      return Status::Internal(std::string("sigaction(SIGPROF): ") +
                              std::strerror(errno));
    }
    g_handler_installed = true;
  }
  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_SIGNAL;
  sev.sigev_signo = SIGPROF;
  if (timer_create(CLOCK_PROCESS_CPUTIME_ID, &sev, &g_timer) != 0) {
    return Status::Internal(std::string("timer_create: ") +
                            std::strerror(errno));
  }
  g_hz = hz;
  g_running.store(true, std::memory_order_relaxed);
  SetProfilerSpansEnabled(true);
  ProfilerEnsureThreadRegistered();
  const long period_ns = 1000000000L / hz;
  struct itimerspec spec;
  spec.it_interval.tv_sec = period_ns / 1000000000L;
  spec.it_interval.tv_nsec = period_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  if (timer_settime(g_timer, 0, &spec, nullptr) != 0) {
    const Status status = Status::Internal(std::string("timer_settime: ") +
                                           std::strerror(errno));
    g_running.store(false, std::memory_order_relaxed);
    SetProfilerSpansEnabled(false);
    timer_delete(g_timer);
    return status;
  }
  return Status::OK();
#endif
}

Status StopProfiler() {
#if !defined(__linux__)
  return Status::OK();
#else
  std::lock_guard<std::mutex> lock(g_lifecycle_mu);
  if (!g_running.load(std::memory_order_relaxed)) return Status::OK();
  struct itimerspec zero;
  std::memset(&zero, 0, sizeof(zero));
  timer_settime(g_timer, 0, &zero, nullptr);
  timer_delete(g_timer);
  // The handler stays installed: a SIGPROF already in flight when the timer
  // was disarmed would otherwise hit the default disposition (terminate).
  // g_running gates it to a no-op instead.
  g_running.store(false, std::memory_order_relaxed);
  SetProfilerSpansEnabled(false);
  ProfilerDrain();
  return Status::OK();
#endif
}

void ProfilerDrain() {
  ProfileAggregates& agg = Aggregates();
  std::lock_guard<std::mutex> lock(agg.mu);
  DrainInto(&agg);
}

uint64_t ProfilerSampleCount() {
  ProfilerDrain();
  ProfileAggregates& agg = Aggregates();
  std::lock_guard<std::mutex> lock(agg.mu);
  return agg.samples;
}

uint64_t ProfilerDroppedSampleCount() {
  return g_dropped.load(std::memory_order_relaxed);
}

void ResetProfile() {
  ProfileAggregates& agg = Aggregates();
  std::lock_guard<std::mutex> lock(agg.mu);
  {
    // Discard unconsumed samples without aggregating them.
    SampleRegistry& registry = Registry();
    std::lock_guard<std::mutex> registry_lock(registry.mu);
    for (const auto& buf : registry.buffers) {
      buf->consumed.store(buf->published.load(std::memory_order_acquire),
                          std::memory_order_release);
    }
  }
  agg.samples = 0;
  agg.stacks.clear();
  agg.span_counts.clear();
  agg.span_id_counts.clear();
  agg.symbols.clear();
  agg.sample_times_ns.clear();
  g_dropped.store(0, std::memory_order_relaxed);
}

std::string CollapsedStacks() {
  ProfilerDrain();
  ProfileAggregates& agg = Aggregates();
  std::lock_guard<std::mutex> lock(agg.mu);
  std::string out;
  for (const auto& [key, count] : agg.stacks) {
    out += key;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

Status WriteCollapsedStacks(const std::string& path) {
  return WriteFileAtomic(path, CollapsedStacks());
}

std::string ProfileReportTable(size_t top_n) {
  ProfilerDrain();
  ProfileAggregates& agg = Aggregates();
  std::lock_guard<std::mutex> lock(agg.mu);
  if (agg.symbols.empty()) return "";
  std::vector<std::pair<std::string, SymbolStat>> rows(agg.symbols.begin(),
                                                       agg.symbols.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self != b.second.self) return a.second.self > b.second.self;
    if (a.second.total != b.second.total) {
      return a.second.total > b.second.total;
    }
    return a.first < b.first;
  });
  if (rows.size() > top_n) rows.resize(top_n);
  TablePrinter table({"symbol", "self", "total", "self%"});
  const double denom = agg.samples > 0 ? static_cast<double>(agg.samples) : 1;
  for (const auto& [symbol, stat] : rows) {
    table.AddRow({symbol, std::to_string(stat.self),
                  std::to_string(stat.total),
                  FormatDouble(100.0 * static_cast<double>(stat.self) / denom,
                               1)});
  }
  return table.Render();
}

std::map<std::string, uint64_t> SpanProfileSampleCounts() {
  ProfilerDrain();
  ProfileAggregates& agg = Aggregates();
  std::lock_guard<std::mutex> lock(agg.mu);
  return agg.span_counts;
}

std::map<uint64_t, uint64_t> SpanIdProfileSampleCounts() {
  ProfilerDrain();
  ProfileAggregates& agg = Aggregates();
  std::lock_guard<std::mutex> lock(agg.mu);
  return agg.span_id_counts;
}

std::string ProfilerCounterEventsJson() {
  ProfilerDrain();
  ProfileAggregates& agg = Aggregates();
  std::lock_guard<std::mutex> lock(agg.mu);
  if (agg.sample_times_ns.empty()) return "";
  std::vector<uint64_t> times = agg.sample_times_ns;
  std::sort(times.begin(), times.end());
  // Cumulative sample count on the shared trace clock; strided so a long
  // run emits at most ~200 counter events.
  const size_t stride = std::max<size_t>(1, times.size() / 200);
  std::string out;
  bool first = true;
  for (size_t i = 0; i < times.size(); ++i) {
    if (i % stride != 0 && i + 1 != times.size()) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"C\",\"pid\":1,\"name\":\"profiler_samples\",\"ts\":" +
           JsonNumber(static_cast<double>(times[i]) / 1e3, 15) +
           ",\"args\":{\"samples\":" + std::to_string(i + 1) + "}}";
  }
  return out;
}

std::string ProfileSummaryJson() {
  const uint64_t samples = ProfilerSampleCount();
  return "{\"hz\":" + std::to_string(g_hz) +
         ",\"samples\":" + std::to_string(samples) +
         ",\"dropped\":" + std::to_string(ProfilerDroppedSampleCount()) + "}";
}

}  // namespace tg::obs
