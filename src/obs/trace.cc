#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "obs/event_log.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/profiler.h"
#include "obs/resource_sampler.h"
#include "util/atomic_file.h"
#include "util/check.h"
#include "util/json_util.h"
#include "util/logging.h"

namespace tg::obs {
namespace {

constexpr uint32_t kTraceBit = 1u;
constexpr uint32_t kMetricsBit = 2u;
// Profiler bookkeeping only: spans maintain the thread-local id / open-span
// chain (for SIGPROF attribution) without recording or histograms.
constexpr uint32_t kProfileBit = 4u;
// Event-log bookkeeping: span closes above the event log's duration
// threshold emit a structured event (obs/event_log.h).
constexpr uint32_t kEventLogBit = 8u;
// Telemetry bookkeeping: spans publish their names into per-thread atomic
// stacks that AllThreadsOpenSpans() reads for /statusz.
constexpr uint32_t kTelemetryBit = 16u;

bool EnvFlagSet(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

std::atomic<uint32_t>& Mode() {
  // Function-local so first use (from any TU, any time) is well-defined;
  // seeded once from the environment knobs.
  static std::atomic<uint32_t> mode{
      (EnvFlagSet("TG_TRACE") ? kTraceBit : 0u) |
      (EnvFlagSet("TG_METRICS") ? kMetricsBit : 0u)};
  return mode;
}

// --- Per-thread record buffers ---------------------------------------------
//
// Each thread appends to its own chain of fixed-size blocks; a record
// becomes visible to readers via a release store of the published count, so
// the writer takes no lock and never blocks on a flush. Blocks are only ever
// appended, never moved, so readers can walk the chain concurrently.

constexpr size_t kBlockSize = 256;

// Cross-thread-readable open-span stack depth. Deeper nesting than this is
// still tracked by the thread-local chain; only the /statusz view truncates.
constexpr size_t kMaxPublishedOpenSpans = 32;

struct Block {
  SpanRecord slots[kBlockSize];
  std::atomic<Block*> next{nullptr};
};

struct ThreadBuffer {
  uint32_t tid = 0;
  std::string name;  // guarded by Buffers().mu
  Block head;
  // Published open-span names for /statusz: owner thread stores, any thread
  // loads. Values are string literals (static storage), so a reader can
  // dereference whatever it sees; depth is published after the name slot so
  // an observed depth never exposes an unwritten slot.
  std::atomic<const char*> open_names[kMaxPublishedOpenSpans] = {};
  std::atomic<uint32_t> open_depth{0};
  Block* write_block = &head;   // owner thread only
  uint64_t write_count = 0;     // owner thread only
  std::atomic<uint64_t> published{0};
  std::atomic<uint64_t> consumed{0};  // flush side only

  ~ThreadBuffer() {
    Block* b = head.next.load(std::memory_order_acquire);
    while (b != nullptr) {
      Block* next = b->next.load(std::memory_order_acquire);
      delete b;
      b = next;
    }
  }

  void Append(SpanRecord&& record) {
    record.tid = tid;
    const size_t slot = write_count % kBlockSize;
    if (slot == 0 && write_count != 0) {
      Block* fresh = new Block;
      write_block->next.store(fresh, std::memory_order_release);
      write_block = fresh;
    }
    write_block->slots[slot] = std::move(record);
    ++write_count;
    published.store(write_count, std::memory_order_release);
  }
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

BufferRegistry& Buffers() {
  static BufferRegistry* registry = new BufferRegistry;
  return *registry;
}

// The registry keeps buffers alive past thread exit so spans recorded by
// short-lived threads survive until the final flush.
ThreadBuffer* LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    BufferRegistry& registry = Buffers();
    std::lock_guard<std::mutex> lock(registry.mu);
    fresh->tid = static_cast<uint32_t>(registry.buffers.size());
    fresh->name = "thread-" + std::to_string(fresh->tid);
    registry.buffers.push_back(fresh);
    return fresh;
  }();
  return buffer.get();
}

std::atomic<uint64_t> g_next_span_id{1};

thread_local uint64_t t_current_span = 0;
// Innermost open span on this thread (chained via Span::prev_open_), so a
// crash report can name the stages in flight even though records are only
// written on close.
thread_local Span* t_open_span = nullptr;

}  // namespace

uint64_t TraceNowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

void SetTraceEnabled(bool enabled) {
  if (enabled) {
    Mode().fetch_or(kTraceBit, std::memory_order_relaxed);
  } else {
    Mode().fetch_and(~kTraceBit, std::memory_order_relaxed);
  }
}

bool TraceEnabled() {
  return (Mode().load(std::memory_order_relaxed) & kTraceBit) != 0;
}

void SetMetricsEnabled(bool enabled) {
  if (enabled) {
    Mode().fetch_or(kMetricsBit, std::memory_order_relaxed);
  } else {
    Mode().fetch_and(~kMetricsBit, std::memory_order_relaxed);
  }
}

bool MetricsEnabled() {
  return (Mode().load(std::memory_order_relaxed) & kMetricsBit) != 0;
}

void SetProfilerSpansEnabled(bool enabled) {
  if (enabled) {
    Mode().fetch_or(kProfileBit, std::memory_order_relaxed);
  } else {
    Mode().fetch_and(~kProfileBit, std::memory_order_relaxed);
  }
}

void SetEventLogSpansEnabled(bool enabled) {
  if (enabled) {
    Mode().fetch_or(kEventLogBit, std::memory_order_relaxed);
  } else {
    Mode().fetch_and(~kEventLogBit, std::memory_order_relaxed);
  }
}

void SetTelemetrySpansEnabled(bool enabled) {
  if (enabled) {
    Mode().fetch_or(kTelemetryBit, std::memory_order_relaxed);
  } else {
    Mode().fetch_and(~kTelemetryBit, std::memory_order_relaxed);
  }
}

Span::Span(const char* name) : Span(name, std::string()) {}

Span::Span(const char* name, std::string detail) {
  const uint32_t mode = Mode().load(std::memory_order_relaxed);
  if (mode == 0) return;  // the fast path
  active_ = true;
  name_ = name;
  detail_ = std::move(detail);
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  prev_current_ = t_current_span;
  t_current_span = id_;
  prev_open_ = t_open_span;
  // The SIGPROF handler walks the chain from t_open_span; the fence keeps
  // the compiler from publishing the pointer before name_/prev_open_ are
  // written (same-thread signal visibility needs only a compiler barrier).
  std::atomic_signal_fence(std::memory_order_release);
  t_open_span = this;
  if ((mode & kTelemetryBit) != 0) {
    // Publish the name for cross-thread /statusz reads: slot first, then
    // depth, so a reader that sees the new depth also sees the name.
    ThreadBuffer* buffer = LocalBuffer();
    const uint32_t depth = buffer->open_depth.load(std::memory_order_relaxed);
    if (depth < kMaxPublishedOpenSpans) {
      buffer->open_names[depth].store(name, std::memory_order_release);
    }
    buffer->open_depth.store(depth + 1, std::memory_order_release);
    published_open_ = true;
  }
  if ((mode & kProfileBit) != 0) {
    // Allocates this thread's sample ring on first use -- off-signal, so
    // the handler itself never has to.
    ProfilerEnsureThreadRegistered();
  }
  perf_start_ = ThreadPerfCounters();
  const AllocStats allocs = ThreadAllocStats();
  alloc_bytes_start_ = allocs.bytes;
  allocs_start_ = allocs.count;
  start_ns_ = TraceNowNs();
}

Span::~Span() {
  if (!active_) return;
  const uint64_t end_ns = TraceNowNs();
  // Allocation deltas are read before the tracer itself allocates (record
  // blocks, histogram map nodes), so tracer-internal allocations land on the
  // enclosing span, never on the span being closed.
  const AllocStats allocs = ThreadAllocStats();
  const uint64_t alloc_bytes = allocs.bytes - alloc_bytes_start_;
  const uint64_t alloc_count = allocs.count - allocs_start_;
  // ok=false (and zero) unless counters were enabled for the whole span.
  const PerfCounterValues perf_delta = ThreadPerfCounters() - perf_start_;
  t_current_span = prev_current_;
  std::atomic_signal_fence(std::memory_order_release);
  t_open_span = prev_open_;
  if (published_open_) {
    ThreadBuffer* buffer = LocalBuffer();
    const uint32_t depth = buffer->open_depth.load(std::memory_order_relaxed);
    if (depth > 0) {
      buffer->open_depth.store(depth - 1, std::memory_order_release);
    }
  }
  if (perf_delta.ok) AccumulateStageCounters(name_, perf_delta);
  const uint32_t mode = Mode().load(std::memory_order_relaxed);
  if ((mode & kMetricsBit) != 0) {
    StageHistogram(name_).Observe(static_cast<double>(end_ns - start_ns_) *
                                  1e-9);
    if (MemoryTrackingEnabled()) {
      StageAllocHistogram(name_).Observe(static_cast<double>(alloc_bytes));
    }
  }
  // Event-log reporting happens before the trace append consumes detail_.
  if ((mode & kEventLogBit) != 0) {
    MaybeEmitSpanEvent(name_, detail_, start_ns_, end_ns);
  }
  if ((mode & kTraceBit) != 0) {
    SpanRecord record;
    record.name = name_;
    record.detail = std::move(detail_);
    record.id = id_;
    record.parent = prev_current_;
    record.start_ns = start_ns_;
    record.end_ns = end_ns;
    record.alloc_bytes = alloc_bytes;
    record.allocs = alloc_count;
    record.perf = perf_delta;
    LocalBuffer()->Append(std::move(record));
  }
}

uint64_t CurrentSpanId() { return t_current_span; }

size_t OpenSpanNamesForSignal(const char** names, size_t max_names) {
  std::atomic_signal_fence(std::memory_order_acquire);
  size_t n = 0;
  for (const Span* span = t_open_span; span != nullptr && n < max_names;
       span = span->prev_open_) {
    names[n++] = span->name_;
  }
  return n;
}

const char* CurrentSpanName() {
  return t_open_span != nullptr ? t_open_span->name_ : nullptr;
}

std::vector<ThreadOpenSpans> AllThreadsOpenSpans() {
  std::vector<ThreadOpenSpans> out;
  BufferRegistry& registry = Buffers();
  std::lock_guard<std::mutex> lock(registry.mu);
  out.reserve(registry.buffers.size());
  for (const auto& buffer : registry.buffers) {
    ThreadOpenSpans entry;
    entry.tid = buffer->tid;
    entry.thread_name = buffer->name;
    const uint32_t depth = std::min<uint32_t>(
        buffer->open_depth.load(std::memory_order_acquire),
        kMaxPublishedOpenSpans);
    for (uint32_t i = 0; i < depth; ++i) {
      const char* name = buffer->open_names[i].load(std::memory_order_acquire);
      if (name == nullptr) break;  // slot racing with a push; stop cleanly
      entry.spans.emplace_back(name);
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::vector<std::string> CurrentSpanStack() {
  std::vector<std::string> names;
  for (const Span* span = t_open_span; span != nullptr;
       span = span->prev_open_) {
    std::string entry = span->name_;
    if (!span->detail_.empty()) {
      entry += " [";
      entry += span->detail_;
      entry += "]";
    }
    names.push_back(std::move(entry));
  }
  std::reverse(names.begin(), names.end());  // outermost first
  return names;
}

ParentScope::ParentScope(uint64_t parent_span) : prev_(t_current_span) {
  t_current_span = parent_span;
}

ParentScope::~ParentScope() { t_current_span = prev_; }

void SetCurrentThreadName(std::string name) {
  ThreadBuffer* buffer = LocalBuffer();
  BufferRegistry& registry = Buffers();
  std::lock_guard<std::mutex> lock(registry.mu);
  buffer->name = std::move(name);
}

std::vector<std::pair<uint32_t, std::string>> ThreadNames() {
  std::vector<std::pair<uint32_t, std::string>> names;
  BufferRegistry& registry = Buffers();
  std::lock_guard<std::mutex> lock(registry.mu);
  names.reserve(registry.buffers.size());
  for (const auto& buffer : registry.buffers) {
    names.emplace_back(buffer->tid, buffer->name);
  }
  return names;
}

std::vector<SpanRecord> SnapshotSpans() {
  std::vector<SpanRecord> out;
  BufferRegistry& registry = Buffers();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    const uint64_t published =
        buffer->published.load(std::memory_order_acquire);
    const uint64_t consumed = buffer->consumed.load(std::memory_order_relaxed);
    const Block* block = &buffer->head;
    for (uint64_t i = 0; i < published; ++i) {
      const size_t slot = i % kBlockSize;
      if (slot == 0 && i != 0) {
        block = block->next.load(std::memory_order_acquire);
      }
      if (i >= consumed) out.push_back(block->slots[slot]);
    }
  }
  return out;
}

void ResetSpans() {
  BufferRegistry& registry = Buffers();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    buffer->consumed.store(buffer->published.load(std::memory_order_acquire),
                           std::memory_order_relaxed);
  }
}

std::string ChromeTraceJson() {
  const std::vector<SpanRecord> spans = SnapshotSpans();
  // Profiler sample counts keyed by span id, stamped onto span args below;
  // empty when the profiler never ran.
  const std::map<uint64_t, uint64_t> profile_samples =
      SpanIdProfileSampleCounts();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : ThreadNames()) {
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":" + JsonQuote(name) +
           "}}";
  }
  for (const SpanRecord& span : spans) {
    if (!first) out += ",";
    first = false;
    // Chrome expects microsecond ts/dur; keep ns precision as fractions.
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(span.tid);
    out += ",\"name\":" + JsonQuote(span.name);
    out += ",\"ts\":" + JsonNumber(static_cast<double>(span.start_ns) / 1e3,
                                   15);
    out += ",\"dur\":" +
           JsonNumber(static_cast<double>(span.end_ns - span.start_ns) / 1e3,
                      15);
    out += ",\"args\":{\"id\":" + std::to_string(span.id);
    out += ",\"parent\":" + std::to_string(span.parent);
    if (!span.detail.empty()) out += ",\"detail\":" + JsonQuote(span.detail);
    if (span.allocs != 0) {
      out += ",\"alloc_bytes\":" + std::to_string(span.alloc_bytes);
      out += ",\"allocs\":" + std::to_string(span.allocs);
    }
    const auto samples_it = profile_samples.find(span.id);
    if (samples_it != profile_samples.end()) {
      out += ",\"profile_samples\":" + std::to_string(samples_it->second);
    }
    if (span.perf.ok) {
      out += ",\"cycles\":" + std::to_string(span.perf.cycles);
      out += ",\"instructions\":" + std::to_string(span.perf.instructions);
      out += ",\"cache_misses\":" + std::to_string(span.perf.cache_misses);
      out += ",\"branch_misses\":" + std::to_string(span.perf.branch_misses);
    }
    out += "}}";
  }
  // RSS timeline: "ph":"C" counter events from the resource sampler render
  // as counter tracks under the span rows in Perfetto.
  const std::string counters = ResourceCounterEventsJson();
  if (!counters.empty()) {
    if (!first) out += ",";
    first = false;
    out += counters;
  }
  // Profiler sample track: cumulative samples on the same TraceNowNs clock,
  // so the track lines up with the span rows it sampled.
  const std::string samples_track = ProfilerCounterEventsJson();
  if (!samples_track.empty()) {
    if (!first) out += ",";
    out += samples_track;
  }
  out += "]}";
  return out;
}

Status WriteChromeTrace(const std::string& path) {
  // Atomic publication: a crash (or injected fault) mid-export can never
  // leave a torn half-JSON at `path`.
  return WriteFileAtomic(path, ChromeTraceJson());
}

namespace {

// TG_CHECK failure hook: make crashes debuggable. Prints the open span
// stack (the stages in flight when the invariant broke), dumps the metrics
// table, and writes the buffered spans as a Chrome trace so the post-mortem
// has a timeline. Everything is best-effort; the process aborts right after.
void CrashReportHook() {
  const std::vector<std::string> stack = CurrentSpanStack();
  if (!stack.empty()) {
    std::fprintf(stderr, "open span stack (outermost first):\n");
    for (const std::string& frame : stack) {
      std::fprintf(stderr, "  %s\n", frame.c_str());
    }
  }
  if (MetricsEnabled()) {
    const std::string table = MetricsRegistry::Instance().RenderTable();
    std::fwrite(table.data(), 1, table.size(), stderr);
  }
  if (TraceEnabled()) {
    const char* env = std::getenv("TG_CRASH_TRACE");
    const std::string path =
        (env != nullptr && *env != '\0') ? env : "tg_crash_trace.json";
    if (WriteChromeTrace(path).ok()) {
      std::fprintf(stderr, "crash trace written to %s\n", path.c_str());
    }
  }
  std::fflush(stderr);
}

// Installed at static-init time so every binary linking the obs layer gets
// crash reports without opting in.
[[maybe_unused]] const bool g_crash_hook_installed = [] {
  tg::internal_check::InstallCheckFailureHook(&CrashReportHook);
  // Stderr log lines carry the innermost open span ("@span_name") so logs
  // and spans correlate even without the structured event log.
  SetLogSpanProvider(&CurrentSpanName);
  return true;
}();

}  // namespace

}  // namespace tg::obs
