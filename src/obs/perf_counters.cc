#include "obs/perf_counters.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/metrics.h"
#include "util/fault.h"
#include "util/json_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace tg::obs {
namespace {

std::atomic<bool> g_perf_enabled{false};

// Availability is a process-wide latch: 0 = not probed, 1 = available,
// 2 = unavailable. The first failed open wins and records the reason; a
// container that denies perf_event_open denies it for every thread, so one
// probe is representative.
std::atomic<int> g_availability{0};
std::mutex g_reason_mu;
std::string& UnavailableReason() {
  static std::string* reason = new std::string;
  return *reason;
}

void LatchUnavailable(const std::string& reason) {
  int expected = 0;
  if (g_availability.compare_exchange_strong(expected, 2,
                                             std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(g_reason_mu);
    UnavailableReason() = reason;
  }
}

bool EnvFlagSet(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

[[maybe_unused]] const bool g_env_seeded = [] {
  if (EnvFlagSet("TG_PERF_COUNTERS")) {
    g_perf_enabled.store(true, std::memory_order_relaxed);
  }
  return true;
}();

// --- Per-thread counter group ----------------------------------------------

#if defined(__linux__)

constexpr size_t kNumEvents = 5;

struct EventSpec {
  uint32_t type;
  uint64_t config;
};

// Slot order matches PerfCounterValues field order.
constexpr EventSpec kEvents[kNumEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

long PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                   unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

// One thread's open counter group. The leader (cycles) must open; the other
// events are best-effort -- a PMU that lacks, say, cache-references simply
// reports zero for it. Group reads return the opened members in open order,
// so `slot_of[i]` remembers which PerfCounterValues field member i feeds.
struct ThreadPerfGroup {
  int leader_fd = -1;
  size_t num_open = 0;
  size_t slot_of[kNumEvents] = {0};
  bool open_attempted = false;

  ~ThreadPerfGroup() { Close(); }

  void Close() {
    // The leader fd owns the group; member fds were opened with the
    // group-leader flag and are tracked for individual close.
    for (size_t i = 0; i < num_open; ++i) {
      if (fds[i] >= 0) close(fds[i]);
    }
    num_open = 0;
    leader_fd = -1;
  }

  int fds[kNumEvents] = {-1, -1, -1, -1, -1};

  bool Open() {
    open_attempted = true;
    // Deterministic degradation hook: TG_FAULT=perf_open=always exercises
    // the counters-unavailable path on machines where perf works.
    if (TG_FAULT_POINT("perf_open")) {
      LatchUnavailable("injected fault at perf_open");
      return false;
    }
    if (g_availability.load(std::memory_order_relaxed) == 2) return false;
    for (size_t i = 0; i < kNumEvents; ++i) {
      perf_event_attr attr;
      std::memset(&attr, 0, sizeof(attr));
      attr.size = sizeof(attr);
      attr.type = kEvents[i].type;
      attr.config = kEvents[i].config;
      attr.disabled = (i == 0) ? 1 : 0;  // leader starts the group
      attr.exclude_kernel = 1;  // user-space only: works at paranoid <= 2
      attr.exclude_hv = 1;
      attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                         PERF_FORMAT_TOTAL_TIME_RUNNING;
      const int group = (i == 0) ? -1 : leader_fd;
      const long fd = PerfEventOpen(&attr, 0 /* this thread */, -1, group, 0);
      if (fd < 0) {
        if (i == 0) {
          std::string reason = std::string("perf_event_open(cycles): ") +
                               std::strerror(errno);
          if (errno == EACCES || errno == EPERM) {
            reason += " (check /proc/sys/kernel/perf_event_paranoid, or the "
                      "container's seccomp policy)";
          }
          LatchUnavailable(reason);
          return false;
        }
        continue;  // optional member missing on this PMU
      }
      if (i == 0) leader_fd = static_cast<int>(fd);
      slot_of[num_open] = i;
      fds[num_open] = static_cast<int>(fd);
      ++num_open;
    }
    // The leader was created disabled so members could attach before any
    // counting starts; enable the whole group atomically now.
    if (ioctl(leader_fd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
      LatchUnavailable(std::string("PERF_EVENT_IOC_ENABLE: ") +
                       std::strerror(errno));
      Close();
      return false;
    }
    g_availability.store(1, std::memory_order_relaxed);
    return true;
  }

  bool Read(PerfCounterValues* out) const {
    if (leader_fd < 0) return false;
    // read_format layout: nr, time_enabled, time_running, value[nr].
    uint64_t buffer[3 + kNumEvents];
    const ssize_t n = read(leader_fd, buffer, sizeof(buffer));
    if (n < static_cast<ssize_t>(3 * sizeof(uint64_t))) return false;
    const uint64_t nr = buffer[0];
    const uint64_t enabled = buffer[1];
    const uint64_t running = buffer[2];
    // Multiplexing correction: when the PMU rotated this group off-core,
    // scale observed counts by enabled/running (the standard estimator).
    const double scale =
        (running > 0 && running < enabled)
            ? static_cast<double>(enabled) / static_cast<double>(running)
            : 1.0;
    uint64_t values[kNumEvents] = {0};
    for (uint64_t i = 0; i < nr && i < num_open; ++i) {
      values[slot_of[i]] =
          static_cast<uint64_t>(static_cast<double>(buffer[3 + i]) * scale);
    }
    out->cycles = values[0];
    out->instructions = values[1];
    out->cache_references = values[2];
    out->cache_misses = values[3];
    out->branch_misses = values[4];
    out->ok = true;
    return true;
  }
};

thread_local ThreadPerfGroup t_perf_group;

PerfCounterValues ReadThisThread() {
  PerfCounterValues values;
  if (!t_perf_group.open_attempted) {
    if (!t_perf_group.Open()) return values;
  }
  if (!t_perf_group.Read(&values)) values = PerfCounterValues{};
  return values;
}

#else  // !__linux__

PerfCounterValues ReadThisThread() {
  LatchUnavailable("perf_event_open is Linux-only");
  return PerfCounterValues{};
}

#endif

// --- Per-stage aggregates ---------------------------------------------------

struct StagePerfRegistry {
  std::mutex mu;
  std::map<std::string, StagePerfTotals> totals;
};

StagePerfRegistry& StageRegistry() {
  static StagePerfRegistry* registry = new StagePerfRegistry;
  return *registry;
}

}  // namespace

void SetPerfCountersEnabled(bool enabled) {
  g_perf_enabled.store(enabled, std::memory_order_relaxed);
}

bool PerfCountersEnabled() {
  return g_perf_enabled.load(std::memory_order_relaxed);
}

PerfCounterValues ThreadPerfCounters() {
  if (!g_perf_enabled.load(std::memory_order_relaxed)) {
    return PerfCounterValues{};
  }
  return ReadThisThread();
}

bool PerfCountersAvailable() {
  if (g_availability.load(std::memory_order_relaxed) == 0 &&
      PerfCountersEnabled()) {
    (void)ReadThisThread();  // probe on the calling thread
  }
  return g_availability.load(std::memory_order_relaxed) == 1;
}

std::string PerfCountersUnavailableReason() {
  if (g_availability.load(std::memory_order_relaxed) != 2) return "";
  std::lock_guard<std::mutex> lock(g_reason_mu);
  return UnavailableReason();
}

const char* PerfCountersStatusString() {
  if (!PerfCountersEnabled()) return "disabled";
  return PerfCountersAvailable() ? "ok" : "unavailable";
}

std::string PerfCountersStatusJson() {
  const char* status = PerfCountersStatusString();
  std::string out = "{\"status\":" + JsonQuote(status);
  if (std::strcmp(status, "unavailable") == 0) {
    out += ",\"reason\":" + JsonQuote(PerfCountersUnavailableReason());
  }
  out += "}";
  return out;
}

PerfCounterScope::PerfCounterScope(const char* name)
    : name_(name), start_(ThreadPerfCounters()) {}

PerfCounterScope::~PerfCounterScope() {
  const PerfCounterValues delta = Delta();
  if (delta.ok) AccumulateStageCounters(name_, delta);
}

PerfCounterValues PerfCounterScope::Delta() const {
  if (!start_.ok) return PerfCounterValues{};
  return ThreadPerfCounters() - start_;
}

void AccumulateStageCounters(const char* name,
                             const PerfCounterValues& delta) {
  if (!delta.ok) return;
  StagePerfTotals snapshot;
  {
    StagePerfRegistry& registry = StageRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    StagePerfTotals& totals = registry.totals[name];
    totals.cycles += delta.cycles;
    totals.instructions += delta.instructions;
    totals.cache_references += delta.cache_references;
    totals.cache_misses += delta.cache_misses;
    totals.branch_misses += delta.branch_misses;
    totals.spans += 1;
    snapshot = totals;
  }
  // Derived per-stage rates land in the registry (and through it in
  // bench_timings.json "metrics"): last-write-wins gauges refreshed from
  // the running totals, so the final value reflects the whole run.
  MetricsRegistry::Instance()
      .GetGauge(std::string("stage.") + name + ".ipc")
      .Set(snapshot.Ipc());
  MetricsRegistry::Instance()
      .GetGauge(std::string("stage.") + name + ".cache_miss_rate")
      .Set(snapshot.CacheMissRate());
}

std::map<std::string, StagePerfTotals> StagePerfSnapshot() {
  StagePerfRegistry& registry = StageRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.totals;
}

void ResetStagePerf() {
  StagePerfRegistry& registry = StageRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.totals.clear();
}

std::string StagePerfCountersJson() {
  const std::map<std::string, StagePerfTotals> totals = StagePerfSnapshot();
  std::string out = "[";
  bool first = true;
  for (const auto& [stage, t] : totals) {
    if (!first) out += ",";
    first = false;
    out += "{\"stage\":" + JsonQuote(stage);
    out += ",\"cycles\":" + std::to_string(t.cycles);
    out += ",\"instructions\":" + std::to_string(t.instructions);
    out += ",\"cache_references\":" + std::to_string(t.cache_references);
    out += ",\"cache_misses\":" + std::to_string(t.cache_misses);
    out += ",\"branch_misses\":" + std::to_string(t.branch_misses);
    out += ",\"spans\":" + std::to_string(t.spans);
    out += ",\"ipc\":" + JsonNumber(t.Ipc(), 6);
    out += ",\"cache_miss_rate\":" + JsonNumber(t.CacheMissRate(), 6);
    out += "}";
  }
  out += "]";
  return out;
}

std::string StagePerfTable() {
  const std::map<std::string, StagePerfTotals> totals = StagePerfSnapshot();
  if (totals.empty()) return "";
  TablePrinter table({"stage", "spans", "cycles", "instructions", "IPC",
                      "cache miss %", "branch misses"});
  for (const auto& [stage, t] : totals) {
    table.AddRow({stage, std::to_string(t.spans), std::to_string(t.cycles),
                  std::to_string(t.instructions), FormatDouble(t.Ipc(), 2),
                  FormatDouble(t.CacheMissRate() * 100.0, 2),
                  std::to_string(t.branch_misses)});
  }
  return table.Render();
}

}  // namespace tg::obs
