// Live telemetry plane: an embedded HTTP scrape endpoint over the metrics
// registry, span stacks, and sweep progress, served from a background thread
// (util/http_server.h) bound to 127.0.0.1.
//
// Endpoints:
//   /metrics  Prometheus text exposition (version 0.0.4): every registry
//             counter, gauge, and histogram, the latter with full cumulative
//             _bucket/_sum/_count series.
//   /statusz  One JSON object: build_info, uptime, telemetry/event-log
//             state, RSS, active numeric + tree backends, sweep progress
//             (done/total/retried/degraded/failed), and the open span stack
//             of every thread.
//   /healthz  "ok\n" -- liveness only.
//
// Name mapping (/metrics): a registry name maps to `tg_` + the name with
// every character outside [A-Za-z0-9] replaced by `_`; counters additionally
// get the `_total` suffix, histograms expand to `_bucket`/`_sum`/`_count`
// series. The scheme is audited -- CheckPrometheusExposition() verifies every
// expanded name is a legal Prometheus identifier and that no two registry
// names collide after mapping (tests/obs_telemetry_test.cc runs it against
// the fully-populated registry).
//
// Degradation: a failed bind (occupied port, injected "telemetry_bind"
// fault) or a poisoned accept ("telemetry_accept") never takes the process
// down. The failure latches a process-wide "unavailable (<reason>)" status
// that TelemetryStatusString() reports and build_info JSON embeds, so every
// bench_timings.json records whether its run was scrapeable.
//
// Cost model: starting the plane flips the telemetry span bit (open-span
// names become cross-thread readable) and enables metrics; when the plane is
// off the whole feature costs the same single relaxed mode-word load as
// every other obs substrate. Telemetry is write-only -- scraping never
// perturbs pipeline outputs (bit-identical, tested).
#ifndef TG_OBS_TELEMETRY_H_
#define TG_OBS_TELEMETRY_H_

#include <string>

#include "util/status.h"

namespace tg::obs {

// Binds 127.0.0.1:`port` (0 = kernel-assigned; read back via
// TelemetryPort()) and starts serving. Also turns on metrics and telemetry
// span publication so the endpoints have something to show. On failure the
// process-wide status latches "unavailable (<reason>)" and the error is
// returned -- callers log and continue, never crash.
Status StartTelemetry(int port);

// Stops the server and span publication. Keeps a latched "unavailable"
// status (a failure stays visible in artifacts produced after the fact).
void StopTelemetry();

bool TelemetryRunning();

// The bound port while running (resolves port 0), else 0.
int TelemetryPort();

// Starts from TG_TELEMETRY_PORT when set and non-empty; logs the bound
// address on success and a warning on failure. Returns true iff running.
bool MaybeStartTelemetryFromEnv();

// "disabled" | "ok" | "unavailable (<reason>)". Embedded in BuildInfoJson()
// and /statusz.
std::string TelemetryStatusString();

// --- Rendering (exposed for tests; the endpoints call these) ----------------

// Prometheus text exposition of the whole registry. The _count of each
// histogram is derived from its bucket reads (not the separate count field)
// so the cumulative series is internally consistent even when the scrape
// races an Observe().
std::string RenderPrometheusText();

// The /statusz JSON object.
std::string RenderStatusz();

// --- Name mapping ------------------------------------------------------------

// Base mapping: "tg_" + name with non-[A-Za-z0-9] replaced by '_'. Type
// suffixes (_total, _bucket, ...) are applied on top by the renderer.
std::string PrometheusName(const std::string& name);

// Registry-wide audit: every expanded exposition name is legal
// ([a-zA-Z_:][a-zA-Z0-9_:]*) and unique across instruments. InvalidArgument
// naming the offending instruments otherwise.
Status CheckPrometheusExposition();

}  // namespace tg::obs

#endif  // TG_OBS_TELEMETRY_H_
