// The fixed-order unrolled scalar kernel bodies, shared as inline functions
// so each backend TU can instantiate them under its own compile flags:
//
//   * kernels_scalar.cc includes this under the base architecture flags --
//     that instantiation is the `scalar` backend and is bit-identical to the
//     pre-dispatch kernel layer (same source, same flags; GCC/Clang cannot
//     contract mul+add to FMA there because the base x86-64 ISA has no FMA).
//   * The vector backends (kernels_avx2.cc, ...) use these only for short-n
//     fallbacks, where their -mfma flags may contract -- that difference is
//     covered by the documented ulp envelope, never by the scalar backend.
//
// Kernel order for reductions (see kernels.h): four interleaved partial
// accumulators over the largest multiple-of-4 prefix, combined as
// (acc0 + acc1) + (acc2 + acc3), then the tail sequentially.
#ifndef TG_NUMERIC_KERNELS_GENERIC_H_
#define TG_NUMERIC_KERNELS_GENERIC_H_

#include <cstddef>
#include <cstdint>

#include "numeric/kernels.h"  // TrainingSigmoid for the fused update

namespace tg::kernels::generic {

inline double Dot(const double* a, const double* b, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  for (size_t i = 0; i < main; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  double acc = (acc0 + acc1) + (acc2 + acc3);
  for (size_t i = main; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

inline double Sum(const double* a, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  for (size_t i = 0; i < main; i += 4) {
    acc0 += a[i];
    acc1 += a[i + 1];
    acc2 += a[i + 2];
    acc3 += a[i + 3];
  }
  double acc = (acc0 + acc1) + (acc2 + acc3);
  for (size_t i = main; i < n; ++i) acc += a[i];
  return acc;
}

inline void Add(double* y, const double* x, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    y[i] += x[i];
    y[i + 1] += x[i + 1];
    y[i + 2] += x[i + 2];
    y[i + 3] += x[i + 3];
  }
  for (size_t i = main; i < n; ++i) y[i] += x[i];
}

inline void Sub(double* y, const double* x, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    y[i] -= x[i];
    y[i + 1] -= x[i + 1];
    y[i + 2] -= x[i + 2];
    y[i + 3] -= x[i + 3];
  }
  for (size_t i = main; i < n; ++i) y[i] -= x[i];
}

inline void Mul(double* y, const double* x, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    y[i] *= x[i];
    y[i + 1] *= x[i + 1];
    y[i + 2] *= x[i + 2];
    y[i + 3] *= x[i + 3];
  }
  for (size_t i = main; i < n; ++i) y[i] *= x[i];
}

inline void Scale(double* y, double s, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    y[i] *= s;
    y[i + 1] *= s;
    y[i + 2] *= s;
    y[i + 3] *= s;
  }
  for (size_t i = main; i < n; ++i) y[i] *= s;
}

inline void Axpy(double alpha, const double* x, double* y, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    y[i] += alpha * x[i];
    y[i + 1] += alpha * x[i + 1];
    y[i + 2] += alpha * x[i + 2];
    y[i + 3] += alpha * x[i + 3];
  }
  for (size_t i = main; i < n; ++i) y[i] += alpha * x[i];
}

inline void ScaleAdd(double* y, double alpha, double beta, const double* x,
                     size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    y[i] = alpha * y[i] + beta * x[i];
    y[i + 1] = alpha * y[i + 1] + beta * x[i + 1];
    y[i + 2] = alpha * y[i + 2] + beta * x[i + 2];
    y[i + 3] = alpha * y[i + 3] + beta * x[i + 3];
  }
  for (size_t i = main; i < n; ++i) y[i] = alpha * y[i] + beta * x[i];
}

inline void MulAdd(double* __restrict z, const double* __restrict x,
                   const double* __restrict y, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    z[i] += x[i] * y[i];
    z[i + 1] += x[i + 1] * y[i + 1];
    z[i + 2] += x[i + 2] * y[i + 2];
    z[i + 3] += x[i + 3] * y[i + 3];
  }
  for (size_t i = main; i < n; ++i) z[i] += x[i] * y[i];
}

// Histogram scatter-accumulate (see kernel_backend.h). Bins repeat across
// iterations, so the adds are a serial dependence chain in index order --
// every backend must keep that order, which is exactly why the kernel is
// bit-identical across backends. The plain body below is the scalar
// backend; HistAccumulatePrefetch adds software prefetch of the gathered
// rows (a hint, not arithmetic) for the vector backend tables.
template <typename Code>
inline void HistAccumulate(const Code* codes, const size_t* rows, size_t n,
                           const double* values, double* sums,
                           double* counts) {
  for (size_t i = 0; i < n; ++i) {
    const size_t r = rows[i];
    const size_t b = codes[r];
    sums[b] += values[r];
    counts[b] += 1.0;
  }
}

template <typename Code>
inline void HistAccumulatePrefetch(const Code* codes, const size_t* rows,
                                   size_t n, const double* values,
                                   double* sums, double* counts) {
  constexpr size_t kAhead = 16;  // ~one L2 miss of row-gather latency
  size_t i = 0;
  for (; i + kAhead < n; ++i) {
    const size_t ahead = rows[i + kAhead];
    __builtin_prefetch(codes + ahead, 0, 1);
    __builtin_prefetch(values + ahead, 0, 1);
    const size_t r = rows[i];
    const size_t b = codes[r];
    sums[b] += values[r];
    counts[b] += 1.0;
  }
  for (; i < n; ++i) {
    const size_t r = rows[i];
    const size_t b = codes[r];
    sums[b] += values[r];
    counts[b] += 1.0;
  }
}

inline double FusedDotSigmoidUpdate(const double* __restrict w,
                                    double* __restrict c,
                                    double* __restrict center_grad, size_t n,
                                    double label, double lr) {
  const double g = (label - TrainingSigmoid(Dot(w, c, n))) * lr;
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    const double c0 = c[i], c1 = c[i + 1], c2 = c[i + 2], c3 = c[i + 3];
    center_grad[i] += g * c0;
    center_grad[i + 1] += g * c1;
    center_grad[i + 2] += g * c2;
    center_grad[i + 3] += g * c3;
    c[i] = c0 + g * w[i];
    c[i + 1] = c1 + g * w[i + 1];
    c[i + 2] = c2 + g * w[i + 2];
    c[i + 3] = c3 + g * w[i + 3];
  }
  for (size_t i = main; i < n; ++i) {
    const double ci = c[i];
    center_grad[i] += g * ci;
    c[i] = ci + g * w[i];
  }
  return g;
}

inline void ReplicatedMean(double* y, size_t count, double inv, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double x = y[i];
    double acc = x;
    for (size_t s = 1; s < count; ++s) acc += x;
    y[i] = acc * inv;
  }
}

}  // namespace tg::kernels::generic

#endif  // TG_NUMERIC_KERNELS_GENERIC_H_
