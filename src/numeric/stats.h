// Descriptive statistics and the correlation metrics used throughout the
// evaluation: Pearson's tau (the paper's Eq. 1), Spearman, min-max
// normalization (used for edge-weight thresholds in graph construction).
#ifndef TG_NUMERIC_STATS_H_
#define TG_NUMERIC_STATS_H_

#include <cstddef>
#include <vector>

namespace tg {

double Mean(const std::vector<double>& values);
// Population variance / standard deviation (divide by n).
double Variance(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);
double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);
// Linear-interpolated quantile, q in [0, 1].
double Quantile(std::vector<double> values, double q);

// Pearson correlation coefficient (paper Eq. 1). Returns 0 when either
// series is constant (degenerate denominator).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

// Spearman rank correlation; ties receive average ranks.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

// Average ranks with ties; rank 1 = smallest value.
std::vector<double> AverageRanks(const std::vector<double>& values);

// Maps values affinely into [0, 1]; a constant vector maps to all 0.5.
std::vector<double> MinMaxNormalize(const std::vector<double>& values);

// 1 - Pearson(a, b): the "correlation distance" used for dataset similarity.
double CorrelationDistance(const std::vector<double>& a,
                           const std::vector<double>& b);

// Cosine similarity; 0 if either vector is all-zero.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace tg

#endif  // TG_NUMERIC_STATS_H_
