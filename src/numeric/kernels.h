// Math-kernel layer: the dense inner loops shared by the skip-gram trainer,
// the GNN/autograd score and gradient passes, and the Matrix/linalg row
// operations. Each entry point dispatches through a runtime-selected
// KernelBackend table (kernel_backend.h): `scalar` (the fixed-order unrolled
// reference), `avx2`, `avx512`, `neon` -- resolved once per process from the
// TG_ISA env knob ({auto,scalar,avx2,avx512,neon}; auto picks the widest
// backend this binary + CPU supports).
//
// Determinism contract: every backend is a pure function of its inputs, so
// for any FIXED backend a result never depends on the caller or the thread
// count. The `scalar` backend additionally fixes the floating-point
// summation order (the "kernel order" below) and is bit-identical to the
// *ScalarRef twins, which perform the identical arithmetic in straight-line
// scalar code; tests/kernels_test.cc asserts that on adversarial lengths
// (0, 1, dim +/- 1, unaligned tails). Vector backends reassociate reductions
// and contract to FMA, staying within the ulp envelope documented in
// docs/performance.md; Add/Sub/Mul/Scale and ReplicatedMean are bit-identical
// across ALL backends (one IEEE operation per element / per step).
//
// Kernel order for reductions over n elements: four interleaved partial
// accumulators acc[j] (j = i mod 4) over the largest multiple-of-4 prefix,
// combined as (acc0 + acc1) + (acc2 + acc3), then the remaining tail elements
// added sequentially. Elementwise kernels (Add, Axpy, ScaleAdd, ...) touch
// each element independently, so their unrolling is order-irrelevant.
//
// Sigmoid: training hot paths default to a word2vec-style tabulated sigmoid
// (midpoint lookup table over [-kSigmoidClip, kSigmoidClip], exact 0/1 clamp
// outside; max abs error < 1e-3 vs ExactSigmoid, asserted in tests). The
// TG_EXACT_SIGMOID environment variable (any value other than "0"/empty) or
// SetSigmoidMode(SigmoidMode::kExact) escapes back to the exact form. Either
// mode is a pure function of its input, so results stay bit-identical across
// thread counts; switching modes changes numerics like any other hyper
// parameter. See docs/performance.md.
#ifndef TG_NUMERIC_KERNELS_H_
#define TG_NUMERIC_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace tg::kernels {

// --- Sigmoid -----------------------------------------------------------------

enum class SigmoidMode { kTabulated, kExact };

// Process-wide mode for TrainingSigmoid / FusedDotSigmoidUpdate. Initialized
// from TG_EXACT_SIGMOID at first use; SetSigmoidMode overrides at runtime.
SigmoidMode GetSigmoidMode();
void SetSigmoidMode(SigmoidMode mode);

// Inputs clamp to [-kSigmoidClip, kSigmoidClip] in the tabulated form.
inline constexpr double kSigmoidClip = 8.0;
inline constexpr size_t kSigmoidTableSize = 4096;

// Overflow-safe exact logistic function.
double ExactSigmoid(double x);
// Table lookup (bucket midpoints); exactly 0 / 1 outside the clip range.
double TabulatedSigmoid(double x);
// Dispatches on GetSigmoidMode(). The form used by training hot loops.
double TrainingSigmoid(double x);

// --- Reductions (kernel order; ScalarRef twins are bit-identical) -----------

double Dot(const double* a, const double* b, size_t n);
double DotScalarRef(const double* a, const double* b, size_t n);

double Sum(const double* a, size_t n);
double SumScalarRef(const double* a, size_t n);

// --- Elementwise -------------------------------------------------------------

// y[i] += x[i]
void Add(double* y, const double* x, size_t n);
// y[i] -= x[i]
void Sub(double* y, const double* x, size_t n);
// y[i] *= x[i]
void Mul(double* y, const double* x, size_t n);
// y[i] *= s
void Scale(double* y, double s, size_t n);
// y[i] += alpha * x[i]
void Axpy(double alpha, const double* x, double* y, size_t n);
void AxpyScalarRef(double alpha, const double* x, double* y, size_t n);
// y[i] = alpha * y[i] + beta * x[i]  (axpby; e.g. Adam moment updates)
void ScaleAdd(double* y, double alpha, double beta, const double* x, size_t n);
void ScaleAddScalarRef(double* y, double alpha, double beta, const double* x,
                       size_t n);
// z[i] += x[i] * y[i]  (autograd gradient-accumulate fusion). Vector backends
// may contract the mul+add to FMA (ulp envelope, like Axpy); the scalar
// backend performs the two-rounding mul-then-add sequence, bit-identical to
// the ScalarRef twin. None of the three arrays may alias.
void MulAdd(double* z, const double* x, const double* y, size_t n);
void MulAddScalarRef(double* z, const double* x, const double* y, size_t n);

// --- Histogram scatter-accumulate (binned tree training) --------------------

// For i in [0, n) in order: r = rows[i]; b = codes[r];
//   sums[b] += values[r]; counts[b] += 1.0.
// Bins repeat across iterations, so the adds form a serial dependence chain
// in index order; every backend keeps that order (vector backends only add
// software prefetch around the same adds), which makes this kernel
// bit-identical across ALL backends -- asserted in tests/kernels_test.cc.
void HistAccumulate(const uint8_t* codes, const size_t* rows, size_t n,
                    const double* values, double* sums, double* counts);
void HistAccumulate(const uint16_t* codes, const size_t* rows, size_t n,
                    const double* values, double* sums, double* counts);
void HistAccumulateScalarRef(const uint8_t* codes, const size_t* rows,
                             size_t n, const double* values, double* sums,
                             double* counts);
void HistAccumulateScalarRef(const uint16_t* codes, const size_t* rows,
                             size_t n, const double* values, double* sums,
                             double* counts);

// --- Fused skip-gram pair update --------------------------------------------

// One positive/negative pair step of skip-gram SGD against center row `w`
// (read-only here) and context row `c`:
//   dot = Dot(w, c)                           (kernel order)
//   g   = (label - TrainingSigmoid(dot)) * lr
//   center_grad[i] += g * c[i]   (pre-update c)
//   c[i]           += g * w[i]
// Returns g so callers can trace/inspect. `w`, `c` and `center_grad` must
// not alias (they come from distinct matrices / a local buffer).
double FusedDotSigmoidUpdate(const double* w, double* c, double* center_grad,
                             size_t n, double label, double lr);
double FusedDotSigmoidUpdateScalarRef(const double* w, double* c,
                                      double* center_grad, size_t n,
                                      double label, double lr);

// --- Replica averaging (sharded skip-gram merge) ----------------------------

// In-place mean of `count` bit-identical copies of y: for each element,
// accumulates y[i] into itself count times sequentially and scales by `inv`
// (the caller's precomputed 1.0 / count). Bit-identical to summing the same
// value from `count` replicas in shard order, which is what makes the
// dirty-row merge exactly reproduce the full-matrix merge on untouched rows
// (see docs/performance.md).
void ReplicatedMean(double* y, size_t count, double inv, size_t n);

}  // namespace tg::kernels

#endif  // TG_NUMERIC_KERNELS_H_
