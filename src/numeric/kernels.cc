// Public kernel entry points. The sigmoid machinery and the *ScalarRef twins
// live here; the dense kernels themselves dispatch through the runtime-
// selected backend table (kernel_backend.h -- scalar/avx2/avx512/neon, one TU
// each). The fixed-order bodies that used to be inline here moved verbatim to
// kernels_generic.h, where kernels_scalar.cc instantiates them under the base
// architecture flags as the `scalar` backend.
#include "numeric/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "numeric/kernel_backend.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tg::kernels {
namespace {

// Sigmoid mode word: 0 = uninitialized, 1 = tabulated, 2 = exact.
std::atomic<int> g_sigmoid_mode{0};

int InitSigmoidModeFromEnv() {
  const char* env = std::getenv("TG_EXACT_SIGMOID");
  const bool exact = env != nullptr && env[0] != '\0' &&
                     !(env[0] == '0' && env[1] == '\0');
  return exact ? 2 : 1;
}

// Midpoint-sampled sigmoid table over [-kSigmoidClip, kSigmoidClip]. Bucket
// width 2 * clip / size; with clip 8 and 4096 entries the midpoint error is
// bounded by (width / 2) * max|sigmoid'| = (1/256) / 2 / 4 < 5e-4, and the
// 0/1 clamp outside contributes sigmoid(-8) < 3.4e-4.
struct SigmoidTable {
  double values[kSigmoidTableSize];
  SigmoidTable() {
    const double width = 2.0 * kSigmoidClip / static_cast<double>(kSigmoidTableSize);
    for (size_t i = 0; i < kSigmoidTableSize; ++i) {
      const double x =
          -kSigmoidClip + (static_cast<double>(i) + 0.5) * width;
      values[i] = ExactSigmoid(x);
    }
  }
};

const SigmoidTable& Table() {
  static const SigmoidTable table;
  return table;
}

// Per-kernel invocation counters for the ISSUE-level kernels, resolved once
// per site and gated on MetricsEnabled so disabled runs pay one predictable
// branch per call.
#define TG_COUNT_KERNEL(event)                                        \
  do {                                                                \
    if (obs::MetricsEnabled()) {                                      \
      static obs::Counter& tg_counter =                               \
          obs::MetricsRegistry::Instance().GetCounter(                \
              "numeric.kernel." event ".calls");                      \
      tg_counter.Increment();                                         \
    }                                                                 \
  } while (false)

}  // namespace

SigmoidMode GetSigmoidMode() {
  int mode = g_sigmoid_mode.load(std::memory_order_relaxed);
  if (mode == 0) {
    mode = InitSigmoidModeFromEnv();
    int expected = 0;
    g_sigmoid_mode.compare_exchange_strong(expected, mode,
                                           std::memory_order_relaxed);
  }
  return mode == 2 ? SigmoidMode::kExact : SigmoidMode::kTabulated;
}

void SetSigmoidMode(SigmoidMode mode) {
  g_sigmoid_mode.store(mode == SigmoidMode::kExact ? 2 : 1,
                       std::memory_order_relaxed);
}

double ExactSigmoid(double x) {
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

double TabulatedSigmoid(double x) {
  if (x >= kSigmoidClip) return 1.0;
  if (x < -kSigmoidClip) return 0.0;
  const double scale =
      static_cast<double>(kSigmoidTableSize) / (2.0 * kSigmoidClip);
  size_t index = static_cast<size_t>((x + kSigmoidClip) * scale);
  if (index >= kSigmoidTableSize) index = kSigmoidTableSize - 1;
  return Table().values[index];
}

double TrainingSigmoid(double x) {
  return GetSigmoidMode() == SigmoidMode::kExact ? ExactSigmoid(x)
                                                 : TabulatedSigmoid(x);
}

// --- Reductions --------------------------------------------------------------

double Dot(const double* a, const double* b, size_t n) {
  TG_COUNT_KERNEL("dot");
  return ActiveBackend().dot(a, b, n);
}

double DotScalarRef(const double* a, const double* b, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < main; ++i) acc[i & 3] += a[i] * b[i];
  double total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  for (size_t i = main; i < n; ++i) total += a[i] * b[i];
  return total;
}

double Sum(const double* a, size_t n) {
  TG_COUNT_KERNEL("sum");
  return ActiveBackend().sum(a, n);
}

double SumScalarRef(const double* a, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < main; ++i) acc[i & 3] += a[i];
  double total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  for (size_t i = main; i < n; ++i) total += a[i];
  return total;
}

// --- Elementwise -------------------------------------------------------------

void Add(double* y, const double* x, size_t n) { ActiveBackend().add(y, x, n); }

void Sub(double* y, const double* x, size_t n) { ActiveBackend().sub(y, x, n); }

void Mul(double* y, const double* x, size_t n) { ActiveBackend().mul(y, x, n); }

void Scale(double* y, double s, size_t n) { ActiveBackend().scale(y, s, n); }

void Axpy(double alpha, const double* x, double* y, size_t n) {
  TG_COUNT_KERNEL("axpy");
  ActiveBackend().axpy(alpha, x, y, n);
}

void AxpyScalarRef(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAdd(double* y, double alpha, double beta, const double* x,
              size_t n) {
  TG_COUNT_KERNEL("scale_add");
  ActiveBackend().scale_add(y, alpha, beta, x, n);
}

void ScaleAddScalarRef(double* y, double alpha, double beta, const double* x,
                       size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = alpha * y[i] + beta * x[i];
}

void MulAdd(double* z, const double* x, const double* y, size_t n) {
  TG_COUNT_KERNEL("mul_add");
  ActiveBackend().mul_add(z, x, y, n);
}

void MulAddScalarRef(double* z, const double* x, const double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) z[i] += x[i] * y[i];
}

// --- Histogram scatter-accumulate --------------------------------------------

void HistAccumulate(const uint8_t* codes, const size_t* rows, size_t n,
                    const double* values, double* sums, double* counts) {
  TG_COUNT_KERNEL("hist_accumulate");
  ActiveBackend().hist_accumulate_u8(codes, rows, n, values, sums, counts);
}

void HistAccumulate(const uint16_t* codes, const size_t* rows, size_t n,
                    const double* values, double* sums, double* counts) {
  TG_COUNT_KERNEL("hist_accumulate");
  ActiveBackend().hist_accumulate_u16(codes, rows, n, values, sums, counts);
}

namespace {
template <typename Code>
void HistAccumulateScalarRefImpl(const Code* codes, const size_t* rows,
                                 size_t n, const double* values, double* sums,
                                 double* counts) {
  for (size_t i = 0; i < n; ++i) {
    const size_t r = rows[i];
    const size_t b = codes[r];
    sums[b] += values[r];
    counts[b] += 1.0;
  }
}
}  // namespace

void HistAccumulateScalarRef(const uint8_t* codes, const size_t* rows,
                             size_t n, const double* values, double* sums,
                             double* counts) {
  HistAccumulateScalarRefImpl(codes, rows, n, values, sums, counts);
}

void HistAccumulateScalarRef(const uint16_t* codes, const size_t* rows,
                             size_t n, const double* values, double* sums,
                             double* counts) {
  HistAccumulateScalarRefImpl(codes, rows, n, values, sums, counts);
}

// --- Fused skip-gram pair update --------------------------------------------

double FusedDotSigmoidUpdate(const double* w, double* c, double* center_grad,
                             size_t n, double label, double lr) {
  TG_COUNT_KERNEL("fused_update");
  return ActiveBackend().fused_dot_sigmoid_update(w, c, center_grad, n, label,
                                                  lr);
}

double FusedDotSigmoidUpdateScalarRef(const double* w, double* c,
                                      double* center_grad, size_t n,
                                      double label, double lr) {
  const double g = (label - TrainingSigmoid(DotScalarRef(w, c, n))) * lr;
  for (size_t i = 0; i < n; ++i) {
    const double ci = c[i];
    center_grad[i] += g * ci;
    c[i] = ci + g * w[i];
  }
  return g;
}

// --- Replica averaging -------------------------------------------------------

void ReplicatedMean(double* y, size_t count, double inv, size_t n) {
  ActiveBackend().replicated_mean(y, count, inv, n);
}

}  // namespace tg::kernels
