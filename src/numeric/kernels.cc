#include "numeric/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

namespace tg::kernels {
namespace {

// Sigmoid mode word: 0 = uninitialized, 1 = tabulated, 2 = exact.
std::atomic<int> g_sigmoid_mode{0};

int InitSigmoidModeFromEnv() {
  const char* env = std::getenv("TG_EXACT_SIGMOID");
  const bool exact = env != nullptr && env[0] != '\0' &&
                     !(env[0] == '0' && env[1] == '\0');
  return exact ? 2 : 1;
}

// Midpoint-sampled sigmoid table over [-kSigmoidClip, kSigmoidClip]. Bucket
// width 2 * clip / size; with clip 8 and 4096 entries the midpoint error is
// bounded by (width / 2) * max|sigmoid'| = (1/256) / 2 / 4 < 5e-4, and the
// 0/1 clamp outside contributes sigmoid(-8) < 3.4e-4.
struct SigmoidTable {
  double values[kSigmoidTableSize];
  SigmoidTable() {
    const double width = 2.0 * kSigmoidClip / static_cast<double>(kSigmoidTableSize);
    for (size_t i = 0; i < kSigmoidTableSize; ++i) {
      const double x =
          -kSigmoidClip + (static_cast<double>(i) + 0.5) * width;
      values[i] = ExactSigmoid(x);
    }
  }
};

const SigmoidTable& Table() {
  static const SigmoidTable table;
  return table;
}

}  // namespace

SigmoidMode GetSigmoidMode() {
  int mode = g_sigmoid_mode.load(std::memory_order_relaxed);
  if (mode == 0) {
    mode = InitSigmoidModeFromEnv();
    int expected = 0;
    g_sigmoid_mode.compare_exchange_strong(expected, mode,
                                           std::memory_order_relaxed);
  }
  return mode == 2 ? SigmoidMode::kExact : SigmoidMode::kTabulated;
}

void SetSigmoidMode(SigmoidMode mode) {
  g_sigmoid_mode.store(mode == SigmoidMode::kExact ? 2 : 1,
                       std::memory_order_relaxed);
}

double ExactSigmoid(double x) {
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

double TabulatedSigmoid(double x) {
  if (x >= kSigmoidClip) return 1.0;
  if (x < -kSigmoidClip) return 0.0;
  const double scale =
      static_cast<double>(kSigmoidTableSize) / (2.0 * kSigmoidClip);
  size_t index = static_cast<size_t>((x + kSigmoidClip) * scale);
  if (index >= kSigmoidTableSize) index = kSigmoidTableSize - 1;
  return Table().values[index];
}

double TrainingSigmoid(double x) {
  return GetSigmoidMode() == SigmoidMode::kExact ? ExactSigmoid(x)
                                                 : TabulatedSigmoid(x);
}

// --- Reductions --------------------------------------------------------------
//
// The unrolled bodies below and their ScalarRef twins execute the exact same
// IEEE operations in the same dependency order; the unrolled form just
// exposes four independent accumulator chains so the compiler can pipeline
// or vectorize them.

double Dot(const double* a, const double* b, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  for (size_t i = 0; i < main; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  double acc = (acc0 + acc1) + (acc2 + acc3);
  for (size_t i = main; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double DotScalarRef(const double* a, const double* b, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < main; ++i) acc[i & 3] += a[i] * b[i];
  double total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  for (size_t i = main; i < n; ++i) total += a[i] * b[i];
  return total;
}

double Sum(const double* a, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  for (size_t i = 0; i < main; i += 4) {
    acc0 += a[i];
    acc1 += a[i + 1];
    acc2 += a[i + 2];
    acc3 += a[i + 3];
  }
  double acc = (acc0 + acc1) + (acc2 + acc3);
  for (size_t i = main; i < n; ++i) acc += a[i];
  return acc;
}

double SumScalarRef(const double* a, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < main; ++i) acc[i & 3] += a[i];
  double total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  for (size_t i = main; i < n; ++i) total += a[i];
  return total;
}

// --- Elementwise -------------------------------------------------------------

void Add(double* y, const double* x, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    y[i] += x[i];
    y[i + 1] += x[i + 1];
    y[i + 2] += x[i + 2];
    y[i + 3] += x[i + 3];
  }
  for (size_t i = main; i < n; ++i) y[i] += x[i];
}

void Sub(double* y, const double* x, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    y[i] -= x[i];
    y[i + 1] -= x[i + 1];
    y[i + 2] -= x[i + 2];
    y[i + 3] -= x[i + 3];
  }
  for (size_t i = main; i < n; ++i) y[i] -= x[i];
}

void Mul(double* y, const double* x, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    y[i] *= x[i];
    y[i + 1] *= x[i + 1];
    y[i + 2] *= x[i + 2];
    y[i + 3] *= x[i + 3];
  }
  for (size_t i = main; i < n; ++i) y[i] *= x[i];
}

void Scale(double* y, double s, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    y[i] *= s;
    y[i + 1] *= s;
    y[i + 2] *= s;
    y[i + 3] *= s;
  }
  for (size_t i = main; i < n; ++i) y[i] *= s;
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    y[i] += alpha * x[i];
    y[i + 1] += alpha * x[i + 1];
    y[i + 2] += alpha * x[i + 2];
    y[i + 3] += alpha * x[i + 3];
  }
  for (size_t i = main; i < n; ++i) y[i] += alpha * x[i];
}

void AxpyScalarRef(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAdd(double* y, double alpha, double beta, const double* x,
              size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    y[i] = alpha * y[i] + beta * x[i];
    y[i + 1] = alpha * y[i + 1] + beta * x[i + 1];
    y[i + 2] = alpha * y[i + 2] + beta * x[i + 2];
    y[i + 3] = alpha * y[i + 3] + beta * x[i + 3];
  }
  for (size_t i = main; i < n; ++i) y[i] = alpha * y[i] + beta * x[i];
}

void ScaleAddScalarRef(double* y, double alpha, double beta, const double* x,
                       size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = alpha * y[i] + beta * x[i];
}

// --- Fused skip-gram pair update --------------------------------------------

double FusedDotSigmoidUpdate(const double* __restrict w, double* __restrict c,
                             double* __restrict center_grad, size_t n,
                             double label, double lr) {
  const double g = (label - TrainingSigmoid(Dot(w, c, n))) * lr;
  const size_t main = n & ~static_cast<size_t>(3);
  for (size_t i = 0; i < main; i += 4) {
    const double c0 = c[i], c1 = c[i + 1], c2 = c[i + 2], c3 = c[i + 3];
    center_grad[i] += g * c0;
    center_grad[i + 1] += g * c1;
    center_grad[i + 2] += g * c2;
    center_grad[i + 3] += g * c3;
    c[i] = c0 + g * w[i];
    c[i + 1] = c1 + g * w[i + 1];
    c[i + 2] = c2 + g * w[i + 2];
    c[i + 3] = c3 + g * w[i + 3];
  }
  for (size_t i = main; i < n; ++i) {
    const double ci = c[i];
    center_grad[i] += g * ci;
    c[i] = ci + g * w[i];
  }
  return g;
}

double FusedDotSigmoidUpdateScalarRef(const double* w, double* c,
                                      double* center_grad, size_t n,
                                      double label, double lr) {
  const double g = (label - TrainingSigmoid(DotScalarRef(w, c, n))) * lr;
  for (size_t i = 0; i < n; ++i) {
    const double ci = c[i];
    center_grad[i] += g * ci;
    c[i] = ci + g * w[i];
  }
  return g;
}

// --- Replica averaging -------------------------------------------------------

void ReplicatedMean(double* y, size_t count, double inv, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double x = y[i];
    double acc = x;
    for (size_t s = 1; s < count; ++s) acc += x;
    y[i] = acc * inv;
  }
}

}  // namespace tg::kernels
