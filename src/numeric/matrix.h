// Dense row-major double-precision matrix, the numeric workhorse for the
// autograd engine, GNN layers, transferability estimators and the synthetic
// model zoo. Deliberately simple: contiguous storage, bounds-checked element
// access in debug via TG_CHECK, no expression templates.
#ifndef TG_NUMERIC_MATRIX_H_
#define TG_NUMERIC_MATRIX_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/aligned.h"
#include "util/check.h"

namespace tg {

class Rng;

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Builds from nested initializer data (row major), e.g. {{1,2},{3,4}}.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);
  static Matrix Identity(size_t n);
  // Entries i.i.d. N(mean, stddev).
  static Matrix Gaussian(size_t rows, size_t cols, Rng* rng,
                         double mean = 0.0, double stddev = 1.0);
  // Entries i.i.d. uniform in [lo, hi).
  static Matrix Uniform(size_t rows, size_t cols, Rng* rng,
                        double lo, double hi);
  // Column vector from values.
  static Matrix ColumnVector(const std::vector<double>& values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) {
    TG_CHECK_LT(r, rows_);
    TG_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    TG_CHECK_LT(r, rows_);
    TG_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  std::vector<double> Row(size_t r) const;
  std::vector<double> Col(size_t c) const;
  void SetRow(size_t r, const std::vector<double>& values);

  // --- Arithmetic. Shapes must match exactly (no broadcasting except the
  // explicitly named *RowBroadcast variants). ---
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) {
    lhs -= rhs;
    return lhs;
  }
  friend Matrix operator*(Matrix lhs, double scalar) {
    lhs *= scalar;
    return lhs;
  }
  friend Matrix operator*(double scalar, Matrix rhs) {
    rhs *= scalar;
    return rhs;
  }

  // Matrix product (this: m x k, other: k x n).
  Matrix MatMul(const Matrix& other) const;
  // this^T * other without materializing the transpose.
  Matrix TransposedMatMul(const Matrix& other) const;
  // this * other^T without materializing the transpose.
  Matrix MatMulTransposed(const Matrix& other) const;

  Matrix Transpose() const;
  Matrix Hadamard(const Matrix& other) const;

  // Adds a 1 x cols row vector to every row.
  Matrix AddRowBroadcast(const Matrix& row) const;

  // Applies fn elementwise.
  Matrix Map(const std::function<double(double)>& fn) const;

  double Sum() const;
  double FrobeniusNorm() const;
  double MaxAbs() const;

  // Per-row mean: returns rows x 1.
  Matrix RowMean() const;
  // Column sums: returns 1 x cols.
  Matrix ColSum() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string ShapeString() const;

 private:
  size_t rows_;
  size_t cols_;
  // Cache-line aligned so row 0 starts on a 64B boundary; rows whose dim is
  // a multiple of 8 doubles then never straddle an extra line.
  std::vector<double, AlignedAllocator<double, 64>> data_;
};

}  // namespace tg

#endif  // TG_NUMERIC_MATRIX_H_
