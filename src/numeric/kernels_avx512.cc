// The `avx512` kernel backend: 512-bit AVX-512F intrinsics. Compiled only
// when the toolchain accepts -mavx512f (see src/CMakeLists.txt) and selected
// only after __builtin_cpu_supports("avx512f") confirms the host.
//
// Same numerics policy as kernels_avx2.cc: reductions and FMA-bearing
// kernels sit inside the documented ulp envelope vs the scalar backend;
// Add/Sub/Mul/Scale and ReplicatedMean are bit-identical across backends.
// Tails under 8 elements use masked loads/stores rather than scalar loops so
// the whole kernel stays in one code shape.
#include "numeric/kernel_backend.h"
#include "numeric/kernels.h"
#include "numeric/kernels_generic.h"  // HistAccumulatePrefetch (scalar adds)

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <immintrin.h>

namespace tg::kernels::internal {
namespace {

inline __mmask8 TailMask(size_t remaining) {
  return static_cast<__mmask8>((1u << remaining) - 1u);
}

double DotAvx512(const double* a, const double* b, size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i),
                           acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 8),
                           _mm512_loadu_pd(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i),
                           acc0);
  }
  double total = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

double SumAvx512(const double* a, size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_add_pd(acc0, _mm512_loadu_pd(a + i));
    acc1 = _mm512_add_pd(acc1, _mm512_loadu_pd(a + i + 8));
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm512_add_pd(acc0, _mm512_loadu_pd(a + i));
  }
  double total = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
  for (; i < n; ++i) total += a[i];
  return total;
}

void AddAvx512(double* y, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        y + i, _mm512_add_pd(_mm512_loadu_pd(y + i), _mm512_loadu_pd(x + i)));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    const __m512d vy = _mm512_maskz_loadu_pd(m, y + i);
    const __m512d vx = _mm512_maskz_loadu_pd(m, x + i);
    _mm512_mask_storeu_pd(y + i, m, _mm512_add_pd(vy, vx));
  }
}

void SubAvx512(double* y, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        y + i, _mm512_sub_pd(_mm512_loadu_pd(y + i), _mm512_loadu_pd(x + i)));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    const __m512d vy = _mm512_maskz_loadu_pd(m, y + i);
    const __m512d vx = _mm512_maskz_loadu_pd(m, x + i);
    _mm512_mask_storeu_pd(y + i, m, _mm512_sub_pd(vy, vx));
  }
}

void MulAvx512(double* y, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        y + i, _mm512_mul_pd(_mm512_loadu_pd(y + i), _mm512_loadu_pd(x + i)));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    const __m512d vy = _mm512_maskz_loadu_pd(m, y + i);
    const __m512d vx = _mm512_maskz_loadu_pd(m, x + i);
    _mm512_mask_storeu_pd(y + i, m, _mm512_mul_pd(vy, vx));
  }
}

void ScaleAvx512(double* y, double s, size_t n) {
  const __m512d vs = _mm512_set1_pd(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(y + i, _mm512_mul_pd(_mm512_loadu_pd(y + i), vs));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    const __m512d vy = _mm512_maskz_loadu_pd(m, y + i);
    _mm512_mask_storeu_pd(y + i, m, _mm512_mul_pd(vy, vs));
  }
}

void AxpyAvx512(double alpha, const double* x, double* y, size_t n) {
  const __m512d va = _mm512_set1_pd(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        y + i,
        _mm512_fmadd_pd(va, _mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i)));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    const __m512d vy = _mm512_maskz_loadu_pd(m, y + i);
    const __m512d vx = _mm512_maskz_loadu_pd(m, x + i);
    _mm512_mask_storeu_pd(y + i, m, _mm512_fmadd_pd(va, vx, vy));
  }
}

void ScaleAddAvx512(double* y, double alpha, double beta, const double* x,
                    size_t n) {
  const __m512d va = _mm512_set1_pd(alpha);
  const __m512d vb = _mm512_set1_pd(beta);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d ay = _mm512_mul_pd(va, _mm512_loadu_pd(y + i));
    _mm512_storeu_pd(y + i, _mm512_fmadd_pd(vb, _mm512_loadu_pd(x + i), ay));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    const __m512d vy = _mm512_maskz_loadu_pd(m, y + i);
    const __m512d vx = _mm512_maskz_loadu_pd(m, x + i);
    _mm512_mask_storeu_pd(y + i, m,
                          _mm512_fmadd_pd(vb, vx, _mm512_mul_pd(va, vy)));
  }
}

void MulAddAvx512(double* z, const double* x, const double* y, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(z + i, _mm512_fmadd_pd(_mm512_loadu_pd(x + i),
                                            _mm512_loadu_pd(y + i),
                                            _mm512_loadu_pd(z + i)));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    const __m512d vx = _mm512_maskz_loadu_pd(m, x + i);
    const __m512d vy = _mm512_maskz_loadu_pd(m, y + i);
    const __m512d vz = _mm512_maskz_loadu_pd(m, z + i);
    _mm512_mask_storeu_pd(z + i, m, _mm512_fmadd_pd(vx, vy, vz));
  }
}

double FusedDotSigmoidUpdateAvx512(const double* w, double* c,
                                   double* center_grad, size_t n, double label,
                                   double lr) {
  const double g = (label - TrainingSigmoid(DotAvx512(w, c, n))) * lr;
  const __m512d vg = _mm512_set1_pd(g);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d vc = _mm512_loadu_pd(c + i);
    const __m512d vw = _mm512_loadu_pd(w + i);
    _mm512_storeu_pd(center_grad + i,
                     _mm512_fmadd_pd(vg, vc, _mm512_loadu_pd(center_grad + i)));
    _mm512_storeu_pd(c + i, _mm512_fmadd_pd(vg, vw, vc));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    const __m512d vc = _mm512_maskz_loadu_pd(m, c + i);
    const __m512d vw = _mm512_maskz_loadu_pd(m, w + i);
    const __m512d vcg = _mm512_maskz_loadu_pd(m, center_grad + i);
    _mm512_mask_storeu_pd(center_grad + i, m, _mm512_fmadd_pd(vg, vc, vcg));
    _mm512_mask_storeu_pd(c + i, m, _mm512_fmadd_pd(vg, vw, vc));
  }
  return g;
}

void ReplicatedMeanAvx512(double* y, size_t count, double inv, size_t n) {
  const __m512d vinv = _mm512_set1_pd(inv);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d x = _mm512_loadu_pd(y + i);
    __m512d acc = x;
    for (size_t s = 1; s < count; ++s) acc = _mm512_add_pd(acc, x);
    _mm512_storeu_pd(y + i, _mm512_mul_pd(acc, vinv));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    const __m512d x = _mm512_maskz_loadu_pd(m, y + i);
    __m512d acc = x;
    for (size_t s = 1; s < count; ++s) acc = _mm512_add_pd(acc, x);
    _mm512_mask_storeu_pd(y + i, m, _mm512_mul_pd(acc, vinv));
  }
}

const KernelBackend kAvx512Backend = {
    "avx512",
    DotAvx512,
    SumAvx512,
    AddAvx512,
    SubAvx512,
    MulAvx512,
    ScaleAvx512,
    AxpyAvx512,
    ScaleAddAvx512,
    MulAddAvx512,
    generic::HistAccumulatePrefetch<uint8_t>,
    generic::HistAccumulatePrefetch<uint16_t>,
    FusedDotSigmoidUpdateAvx512,
    ReplicatedMeanAvx512,
};

}  // namespace

const KernelBackend* Avx512BackendTable() { return &kAvx512Backend; }

}  // namespace tg::kernels::internal

#endif  // x86
