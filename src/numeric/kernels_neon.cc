// The `neon` kernel backend: 128-bit float64x2 intrinsics for aarch64, where
// Advanced SIMD is part of the base ISA (no per-file flags or runtime probe
// needed -- the dispatcher registers this table whenever it is compiled in).
//
// Same numerics policy as the x86 vector backends: two-lane accumulator
// reductions and vfmaq contraction sit inside the documented ulp envelope vs
// the scalar backend; Add/Sub/Mul/Scale and ReplicatedMean are bit-identical
// across backends.
#include "numeric/kernel_backend.h"
#include "numeric/kernels.h"
#include "numeric/kernels_generic.h"  // HistAccumulatePrefetch (scalar adds)

#if defined(__aarch64__)
#include <arm_neon.h>

namespace tg::kernels::internal {
namespace {

double DotNeon(const double* a, const double* b, size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
    acc1 = vfmaq_f64(acc1, vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
  }
  double total = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

double SumNeon(const double* a, size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vaddq_f64(acc0, vld1q_f64(a + i));
    acc1 = vaddq_f64(acc1, vld1q_f64(a + i + 2));
  }
  double total = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) total += a[i];
  return total;
}

void AddNeon(double* y, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void SubNeon(double* y, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i, vsubq_f64(vld1q_f64(y + i), vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

void MulNeon(double* y, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i, vmulq_f64(vld1q_f64(y + i), vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void ScaleNeon(double* y, double s, size_t n) {
  const float64x2_t vs = vdupq_n_f64(s);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i, vmulq_f64(vld1q_f64(y + i), vs));
  }
  for (; i < n; ++i) y[i] *= s;
}

void AxpyNeon(double alpha, const double* x, double* y, size_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i, vfmaq_f64(vld1q_f64(y + i), va, vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAddNeon(double* y, double alpha, double beta, const double* x,
                  size_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  const float64x2_t vb = vdupq_n_f64(beta);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t ay = vmulq_f64(va, vld1q_f64(y + i));
    vst1q_f64(y + i, vfmaq_f64(ay, vb, vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] = alpha * y[i] + beta * x[i];
}

void MulAddNeon(double* z, const double* x, const double* y, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(z + i,
              vfmaq_f64(vld1q_f64(z + i), vld1q_f64(x + i), vld1q_f64(y + i)));
  }
  for (; i < n; ++i) z[i] += x[i] * y[i];
}

double FusedDotSigmoidUpdateNeon(const double* w, double* c,
                                 double* center_grad, size_t n, double label,
                                 double lr) {
  const double g = (label - TrainingSigmoid(DotNeon(w, c, n))) * lr;
  const float64x2_t vg = vdupq_n_f64(g);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t vc = vld1q_f64(c + i);
    const float64x2_t vw = vld1q_f64(w + i);
    vst1q_f64(center_grad + i,
              vfmaq_f64(vld1q_f64(center_grad + i), vg, vc));
    vst1q_f64(c + i, vfmaq_f64(vc, vg, vw));
  }
  for (; i < n; ++i) {
    const double ci = c[i];
    center_grad[i] += g * ci;
    c[i] = ci + g * w[i];
  }
  return g;
}

void ReplicatedMeanNeon(double* y, size_t count, double inv, size_t n) {
  const float64x2_t vinv = vdupq_n_f64(inv);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t x = vld1q_f64(y + i);
    float64x2_t acc = x;
    for (size_t s = 1; s < count; ++s) acc = vaddq_f64(acc, x);
    vst1q_f64(y + i, vmulq_f64(acc, vinv));
  }
  for (; i < n; ++i) {
    const double x = y[i];
    double acc = x;
    for (size_t s = 1; s < count; ++s) acc += x;
    y[i] = acc * inv;
  }
}

const KernelBackend kNeonBackend = {
    "neon",
    DotNeon,
    SumNeon,
    AddNeon,
    SubNeon,
    MulNeon,
    ScaleNeon,
    AxpyNeon,
    ScaleAddNeon,
    MulAddNeon,
    generic::HistAccumulatePrefetch<uint8_t>,
    generic::HistAccumulatePrefetch<uint16_t>,
    FusedDotSigmoidUpdateNeon,
    ReplicatedMeanNeon,
};

}  // namespace

const KernelBackend* NeonBackendTable() { return &kNeonBackend; }

}  // namespace tg::kernels::internal

#endif  // __aarch64__
