#include "numeric/matrix.h"

#include <cmath>

#include "numeric/kernels.h"
#include "util/rng.h"

namespace tg {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix out(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    TG_CHECK_EQ(rows[r].size(), out.cols_);
    for (size_t c = 0; c < out.cols_; ++c) out(r, c) = rows[r][c];
  }
  return out;
}

Matrix Matrix::Identity(size_t n) {
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix Matrix::Gaussian(size_t rows, size_t cols, Rng* rng, double mean,
                        double stddev) {
  Matrix out(rows, cols);
  for (double& v : out.data_) v = rng->NextGaussian(mean, stddev);
  return out;
}

Matrix Matrix::Uniform(size_t rows, size_t cols, Rng* rng, double lo,
                       double hi) {
  Matrix out(rows, cols);
  for (double& v : out.data_) v = rng->NextUniform(lo, hi);
  return out;
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  Matrix out(values.size(), 1);
  for (size_t i = 0; i < values.size(); ++i) out(i, 0) = values[i];
  return out;
}

std::vector<double> Matrix::Row(size_t r) const {
  TG_CHECK_LT(r, rows_);
  return std::vector<double>(RowPtr(r), RowPtr(r) + cols_);
}

std::vector<double> Matrix::Col(size_t c) const {
  TG_CHECK_LT(c, cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  TG_CHECK_LT(r, rows_);
  TG_CHECK_EQ(values.size(), cols_);
  for (size_t c = 0; c < cols_; ++c) (*this)(r, c) = values[c];
}

Matrix& Matrix::operator+=(const Matrix& other) {
  TG_CHECK(SameShape(other));
  kernels::Add(data_.data(), other.data_.data(), data_.size());
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  TG_CHECK(SameShape(other));
  kernels::Sub(data_.data(), other.data_.data(), data_.size());
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  kernels::Scale(data_.data(), scalar, data_.size());
  return *this;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  TG_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order for cache-friendly access to row-major storage.
  for (size_t i = 0; i < rows_; ++i) {
    const double* a_row = RowPtr(i);
    double* out_row = out.RowPtr(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double a = a_row[k];
      if (a == 0.0) continue;
      kernels::Axpy(a, other.RowPtr(k), out_row, other.cols_);
    }
  }
  return out;
}

Matrix Matrix::TransposedMatMul(const Matrix& other) const {
  TG_CHECK_EQ(rows_, other.rows_);
  Matrix out(cols_, other.cols_);
  for (size_t k = 0; k < rows_; ++k) {
    const double* a_row = RowPtr(k);
    const double* b_row = other.RowPtr(k);
    for (size_t i = 0; i < cols_; ++i) {
      const double a = a_row[i];
      if (a == 0.0) continue;
      kernels::Axpy(a, b_row, out.RowPtr(i), other.cols_);
    }
  }
  return out;
}

Matrix Matrix::MatMulTransposed(const Matrix& other) const {
  TG_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_, other.rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a_row = RowPtr(i);
    for (size_t j = 0; j < other.rows_; ++j) {
      out(i, j) = kernels::Dot(a_row, other.RowPtr(j), cols_);
    }
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  TG_CHECK(SameShape(other));
  Matrix out = *this;
  kernels::Mul(out.data_.data(), other.data_.data(), out.data_.size());
  return out;
}

Matrix Matrix::AddRowBroadcast(const Matrix& row) const {
  TG_CHECK_EQ(row.rows(), 1u);
  TG_CHECK_EQ(row.cols(), cols_);
  Matrix out = *this;
  for (size_t r = 0; r < rows_; ++r) {
    kernels::Add(out.RowPtr(r), row.RowPtr(0), cols_);
  }
  return out;
}

Matrix Matrix::Map(const std::function<double(double)>& fn) const {
  Matrix out = *this;
  for (double& v : out.data_) v = fn(v);
  return out;
}

double Matrix::Sum() const {
  return kernels::Sum(data_.data(), data_.size());
}

double Matrix::FrobeniusNorm() const {
  return std::sqrt(kernels::Dot(data_.data(), data_.data(), data_.size()));
}

double Matrix::MaxAbs() const {
  double acc = 0.0;
  for (double v : data_) acc = std::max(acc, std::fabs(v));
  return acc;
}

Matrix Matrix::RowMean() const {
  Matrix out(rows_, 1);
  if (cols_ == 0) return out;
  for (size_t r = 0; r < rows_; ++r) {
    out(r, 0) = kernels::Sum(RowPtr(r), cols_) / static_cast<double>(cols_);
  }
  return out;
}

Matrix Matrix::ColSum() const {
  Matrix out(1, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    kernels::Add(out.RowPtr(0), RowPtr(r), cols_);
  }
  return out;
}

std::string Matrix::ShapeString() const {
  return "[" + std::to_string(rows_) + " x " + std::to_string(cols_) + "]";
}

}  // namespace tg
