#include "numeric/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "numeric/kernels.h"

namespace tg {

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix, got " +
                                   a.ShapeString());
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      // Rows i and j of L are filled left-to-right, so their first j entries
      // are valid contiguous prefixes: one kernel dot per element.
      double sum = a(i, j) - kernels::Dot(l.RowPtr(i), l.RowPtr(j), j);
      if (i == j) {
        if (sum <= 0.0) {
          return Status::FailedPrecondition(
              "matrix is not positive definite (pivot " +
              std::to_string(sum) + " at " + std::to_string(i) + ")");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

Result<Matrix> CholeskySolve(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("dimension mismatch in CholeskySolve");
  }
  Result<Matrix> factor = CholeskyFactor(a);
  if (!factor.ok()) return factor.status();
  const Matrix& l = factor.value();
  const size_t n = a.rows();
  const size_t m = b.cols();

  // Forward substitution: L z = b.
  Matrix z = b;
  for (size_t c = 0; c < m; ++c) {
    for (size_t i = 0; i < n; ++i) {
      double sum = z(i, c);
      for (size_t k = 0; k < i; ++k) sum -= l(i, k) * z(k, c);
      z(i, c) = sum / l(i, i);
    }
  }
  // Back substitution: L^T x = z.
  Matrix x = z;
  for (size_t c = 0; c < m; ++c) {
    for (size_t ii = n; ii > 0; --ii) {
      const size_t i = ii - 1;
      double sum = x(i, c);
      for (size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x(k, c);
      x(i, c) = sum / l(i, i);
    }
  }
  return x;
}

Result<EigenDecomposition> SymmetricEigen(const Matrix& a, int max_sweeps,
                                          double tol) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("eigendecomposition requires square input");
  }
  const size_t n = a.rows();
  // Verify symmetry (within roundoff) so silent garbage cannot escape.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double scale = std::max({1.0, std::fabs(a(i, j)), std::fabs(a(j, i))});
      if (std::fabs(a(i, j) - a(j, i)) > 1e-8 * scale) {
        return Status::InvalidArgument("matrix is not symmetric");
      }
    }
  }

  Matrix d = a;
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) off += d(i, j) * d(i, j);
    }
    if (off < tol * tol) break;

    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        if (std::fabs(d(p, q)) < 1e-300) continue;
        const double theta = (d(q, q) - d(p, p)) / (2.0 * d(p, q));
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue, permuting eigenvector columns alongside.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return d(x, x) < d(y, y); });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (size_t c = 0; c < n; ++c) {
    out.eigenvalues[c] = d(order[c], order[c]);
    for (size_t r = 0; r < n; ++r) out.eigenvectors(r, c) = v(r, order[c]);
  }
  return out;
}

Result<SingularValueDecomposition> ThinSvd(const Matrix& a, double rank_tol) {
  if (a.empty()) return Status::InvalidArgument("SVD of empty matrix");
  // Gram matrix G = A^T A (d x d); eigenpairs give V and s^2.
  Matrix gram = a.TransposedMatMul(a);
  Result<EigenDecomposition> eig = SymmetricEigen(gram);
  if (!eig.ok()) return eig.status();

  const size_t d = a.cols();
  // Eigenvalues ascending -> iterate from the back for descending s.
  std::vector<double> svals;
  std::vector<size_t> cols;
  double max_ev = 0.0;
  for (double ev : eig.value().eigenvalues) max_ev = std::max(max_ev, ev);
  const double cutoff = std::max(max_ev * rank_tol * rank_tol, 0.0);
  for (size_t ci = d; ci > 0; --ci) {
    const size_t c = ci - 1;
    const double ev = eig.value().eigenvalues[c];
    if (ev <= cutoff || ev <= 0.0) continue;
    svals.push_back(std::sqrt(ev));
    cols.push_back(c);
  }
  const size_t r = svals.size();
  if (r == 0) return Status::FailedPrecondition("matrix has numerical rank 0");

  SingularValueDecomposition out;
  out.singular_values = svals;
  out.v = Matrix(d, r);
  for (size_t j = 0; j < r; ++j) {
    for (size_t i = 0; i < d; ++i) {
      out.v(i, j) = eig.value().eigenvectors(i, cols[j]);
    }
  }
  // U = A V diag(1/s).
  out.u = a.MatMul(out.v);
  for (size_t i = 0; i < out.u.rows(); ++i) {
    for (size_t j = 0; j < r; ++j) out.u(i, j) /= svals[j];
  }
  return out;
}

Result<Matrix> RidgeSolve(const Matrix& x, const Matrix& y, double lambda) {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("X and y row counts differ");
  }
  if (lambda < 0.0) {
    return Status::InvalidArgument("ridge penalty must be non-negative");
  }
  Matrix gram = x.TransposedMatMul(x);
  for (size_t i = 0; i < gram.rows(); ++i) gram(i, i) += lambda;
  Matrix xty = x.TransposedMatMul(y);
  return CholeskySolve(gram, xty);
}

}  // namespace tg
