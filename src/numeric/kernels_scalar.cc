// The `scalar` kernel backend: the generic fixed-order bodies instantiated
// under the base architecture flags (no per-file -march). This TU is the
// determinism oracle every other backend is tested against -- see
// kernels_generic.h for why the instantiation here is bit-identical to the
// pre-dispatch kernel layer.
#include "numeric/kernel_backend.h"
#include "numeric/kernels_generic.h"

namespace tg::kernels::internal {
namespace {

const KernelBackend kScalarBackend = {
    "scalar",
    generic::Dot,
    generic::Sum,
    generic::Add,
    generic::Sub,
    generic::Mul,
    generic::Scale,
    generic::Axpy,
    generic::ScaleAdd,
    generic::MulAdd,
    generic::HistAccumulate<uint8_t>,
    generic::HistAccumulate<uint16_t>,
    generic::FusedDotSigmoidUpdate,
    generic::ReplicatedMean,
};

}  // namespace

const KernelBackend* ScalarBackendTable() { return &kScalarBackend; }

}  // namespace tg::kernels::internal
