// Runtime-dispatched kernel backends: one function-pointer table per
// instruction set, resolved once per process into the table the public
// tg::kernels entry points call through.
//
// Backends:
//   * scalar  -- the fixed-order unrolled C++ kernels (kernels_scalar.cc),
//                compiled with the base architecture flags. Bit-identical to
//                the *ScalarRef twins and to the pre-dispatch kernel layer,
//                on every host. This is the determinism oracle.
//   * avx2    -- 256-bit AVX2+FMA intrinsics (kernels_avx2.cc, compiled with
//                per-file -mavx2 -mfma so the rest of the binary stays
//                runnable on any x86-64).
//   * avx512  -- 512-bit AVX-512F intrinsics (kernels_avx512.cc), built only
//                when the toolchain accepts -mavx512f.
//   * neon    -- 128-bit NEON intrinsics (kernels_neon.cc), aarch64 builds.
//
// Selection: the first ActiveBackend() call reads TG_ISA
// ({auto, scalar, avx2, avx512, neon}; unset/empty means auto) and probes
// the CPU (__builtin_cpu_supports on x86). `auto` picks the widest backend
// both compiled in and supported by the host; forcing an unavailable
// backend is a hard error (a forced knob that silently fell back would
// invalidate whatever the caller was trying to measure or reproduce).
//
// Numerics policy (docs/performance.md): every backend is a pure function
// of its inputs, so any *fixed* backend keeps the bit-identical-across-
// thread-counts contract. Vectorized backends reassociate reductions and
// contract mul+add to FMA, so they differ from `scalar` by bounded ulps --
// exact mode (TG_ISA=scalar) for reproducing seed outputs and golden tests,
// fast mode (auto) for production. tests/kernels_test.cc pins the envelope
// per backend against the ScalarRef twins.
#ifndef TG_NUMERIC_KERNEL_BACKEND_H_
#define TG_NUMERIC_KERNEL_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tg::kernels {

// Per-backend implementations of the dense kernels in kernels.h. Semantics
// (including the determinism notes per entry) match the public functions.
struct KernelBackend {
  const char* name;

  double (*dot)(const double* a, const double* b, size_t n);
  double (*sum)(const double* a, size_t n);

  // Elementwise kernels touch each element with the same single IEEE
  // operation in every backend, so these four are bit-identical across
  // backends by construction.
  void (*add)(double* y, const double* x, size_t n);
  void (*sub)(double* y, const double* x, size_t n);
  void (*mul)(double* y, const double* x, size_t n);
  void (*scale)(double* y, double s, size_t n);

  void (*axpy)(double alpha, const double* x, double* y, size_t n);
  void (*scale_add)(double* y, double alpha, double beta, const double* x,
                    size_t n);
  // z[i] += x[i] * y[i] -- the autograd gradient-accumulate fusion. Vector
  // backends may contract to FMA (ulp envelope, like axpy); the scalar
  // backend performs the two-rounding mul-then-add sequence.
  void (*mul_add)(double* z, const double* x, const double* y, size_t n);
  // Histogram scatter-accumulate for binned tree training: for i in order,
  // r = rows[i]; b = codes[r]; sums[b] += values[r]; counts[b] += 1.0.
  // The scatter adds MUST run in index order in every backend (bins repeat,
  // so reassociating would change the sums), which makes these two
  // bit-identical across backends by construction -- vector backends may
  // only add prefetching/unrolling around the same serial adds.
  void (*hist_accumulate_u8)(const uint8_t* codes, const size_t* rows,
                             size_t n, const double* values, double* sums,
                             double* counts);
  void (*hist_accumulate_u16)(const uint16_t* codes, const size_t* rows,
                              size_t n, const double* values, double* sums,
                              double* counts);
  double (*fused_dot_sigmoid_update)(const double* w, double* c,
                                     double* center_grad, size_t n,
                                     double label, double lr);
  // Must reproduce the exact per-element accumulate-count-times-then-scale
  // sequence in every backend (the dirty-row merge equivalence relies on
  // it); vectorizing across elements is fine, across the count loop is not.
  void (*replicated_mean)(double* y, size_t count, double inv, size_t n);
};

// The fixed-order scalar table; always compiled, always supported.
const KernelBackend& ScalarBackend();

// The table every kernels.h entry point currently dispatches through.
// First call resolves TG_ISA + CPU support and emits the
// `numeric.backend.<name>` metrics counter.
const KernelBackend& ActiveBackend();
const char* ActiveBackendName();

// Forces a backend at runtime (tests; mirrors the TG_ISA values including
// "auto"). Returns false -- without changing the active table -- when the
// name is unknown, not compiled in, or unsupported by this CPU. Must not be
// called while kernel-calling work is in flight on other threads.
bool SetActiveBackend(const std::string& name);

// Names of the backends this binary could run on this host ("scalar" plus
// whatever ISA-specific tables are compiled in and CPU-supported), widest
// last. AvailableBackendNames().back() is what `auto` resolves to.
std::vector<std::string> AvailableBackendNames();

namespace internal {
// One accessor per backend TU. Only kernels_scalar.cc is always compiled;
// kernel_dispatch.cc references the others solely under the matching
// TG_HAVE_KERNELS_* compile definition, so the unconditional declarations
// here never create undefined references.
const KernelBackend* ScalarBackendTable();
const KernelBackend* Avx2BackendTable();
const KernelBackend* Avx512BackendTable();
const KernelBackend* NeonBackendTable();
}  // namespace internal

}  // namespace tg::kernels

#endif  // TG_NUMERIC_KERNEL_BACKEND_H_
