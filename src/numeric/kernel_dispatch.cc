// Backend registry + runtime selection for the kernel layer. Compiled-in
// backends are announced by the TG_HAVE_KERNELS_* compile definitions this TU
// (alone) is built with (src/CMakeLists.txt); host support is probed with
// __builtin_cpu_supports on x86. aarch64 Advanced SIMD is part of the base
// ISA, so the neon table needs no runtime probe.
#include "numeric/kernel_backend.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace tg::kernels {
namespace {

bool HostSupportsAvx2() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool HostSupportsAvx512() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

// Compiled-in AND host-supported backends, widest last. `auto` resolves to
// the back of this list.
struct Registry {
  const KernelBackend* tables[4];
  size_t size;
};

const Registry& AvailableRegistry() {
  static const Registry registry = [] {
    Registry r{};
    r.tables[r.size++] = internal::ScalarBackendTable();
#if defined(TG_HAVE_KERNELS_NEON)
    r.tables[r.size++] = internal::NeonBackendTable();
#endif
#if defined(TG_HAVE_KERNELS_AVX2)
    if (HostSupportsAvx2()) r.tables[r.size++] = internal::Avx2BackendTable();
#endif
#if defined(TG_HAVE_KERNELS_AVX512)
    if (HostSupportsAvx512()) {
      r.tables[r.size++] = internal::Avx512BackendTable();
    }
#endif
    return r;
  }();
  return registry;
}

const KernelBackend* FindAvailable(const char* name) {
  const Registry& registry = AvailableRegistry();
  if (std::strcmp(name, "auto") == 0) {
    return registry.tables[registry.size - 1];
  }
  for (size_t i = 0; i < registry.size; ++i) {
    if (std::strcmp(registry.tables[i]->name, name) == 0) {
      return registry.tables[i];
    }
  }
  return nullptr;
}

void RecordSelection(const KernelBackend* backend) {
  // One increment per selection (not per kernel call), so traces and
  // bench_timings.json metrics show which backend served the run even when
  // metrics were enabled after the first kernel call.
  obs::MetricsRegistry::Instance()
      .GetCounter(std::string("numeric.backend.") + backend->name)
      .Increment();
}

std::atomic<const KernelBackend*> g_active{nullptr};

const KernelBackend* ResolveActive() {
  const char* env = std::getenv("TG_ISA");
  const char* name = (env == nullptr || env[0] == '\0') ? "auto" : env;
  const KernelBackend* backend = FindAvailable(name);
  if (backend == nullptr) {
    // A forced backend that silently fell back would invalidate whatever the
    // caller was trying to measure or reproduce, so this is fatal.
    std::string names;
    for (const std::string& available : AvailableBackendNames()) {
      names += names.empty() ? available : (", " + available);
    }
    std::fprintf(stderr,
                 "TG_ISA=%s: unknown or unavailable kernel backend on this "
                 "host (available: auto, %s)\n",
                 name, names.c_str());
    std::exit(1);
  }
  const KernelBackend* expected = nullptr;
  if (g_active.compare_exchange_strong(expected, backend,
                                       std::memory_order_acq_rel)) {
    RecordSelection(backend);
    return backend;
  }
  return expected;  // Another thread resolved first; use its pick.
}

}  // namespace

const KernelBackend& ScalarBackend() { return *internal::ScalarBackendTable(); }

const KernelBackend& ActiveBackend() {
  const KernelBackend* backend = g_active.load(std::memory_order_acquire);
  if (backend == nullptr) backend = ResolveActive();
  return *backend;
}

const char* ActiveBackendName() { return ActiveBackend().name; }

bool SetActiveBackend(const std::string& name) {
  const KernelBackend* backend = FindAvailable(name.c_str());
  if (backend == nullptr) return false;
  g_active.store(backend, std::memory_order_release);
  RecordSelection(backend);
  return true;
}

std::vector<std::string> AvailableBackendNames() {
  const Registry& registry = AvailableRegistry();
  std::vector<std::string> names;
  names.reserve(registry.size);
  for (size_t i = 0; i < registry.size; ++i) {
    names.emplace_back(registry.tables[i]->name);
  }
  return names;
}

}  // namespace tg::kernels
