#include "numeric/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace tg {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = std::accumulate(values.begin(), values.end(), 0.0);
  return acc / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const double mu = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mu) * (v - mu);
  return acc / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Min(const std::vector<double>& values) {
  TG_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  TG_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

double Quantile(std::vector<double> values, double q) {
  TG_CHECK(!values.empty());
  TG_CHECK_GE(q, 0.0);
  TG_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  TG_CHECK_EQ(a.size(), b.size());
  if (a.size() < 2) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  const double denom = std::sqrt(va * vb);
  if (denom <= 0.0) return 0.0;
  return cov / denom;
}

std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return values[x] < values[y]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Tie block [i, j]: assign the average of ranks i+1 .. j+1.
    const double avg = (static_cast<double>(i + 1) +
                        static_cast<double>(j + 1)) / 2.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  TG_CHECK_EQ(a.size(), b.size());
  return PearsonCorrelation(AverageRanks(a), AverageRanks(b));
}

std::vector<double> MinMaxNormalize(const std::vector<double>& values) {
  if (values.empty()) return {};
  const double lo = Min(values);
  const double hi = Max(values);
  std::vector<double> out(values.size());
  if (hi - lo <= 0.0) {
    std::fill(out.begin(), out.end(), 0.5);
    return out;
  }
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = (values[i] - lo) / (hi - lo);
  }
  return out;
}

double CorrelationDistance(const std::vector<double>& a,
                           const std::vector<double>& b) {
  return 1.0 - PearsonCorrelation(a, b);
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  TG_CHECK_EQ(a.size(), b.size());
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  TG_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace tg
