#include "numeric/pca.h"

#include <algorithm>

#include "numeric/linalg.h"

namespace tg {

Status Pca::Fit(const Matrix& x, size_t components) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  if (n < 2 || d == 0) {
    return Status::InvalidArgument("PCA needs at least 2 samples");
  }
  if (components == 0) {
    return Status::InvalidArgument("components must be positive");
  }

  mean_.assign(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = x.RowPtr(i);
    for (size_t c = 0; c < d; ++c) mean_[c] += row[c];
  }
  for (double& v : mean_) v /= static_cast<double>(n);

  Matrix centered = x;
  for (size_t i = 0; i < n; ++i) {
    double* row = centered.RowPtr(i);
    for (size_t c = 0; c < d; ++c) row[c] -= mean_[c];
  }
  Matrix cov = centered.TransposedMatMul(centered);
  cov *= 1.0 / static_cast<double>(n - 1);

  Result<EigenDecomposition> eig = SymmetricEigen(cov);
  if (!eig.ok()) return eig.status();

  const size_t k = std::min({components, d, n});
  components_ = Matrix(d, k);
  double kept_variance = 0.0;
  double total_variance = 0.0;
  for (double ev : eig.value().eigenvalues) {
    total_variance += std::max(ev, 0.0);
  }
  // Eigenvalues are ascending; take the top-k from the back.
  for (size_t j = 0; j < k; ++j) {
    const size_t col = d - 1 - j;
    kept_variance += std::max(eig.value().eigenvalues[col], 0.0);
    for (size_t r = 0; r < d; ++r) {
      components_(r, j) = eig.value().eigenvectors(r, col);
    }
  }
  explained_ratio_ =
      total_variance > 0.0 ? kept_variance / total_variance : 0.0;
  return Status::OK();
}

Matrix Pca::Transform(const Matrix& x) const {
  TG_CHECK_MSG(fitted(), "Transform before Fit");
  TG_CHECK_EQ(x.cols(), mean_.size());
  Matrix centered = x;
  for (size_t i = 0; i < centered.rows(); ++i) {
    double* row = centered.RowPtr(i);
    for (size_t c = 0; c < centered.cols(); ++c) row[c] -= mean_[c];
  }
  return centered.MatMul(components_);
}

std::vector<double> Pca::TransformRow(const std::vector<double>& row) const {
  Matrix single(1, row.size());
  single.SetRow(0, row);
  Matrix projected = Transform(single);
  return projected.Row(0);
}

}  // namespace tg
