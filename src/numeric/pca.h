// Principal component analysis via the eigendecomposition of the sample
// covariance. Used to reduce high-dimensional dataset representations before
// they become GNN node features (paper appendix A observes that Task2Vec's
// very high-dimensional embeddings hurt GraphSAGE on the small zoo graph).
#ifndef TG_NUMERIC_PCA_H_
#define TG_NUMERIC_PCA_H_

#include <cstddef>
#include <vector>

#include "numeric/matrix.h"
#include "util/status.h"

namespace tg {

class Pca {
 public:
  Pca() = default;

  // Fits on rows of x (n x d); keeps min(components, d, n) directions.
  Status Fit(const Matrix& x, size_t components);

  bool fitted() const { return !mean_.empty(); }
  size_t output_dim() const { return components_.cols(); }

  // Projects rows into the principal subspace: (n x d) -> (n x k).
  Matrix Transform(const Matrix& x) const;
  std::vector<double> TransformRow(const std::vector<double>& row) const;

  // Fraction of total variance captured by the kept components.
  double ExplainedVarianceRatio() const { return explained_ratio_; }

 private:
  std::vector<double> mean_;
  Matrix components_;  // d x k, column-orthonormal
  double explained_ratio_ = 0.0;
};

}  // namespace tg

#endif  // TG_NUMERIC_PCA_H_
