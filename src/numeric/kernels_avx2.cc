// The `avx2` kernel backend: 256-bit AVX2+FMA intrinsics. This TU (alone) is
// compiled with -mavx2 -mfma (see src/CMakeLists.txt); kernel_dispatch.cc
// only selects the table after __builtin_cpu_supports confirms the host, so
// the rest of the binary stays runnable on any x86-64.
//
// Numerics (the documented ulp envelope vs the scalar backend):
//   * Dot / Sum reduce four 256-bit lanes-of-accumulators, so the summation
//     order differs from the scalar kernel order, and FMA contracts the
//     multiply-adds.
//   * Axpy / ScaleAdd / the fused update use FMA per element (one rounding
//     instead of two).
//   * Add / Sub / Mul / Scale perform the same single IEEE operation per
//     element as every other backend: bit-identical by construction.
//   * ReplicatedMean keeps the per-element accumulate-count-times-then-scale
//     sequence (vectorized across elements, never across the count loop) and
//     uses no FMA, so it too is bit-identical to the scalar backend.
#include "numeric/kernel_backend.h"
#include "numeric/kernels.h"
#include "numeric/kernels_generic.h"  // HistAccumulatePrefetch (scalar adds)

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <immintrin.h>

namespace tg::kernels::internal {
namespace {

inline double HorizontalSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  double total = HorizontalSum(
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

double SumAvx2(const double* a, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(a + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(a + i + 4));
    acc2 = _mm256_add_pd(acc2, _mm256_loadu_pd(a + i + 8));
    acc3 = _mm256_add_pd(acc3, _mm256_loadu_pd(a + i + 12));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(a + i));
  }
  double total = HorizontalSum(
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
  for (; i < n; ++i) total += a[i];
  return total;
}

void AddAvx2(double* y, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void SubAvx2(double* y, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_sub_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

void MulAvx2(double* y, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_mul_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void ScaleAvx2(double* y, double s, size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_mul_pd(_mm256_loadu_pd(y + i), vs));
  }
  for (; i < n; ++i) y[i] *= s;
}

void AxpyAvx2(double alpha, const double* x, double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i,
        _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAddAvx2(double* y, double alpha, double beta, const double* x,
                  size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  const __m256d vb = _mm256_set1_pd(beta);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d ay = _mm256_mul_pd(va, _mm256_loadu_pd(y + i));
    _mm256_storeu_pd(y + i, _mm256_fmadd_pd(vb, _mm256_loadu_pd(x + i), ay));
  }
  for (; i < n; ++i) y[i] = alpha * y[i] + beta * x[i];
}

void MulAddAvx2(double* z, const double* x, const double* y, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(z + i, _mm256_fmadd_pd(_mm256_loadu_pd(x + i),
                                            _mm256_loadu_pd(y + i),
                                            _mm256_loadu_pd(z + i)));
  }
  for (; i < n; ++i) z[i] += x[i] * y[i];
}

double FusedDotSigmoidUpdateAvx2(const double* w, double* c,
                                 double* center_grad, size_t n, double label,
                                 double lr) {
  const double g = (label - TrainingSigmoid(DotAvx2(w, c, n))) * lr;
  const __m256d vg = _mm256_set1_pd(g);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vc = _mm256_loadu_pd(c + i);
    const __m256d vw = _mm256_loadu_pd(w + i);
    _mm256_storeu_pd(center_grad + i,
                     _mm256_fmadd_pd(vg, vc, _mm256_loadu_pd(center_grad + i)));
    _mm256_storeu_pd(c + i, _mm256_fmadd_pd(vg, vw, vc));
  }
  for (; i < n; ++i) {
    const double ci = c[i];
    center_grad[i] += g * ci;
    c[i] = ci + g * w[i];
  }
  return g;
}

void ReplicatedMeanAvx2(double* y, size_t count, double inv, size_t n) {
  const __m256d vinv = _mm256_set1_pd(inv);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(y + i);
    __m256d acc = x;
    for (size_t s = 1; s < count; ++s) acc = _mm256_add_pd(acc, x);
    _mm256_storeu_pd(y + i, _mm256_mul_pd(acc, vinv));
  }
  for (; i < n; ++i) {
    const double x = y[i];
    double acc = x;
    for (size_t s = 1; s < count; ++s) acc += x;
    y[i] = acc * inv;
  }
}

const KernelBackend kAvx2Backend = {
    "avx2",
    DotAvx2,
    SumAvx2,
    AddAvx2,
    SubAvx2,
    MulAvx2,
    ScaleAvx2,
    AxpyAvx2,
    ScaleAddAvx2,
    MulAddAvx2,
    // The histogram scatter is a serial dependence chain (bins repeat), so
    // there is nothing to vectorize; the win on this backend is hiding the
    // row-gather latency behind software prefetch. Same adds, same order:
    // bit-identical to the scalar backend.
    generic::HistAccumulatePrefetch<uint8_t>,
    generic::HistAccumulatePrefetch<uint16_t>,
    FusedDotSigmoidUpdateAvx2,
    ReplicatedMeanAvx2,
};

}  // namespace

const KernelBackend* Avx2BackendTable() { return &kAvx2Backend; }

}  // namespace tg::kernels::internal

#endif  // x86
