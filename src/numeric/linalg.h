// Dense linear-algebra routines needed by the library:
//   * Cholesky factorization / SPD solve  (ridge regression, LogME)
//   * Jacobi eigendecomposition of symmetric matrices
//   * thin SVD via the Gram-matrix eigendecomposition (LogME)
// Problem sizes are small (feature dims <= a few hundred), so numerically
// robust O(n^3) classics are the right tool.
#ifndef TG_NUMERIC_LINALG_H_
#define TG_NUMERIC_LINALG_H_

#include <vector>

#include "numeric/matrix.h"
#include "util/status.h"

namespace tg {

// Result of a symmetric eigendecomposition A = V diag(w) V^T.
struct EigenDecomposition {
  std::vector<double> eigenvalues;  // ascending
  Matrix eigenvectors;              // column i pairs with eigenvalues[i]
};

// Result of a thin SVD A (n x d, n >= d is not required) = U diag(s) V^T.
struct SingularValueDecomposition {
  Matrix u;                         // n x r
  std::vector<double> singular_values;  // descending, length r
  Matrix v;                         // d x r
};

// Cholesky factor L (lower triangular) with A = L L^T. Fails if A is not
// symmetric positive definite (within roundoff).
Result<Matrix> CholeskyFactor(const Matrix& a);

// Solves A x = b for SPD A via Cholesky. b may have multiple columns.
Result<Matrix> CholeskySolve(const Matrix& a, const Matrix& b);

// Cyclic Jacobi method. `a` must be symmetric.
Result<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                          int max_sweeps = 64,
                                          double tol = 1e-12);

// Thin SVD computed from the eigendecomposition of A^T A (d x d), suitable
// for the tall-skinny feature matrices used by LogME. Singular values below
// `rank_tol * max_sv` are dropped.
Result<SingularValueDecomposition> ThinSvd(const Matrix& a,
                                           double rank_tol = 1e-10);

// Solves the ridge system (X^T X + lambda I) w = X^T y. Returns d x y_cols.
Result<Matrix> RidgeSolve(const Matrix& x, const Matrix& y, double lambda);

}  // namespace tg

#endif  // TG_NUMERIC_LINALG_H_
