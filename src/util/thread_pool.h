// Fixed-size worker pool and chunked parallel-for, the process-wide parallel
// execution substrate.
//
// Determinism contract: ParallelFor partitions [begin, end) into chunks from
// `grain` alone -- never from the thread count -- so a caller that derives all
// randomness from the chunk (or item) index produces bit-identical results
// for any TG_THREADS value, including 1. See docs/threading.md.
//
// The worker count is process-wide: the TG_THREADS environment variable when
// set (and positive), otherwise std::thread::hardware_concurrency(), and
// SetThreadCount() overrides both at runtime (tests use this to compare
// thread counts in-process).
#ifndef TG_UTIL_THREAD_POOL_H_
#define TG_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tg {

// Worker threads used by parallel regions: SetThreadCount() override if set,
// else TG_THREADS, else hardware_concurrency(). Always >= 1.
size_t ThreadCount();

// Overrides the process-wide thread count (0 restores the TG_THREADS /
// hardware default). Must not be called while parallel work is in flight.
void SetThreadCount(size_t n);

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not throw; ParallelFor wraps user functions
  // with its own exception capture.
  void Submit(std::function<void()> task);

  size_t num_threads() const { return threads_.size(); }

  // True on a pool worker thread. Nested ParallelFor calls detect this and
  // run inline (same chunking, same results) instead of deadlocking on a
  // saturated queue.
  static bool InWorker();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

// The lazily-created process-wide pool, sized to ThreadCount(). Rebuilt when
// the thread count changes between parallel regions.
ThreadPool& GlobalThreadPool();

// Splits [begin, end) into ceil((end-begin)/grain) chunks and invokes
// fn(chunk_begin, chunk_end, chunk_index) for each, in parallel across the
// global pool (the calling thread participates). Blocks until every chunk
// finished. The first exception thrown by fn is rethrown in the caller once
// all in-flight chunks drain; chunks not yet started are then skipped.
//
// Chunk boundaries depend only on `grain`, so per-chunk (or per-item) seeded
// work is bit-identical for any thread count.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& fn);

// Estimated total work (item count x a per-item cost proxy) below which a
// parallel region costs more in pool dispatch than it saves; shared by every
// ParallelForIfWorth call site so the tradeoff is tuned in one place.
inline constexpr size_t kMinParallelWork = 16384;

// ParallelFor with a minimum-work heuristic: when `estimated_work` (the
// caller's item-count x per-item-cost estimate) is below kMinParallelWork,
// the chunks run inline on the calling thread -- same chunk boundaries, same
// chunk indices, bit-identical results -- skipping queue locks, wakeups and
// the completion wait. Small nodes/feature sets in tree fitting are the
// motivating case (see docs/performance.md).
void ParallelForIfWorth(size_t begin, size_t end, size_t grain,
                        size_t estimated_work,
                        const std::function<void(size_t, size_t, size_t)>& fn);

}  // namespace tg

#endif  // TG_UTIL_THREAD_POOL_H_
