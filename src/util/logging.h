// Tiny leveled logger writing to stderr. Verbosity is process-global and can
// be lowered by benchmarks to keep their stdout tables clean.
#ifndef TG_UTIL_LOGGING_H_
#define TG_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace tg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets the minimum level that is actually emitted. Returns the old level.
LogLevel SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// --- Observability integration ----------------------------------------------

// When a sink is installed, emitted lines go to the sink INSTEAD of stderr:
// one source of truth for process logs. obs/event_log.cc installs one while
// TG_EVENT_LOG is active so every TG_LOG line becomes a structured JSON
// record. The sink receives the raw message (no "[LEVEL file:line]" prefix).
using LogSink = void (*)(LogLevel level, const char* file, int line,
                         const std::string& message);
void SetLogSink(LogSink sink);  // nullptr restores stderr

// Provider for the innermost open span name, stamped onto stderr lines
// ("[INFO file:12 @span_name] ...") so logs and spans correlate without the
// structured log. obs/trace.cc installs obs::CurrentSpanName at startup;
// returns nullptr when no span is open (no tag printed).
using LogSpanProvider = const char* (*)();
void SetLogSpanProvider(LogSpanProvider provider);

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define TG_LOG(level)                                                  \
  ::tg::internal_logging::LogMessage(::tg::LogLevel::k##level,         \
                                     __FILE__, __LINE__)

}  // namespace tg

#endif  // TG_UTIL_LOGGING_H_
