// Tiny leveled logger writing to stderr. Verbosity is process-global and can
// be lowered by benchmarks to keep their stdout tables clean.
#ifndef TG_UTIL_LOGGING_H_
#define TG_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace tg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets the minimum level that is actually emitted. Returns the old level.
LogLevel SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define TG_LOG(level)                                                  \
  ::tg::internal_logging::LogMessage(::tg::LogLevel::k##level,         \
                                     __FILE__, __LINE__)

}  // namespace tg

#endif  // TG_UTIL_LOGGING_H_
