#include "util/backoff.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace tg {
namespace {

// Same counter-based hash as util/fault.cc: decisions depend only on
// (seed, counter), never on wall clock or interleaving.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Uniform in [0, 1) from 53 hash bits, the util/fault prob construction.
double UnitUniform(uint64_t seed, uint64_t counter) {
  return static_cast<double>(SplitMix64(seed ^ counter) >> 11) * 0x1.0p-53;
}

}  // namespace

Backoff::Backoff(const BackoffPolicy& policy) : policy_(policy) {}

double Backoff::NextDelaySec() {
  const uint64_t attempt = attempt_++;
  double base = policy_.initial_sec;
  // Multiply iteratively with an early cap so huge attempt counts never
  // overflow to inf before the cap applies.
  for (uint64_t i = 0; i < attempt && base < policy_.max_sec; ++i) {
    base *= policy_.multiplier;
  }
  base = std::min(base, policy_.max_sec);
  if (policy_.jitter > 0.0) {
    const double u = UnitUniform(policy_.seed, attempt + 1);
    base *= 1.0 + policy_.jitter * (2.0 * u - 1.0);
    base = std::min(base, policy_.max_sec);
  }
  return std::max(base, 0.0);
}

double Backoff::SleepNext() {
  const double delay = NextDelaySec();
  if (delay > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
  return delay;
}

void Backoff::Reset() { attempt_ = 0; }

}  // namespace tg
