// Minimal JSON output + validation helpers shared by every exporter that
// hand-writes JSON (trace/metrics exporters, bench timing writer). This is
// deliberately not a full JSON library: writers compose strings with
// JsonEscape/JsonQuote, and JsonValidate is a strict syntax checker used by
// tests and the CLI to assert that emitted files actually parse.
#ifndef TG_UTIL_JSON_UTIL_H_
#define TG_UTIL_JSON_UTIL_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace tg {

// Escapes a string for inclusion inside a JSON string literal: quotes,
// backslashes, and control characters (incl. \n, \t) become escape
// sequences. Does not add the surrounding quotes.
std::string JsonEscape(const std::string& text);

// JsonEscape plus surrounding double quotes: ready to splice into JSON.
std::string JsonQuote(const std::string& text);

// Formats a double as a valid JSON number: finite values use shortest-ish
// %.17g repr trimmed to %.*g precision, non-finite values (which JSON cannot
// represent) become 0 with no error -- exporters must not emit NaN/Inf.
std::string JsonNumber(double value, int precision = 6);

// Strict recursive-descent validation of a complete JSON document (object,
// array, string, number, true/false/null; UTF-8 passthrough). Returns OK if
// `text` is exactly one valid JSON value plus optional trailing whitespace,
// otherwise InvalidArgument with the byte offset of the first error.
Status JsonValidate(const std::string& text);

// Parsed JSON document node. Deliberately tiny: enough for the in-tree
// consumers (bench_history reading bench_timings.json / BENCH_history.json),
// not a general-purpose library. Objects preserve insertion order; duplicate
// keys keep the first occurrence on lookup. Numbers are doubles (the only
// numeric type JSON has); \uXXXX escapes outside ASCII decode to UTF-8.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses exactly one JSON value (plus optional trailing whitespace), with
  // the same grammar JsonValidate accepts. InvalidArgument on malformed
  // input with the byte offset of the first error.
  static Result<JsonValue> Parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed reads with fallbacks, so consumers can chase optional fields
  // without kind checks at every step.
  bool AsBool(bool fallback = false) const;
  double AsDouble(double fallback = 0.0) const;
  const std::string& AsString() const;  // empty string unless is_string()

  // Array / object size; 0 for scalar kinds.
  size_t size() const;
  // Array element i; null-kind sentinel when out of range or not an array.
  const JsonValue& at(size_t i) const;
  // Object field lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  // Object entries in document order.
  const std::vector<std::pair<std::string, JsonValue>>& items() const {
    return object_;
  }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;

  friend struct JsonParser;
};

}  // namespace tg

#endif  // TG_UTIL_JSON_UTIL_H_
