// Minimal JSON output + validation helpers shared by every exporter that
// hand-writes JSON (trace/metrics exporters, bench timing writer). This is
// deliberately not a full JSON library: writers compose strings with
// JsonEscape/JsonQuote, and JsonValidate is a strict syntax checker used by
// tests and the CLI to assert that emitted files actually parse.
#ifndef TG_UTIL_JSON_UTIL_H_
#define TG_UTIL_JSON_UTIL_H_

#include <string>

#include "util/status.h"

namespace tg {

// Escapes a string for inclusion inside a JSON string literal: quotes,
// backslashes, and control characters (incl. \n, \t) become escape
// sequences. Does not add the surrounding quotes.
std::string JsonEscape(const std::string& text);

// JsonEscape plus surrounding double quotes: ready to splice into JSON.
std::string JsonQuote(const std::string& text);

// Formats a double as a valid JSON number: finite values use shortest-ish
// %.17g repr trimmed to %.*g precision, non-finite values (which JSON cannot
// represent) become 0 with no error -- exporters must not emit NaN/Inf.
std::string JsonNumber(double value, int precision = 6);

// Strict recursive-descent validation of a complete JSON document (object,
// array, string, number, true/false/null; UTF-8 passthrough). Returns OK if
// `text` is exactly one valid JSON value plus optional trailing whitespace,
// otherwise InvalidArgument with the byte offset of the first error.
Status JsonValidate(const std::string& text);

}  // namespace tg

#endif  // TG_UTIL_JSON_UTIL_H_
