#include "util/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/fault.h"
#include "util/logging.h"

namespace tg {
namespace {

// Serve-loop poll period: the granularity at which Stop() is noticed. Short
// enough that shutdown feels immediate, long enough that an idle endpoint
// costs nothing measurable.
constexpr int kPollTimeoutMs = 100;
// Request cap: a scrape request line plus a handful of headers. Anything
// bigger is not a scraper and gets cut off with 400.
constexpr size_t kMaxRequestBytes = 8192;
// Per-connection socket deadlines: a scraper that cannot send its request
// or drain a response in this long is stuck; drop it rather than wedge the
// single-threaded serve loop.
constexpr int kConnectionTimeoutMs = 2000;

void SetSocketTimeout(int fd, int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a scraper hanging up mid-response must surface as an
    // error return here, never as SIGPIPE taking the process down.
    const ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

void WriteResponse(int fd, const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusText(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  if (SendAll(fd, head.data(), head.size())) {
    (void)SendAll(fd, response.body.data(), response.body.size());
  }
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, HttpHandler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status HttpServer::Start(int port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("http server already running");
  }
  if (TG_FAULT_POINT("telemetry_bind")) {
    return fault::InjectedFault("telemetry_bind");
  }
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason =
        "bind 127.0.0.1:" + std::to_string(port) + ": " +
        std::strerror(errno);
    close(fd);
    return Status::Internal(reason);
  }
  if (listen(fd, 16) != 0) {
    const std::string reason = std::string("listen: ") + std::strerror(errno);
    close(fd);
    return Status::Internal(reason);
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const std::string reason =
        std::string("getsockname: ") + std::strerror(errno);
    close(fd);
    return Status::Internal(reason);
  }
  listen_fd_ = fd;
  bound_port_ = static_cast<int>(ntohs(bound.sin_port));
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (thread_.joinable()) {
    stop_.store(true, std::memory_order_release);
    thread_.join();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void HttpServer::ServeLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, kPollTimeoutMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      if (error_callback_) {
        error_callback_(Status::Internal(std::string("poll: ") +
                                         std::strerror(errno)));
      }
      break;
    }
    if (ready == 0 || (pfd.revents & POLLIN) == 0) continue;
    if (TG_FAULT_POINT("telemetry_accept")) {
      // Drain the pending connection so the peer sees a close rather than a
      // hang, then shut the plane down through the latched-state callback.
      const int doomed = accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (doomed >= 0) close(doomed);
      if (error_callback_) {
        error_callback_(fault::InjectedFault("telemetry_accept"));
      }
      break;
    }
    const int conn = accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      if (error_callback_) {
        error_callback_(Status::Internal(std::string("accept: ") +
                                         std::strerror(errno)));
      }
      break;
    }
    HandleConnection(conn);
    close(conn);
  }
  running_.store(false, std::memory_order_release);
}

void HttpServer::HandleConnection(int fd) {
  SetSocketTimeout(fd, kConnectionTimeoutMs);
  std::string request;
  char buffer[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // timeout / peer hangup: whatever arrived is all we parse
    }
    request.append(buffer, static_cast<size_t>(n));
  }
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) {
    WriteResponse(fd, {400, "text/plain; charset=utf-8", "bad request\n"});
    return;
  }
  // Request line: METHOD SP TARGET SP VERSION.
  const std::string line = request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    WriteResponse(fd, {400, "text/plain; charset=utf-8", "bad request\n"});
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    WriteResponse(fd,
                  {405, "text/plain; charset=utf-8", "GET only\n"});
    return;
  }
  std::string query;
  const size_t q = target.find('?');
  if (q != std::string::npos) {
    query = target.substr(q + 1);
    target.resize(q);
  }
  const auto it = handlers_.find(target);
  if (it == handlers_.end()) {
    WriteResponse(fd, {404, "text/plain; charset=utf-8",
                       "not found: " + target + "\n"});
    return;
  }
  WriteResponse(fd, it->second(target, query));
}

Result<HttpGetResult> HttpGet(int port, const std::string& path,
                              int timeout_ms) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  SetSocketTimeout(fd, timeout_ms);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    const std::string reason = "connect 127.0.0.1:" + std::to_string(port) +
                               ": " + std::strerror(errno);
    close(fd);
    return Status::Internal(reason);
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (!SendAll(fd, request.data(), request.size())) {
    const std::string reason = std::string("send: ") + std::strerror(errno);
    close(fd);
    return Status::Internal(reason);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::Internal("malformed HTTP response (no header terminator)");
  }
  // Status line: HTTP/1.1 SP CODE SP TEXT.
  const size_t sp = response.find(' ');
  if (sp == std::string::npos || sp + 4 > header_end) {
    return Status::Internal("malformed HTTP status line");
  }
  HttpGetResult result;
  result.status = std::atoi(response.c_str() + sp + 1);
  result.body = response.substr(header_end + 4);
  return result;
}

}  // namespace tg
