#include "util/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace tg::internal_check {
namespace {

// Fixed-capacity hook table: registration happens during static init or
// test setup, failure can happen anywhere, so everything is lock-free
// atomics (a failing TG_CHECK must never block on a mutex the crashing
// thread might already hold).
constexpr int kMaxHooks = 8;
std::atomic<CheckFailureHook> g_hooks[kMaxHooks] = {};
std::atomic<int> g_num_hooks{0};
std::atomic<bool> g_failing{false};

}  // namespace

void InstallCheckFailureHook(CheckFailureHook hook) {
  if (hook == nullptr) return;
  const int slot = g_num_hooks.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kMaxHooks) return;
  g_hooks[slot].store(hook, std::memory_order_release);
}

void CheckFail(const char* cond, const char* msg, const char* file,
               int line) {
  if (msg != nullptr) {
    std::fprintf(stderr, "TG_CHECK failed: %s (%s) at %s:%d\n", cond, msg,
                 file, line);
  } else {
    std::fprintf(stderr, "TG_CHECK failed: %s at %s:%d\n", cond, file, line);
  }
  // Hooks run once: a TG_CHECK failing inside a hook aborts immediately
  // instead of recursing.
  if (!g_failing.exchange(true, std::memory_order_acq_rel)) {
    const int count = g_num_hooks.load(std::memory_order_relaxed);
    for (int i = 0; i < count && i < kMaxHooks; ++i) {
      CheckFailureHook hook = g_hooks[i].load(std::memory_order_acquire);
      if (hook != nullptr) hook();
    }
  }
  std::abort();
}

}  // namespace tg::internal_check
