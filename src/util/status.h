// Minimal Status/Result error-handling types, in the style of Arrow/Abseil.
// Library code returns Status (or Result<T>) for failures that a caller is
// expected to handle (bad configuration, I/O, empty inputs); TG_CHECK is used
// for internal invariant violations.
#ifndef TG_UTIL_STATUS_H_
#define TG_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace tg {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
};

// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable rendering, e.g. "InvalidArgument: empty feature matrix".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-error wrapper. Accessing the value of an error Result aborts.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    TG_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TG_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    TG_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    TG_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define TG_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::tg::Status _tg_status = (expr);         \
    if (!_tg_status.ok()) return _tg_status;  \
  } while (0)

}  // namespace tg

#endif  // TG_UTIL_STATUS_H_
