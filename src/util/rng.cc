#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace tg {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) state_[i] = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t n) {
  TG_CHECK_GT(n, 0u);
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(angle);
  has_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  TG_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBelow(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork(uint64_t stream) const {
  // Mix the original seed with the stream id through SplitMix64.
  uint64_t sm = seed_ ^ (0xA5A5A5A5A5A5A5A5ULL + stream * 0x9E3779B97F4A7C15ULL);
  return Rng(SplitMix64(&sm));
}

}  // namespace tg
