// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit seed so that
// experiments are reproducible run-to-run. Rng wraps xoshiro256** seeded via
// SplitMix64, following the reference implementations by Blackman & Vigna.
#ifndef TG_UTIL_RNG_H_
#define TG_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tg {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform 64-bit value.
  uint64_t NextUint64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform in [lo, hi).
  double NextUniform(double lo, double hi);

  // Standard normal via Box-Muller (cached spare value).
  double NextGaussian();

  // Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  // True with probability p.
  bool NextBernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  // Samples k distinct indices from [0, n) without replacement.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  // Derives an independent child generator; stable given (seed, stream).
  Rng Fork(uint64_t stream) const;

 private:
  uint64_t state_[4];
  uint64_t seed_;
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace tg

#endif  // TG_UTIL_RNG_H_
