#include "util/json_util.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace tg {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonQuote(const std::string& text) {
  return "\"" + JsonEscape(text) + "\"";
}

std::string JsonNumber(double value, int precision) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

namespace {

// Recursive-descent JSON checker over [p, end). Each Parse* advances p past
// the value it consumed or returns false leaving p at the first bad byte.
struct JsonChecker {
  const char* p;
  const char* end;
  int depth = 0;

  static constexpr int kMaxDepth = 256;

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (static_cast<size_t>(end - p) < n || std::strncmp(p, lit, n) != 0) {
      return false;
    }
    p += n;
    return true;
  }

  bool ParseString() {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end) {
      const unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c < 0x20) return false;  // raw control char inside a string
      if (c == '\\') {
        ++p;
        if (p >= end) return false;
        const char e = *p;
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p;
            if (p >= end || !std::isxdigit(static_cast<unsigned char>(*p))) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
      ++p;
    }
    return false;  // unterminated
  }

  bool ParseNumber() {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) return false;
    if (*p == '0') {
      ++p;
    } else {
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && *p == '.') {
      ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) {
        return false;
      }
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) {
        return false;
      }
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    return p > start;
  }

  bool ParseValue() {
    SkipWs();
    if (p >= end || ++depth > kMaxDepth) return false;
    bool ok = false;
    switch (*p) {
      case '{':
        ok = ParseObject();
        break;
      case '[':
        ok = ParseArray();
        break;
      case '"':
        ok = ParseString();
        break;
      case 't':
        ok = Literal("true");
        break;
      case 'f':
        ok = Literal("false");
        break;
      case 'n':
        ok = Literal("null");
        break;
      default:
        ok = ParseNumber();
    }
    --depth;
    return ok;
  }

  bool ParseObject() {
    ++p;  // '{'
    SkipWs();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (p >= end || *p != ':') return false;
      ++p;
      if (!ParseValue()) return false;
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return false;
    }
  }

  bool ParseArray() {
    ++p;  // '['
    SkipWs();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    for (;;) {
      if (!ParseValue()) return false;
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return false;
    }
  }
};

}  // namespace

Status JsonValidate(const std::string& text) {
  JsonChecker checker{text.data(), text.data() + text.size()};
  const bool ok = checker.ParseValue();
  if (ok) {
    checker.SkipWs();
    if (checker.p == checker.end) return Status::OK();
  }
  return Status::InvalidArgument(
      "invalid JSON at byte offset " +
      std::to_string(checker.p - text.data()));
}

}  // namespace tg
