#include "util/json_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tg {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonQuote(const std::string& text) {
  return "\"" + JsonEscape(text) + "\"";
}

std::string JsonNumber(double value, int precision) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

namespace {

// Recursive-descent JSON checker over [p, end). Each Parse* advances p past
// the value it consumed or returns false leaving p at the first bad byte.
struct JsonChecker {
  const char* p;
  const char* end;
  int depth = 0;

  static constexpr int kMaxDepth = 256;

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (static_cast<size_t>(end - p) < n || std::strncmp(p, lit, n) != 0) {
      return false;
    }
    p += n;
    return true;
  }

  bool ParseString() {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end) {
      const unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c < 0x20) return false;  // raw control char inside a string
      if (c == '\\') {
        ++p;
        if (p >= end) return false;
        const char e = *p;
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p;
            if (p >= end || !std::isxdigit(static_cast<unsigned char>(*p))) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
      ++p;
    }
    return false;  // unterminated
  }

  bool ParseNumber() {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) return false;
    if (*p == '0') {
      ++p;
    } else {
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && *p == '.') {
      ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) {
        return false;
      }
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) {
        return false;
      }
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    return p > start;
  }

  bool ParseValue() {
    SkipWs();
    if (p >= end || ++depth > kMaxDepth) return false;
    bool ok = false;
    switch (*p) {
      case '{':
        ok = ParseObject();
        break;
      case '[':
        ok = ParseArray();
        break;
      case '"':
        ok = ParseString();
        break;
      case 't':
        ok = Literal("true");
        break;
      case 'f':
        ok = Literal("false");
        break;
      case 'n':
        ok = Literal("null");
        break;
      default:
        ok = ParseNumber();
    }
    --depth;
    return ok;
  }

  bool ParseObject() {
    ++p;  // '{'
    SkipWs();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (p >= end || *p != ':') return false;
      ++p;
      if (!ParseValue()) return false;
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return false;
    }
  }

  bool ParseArray() {
    ++p;  // '['
    SkipWs();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    for (;;) {
      if (!ParseValue()) return false;
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return false;
    }
  }
};

}  // namespace

Status JsonValidate(const std::string& text) {
  JsonChecker checker{text.data(), text.data() + text.size()};
  const bool ok = checker.ParseValue();
  if (ok) {
    checker.SkipWs();
    if (checker.p == checker.end) return Status::OK();
  }
  return Status::InvalidArgument(
      "invalid JSON at byte offset " +
      std::to_string(checker.p - text.data()));
}

// Recursive-descent parser sharing the checker's grammar; kept separate so
// the validator stays allocation-free for its hot use (exporter self-checks).
struct JsonParser {
  const char* p;
  const char* begin;
  const char* end;
  int depth = 0;

  static constexpr int kMaxDepth = 256;

  Status Error() const {
    return Status::InvalidArgument("invalid JSON at byte offset " +
                                   std::to_string(p - begin));
  }

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (static_cast<size_t>(end - p) < n || std::strncmp(p, lit, n) != 0) {
      return false;
    }
    p += n;
    return true;
  }

  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  bool ParseString(std::string* out) {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end) {
      const unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c < 0x20) return false;
      if (c == '\\') {
        ++p;
        if (p >= end) return false;
        switch (*p) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              ++p;
              if (p >= end || !std::isxdigit(static_cast<unsigned char>(*p))) {
                return false;
              }
              const char h = *p;
              code = code * 16 +
                     static_cast<unsigned>(
                         h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
            }
            // Surrogate pairs are passed through as two 3-byte sequences
            // (CESU-8-style); the in-tree writers never emit them.
            AppendUtf8(out, code);
            break;
          }
          default:
            return false;
        }
        ++p;
        continue;
      }
      *out += static_cast<char>(c);
      ++p;
    }
    return false;  // unterminated
  }

  bool ParseNumber(double* out) {
    const char* start = p;
    JsonChecker number_checker{p, end};
    if (!number_checker.ParseNumber()) {
      p = number_checker.p;
      return false;
    }
    p = number_checker.p;
    *out = std::strtod(start, nullptr);
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (p >= end || ++depth > kMaxDepth) return false;
    bool ok = false;
    switch (*p) {
      case '{':
        out->kind_ = JsonValue::Kind::kObject;
        ok = ParseObject(out);
        break;
      case '[':
        out->kind_ = JsonValue::Kind::kArray;
        ok = ParseArray(out);
        break;
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        ok = ParseString(&out->string_);
        break;
      case 't':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        ok = Literal("true");
        break;
      case 'f':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        ok = Literal("false");
        break;
      case 'n':
        out->kind_ = JsonValue::Kind::kNull;
        ok = Literal("null");
        break;
      default:
        out->kind_ = JsonValue::Kind::kNumber;
        ok = ParseNumber(&out->number_);
    }
    --depth;
    return ok;
  }

  bool ParseObject(JsonValue* out) {
    ++p;  // '{'
    SkipWs();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (p >= end || *p != ':') return false;
      ++p;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object_.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    ++p;  // '['
    SkipWs();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array_.push_back(std::move(value));
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return false;
    }
  }
};

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  JsonParser parser{text.data(), text.data(), text.data() + text.size()};
  JsonValue value;
  if (parser.ParseValue(&value)) {
    parser.SkipWs();
    if (parser.p == parser.end) return value;
  }
  return parser.Error();
}

bool JsonValue::AsBool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

double JsonValue::AsDouble(double fallback) const {
  return kind_ == Kind::kNumber ? number_ : fallback;
}

const std::string& JsonValue::AsString() const {
  static const std::string empty;
  return kind_ == Kind::kString ? string_ : empty;
}

size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

const JsonValue& JsonValue::at(size_t i) const {
  static const JsonValue null_value;
  if (kind_ != Kind::kArray || i >= array_.size()) return null_value;
  return array_[i];
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

}  // namespace tg
