#include "util/build_info.h"

#include "numeric/kernel_backend.h"
#include "obs/perf_counters.h"
#include "obs/telemetry.h"
#include "util/json_util.h"
#include "util/thread_pool.h"

// Fallbacks keep the file buildable outside CMake (e.g. quick compiler
// one-offs); the real values are compile definitions scoped to this file.
#ifndef TG_GIT_SHA
#define TG_GIT_SHA "unknown"
#endif
#ifndef TG_COMPILER
#define TG_COMPILER "unknown"
#endif
#ifndef TG_CXX_FLAGS
#define TG_CXX_FLAGS ""
#endif
#ifndef TG_BUILD_TYPE
#define TG_BUILD_TYPE "unknown"
#endif
#ifndef TG_SANITIZE_MODE
#define TG_SANITIZE_MODE "none"
#endif

namespace tg {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.git_sha = TG_GIT_SHA;
    b.compiler = TG_COMPILER;
    b.flags = TG_CXX_FLAGS;
    b.build_type = TG_BUILD_TYPE;
    b.sanitizer = TG_SANITIZE_MODE;
    if (b.sanitizer.empty()) b.sanitizer = "none";
    b.cxx_standard = __cplusplus;
    return b;
  }();
  return info;
}

std::string BuildInfoJson() {
  const BuildInfo& info = GetBuildInfo();
  std::string out = "{";
  out += "\"git_sha\":" + JsonQuote(info.git_sha);
  out += ",\"compiler\":" + JsonQuote(info.compiler);
  out += ",\"flags\":" + JsonQuote(info.flags);
  out += ",\"build_type\":" + JsonQuote(info.build_type);
  out += ",\"sanitizer\":" + JsonQuote(info.sanitizer);
  out += ",\"cxx_standard\":" + std::to_string(info.cxx_standard);
  // Runtime facts, not build facts -- but bench_timings.json embeds exactly
  // one build_info object, and both knobs shape every timing in the file.
  out += ",\"tg_threads\":" + std::to_string(ThreadCount());
  out += ",\"numeric_backend\":" +
         JsonQuote(kernels::ActiveBackendName());
  // "disabled" | "ok" | "unavailable": whether the counter fields elsewhere
  // in the artifact mean anything (see obs/perf_counters.h).
  out += ",\"perf_counters\":" +
         JsonQuote(obs::PerfCountersStatusString());
  // Same idea for the scrape plane: "disabled" | "ok" | "unavailable (...)"
  // records whether this run was live-scrapeable (see obs/telemetry.h).
  out += ",\"telemetry\":" + JsonQuote(obs::TelemetryStatusString());
  out += "}";
  return out;
}

}  // namespace tg
