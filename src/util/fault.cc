#include "util/fault.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "util/string_util.h"

namespace tg::fault {

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

namespace {

// Counter-based hash (SplitMix64): prob decisions depend only on
// (seed, hit index), so schedules replay identically across runs and
// thread interleavings.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

struct SiteState {
  SiteRule rule;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> fired{0};
};

// One installed spec. Sets are never freed -- a concurrent fault point may
// still hold the pointer after a replace -- but every set ever created stays
// chained through `retired_next` so the retention is reachable, not a leak
// (specs are tiny and installs are test/startup-time only).
struct SiteSet {
  std::vector<SiteState> sites;
  SiteSet* retired_next = nullptr;
};

std::atomic<SiteSet*> g_sites{nullptr};
std::mutex g_install_mu;
SiteSet* g_all_sets = nullptr;  // head of the retention chain; under g_install_mu

SiteState* FindSite(const char* site) {
  SiteSet* set = g_sites.load(std::memory_order_acquire);
  if (set == nullptr) return nullptr;
  for (SiteState& state : set->sites) {
    if (std::strcmp(state.rule.site.c_str(), site) == 0) return &state;
  }
  return nullptr;
}

Status BadRule(const std::string& entry, const std::string& why) {
  return Status::InvalidArgument("TG_FAULT rule \"" + entry + "\": " + why);
}

// Parses one `site=mode(:modifier)*` entry.
Status ParseRule(const std::string& entry, SiteRule* rule) {
  const size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    return BadRule(entry, "expected site=mode");
  }
  rule->site = Trim(entry.substr(0, eq));
  if (rule->site.empty()) return BadRule(entry, "empty site name");

  const std::vector<std::string> tokens = Split(entry.substr(eq + 1), ':');
  size_t i = 0;
  auto next_number = [&](const char* what, uint64_t* out) -> Status {
    if (++i >= tokens.size()) {
      return BadRule(entry, std::string(what) + " needs a value");
    }
    if (!ParseUint64(tokens[i], out)) {
      return BadRule(entry, "bad " + std::string(what) + " value \"" +
                                tokens[i] + "\"");
    }
    return Status::OK();
  };

  const std::string& mode = tokens[0];
  if (mode == "always") {
    rule->mode = SiteRule::Mode::kAlways;
  } else if (mode == "once") {
    rule->mode = SiteRule::Mode::kAlways;
    rule->once = true;
  } else if (mode == "hit") {
    rule->mode = SiteRule::Mode::kHit;
    TG_RETURN_IF_ERROR(next_number("hit", &rule->n));
    if (rule->n == 0) return BadRule(entry, "hit index is 1-based");
  } else if (mode == "after") {
    rule->mode = SiteRule::Mode::kAfter;
    TG_RETURN_IF_ERROR(next_number("after", &rule->n));
  } else if (mode == "prob") {
    rule->mode = SiteRule::Mode::kProb;
    if (++i >= tokens.size() ||
        !ParseDouble(tokens[i], &rule->probability) ||
        !(rule->probability >= 0.0 && rule->probability <= 1.0)) {
      return BadRule(entry, "prob needs a probability in [0,1]");
    }
  } else {
    return BadRule(entry, "unknown mode \"" + mode + "\"");
  }

  while (++i < tokens.size()) {
    const std::string& mod = tokens[i];
    if (mod == "once") {
      rule->once = true;
    } else if (mod == "seed") {
      TG_RETURN_IF_ERROR(next_number("seed", &rule->seed));
    } else if (mod == "min") {
      TG_RETURN_IF_ERROR(next_number("min", &rule->min_weight));
    } else {
      return BadRule(entry, "unknown modifier \"" + mod + "\"");
    }
  }
  return Status::OK();
}

// Seeds rules from TG_FAULT during dynamic initialization. A malformed spec
// must not silently disable chaos runs, so it is reported on stderr; the
// substrate stays disarmed (fail-safe for production, loud for CI).
[[maybe_unused]] const bool g_env_seeded = [] {
  const char* spec = std::getenv("TG_FAULT");
  if (spec == nullptr || *spec == '\0') return true;
  Status installed = InstallSpec(spec);
  if (!installed.ok()) {
    std::fprintf(stderr, "ignoring malformed TG_FAULT: %s\n",
                 installed.ToString().c_str());
  }
  return true;
}();

}  // namespace

Result<std::vector<SiteRule>> ParseSpec(const std::string& spec) {
  std::vector<SiteRule> rules;
  for (const std::string& raw : Split(spec, ';')) {
    const std::string entry = Trim(raw);
    if (entry.empty()) continue;
    SiteRule rule;
    TG_RETURN_IF_ERROR(ParseRule(entry, &rule));
    for (const SiteRule& existing : rules) {
      if (existing.site == rule.site) {
        return BadRule(entry, "duplicate rule for site");
      }
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

Status InstallSpec(const std::string& spec) {
  Result<std::vector<SiteRule>> rules = ParseSpec(spec);
  if (!rules.ok()) return rules.status();
  std::lock_guard<std::mutex> lock(g_install_mu);
  if (rules.value().empty()) {
    internal::g_armed.store(false, std::memory_order_relaxed);
    g_sites.store(nullptr, std::memory_order_release);
    return Status::OK();
  }
  auto* set = new SiteSet;
  set->sites = std::vector<SiteState>(rules.value().size());
  for (size_t i = 0; i < rules.value().size(); ++i) {
    set->sites[i].rule = rules.value()[i];
  }
  set->retired_next = g_all_sets;
  g_all_sets = set;
  g_sites.store(set, std::memory_order_release);
  internal::g_armed.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void ClearFaults() {
  std::lock_guard<std::mutex> lock(g_install_mu);
  internal::g_armed.store(false, std::memory_order_relaxed);
  g_sites.store(nullptr, std::memory_order_release);
}

bool ShouldFail(const char* site, uint64_t weight) {
  SiteState* state = FindSite(site);
  if (state == nullptr) return false;
  const SiteRule& rule = state->rule;
  if (weight < rule.min_weight) return false;
  // 1-based index of this eligible hit; fetch_add gives every concurrent
  // hit a distinct index, so hit:N fires exactly once process-wide.
  const uint64_t h = state->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  switch (rule.mode) {
    case SiteRule::Mode::kAlways:
      fire = true;
      break;
    case SiteRule::Mode::kHit:
      fire = h == rule.n;
      break;
    case SiteRule::Mode::kAfter:
      fire = h > rule.n;
      break;
    case SiteRule::Mode::kProb:
      fire = static_cast<double>(SplitMix64(rule.seed ^ h) >> 11) *
                 0x1.0p-53 <
             rule.probability;
      break;
  }
  if (!fire) return false;
  // fired doubles as the once-latch: only the first increment fires.
  const uint64_t prior = state->fired.fetch_add(1, std::memory_order_relaxed);
  if (rule.once && prior != 0) return false;
  return true;
}

uint64_t SiteHits(const std::string& site) {
  SiteState* state = FindSite(site.c_str());
  return state == nullptr ? 0
                          : state->hits.load(std::memory_order_relaxed);
}

uint64_t SiteFired(const std::string& site) {
  SiteState* state = FindSite(site.c_str());
  if (state == nullptr) return 0;
  const uint64_t fired = state->fired.load(std::memory_order_relaxed);
  // Under `once` the counter keeps counting suppressed firings; report the
  // faults actually injected.
  return state->rule.once && fired > 0 ? 1 : fired;
}

uint64_t TotalFired() {
  SiteSet* set = g_sites.load(std::memory_order_acquire);
  if (set == nullptr) return 0;
  uint64_t total = 0;
  for (SiteState& state : set->sites) {
    const uint64_t fired = state.fired.load(std::memory_order_relaxed);
    total += state.rule.once && fired > 0 ? 1 : fired;
  }
  return total;
}

Status InjectedFault(const char* site) {
  return Status::Internal(std::string("injected fault at ") + site);
}

}  // namespace tg::fault
