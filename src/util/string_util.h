// Small string helpers used by CSV/table output and catalog parsing.
#ifndef TG_UTIL_STRING_UTIL_H_
#define TG_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace tg {

// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> Split(const std::string& text, char delim);

// Joins with the given separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& text);

// Formats a double with the given number of decimal places.
std::string FormatDouble(double value, int decimals);

bool StartsWith(const std::string& text, const std::string& prefix);

bool EndsWith(const std::string& text, const std::string& suffix);

// Strict numeric parses for untrusted input: the whole string must be a
// single value (no trailing bytes, no leading '-' for the unsigned form)
// and must not overflow. Unlike std::stoul/std::stod these never throw,
// so loaders can reject corrupted bytes with a Status instead of crashing.
bool ParseUint64(const std::string& text, uint64_t* out);

// Accepts any strtod-parsable value including "nan"/"inf"; callers that
// need finite values must check std::isfinite on the result.
bool ParseDouble(const std::string& text, double* out);

}  // namespace tg

#endif  // TG_UTIL_STRING_UTIL_H_
