// Small string helpers used by CSV/table output and catalog parsing.
#ifndef TG_UTIL_STRING_UTIL_H_
#define TG_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace tg {

// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> Split(const std::string& text, char delim);

// Joins with the given separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& text);

// Formats a double with the given number of decimal places.
std::string FormatDouble(double value, int decimals);

bool StartsWith(const std::string& text, const std::string& prefix);

bool EndsWith(const std::string& text, const std::string& suffix);

}  // namespace tg

#endif  // TG_UTIL_STRING_UTIL_H_
