#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"

namespace tg {
namespace {

std::atomic<size_t> g_thread_override{0};

thread_local bool t_in_worker = false;

size_t DefaultThreadCount() {
  static const size_t cached = [] {
    if (const char* env = std::getenv("TG_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && v > 0) return static_cast<size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<size_t>(hw > 0 ? hw : 1);
  }();
  return cached;
}

}  // namespace

size_t ThreadCount() {
  const size_t override = g_thread_override.load(std::memory_order_relaxed);
  return override > 0 ? override : DefaultThreadCount();
}

void SetThreadCount(size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] {
      obs::SetCurrentThreadName("tg-worker-" + std::to_string(i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  static obs::Counter& tasks =
      obs::MetricsRegistry::Instance().GetCounter("thread_pool.tasks");
  tasks.Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::InWorker() { return t_in_worker; }

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    if (obs::MetricsEnabled()) {
      static obs::Gauge& busy = obs::MetricsRegistry::Instance().GetGauge(
          "thread_pool.worker_busy_seconds");
      const auto start = std::chrono::steady_clock::now();
      task();
      busy.Add(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
                   .count());
    } else {
      task();
    }
  }
}

ThreadPool& GlobalThreadPool() {
  static std::mutex* mu = new std::mutex;
  static std::unique_ptr<ThreadPool>* pool = new std::unique_ptr<ThreadPool>;
  std::lock_guard<std::mutex> lock(*mu);
  const size_t want = ThreadCount();
  if (!*pool || (*pool)->num_threads() != want) {
    pool->reset();  // join the old workers before spawning the new pool
    *pool = std::make_unique<ThreadPool>(want);
  }
  return **pool;
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t n = end - begin;
  const size_t num_chunks = (n + grain - 1) / grain;

  const auto run_chunk = [begin, end, grain, &fn](size_t c) {
    // Chaos hook: simulates a task that dies before user code runs. The
    // exception takes the same capture/rethrow path as one thrown by fn,
    // so tests exercise the pool's failure plumbing end to end.
    if (TG_FAULT_POINT("thread_pool.dispatch")) {
      throw std::runtime_error("injected fault at thread_pool.dispatch");
    }
    const size_t lo = begin + c * grain;
    fn(lo, std::min(end, lo + grain), c);
  };

  static obs::Counter& pf_calls = obs::MetricsRegistry::Instance().GetCounter(
      "thread_pool.parallel_for.calls");
  static obs::Counter& pf_chunks = obs::MetricsRegistry::Instance().GetCounter(
      "thread_pool.parallel_for.chunks");
  pf_calls.Increment();
  pf_chunks.Increment(num_chunks);

  if (num_chunks == 1 || ThreadCount() == 1 || ThreadPool::InWorker()) {
    // Inline execution stays on the calling thread, so spans opened inside
    // fn already nest under the caller's current span.
    for (size_t c = 0; c < num_chunks; ++c) run_chunk(c);
    return;
  }

  // Spans opened by fn on a pool worker must attach to the span that
  // enqueued this region, not to whatever the worker traced last: capture
  // the caller's current span and re-establish it inside each drain.
  const uint64_t parent_span = obs::CurrentSpanId();

  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t total = 0;
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto shared = std::make_shared<Shared>();
  shared->total = num_chunks;

  // Each drain loop claims chunk indices until exhausted. A late-running
  // submitted copy after the caller returned claims nothing and never calls
  // run_chunk (whose captured references would be dangling by then).
  const auto drain = [shared, run_chunk, parent_span] {
    obs::ParentScope handoff(parent_span);
    obs::Span drain_span("pool_drain");
    for (;;) {
      const size_t c = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= shared->total) return;
      bool skip;
      {
        std::lock_guard<std::mutex> lock(shared->mu);
        skip = shared->error != nullptr;
      }
      if (!skip) {
        try {
          run_chunk(c);
        } catch (...) {
          std::lock_guard<std::mutex> lock(shared->mu);
          if (!shared->error) shared->error = std::current_exception();
        }
      }
      if (shared->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          shared->total) {
        std::lock_guard<std::mutex> lock(shared->mu);
        shared->cv.notify_all();
      }
    }
  };

  ThreadPool& pool = GlobalThreadPool();
  const size_t helpers = std::min(pool.num_threads(), num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) pool.Submit(drain);
  drain();  // the caller participates

  std::unique_lock<std::mutex> lock(shared->mu);
  shared->cv.wait(lock, [&shared] {
    return shared->done.load(std::memory_order_acquire) == shared->total;
  });
  if (shared->error) std::rethrow_exception(shared->error);
}

void ParallelForIfWorth(size_t begin, size_t end, size_t grain,
                        size_t estimated_work,
                        const std::function<void(size_t, size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (estimated_work < kMinParallelWork) {
    static obs::Counter& inline_runs =
        obs::MetricsRegistry::Instance().GetCounter(
            "thread_pool.parallel_for.inline_small_work");
    inline_runs.Increment();
    if (grain == 0) grain = 1;
    const size_t num_chunks = (end - begin + grain - 1) / grain;
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t lo = begin + c * grain;
      fn(lo, std::min(end, lo + grain), c);
    }
    return;
  }
  ParallelFor(begin, end, grain, fn);
}

}  // namespace tg
