// Minimal poll-based HTTP/1.1 server for the telemetry plane: one raw-socket
// listener bound to loopback, one server thread, exact-path GET handlers.
// Deliberately dependency-free (no third-party HTTP stack) and deliberately
// small: requests are served one at a time, connections are closed after
// every response, and anything that is not a well-formed GET gets a 4xx.
// That is the right shape for a scrape endpoint polled every few seconds by
// Prometheus or tools/scrape -- not a general web server.
//
// Fault injection (docs/robustness.md): the "telemetry_bind" site fires
// before bind(), the "telemetry_accept" site before each accept(). Both
// degrade cleanly: Start() returns a Status the caller latches, a poisoned
// accept shuts the serve loop down through the error callback, and neither
// ever takes the process down.
//
// Threading: Start()/Stop() are serialized by the caller (the telemetry
// plane); handlers run on the server thread and must be thread-safe against
// the rest of the process (registry snapshots, atomic reads).
#ifndef TG_UTIL_HTTP_SERVER_H_
#define TG_UTIL_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "util/status.h"

namespace tg {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// Exact-match path handler ("/metrics"); the query string (if any) is
// stripped before dispatch and passed as the second argument.
using HttpHandler =
    std::function<HttpResponse(const std::string& path,
                               const std::string& query)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers `handler` for exact path `path`. Must be called before
  // Start(); the handler map is read-only while the server thread runs.
  void Handle(std::string path, HttpHandler handler);

  // Called on the server thread when the serve loop dies (fatal accept
  // error or injected telemetry_accept fault), with the reason. Must be set
  // before Start().
  void set_error_callback(std::function<void(const Status&)> callback) {
    error_callback_ = std::move(callback);
  }

  // Binds 127.0.0.1:`port` (port 0 = kernel-assigned ephemeral port; read it
  // back via bound_port()) and spawns the server thread. Fails with a Status
  // -- never an abort -- on socket/bind/listen errors or an injected
  // "telemetry_bind" fault.
  Status Start(int port);

  // Stops the serve loop and joins the server thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  int bound_port() const { return bound_port_; }

 private:
  void ServeLoop();
  void HandleConnection(int fd);

  std::map<std::string, HttpHandler> handlers_;
  std::function<void(const Status&)> error_callback_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int bound_port_ = 0;
};

// Blocking HTTP GET against 127.0.0.1:`port` with a total deadline; used by
// tools/scrape and the telemetry tests. Returns the parsed status code plus
// the response body (headers stripped). Fails with a Status on connect /
// timeout / malformed-response errors.
struct HttpGetResult {
  int status = 0;
  std::string body;
};

Result<HttpGetResult> HttpGet(int port, const std::string& path,
                              int timeout_ms = 2000);

}  // namespace tg

#endif  // TG_UTIL_HTTP_SERVER_H_
