// Crash-safe file writes: stream into `path + ".tmp"`, then
// flush + fsync + rename onto the final path, so a reader either sees the
// complete previous file or the complete new file -- never a torn or
// truncated artifact. Every on-disk producer in the repo (graph TSV,
// CsvWriter, Chrome traces, bench_timings.json, BENCH_history.json,
// evaluation checkpoints) goes through this writer.
//
// Error model: the first failed write is latched and every later Append is
// a no-op; Commit() reports the latched Status and removes the temp file,
// so a failed write never leaves debris or a partial final file. An
// AtomicFileWriter destroyed without Commit() discards the temp file.
//
// Fault sites (see docs/robustness.md): "atomic_file.open",
// "atomic_file.write", "atomic_file.fsync", "atomic_file.rename", and
// "atomic_file.crash_before_rename" (simulates process death after the data
// is durable in the temp file but before the rename publishes it -- the
// temp file is deliberately left behind, exactly as a real crash would).
//
// Concurrency: with the default shared temp name (`path + ".tmp"`), two
// writers racing on the SAME final path clobber each other's temp file and
// can briefly expose a partially-written inode through the final name.
// Producers that are legitimately raced by other processes (distributed
// sweep shards, checkpoints, the workdir manifest) pass unique_temp=true:
// each writer streams into `path + ".<pid>-<seq>.tmp"`, so the rename is a
// true whole-file replace and racing writers degrade to last-writer-wins
// with no torn-read window.
#ifndef TG_UTIL_ATOMIC_FILE_H_
#define TG_UTIL_ATOMIC_FILE_H_

#include <cstdio>
#include <string>

#include "util/status.h"

namespace tg {

class AtomicFileWriter {
 public:
  // Opens the temp file for writing. Check ok() (or just Commit(), which
  // reports the open error) before relying on the writes. unique_temp
  // selects a per-writer temp name (see file comment) for paths that
  // concurrent processes may publish simultaneously.
  explicit AtomicFileWriter(const std::string& path, bool unique_temp = false);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  // True while the temp file is open and no write has failed.
  bool ok() const { return file_ != nullptr && error_.ok(); }

  // Appends bytes to the temp file. Short writes latch an error; after the
  // first failure every Append is a no-op.
  void Append(const std::string& data);

  // Flushes, fsyncs and closes the temp file, then renames it onto the
  // final path (and best-effort fsyncs the directory). On any failure the
  // temp file is removed and the final path is untouched.
  Status Commit();

  // Closes and removes the temp file without publishing. Idempotent.
  void Discard();

  const std::string& path() const { return path_; }
  const std::string& temp_path() const { return temp_path_; }

 private:
  std::string path_;
  std::string temp_path_;
  std::FILE* file_ = nullptr;
  Status error_;  // first latched failure
  bool finished_ = false;
};

// One-shot convenience: atomically replaces `path` with `contents`.
Status WriteFileAtomic(const std::string& path, const std::string& contents,
                       bool unique_temp = false);

// Whole-file read with explicit error propagation (fault site "file.read").
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace tg

#endif  // TG_UTIL_ATOMIC_FILE_H_
