#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace tg {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line.push_back('\n');
    return line;
  };

  std::string out = render_row(header_);
  std::string sep;
  for (size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) sep += "  ";
    sep.append(widths[c], '-');
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const {
  std::fputs(Render().c_str(), stdout);
}

}  // namespace tg
