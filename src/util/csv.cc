#include "util/csv.h"

#include <cstdio>

namespace tg {
namespace {

bool NeedsQuoting(const std::string& field) {
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n') return true;
  }
  return false;
}

std::string Escape(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (file_ == nullptr) return;
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back(',');
    line += Escape(fields[i]);
  }
  line.push_back('\n');
  std::fputs(line.c_str(), file_);
}

Status CsvWriter::Close() {
  if (file_ == nullptr) return Status::FailedPrecondition("file not open");
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::Internal("fclose failed");
  return Status::OK();
}

}  // namespace tg
