#include "util/csv.h"

#include "util/logging.h"

namespace tg {
namespace {

bool NeedsQuoting(const std::string& field) {
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n') return true;
  }
  return false;
}

std::string Escape(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : writer_(path) {}

CsvWriter::~CsvWriter() {
  if (closed_) return;
  const Status status = writer_.Commit();
  if (!status.ok()) {
    TG_LOG(Warning) << "CSV " << writer_.path()
                    << " not published: " << status.ToString();
  }
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back(',');
    line += Escape(fields[i]);
  }
  line.push_back('\n');
  writer_.Append(line);
}

Status CsvWriter::Close() {
  if (closed_) return Status::FailedPrecondition("CSV already closed");
  closed_ = true;
  return writer_.Commit();
}

}  // namespace tg
