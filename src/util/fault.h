// Deterministic fault-injection substrate: named sites compiled into the
// I/O, dispatch and allocation paths, armed by per-site trigger rules parsed
// from the TG_FAULT environment spec (or installed programmatically by
// tests). See docs/robustness.md for the grammar.
//
// Cost model: every TG_FAULT_POINT compiles to a single relaxed atomic load
// of the global armed flag when no spec is installed -- the same discipline
// as the tracing/metrics/memory substrates, so the hooks are compiled-in
// everywhere and left on in production code.
//
// Determinism contract: firing decisions depend only on (site rule, per-site
// hit index), never on wall clock, thread identity, or address-space layout.
// The same spec over the same workload fires the same faults; with no spec
// installed the substrate touches nothing and all outputs are bit-identical
// to a build without it.
//
// Spec grammar (TG_FAULT environment variable):
//   spec     := rule (";" rule)*
//   rule     := site "=" mode (":" modifier)*
//   mode     := "always" | "once" | "hit:" N | "after:" N | "prob:" P
//   modifier := "once" | "seed:" S | "min:" BYTES
//
//   always     fire on every hit
//   once       fire on the first hit only (same as always:once)
//   hit:N      fire on the Nth eligible hit exactly (1-based)
//   after:N    fire on every hit once more than N hits occurred
//   prob:P     fire with probability P per hit, decided by a counter-based
//              hash of (seed, hit index) -- deterministic and thread-safe
//   once       (as modifier) at most one firing total for this site
//   seed:S     seed for prob decisions (default 0)
//   min:BYTES  only hits with weight >= BYTES are eligible (the alloc site
//              passes the requested allocation size as weight; sites that
//              pass no weight never fire under a min rule)
//
// Example: TG_FAULT="atomic_file.write=hit:3;alloc=prob:0.01:seed:7:min:1048576"
#ifndef TG_UTIL_FAULT_H_
#define TG_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace tg::fault {

namespace internal {
// Constant-initialized so the alloc hook can load it at any point of
// process startup. True iff at least one site rule is installed.
extern std::atomic<bool> g_armed;
}  // namespace internal

// One relaxed load; false unless a spec is installed.
inline bool Armed() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

// Trigger rule for one site, parsed from one `site=mode` spec entry.
struct SiteRule {
  enum class Mode { kAlways, kHit, kAfter, kProb };

  std::string site;
  Mode mode = Mode::kAlways;
  uint64_t n = 0;           // hit:N / after:N
  double probability = 0.0; // prob:P
  uint64_t seed = 0;        // prob decisions
  bool once = false;        // at most one firing
  uint64_t min_weight = 0;  // hits below this weight are not eligible
};

// Parses a spec string into rules without installing them. InvalidArgument
// with a pointer to the offending entry on malformed input.
Result<std::vector<SiteRule>> ParseSpec(const std::string& spec);

// Parses and installs `spec`, replacing any previously installed rules and
// resetting all hit counts. An empty spec disarms every site (same as
// ClearFaults). Not safe concurrently with in-flight fault points that
// could fire -- install before starting the workload.
Status InstallSpec(const std::string& spec);

// Removes every rule and disarms the substrate.
void ClearFaults();

// Full firing decision for one hit of `site`. Called via TG_FAULT_POINT
// only when Armed(); never allocates (it runs inside operator new for the
// "alloc" site). `weight` carries the site-specific magnitude -- the alloc
// hook passes the requested byte count -- and is matched against min:BYTES.
bool ShouldFail(const char* site, uint64_t weight = 0);

// Eligible hits observed / faults fired at `site` since its rule was
// installed. Zero for sites without a rule.
uint64_t SiteHits(const std::string& site);
uint64_t SiteFired(const std::string& site);

// Total faults fired across all sites since the last InstallSpec.
uint64_t TotalFired();

// The canonical error for an injected failure at `site`.
Status InjectedFault(const char* site);

}  // namespace tg::fault

// True iff a fault should be injected here. One relaxed atomic load when no
// spec is installed.
#define TG_FAULT_POINT(site) \
  (::tg::fault::Armed() && ::tg::fault::ShouldFail(site))

// Weighted variant: `weight` feeds min:BYTES eligibility (alloc sizes).
#define TG_FAULT_POINT_W(site, weight) \
  (::tg::fault::Armed() && ::tg::fault::ShouldFail((site), (weight)))

#endif  // TG_UTIL_FAULT_H_
