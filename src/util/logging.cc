#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace tg {
namespace {

// Atomic because benches flip the level (SetLogLevel) while pool workers may
// be logging concurrently; relaxed is enough -- the level is an independent
// filter knob, not a synchronization point.
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel SetLogLevel(LogLevel level) {
  return g_level.exchange(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    return;
  }
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace tg
