#include "util/logging.h"

#include <cstdio>

namespace tg {
namespace {

LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel SetLogLevel(LogLevel level) {
  LogLevel old = g_level;
  g_level = level;
  return old;
}

LogLevel GetLogLevel() { return g_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace tg
