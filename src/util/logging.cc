#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace tg {
namespace {

// Atomic because benches flip the level (SetLogLevel) while pool workers may
// be logging concurrently; relaxed is enough -- the level is an independent
// filter knob, not a synchronization point.
std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Constant-initialized function-pointer hooks so lines emitted during static
// init (before any installer runs) fall back to plain stderr.
std::atomic<LogSink> g_sink{nullptr};
std::atomic<LogSpanProvider> g_span_provider{nullptr};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel SetLogLevel(LogLevel level) {
  return g_level.exchange(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogSink(LogSink sink) {
  g_sink.store(sink, std::memory_order_relaxed);
}

void SetLogSpanProvider(LogSpanProvider provider) {
  g_span_provider.store(provider, std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    return;
  }
  const std::string message = stream_.str();
  if (LogSink sink = g_sink.load(std::memory_order_relaxed)) {
    sink(level_, file_, line_, message);
    return;
  }
  const char* span = nullptr;
  if (LogSpanProvider provider =
          g_span_provider.load(std::memory_order_relaxed)) {
    span = provider();
  }
  if (span != nullptr) {
    std::fprintf(stderr, "[%s %s:%d @%s] %s\n", LevelName(level_), file_,
                 line_, span, message.c_str());
  } else {
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), file_, line_,
                 message.c_str());
  }
}

}  // namespace internal_logging
}  // namespace tg
