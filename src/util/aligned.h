// Minimal over-aligned STL allocator. Matrix uses AlignedAllocator<double, 64>
// so every row-major buffer starts on a cache-line (and full AVX-512 vector)
// boundary: the vector kernel backends use unaligned loads either way, but
// line-aligned rows mean a dim-8k row spans exactly dim/8 lines instead of
// one extra straddled line per row.
//
// Allocation goes through the aligned global operator new/delete, which
// obs/memory.cc interposes -- so over-aligned buffers stay visible to the
// allocation tracker like every other allocation.
#ifndef TG_UTIL_ALIGNED_H_
#define TG_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>

namespace tg {

template <typename T, size_t Alignment>
class AlignedAllocator {
  static_assert(Alignment >= alignof(T), "alignment below natural alignment");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");

 public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

}  // namespace tg

#endif  // TG_UTIL_ALIGNED_H_
