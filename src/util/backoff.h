// Bounded exponential backoff with deterministic jitter, shared by every
// retry loop in the repo (distributed-sweep claim races, transient
// checkpoint/shard I/O faults, the pipeline's once-degraded target retry).
//
// Determinism contract: the delay sequence depends only on (policy, attempt
// index) -- jitter comes from a counter-based SplitMix64 hash of
// (seed, attempt), the same discipline as util/fault's prob decisions -- so
// two Backoff instances with equal policies produce bit-identical delay
// sequences regardless of wall clock or thread interleaving. Sleeping is the
// only side effect; results of the retried work never depend on the delays.
#ifndef TG_UTIL_BACKOFF_H_
#define TG_UTIL_BACKOFF_H_

#include <cstdint>

namespace tg {

struct BackoffPolicy {
  // Base delay of attempt k is initial_sec * multiplier^k, capped at max_sec.
  double initial_sec = 0.01;
  double multiplier = 2.0;
  double max_sec = 1.0;
  // Fraction of the base delay randomized: the jittered delay is uniform in
  // [base * (1 - jitter), base * (1 + jitter)], still capped at max_sec.
  // 0 disables jitter entirely (delays are exactly the base sequence).
  double jitter = 0.5;
  // Seed for the jitter hash; callers derive it from their own seed (e.g.
  // the sweep config seed xor a worker index) for reproducible schedules.
  uint64_t seed = 0;
};

class Backoff {
 public:
  explicit Backoff(const BackoffPolicy& policy = {});

  // The delay for the current attempt; advances the attempt index.
  double NextDelaySec();

  // NextDelaySec() followed by a blocking sleep of that many seconds.
  // Returns the slept delay.
  double SleepNext();

  // Restarts the sequence (after a success, so the next failure burst
  // starts cheap again).
  void Reset();

  // Attempts consumed since construction / the last Reset.
  uint64_t attempts() const { return attempt_; }

  const BackoffPolicy& policy() const { return policy_; }

 private:
  BackoffPolicy policy_;
  uint64_t attempt_ = 0;
};

}  // namespace tg

#endif  // TG_UTIL_BACKOFF_H_
