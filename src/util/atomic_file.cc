#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>

#include "util/fault.h"

namespace tg {
namespace {

std::string ErrnoText() {
  return std::strerror(errno);
}

// Distinct temp names for writers that race other processes (and other
// threads) on the same final path. The pid separates processes; the
// counter separates threads within one process.
std::string UniqueTempPath(const std::string& path) {
  static std::atomic<uint64_t> sequence{0};
  return path + "." + std::to_string(static_cast<long>(::getpid())) + "-" +
         std::to_string(sequence.fetch_add(1, std::memory_order_relaxed)) +
         ".tmp";
}

// Durability of the rename itself: fsync the containing directory so the
// new directory entry survives a power cut. Best-effort -- some filesystems
// refuse O_RDONLY fsync on directories -- and never fails the commit.
void FsyncParentDirectory(const std::string& path) {
  const size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(const std::string& path, bool unique_temp)
    : path_(path),
      temp_path_(unique_temp ? UniqueTempPath(path) : path + ".tmp") {
  if (TG_FAULT_POINT("atomic_file.open")) {
    error_ = fault::InjectedFault("atomic_file.open");
    return;
  }
  file_ = std::fopen(temp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    error_ = Status::Internal("cannot open " + temp_path_ +
                              " for writing: " + ErrnoText());
  }
}

AtomicFileWriter::~AtomicFileWriter() { Discard(); }

void AtomicFileWriter::Append(const std::string& data) {
  if (file_ == nullptr || !error_.ok()) return;
  if (TG_FAULT_POINT("atomic_file.write")) {
    error_ = fault::InjectedFault("atomic_file.write");
    return;
  }
  if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    error_ = Status::Internal("short write to " + temp_path_ + ": " +
                              ErrnoText());
  }
}

Status AtomicFileWriter::Commit() {
  if (finished_) {
    return Status::FailedPrecondition("writer for " + path_ +
                                      " already finished");
  }
  if (!error_.ok() || file_ == nullptr) {
    Discard();
    return error_.ok()
               ? Status::Internal("temp file for " + path_ + " never opened")
               : error_;
  }
  // fflush reports buffered-write failures (ENOSPC most commonly) that the
  // earlier fwrite calls absorbed into stdio buffers.
  if (std::fflush(file_) != 0) {
    error_ = Status::Internal("flush failed for " + temp_path_ + ": " +
                              ErrnoText());
    Discard();
    return error_;
  }
  if (TG_FAULT_POINT("atomic_file.fsync")) {
    error_ = fault::InjectedFault("atomic_file.fsync");
    Discard();
    return error_;
  }
  if (::fsync(::fileno(file_)) != 0) {
    error_ = Status::Internal("fsync failed for " + temp_path_ + ": " +
                              ErrnoText());
    Discard();
    return error_;
  }
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    error_ = Status::Internal("close failed for " + temp_path_);
    Discard();
    return error_;
  }
  file_ = nullptr;
  if (TG_FAULT_POINT("atomic_file.crash_before_rename")) {
    // A simulated crash: the data is durable in the temp file but the
    // rename never happened. Leave the temp file behind -- recovery
    // tooling and tests must cope with exactly this debris.
    finished_ = true;
    return fault::InjectedFault("atomic_file.crash_before_rename");
  }
  if (TG_FAULT_POINT("atomic_file.rename")) {
    error_ = fault::InjectedFault("atomic_file.rename");
    Discard();
    return error_;
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    error_ = Status::Internal("rename " + temp_path_ + " -> " + path_ +
                              " failed: " + ErrnoText());
    Discard();
    return error_;
  }
  finished_ = true;
  FsyncParentDirectory(path_);
  return Status::OK();
}

void AtomicFileWriter::Discard() {
  if (finished_) return;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::remove(temp_path_.c_str());
  finished_ = true;
}

Status WriteFileAtomic(const std::string& path, const std::string& contents,
                       bool unique_temp) {
  AtomicFileWriter writer(path, unique_temp);
  writer.Append(contents);
  return writer.Commit();
}

Result<std::string> ReadFileToString(const std::string& path) {
  if (TG_FAULT_POINT("file.read")) return fault::InjectedFault("file.read");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open: " + path);
  std::string out;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out.append(buffer, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::Internal("read error on " + path);
  return out;
}

}  // namespace tg
