// Aligned plain-text table rendering for the benchmark harness output.
// Benches print the same rows/series the paper's tables and figures report.
#ifndef TG_UTIL_TABLE_PRINTER_H_
#define TG_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace tg {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders the table with column alignment and a header separator.
  std::string Render() const;

  // Renders to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tg

#endif  // TG_UTIL_TABLE_PRINTER_H_
