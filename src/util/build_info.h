// Build provenance stamp: git sha, compiler, flags, build type and
// sanitizer mode captured at configure/compile time, plus the runtime
// thread count. Embedded in bench_csv/bench_timings.json and carried into
// bench_csv/BENCH_history.json entries so run-over-run comparisons only
// diff runs built the same way (comparing a TSan build against a Release
// build would flag nothing but noise).
//
// The values come from compile definitions set on build_info.cc alone (see
// src/CMakeLists.txt), so a new git sha recompiles one file, not the
// library. The sha is captured at CMake configure time; a stale stamp after
// local commits without a reconfigure is possible and acceptable for a
// trend artifact.
#ifndef TG_UTIL_BUILD_INFO_H_
#define TG_UTIL_BUILD_INFO_H_

#include <string>

namespace tg {

struct BuildInfo {
  std::string git_sha;     // short sha at configure time, or "unknown"
  std::string compiler;    // e.g. "GNU 12.2.0"
  std::string flags;       // CMAKE_CXX_FLAGS + build-type flags
  std::string build_type;  // Release / RelWithDebInfo / Debug
  std::string sanitizer;   // TG_SANITIZE value, or "none"
  long cxx_standard = 0;   // __cplusplus of the build
};

const BuildInfo& GetBuildInfo();

// One JSON object with every BuildInfo field plus "tg_threads" (the live
// ThreadCount(), which is runtime configuration rather than build
// provenance but equally load-bearing for comparability).
std::string BuildInfoJson();

}  // namespace tg

#endif  // TG_UTIL_BUILD_INFO_H_
