// CSV writer used by benches to dump the series behind each figure, so the
// paper plots can be regenerated from files under the build directory.
#ifndef TG_UTIL_CSV_H_
#define TG_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace tg {

class CsvWriter {
 public:
  // Opens (truncates) the file; check Ok() before writing rows.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  // Writes one row; fields containing commas or quotes are quoted.
  void WriteRow(const std::vector<std::string>& fields);

  Status Close();

 private:
  std::FILE* file_ = nullptr;
};

}  // namespace tg

#endif  // TG_UTIL_CSV_H_
