// CSV writer used by benches to dump the series behind each figure, so the
// paper plots can be regenerated from files under the build directory.
//
// Rows accumulate in a temp file that is atomically renamed over `path` on
// Close(), so readers never observe a half-written CSV. Write errors latch:
// the first failure poisons the writer and Close() reports it as a Status.
#ifndef TG_UTIL_CSV_H_
#define TG_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/atomic_file.h"
#include "util/status.h"

namespace tg {

class CsvWriter {
 public:
  // Opens (truncates) the temp file; check ok() before writing rows.
  explicit CsvWriter(const std::string& path);
  // Best-effort commit for callers that never Close(); logs on failure.
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  // False once any open/write error has latched; later rows are dropped.
  bool ok() const { return writer_.ok(); }

  // Writes one row; fields containing commas or quotes are quoted.
  void WriteRow(const std::vector<std::string>& fields);

  // Publishes the file (fsync + rename). Returns the first latched write
  // error if any row failed, in which case nothing is published.
  Status Close();

 private:
  AtomicFileWriter writer_;
  bool closed_ = false;
};

}  // namespace tg

#endif  // TG_UTIL_CSV_H_
