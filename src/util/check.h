// Assertion macros used throughout the library for programmer-error checks.
// These abort with a diagnostic; expected runtime failures use tg::Status.
#ifndef TG_UTIL_CHECK_H_
#define TG_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define TG_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "TG_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define TG_CHECK_MSG(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "TG_CHECK failed: %s (%s) at %s:%d\n", #cond,   \
                   msg, __FILE__, __LINE__);                               \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define TG_CHECK_EQ(a, b) TG_CHECK((a) == (b))
#define TG_CHECK_NE(a, b) TG_CHECK((a) != (b))
#define TG_CHECK_LT(a, b) TG_CHECK((a) < (b))
#define TG_CHECK_LE(a, b) TG_CHECK((a) <= (b))
#define TG_CHECK_GT(a, b) TG_CHECK((a) > (b))
#define TG_CHECK_GE(a, b) TG_CHECK((a) >= (b))

#endif  // TG_UTIL_CHECK_H_
