// Assertion macros used throughout the library for programmer-error checks.
// These abort with a diagnostic; expected runtime failures use tg::Status.
//
// Before aborting, CheckFail runs any installed failure hooks exactly once
// (re-entrant failures skip straight to abort). The obs layer installs a
// hook that prints the open span stack and flushes trace/metrics buffers so
// post-mortem Chrome traces exist for crashes -- see obs/trace.h and
// docs/robustness.md.
#ifndef TG_UTIL_CHECK_H_
#define TG_UTIL_CHECK_H_

namespace tg::internal_check {

// Prints the diagnostic, runs the failure hooks (first failure only), and
// aborts. `msg` may be nullptr.
[[noreturn]] void CheckFail(const char* cond, const char* msg,
                            const char* file, int line);

// Registers a hook to run on the first TG_CHECK failure, before abort().
// Hooks run on the failing thread in registration order and must not
// assume any particular program state. A small fixed number of slots is
// available; surplus registrations are ignored.
using CheckFailureHook = void (*)();
void InstallCheckFailureHook(CheckFailureHook hook);

}  // namespace tg::internal_check

#define TG_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::tg::internal_check::CheckFail(#cond, nullptr, __FILE__, __LINE__); \
    }                                                                      \
  } while (0)

#define TG_CHECK_MSG(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::tg::internal_check::CheckFail(#cond, msg, __FILE__, __LINE__);     \
    }                                                                      \
  } while (0)

#define TG_CHECK_EQ(a, b) TG_CHECK((a) == (b))
#define TG_CHECK_NE(a, b) TG_CHECK((a) != (b))
#define TG_CHECK_LT(a, b) TG_CHECK((a) < (b))
#define TG_CHECK_LE(a, b) TG_CHECK((a) <= (b))
#define TG_CHECK_GT(a, b) TG_CHECK((a) > (b))
#define TG_CHECK_GE(a, b) TG_CHECK((a) >= (b))

#endif  // TG_UTIL_CHECK_H_
