#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace tg {

std::vector<std::string> Split(const std::string& text, char delim) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == delim) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

bool ParseUint64(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+' ||
      std::isspace(static_cast<unsigned char>(text[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty() || std::isspace(static_cast<unsigned char>(text[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  *out = value;
  return true;
}

}  // namespace tg
