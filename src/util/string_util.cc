#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace tg {

std::vector<std::string> Split(const std::string& text, char delim) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == delim) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

}  // namespace tg
