#include "ml/tabular.h"

#include <cmath>

#include "numeric/kernels.h"
#include "numeric/stats.h"
#include "util/thread_pool.h"

namespace tg::ml {

void Standardizer::Fit(const Matrix& x) {
  const size_t d = x.cols();
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  if (x.rows() == 0) return;
  for (size_t c = 0; c < d; ++c) {
    double sum = 0.0;
    for (size_t r = 0; r < x.rows(); ++r) sum += x(r, c);
    mean_[c] = sum / static_cast<double>(x.rows());
    double var = 0.0;
    for (size_t r = 0; r < x.rows(); ++r) {
      const double dlt = x(r, c) - mean_[c];
      var += dlt * dlt;
    }
    var /= static_cast<double>(x.rows());
    inv_std_[c] = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
  }
}

Matrix Standardizer::Transform(const Matrix& x) const {
  TG_CHECK_EQ(x.cols(), mean_.size());
  Matrix out = x;
  // (row - mean) * inv_std as two elementwise kernel passes per row --
  // Sub and Mul perform the exact per-element subtract and multiply of the
  // scalar loop in every backend, so transformed features (and thus every
  // downstream artifact) are bit-identical to the unkerneled form.
  for (size_t r = 0; r < out.rows(); ++r) {
    double* row = out.RowPtr(r);
    kernels::Sub(row, mean_.data(), out.cols());
    kernels::Mul(row, inv_std_.data(), out.cols());
  }
  return out;
}

std::vector<double> Standardizer::TransformRow(
    const std::vector<double>& row) const {
  TG_CHECK_EQ(row.size(), mean_.size());
  std::vector<double> out = row;
  kernels::Sub(out.data(), mean_.data(), out.size());
  kernels::Mul(out.data(), inv_std_.data(), out.size());
  return out;
}

std::vector<double> Regressor::PredictBatch(const Matrix& x) const {
  std::vector<double> out(x.rows());
  // Rows predict independently into disjoint slots, so the batch fans out
  // over the pool; tiny batches (grain 256) run inline. Output values do
  // not depend on the thread count.
  ParallelForIfWorth(0, x.rows(), 256, x.rows() * x.cols(),
                     [&](size_t begin, size_t end, size_t /*chunk*/) {
                       for (size_t r = begin; r < end; ++r) {
                         out[r] = Predict(x.Row(r));
                       }
                     });
  return out;
}

double Rmse(const std::vector<double>& predictions,
            const std::vector<double>& targets) {
  TG_CHECK_EQ(predictions.size(), targets.size());
  if (predictions.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double d = predictions[i] - targets[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(predictions.size()));
}

double RSquared(const std::vector<double>& predictions,
                const std::vector<double>& targets) {
  TG_CHECK_EQ(predictions.size(), targets.size());
  if (predictions.empty()) return 0.0;
  const double mean_y = Mean(targets);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < targets.size(); ++i) {
    ss_res += (targets[i] - predictions[i]) * (targets[i] - predictions[i]);
    ss_tot += (targets[i] - mean_y) * (targets[i] - mean_y);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace tg::ml
