// Split-search engine selection for the CART trees (decision_tree.cc).
//
// Engines:
//   * exact -- pre-sorted exact greedy splits: per-feature sorted row orders
//              are computed once per FeatureColumns and walked per node with
//              an in-place stable partition, so no node ever sorts. Produces
//              bit-identical trees to the historical per-node-sort
//              implementation (same thresholds, same tie-breaks). Default.
//   * hist  -- LightGBM-style histogram splits: quantile-binned feature
//              codes built once per fit, per-node histogram accumulation
//              through the kernels::HistAccumulate backend entry, and the
//              sibling-subtraction trick (parent minus smaller child gives
//              the larger child's histogram for free). O(bins) per split
//              instead of O(rows); thresholds snap to bin edges, so trees
//              differ from exact mode like any other hyperparameter change.
//
// Selection mirrors the TG_ISA discipline: the first DefaultTreeEngine()
// call reads TG_TREE ({exact, hist}; unset/empty means exact) and an unknown
// value is a hard error -- a forced knob that silently fell back would
// invalidate whatever the caller was trying to measure or reproduce.
#ifndef TG_ML_TREE_ENGINE_H_
#define TG_ML_TREE_ENGINE_H_

namespace tg::ml {

enum class TreeEngine { kExact, kHist };

// Per-config override; kAuto defers to the process-wide default (TG_TREE).
enum class TreeEngineChoice { kAuto, kExact, kHist };

// The process-wide default engine: resolved from TG_TREE on first call,
// overridable at runtime (tests, benches) with SetDefaultTreeEngine.
TreeEngine DefaultTreeEngine();
void SetDefaultTreeEngine(TreeEngine engine);

// kAuto -> DefaultTreeEngine(), otherwise the forced choice.
TreeEngine ResolveTreeEngine(TreeEngineChoice choice);

const char* TreeEngineName(TreeEngine engine);

}  // namespace tg::ml

#endif  // TG_ML_TREE_ENGINE_H_
