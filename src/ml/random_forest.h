// Random forest regressor: bagged CART trees with per-split feature
// subsampling. Paper §VI-C settings: 100 trees, max depth 5.
#ifndef TG_ML_RANDOM_FOREST_H_
#define TG_ML_RANDOM_FOREST_H_

#include <string>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/tabular.h"

namespace tg::ml {

struct RandomForestConfig {
  int num_trees = 100;
  TreeConfig tree = {.max_depth = 5, .min_samples_leaf = 2,
                     .min_samples_split = 4, .max_features = 0};
  // Fraction of features considered at each split; 1/3 is the regression
  // default. Overridden by tree.max_features when that is nonzero.
  double feature_fraction = 1.0 / 3.0;
  uint64_t seed = 17;
};

class RandomForest : public Regressor {
 public:
  explicit RandomForest(const RandomForestConfig& config = {})
      : config_(config) {}

  Status Fit(const TabularDataset& data) override;
  double Predict(const std::vector<double>& row) const override;
  std::string name() const override { return "RF"; }
  // Mean variance reduction per feature across trees, normalized to sum 1.
  std::vector<double> FeatureImportances() const override;

  size_t num_trees() const { return trees_.size(); }

 private:
  RandomForestConfig config_;
  std::vector<DecisionTree> trees_;
};

}  // namespace tg::ml

#endif  // TG_ML_RANDOM_FOREST_H_
