#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace tg::ml {

Status RandomForest::Fit(const TabularDataset& data) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (data.y.size() != data.num_rows()) {
    return Status::InvalidArgument("target size mismatch");
  }
  trees_.clear();
  trees_.reserve(static_cast<size_t>(config_.num_trees));

  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features == 0) {
    tree_config.max_features = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(config_.feature_fraction *
                                         static_cast<double>(
                                             data.num_features()))));
  }

  Rng rng(config_.seed);
  const size_t n = data.num_rows();
  std::vector<size_t> bootstrap(n);
  for (int t = 0; t < config_.num_trees; ++t) {
    for (size_t i = 0; i < n; ++i) {
      bootstrap[i] = static_cast<size_t>(rng.NextBelow(n));
    }
    DecisionTree tree(tree_config);
    tree.Fit(data.x, data.y, bootstrap, &rng);
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

std::vector<double> RandomForest::FeatureImportances() const {
  if (trees_.empty()) return {};
  std::vector<double> total(trees_.front().feature_gains().size(), 0.0);
  for (const DecisionTree& tree : trees_) {
    const auto& gains = tree.feature_gains();
    for (size_t f = 0; f < total.size(); ++f) total[f] += gains[f];
  }
  double sum = 0.0;
  for (double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

double RandomForest::Predict(const std::vector<double>& row) const {
  TG_CHECK_MSG(!trees_.empty(), "Predict before Fit");
  double acc = 0.0;
  for (const DecisionTree& tree : trees_) acc += tree.Predict(row);
  return acc / static_cast<double>(trees_.size());
}

}  // namespace tg::ml
