#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tg::ml {

Status RandomForest::Fit(const TabularDataset& data) {
  TG_TRACE_SPAN("forest_fit");
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (data.y.size() != data.num_rows()) {
    return Status::InvalidArgument("target size mismatch");
  }
  trees_.clear();
  trees_.reserve(static_cast<size_t>(config_.num_trees));

  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features == 0) {
    tree_config.max_features = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(config_.feature_fraction *
                                         static_cast<double>(
                                             data.num_features()))));
  }

  // Trees are independent given their own random stream: tree t draws its
  // bootstrap sample and split-feature subsets from Fork(t) of the config
  // seed, so the fitted forest is bit-identical for any thread count.
  //
  // The column-major feature copy is built once and shared read-only by
  // every tree, together with the split engine's per-dataset side structure:
  // the (value, row index) sorted orders for the exact engine, or the
  // quantile bin edges + codes for the hist engine (TG_TREE / tree_engine.h).
  // Building them here, before the parallel loop, keeps the shared object
  // immutable under the per-tree fits.
  const Rng base_rng(config_.seed);
  const size_t n = data.num_rows();
  FeatureColumns columns(data.x);
  if (ResolveTreeEngine(tree_config.engine) == TreeEngine::kExact) {
    columns.EnsureSortedOrders();
  } else {
    columns.EnsureHistBins(tree_config.max_bins);
  }
  trees_.resize(static_cast<size_t>(config_.num_trees),
                DecisionTree(tree_config));
  // Work estimate: each tree visits ~n bootstrap rows per level; tiny fits
  // (unit tests, few rows) run inline rather than paying pool dispatch.
  const size_t estimated_work = static_cast<size_t>(config_.num_trees) * n;
  ParallelForIfWorth(0, static_cast<size_t>(config_.num_trees), 1,
                     estimated_work,
                     [&](size_t begin, size_t end, size_t /*chunk*/) {
                       std::vector<size_t> bootstrap(n);
                       for (size_t t = begin; t < end; ++t) {
                         Rng tree_rng = base_rng.Fork(t);
                         for (size_t i = 0; i < n; ++i) {
                           bootstrap[i] =
                               static_cast<size_t>(tree_rng.NextBelow(n));
                         }
                         trees_[t].Fit(columns, data.y, bootstrap, &tree_rng);
                       }
                     });
  return Status::OK();
}

std::vector<double> RandomForest::FeatureImportances() const {
  if (trees_.empty()) return {};
  std::vector<double> total(trees_.front().feature_gains().size(), 0.0);
  for (const DecisionTree& tree : trees_) {
    const auto& gains = tree.feature_gains();
    for (size_t f = 0; f < total.size(); ++f) total[f] += gains[f];
  }
  double sum = 0.0;
  for (double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

double RandomForest::Predict(const std::vector<double>& row) const {
  TG_CHECK_MSG(!trees_.empty(), "Predict before Fit");
  double acc = 0.0;
  for (const DecisionTree& tree : trees_) acc += tree.Predict(row);
  return acc / static_cast<double>(trees_.size());
}

}  // namespace tg::ml
