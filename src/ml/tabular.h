// Tabular training data and the common Regressor interface for the
// prediction models (paper §VI-C: linear regression, random forest, XGBoost).
#ifndef TG_ML_TABULAR_H_
#define TG_ML_TABULAR_H_

#include <string>
#include <vector>

#include "numeric/matrix.h"
#include "util/status.h"

namespace tg::ml {

struct TabularDataset {
  Matrix x;                               // n x d feature matrix
  std::vector<double> y;                  // n targets
  std::vector<std::string> feature_names;  // optional, size d when present

  size_t num_rows() const { return x.rows(); }
  size_t num_features() const { return x.cols(); }
};

// Per-column standardization (z-score); constant columns pass through.
class Standardizer {
 public:
  void Fit(const Matrix& x);
  Matrix Transform(const Matrix& x) const;
  std::vector<double> TransformRow(const std::vector<double>& row) const;
  bool fitted() const { return !mean_.empty(); }

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual Status Fit(const TabularDataset& data) = 0;
  virtual double Predict(const std::vector<double>& row) const = 0;

  std::vector<double> PredictBatch(const Matrix& x) const;

  // Name for reports, e.g. "LR", "RF", "XGB".
  virtual std::string name() const = 0;

  // Per-feature importance scores (sum 1 when non-empty). Empty when the
  // model does not provide importances or has not been fitted.
  virtual std::vector<double> FeatureImportances() const { return {}; }
};

// Root mean squared error of predictions against targets.
double Rmse(const std::vector<double>& predictions,
            const std::vector<double>& targets);

// Coefficient of determination.
double RSquared(const std::vector<double>& predictions,
                const std::vector<double>& targets);

}  // namespace tg::ml

#endif  // TG_ML_TABULAR_H_
