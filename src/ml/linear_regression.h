// Ridge linear regression fitted by normal equations (Cholesky). Features
// are standardized internally; the intercept is unpenalized (handled by
// fitting on centered targets).
#ifndef TG_ML_LINEAR_REGRESSION_H_
#define TG_ML_LINEAR_REGRESSION_H_

#include <string>
#include <vector>

#include "ml/tabular.h"

namespace tg::ml {

class LinearRegression : public Regressor {
 public:
  explicit LinearRegression(double ridge_lambda = 1e-3)
      : lambda_(ridge_lambda) {}

  Status Fit(const TabularDataset& data) override;
  double Predict(const std::vector<double>& row) const override;
  std::string name() const override { return "LR"; }
  // |coefficient| in the standardized feature space, sum-normalized.
  std::vector<double> FeatureImportances() const override;

  const std::vector<double>& coefficients() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  double lambda_;
  Standardizer standardizer_;
  std::vector<double> weights_;  // in standardized feature space
  double intercept_ = 0.0;
};

}  // namespace tg::ml

#endif  // TG_ML_LINEAR_REGRESSION_H_
