#include "ml/binning.h"

#include <algorithm>

namespace tg::ml {

std::vector<double> ComputeBinEdges(const double* values_in, size_t n,
                                    int max_bins) {
  std::vector<double> values(values_in, values_in + n);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());

  std::vector<double> edges;
  const size_t distinct = values.size();
  if (distinct <= 1) return edges;
  const size_t num_edges =
      std::min<size_t>(static_cast<size_t>(max_bins) - 1, distinct - 1);
  edges.reserve(num_edges);
  for (size_t i = 1; i <= num_edges; ++i) {
    // Boundary between quantile blocks; midpoint keeps Predict consistent
    // with raw values.
    const size_t idx = i * distinct / (num_edges + 1);
    const size_t lo = idx > 0 ? idx - 1 : 0;
    edges.push_back(0.5 * (values[lo] + values[std::min(idx, distinct - 1)]));
  }
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

uint16_t BinOf(double value, const std::vector<double>& edges) {
  const auto it = std::lower_bound(edges.begin(), edges.end(), value);
  return static_cast<uint16_t>(it - edges.begin());
}

}  // namespace tg::ml
