#include "ml/linear_regression.h"

#include <cmath>

#include "numeric/linalg.h"
#include "numeric/stats.h"

namespace tg::ml {

Status LinearRegression::Fit(const TabularDataset& data) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (data.y.size() != data.num_rows()) {
    return Status::InvalidArgument("target size mismatch");
  }
  standardizer_.Fit(data.x);
  Matrix xs = standardizer_.Transform(data.x);
  const double y_mean = Mean(data.y);
  std::vector<double> centered(data.y.size());
  for (size_t i = 0; i < data.y.size(); ++i) centered[i] = data.y[i] - y_mean;

  Result<Matrix> w =
      RidgeSolve(xs, Matrix::ColumnVector(centered), lambda_);
  if (!w.ok()) return w.status();

  weights_.resize(data.num_features());
  for (size_t c = 0; c < weights_.size(); ++c) weights_[c] = w.value()(c, 0);
  intercept_ = y_mean;
  return Status::OK();
}

std::vector<double> LinearRegression::FeatureImportances() const {
  if (weights_.empty()) return {};
  std::vector<double> out(weights_.size());
  double sum = 0.0;
  for (size_t c = 0; c < weights_.size(); ++c) {
    out[c] = std::fabs(weights_[c]);
    sum += out[c];
  }
  if (sum > 0.0) {
    for (double& v : out) v /= sum;
  }
  return out;
}

double LinearRegression::Predict(const std::vector<double>& row) const {
  TG_CHECK_MSG(standardizer_.fitted(), "Predict before Fit");
  std::vector<double> z = standardizer_.TransformRow(row);
  double acc = intercept_;
  for (size_t c = 0; c < weights_.size(); ++c) acc += weights_[c] * z[c];
  return acc;
}

}  // namespace tg::ml
