// CART regression tree with exact greedy splits (variance reduction),
// the base learner for the random forest.
#ifndef TG_ML_DECISION_TREE_H_
#define TG_ML_DECISION_TREE_H_

#include <cstddef>
#include <vector>

#include "numeric/matrix.h"
#include "util/rng.h"

namespace tg::ml {

// Column-major copy of a feature matrix: Column(f)[r] == x(r, f). Split
// search scans one feature at a time across many rows, so the column layout
// turns the per-(node, feature) gather from a cols()-strided walk over the
// row-major matrix into reads within one contiguous column that usually fits
// in L1/L2. Build it once and share it read-only across trees (the forest
// does); the values are the same doubles, so fitted trees are bit-identical
// to fitting against the matrix directly.
class FeatureColumns {
 public:
  explicit FeatureColumns(const Matrix& x);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  const double* Column(size_t f) const {
    TG_CHECK_LT(f, cols_);
    return data_.data() + f * rows_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double, AlignedAllocator<double, 64>> data_;
};

struct TreeConfig {
  int max_depth = 5;
  size_t min_samples_leaf = 1;
  size_t min_samples_split = 2;
  // Number of candidate features per split; 0 means all features.
  size_t max_features = 0;
};

class DecisionTree {
 public:
  explicit DecisionTree(const TreeConfig& config) : config_(config) {}

  // Fits on the rows of x selected by `rows` (with multiplicity, enabling
  // bootstrap samples). `rng` drives feature subsampling; may be null when
  // max_features == 0. The Matrix form builds a FeatureColumns internally;
  // callers fitting many trees on the same data (RandomForest) pass a shared
  // prebuilt one instead. Both produce bit-identical trees.
  void Fit(const Matrix& x, const std::vector<double>& y,
           const std::vector<size_t>& rows, Rng* rng);
  void Fit(const FeatureColumns& columns, const std::vector<double>& y,
           const std::vector<size_t>& rows, Rng* rng);

  double Predict(const std::vector<double>& row) const;
  double Predict(const double* row) const;

  size_t num_nodes() const { return nodes_.size(); }
  int MaxDepthReached() const;

  // Total variance reduction attributed to each feature (unnormalized);
  // empty before Fit.
  const std::vector<double>& feature_gains() const { return feature_gains_; }

 private:
  struct TreeNode {
    bool is_leaf = true;
    double value = 0.0;     // leaf prediction (mean target)
    size_t feature = 0;     // split feature (internal nodes)
    double threshold = 0.0;  // go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    int depth = 0;
  };

  int BuildNode(const FeatureColumns& columns, const std::vector<double>& y,
                std::vector<size_t>* rows, size_t begin, size_t end,
                int depth, Rng* rng);

  TreeConfig config_;
  std::vector<TreeNode> nodes_;
  std::vector<double> feature_gains_;
};

}  // namespace tg::ml

#endif  // TG_ML_DECISION_TREE_H_
