// CART regression tree with variance-reduction splits, the base learner for
// the random forest. Split search runs on one of two engines
// (ml/tree_engine.h):
//
//   * kExact (default) -- pre-sorted exact greedy splits. Instead of the
//     classic per-node std::sort of (value, y) pairs, each feature's row
//     order is sorted ONCE per FeatureColumns (by an explicit
//     (value, row index) key) and every node walks its contiguous segment of
//     those order lists, partitioning them stably into the children. The
//     boundaries evaluated, the accumulation order of every partial sum, and
//     the tie-breaks are arranged to reproduce the per-node-sort formulation
//     EXACTLY, so fitted trees are bit-identical to the historical
//     implementation while skipping the O(n log n) factor per node.
//   * kHist -- LightGBM-style histogram splits. Feature values are quantile-
//     binned once per FeatureColumns into uint8/uint16 codes; each node
//     accumulates per-feature (sum_y, count) histograms with the
//     kernels::HistAccumulate backend kernel and scans O(bins) boundaries
//     instead of O(n). A node builds only its smaller child's histogram and
//     derives the larger by subtracting from the parent's. Thresholds stay
//     raw-value midpoints, so Predict needs no binning. Trees are not
//     bit-identical to kExact (boundaries are quantized) but draw the same
//     RNG stream, so switching engines never perturbs sibling trees.
#ifndef TG_ML_DECISION_TREE_H_
#define TG_ML_DECISION_TREE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ml/tree_engine.h"
#include "numeric/matrix.h"
#include "util/rng.h"

namespace tg::ml {

// Column-major copy of a feature matrix: Column(f)[r] == x(r, f). Split
// search scans one feature at a time across many rows, so the column layout
// turns the per-(node, feature) gather from a cols()-strided walk over the
// row-major matrix into reads within one contiguous column that usually fits
// in L1/L2. Build it once and share it read-only across trees (the forest
// does); the values are the same doubles, so fitted trees are bit-identical
// to fitting against the matrix directly.
//
// The split engines need per-fit-invariant side structures: call
// EnsureSortedOrders() (exact engine) and/or EnsureHistBins() (hist engine)
// BEFORE sharing the object read-only across threads -- DecisionTree::Fit
// checks they exist rather than building them lazily, precisely so a shared
// const FeatureColumns is never mutated under a parallel fit.
class FeatureColumns {
 public:
  explicit FeatureColumns(const Matrix& x);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  const double* Column(size_t f) const {
    TG_CHECK_LT(f, cols_);
    return data_.data() + f * rows_;
  }

  // Exact engine: for each feature, the row indices sorted by the explicit
  // key (value, row index). The secondary key makes equal-value runs a
  // deterministic function of the data alone, independent of std::sort
  // implementation details. Idempotent.
  void EnsureSortedOrders();
  bool has_sorted_orders() const { return orders_built_; }
  const uint32_t* SortedOrder(size_t f) const {
    TG_CHECK_LT(f, cols_);
    TG_CHECK(has_sorted_orders());
    return sorted_.data() + f * rows_;
  }

  // Hist engine: quantile bin edges (ml/binning.h) plus per-row bin codes
  // for each feature. Codes are uint8 when max_bins <= 256 (one byte per
  // row per feature keeps node histogram builds cache-resident), uint16
  // otherwise. Idempotent for a fixed max_bins; calling again with a
  // different max_bins is a hard error.
  void EnsureHistBins(int max_bins);
  bool has_hist_bins() const { return hist_max_bins_ != 0; }
  int hist_max_bins() const { return hist_max_bins_; }
  bool codes_are_u8() const { return !codes8_.empty() || rows_ == 0; }
  const std::vector<double>& BinEdges(size_t f) const {
    TG_CHECK_LT(f, edges_.size());
    return edges_[f];
  }
  // Bins per feature: edges partition values into edges.size() + 1 buckets.
  size_t NumBins(size_t f) const { return BinEdges(f).size() + 1; }
  const uint8_t* BinCodes8(size_t f) const {
    TG_CHECK_LT(f, cols_);
    return codes8_.data() + f * rows_;
  }
  const uint16_t* BinCodes16(size_t f) const {
    TG_CHECK_LT(f, cols_);
    return codes16_.data() + f * rows_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double, AlignedAllocator<double, 64>> data_;
  // Exact engine side structure (EnsureSortedOrders): cols_ blocks of rows_.
  bool orders_built_ = false;
  std::vector<uint32_t> sorted_;
  // Hist engine side structures (EnsureHistBins).
  int hist_max_bins_ = 0;
  std::vector<std::vector<double>> edges_;
  std::vector<uint8_t, AlignedAllocator<uint8_t, 64>> codes8_;
  std::vector<uint16_t, AlignedAllocator<uint16_t, 64>> codes16_;
};

struct TreeConfig {
  int max_depth = 5;
  size_t min_samples_leaf = 1;
  size_t min_samples_split = 2;
  // Number of candidate features per split; 0 means all features.
  size_t max_features = 0;
  // Split-search engine; kAuto resolves through TG_TREE (tree_engine.h).
  TreeEngineChoice engine = TreeEngineChoice::kAuto;
  // Hist engine only: histogram resolution per feature.
  int max_bins = 256;
};

class DecisionTree {
 public:
  explicit DecisionTree(const TreeConfig& config) : config_(config) {}

  // Fits on the rows of x selected by `rows` (with multiplicity, enabling
  // bootstrap samples). `rng` drives feature subsampling; may be null when
  // max_features == 0. The Matrix form builds a FeatureColumns (plus the
  // engine's side structure) internally; callers fitting many trees on the
  // same data (RandomForest) pass a shared prebuilt one instead -- with
  // EnsureSortedOrders()/EnsureHistBins() already called for the resolved
  // engine. Both forms produce bit-identical trees.
  void Fit(const Matrix& x, const std::vector<double>& y,
           const std::vector<size_t>& rows, Rng* rng);
  void Fit(const FeatureColumns& columns, const std::vector<double>& y,
           const std::vector<size_t>& rows, Rng* rng);

  double Predict(const std::vector<double>& row) const;
  double Predict(const double* row) const;

  size_t num_nodes() const { return nodes_.size(); }
  int MaxDepthReached() const;

  // Total variance reduction attributed to each feature (unnormalized);
  // empty before Fit.
  const std::vector<double>& feature_gains() const { return feature_gains_; }

  // One line per node ("<i>: leaf value=..." / "<i>: f=... t=... l=... r=..."
  // with %.17g doubles): byte-equal iff the trees are bit-identical. Golden
  // tests diff this against a reference fit.
  std::string DebugString() const;

 private:
  struct TreeNode {
    bool is_leaf = true;
    double value = 0.0;     // leaf prediction (mean target)
    size_t feature = 0;     // split feature (internal nodes)
    double threshold = 0.0;  // go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    int depth = 0;
  };

  struct ExactContext;
  struct HistContext;

  int BuildExactNode(ExactContext* ctx, size_t begin, size_t end, int depth);
  int BuildHistNode(HistContext* ctx, size_t begin, size_t end, int depth,
                    double* hist);

  TreeConfig config_;
  std::vector<TreeNode> nodes_;
  std::vector<double> feature_gains_;
};

}  // namespace tg::ml

#endif  // TG_ML_DECISION_TREE_H_
