#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>

#include "ml/binning.h"
#include "numeric/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace tg::ml {
namespace {

struct SplitCandidate {
  bool found = false;
  size_t feature = 0;
  double threshold = 0.0;
  double score = -std::numeric_limits<double>::infinity();
};

// Per-fit instrumentation, flushed once per tree (not per node) so the hot
// recursion pays one local increment per event.
void BumpTreeCounters(uint64_t split_evals, uint64_t hist_builds) {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter& eval_counter =
      obs::MetricsRegistry::Instance().GetCounter("tree.split_evaluations");
  static obs::Counter& hist_counter =
      obs::MetricsRegistry::Instance().GetCounter("tree.hist_builds");
  if (split_evals != 0) eval_counter.Increment(split_evals);
  if (hist_builds != 0) hist_counter.Increment(hist_builds);
}

}  // namespace

FeatureColumns::FeatureColumns(const Matrix& x)
    : rows_(x.rows()), cols_(x.cols()), data_(x.rows() * x.cols()) {
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = x.RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) data_[c * rows_ + r] = row[c];
  }
}

void FeatureColumns::EnsureSortedOrders() {
  if (orders_built_) return;
  TG_TRACE_SPAN("order_build");
  TG_CHECK_LE(rows_, static_cast<size_t>(UINT32_MAX));
  sorted_.resize(cols_ * rows_);
  for (size_t f = 0; f < cols_; ++f) {
    uint32_t* ord = sorted_.data() + f * rows_;
    std::iota(ord, ord + rows_, 0u);
    const double* col = Column(f);
    // Explicit (value, row index) key: equal-value runs are ordered by row
    // index, a deterministic function of the data alone -- never of
    // std::sort's internal choices.
    std::sort(ord, ord + rows_, [col](uint32_t a, uint32_t b) {
      if (col[a] != col[b]) return col[a] < col[b];
      return a < b;
    });
  }
  orders_built_ = true;
}

void FeatureColumns::EnsureHistBins(int max_bins) {
  TG_CHECK_GT(max_bins, 1);
  TG_CHECK_LE(max_bins, 65536);
  if (hist_max_bins_ != 0) {
    TG_CHECK_EQ(hist_max_bins_, max_bins);
    return;
  }
  TG_TRACE_SPAN("bin_build");
  edges_.resize(cols_);
  const bool u8 = max_bins <= 256;
  if (u8) {
    codes8_.resize(cols_ * rows_);
  } else {
    codes16_.resize(cols_ * rows_);
  }
  for (size_t f = 0; f < cols_; ++f) {
    const double* col = Column(f);
    edges_[f] = ComputeBinEdges(col, rows_, max_bins);
    if (u8) {
      uint8_t* codes = codes8_.data() + f * rows_;
      for (size_t r = 0; r < rows_; ++r) {
        codes[r] = static_cast<uint8_t>(BinOf(col[r], edges_[f]));
      }
    } else {
      uint16_t* codes = codes16_.data() + f * rows_;
      for (size_t r = 0; r < rows_; ++r) codes[r] = BinOf(col[r], edges_[f]);
    }
  }
  hist_max_bins_ = max_bins;
}

// --- Exact pre-sorted engine -------------------------------------------------

// Per-fit state for the exact engine. `order` holds, for every feature, this
// fit's row multiset sorted by (value, row index) -- expanded once from the
// FeatureColumns global orders, then stably partitioned into the children at
// each split, so no node ever sorts anything.
struct DecisionTree::ExactContext {
  const FeatureColumns& columns;
  const std::vector<double>& y;
  std::vector<size_t>* rows;  // node-major working segments (seed layout)
  Rng* rng;
  size_t n = 0;                  // rows->size()
  std::vector<uint32_t> order;   // columns.cols() blocks of n
  std::vector<uint32_t> scratch; // n, right half of the stable partition
  std::vector<double> tie_y;     // equal-value run gather buffer
  std::vector<uint8_t> side;     // columns.rows(), split side per row id
  uint64_t split_evals = 0;
};

int DecisionTree::BuildExactNode(ExactContext* ctx, size_t begin, size_t end,
                                 int depth) {
  const FeatureColumns& columns = ctx->columns;
  const std::vector<double>& y = ctx->y;
  std::vector<size_t>& rows = *ctx->rows;
  const size_t n = end - begin;
  TG_CHECK_GT(n, 0u);

  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    sum += y[rows[i]];
    sum_sq += y[rows[i]] * y[rows[i]];
  }
  const double mean = sum / static_cast<double>(n);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].value = mean;
  nodes_[node_index].depth = depth;

  const double node_impurity =
      sum_sq - sum * sum / static_cast<double>(n);  // n * variance
  if (depth >= config_.max_depth || n < config_.min_samples_split ||
      node_impurity <= 1e-12) {
    return node_index;
  }

  // Candidate features (all, or a random subset per split as in RF).
  std::vector<size_t> features;
  if (config_.max_features == 0 || config_.max_features >= columns.cols()) {
    features.resize(columns.cols());
    std::iota(features.begin(), features.end(), 0);
  } else {
    TG_CHECK(ctx->rng != nullptr);
    features = ctx->rng->SampleWithoutReplacement(columns.cols(),
                                                  config_.max_features);
  }

  SplitCandidate best;
  {
    TG_TRACE_SPAN("split_search");
    for (size_t f : features) {
      const double* col = columns.Column(f);
      const uint32_t* seg = ctx->order.data() + f * ctx->n + begin;
      // Walk the pre-sorted segment run by run. Within an equal-value run
      // the y values are accumulated in ascending order: together with the
      // run-end boundaries this reproduces the historical per-node
      // std::sort of (value, y) pairs addition-for-addition, so scores,
      // thresholds and tie-breaks are bit-identical to the sorting
      // formulation.
      double left_sum = 0.0;
      size_t i = 0;
      while (i < n) {
        const double v = col[seg[i]];
        size_t j = i + 1;
        while (j < n && col[seg[j]] == v) ++j;
        if (j == i + 1) {
          left_sum += y[seg[i]];
        } else {
          ctx->tie_y.clear();
          for (size_t k = i; k < j; ++k) ctx->tie_y.push_back(y[seg[k]]);
          std::sort(ctx->tie_y.begin(), ctx->tie_y.end());
          for (double ty : ctx->tie_y) left_sum += ty;
        }
        if (j < n) {  // boundary between distinct feature values
          const size_t n_left = j;
          const size_t n_right = n - n_left;
          if (n_left >= config_.min_samples_leaf &&
              n_right >= config_.min_samples_leaf) {
            ++ctx->split_evals;
            const double right_sum = sum - left_sum;
            // Variance reduction is monotone in this score.
            const double score =
                left_sum * left_sum / static_cast<double>(n_left) +
                right_sum * right_sum / static_cast<double>(n_right);
            if (score > best.score) {
              best.found = true;
              best.score = score;
              best.feature = f;
              best.threshold = 0.5 * (v + col[seg[j]]);
            }
          }
        }
        i = j;
      }
    }
  }
  if (!best.found) return node_index;
  // Variance reduction of the chosen split, attributed to its feature.
  feature_gains_[best.feature] +=
      std::max(best.score - sum * sum / static_cast<double>(n), 0.0);

  // Split side per row id, computed once; every partition below reads the
  // one-byte flag instead of re-comparing the column.
  const double* best_col = columns.Column(best.feature);
  for (size_t i = begin; i < end; ++i) {
    const size_t r = rows[i];
    ctx->side[r] = best_col[r] <= best.threshold ? 1 : 0;
  }

  // Partition the working rows in place around the threshold -- the exact
  // std::partition the seed formulation used, so the children's accumulation
  // order (and thus every leaf mean) is unchanged.
  auto middle = std::partition(rows.begin() + static_cast<long>(begin),
                               rows.begin() + static_cast<long>(end),
                               [&](size_t r) { return ctx->side[r] != 0; });
  const size_t mid = static_cast<size_t>(middle - rows.begin());
  TG_CHECK_GT(mid, begin);
  TG_CHECK_LT(mid, end);

  // Stable two-pass partition of every feature's order segment: left-going
  // entries compact forward, right-going pass through the scratch buffer.
  // Stability preserves the (value, row index) sortedness in both children.
  // Both stores are unconditional (the cursor that should not advance just
  // overwrites its own slot next iteration): the split side is close to a
  // coin flip per element, so a branchy version eats a mispredict on most of
  // the d * n entries moved per node.
  const size_t n_left = mid - begin;
  const uint8_t* side = ctx->side.data();
  for (size_t f = 0; f < columns.cols(); ++f) {
    uint32_t* seg = ctx->order.data() + f * ctx->n + begin;
    uint32_t* scratch = ctx->scratch.data();
    size_t out = 0;
    size_t sc = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint32_t r = seg[i];
      const uint8_t s = side[r];
      seg[out] = r;
      scratch[sc] = r;
      out += s;
      sc += static_cast<size_t>(1) - s;
    }
    TG_CHECK_EQ(out, n_left);
    std::copy(scratch, scratch + sc, seg + out);
  }

  const int left = BuildExactNode(ctx, begin, mid, depth + 1);
  const int right = BuildExactNode(ctx, mid, end, depth + 1);
  nodes_[node_index].is_leaf = false;
  nodes_[node_index].feature = best.feature;
  nodes_[node_index].threshold = best.threshold;
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

// --- Histogram engine --------------------------------------------------------

// Per-fit state for the hist engine. A node's histogram is one buffer of
// 2 * total_bins doubles: per-feature bin ranges (offsets) of y-sums first,
// then the matching counts. Buffers are recycled through a free list, so at
// most O(max_depth) of them are ever live.
struct DecisionTree::HistContext {
  const FeatureColumns& columns;
  const std::vector<double>& y;
  std::vector<size_t>* rows;
  Rng* rng;
  std::vector<size_t> offsets;  // per-feature bin offset; size cols() + 1
  size_t total_bins = 0;
  std::vector<std::vector<double>> pool;
  std::vector<double*> free_list;
  std::vector<uint8_t> side;  // columns.rows(), split side per row id
  uint64_t split_evals = 0;
  uint64_t hist_builds = 0;

  double* Acquire() {
    if (!free_list.empty()) {
      double* b = free_list.back();
      free_list.pop_back();
      return b;
    }
    pool.emplace_back(2 * total_bins);
    return pool.back().data();
  }
  void Release(double* b) { free_list.push_back(b); }

  // Accumulates this node's per-feature (sum_y, count) histograms over the
  // row segment via the backend hist_accumulate kernel (bit-identical across
  // backends -- the scatter adds stay in index order everywhere).
  void BuildHistogram(size_t begin, size_t end, double* hist) {
    std::fill(hist, hist + 2 * total_bins, 0.0);
    const size_t* seg = rows->data() + begin;
    const size_t n = end - begin;
    const bool u8 = columns.codes_are_u8();
    for (size_t f = 0; f < columns.cols(); ++f) {
      double* sums = hist + offsets[f];
      double* counts = hist + total_bins + offsets[f];
      if (u8) {
        kernels::HistAccumulate(columns.BinCodes8(f), seg, n, y.data(), sums,
                                counts);
      } else {
        kernels::HistAccumulate(columns.BinCodes16(f), seg, n, y.data(), sums,
                                counts);
      }
    }
    ++hist_builds;
  }
};

int DecisionTree::BuildHistNode(HistContext* ctx, size_t begin, size_t end,
                                int depth, double* hist) {
  const FeatureColumns& columns = ctx->columns;
  const std::vector<double>& y = ctx->y;
  std::vector<size_t>& rows = *ctx->rows;
  const size_t n = end - begin;
  TG_CHECK_GT(n, 0u);

  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    sum += y[rows[i]];
    sum_sq += y[rows[i]] * y[rows[i]];
  }
  const double mean = sum / static_cast<double>(n);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].value = mean;
  nodes_[node_index].depth = depth;

  const double node_impurity = sum_sq - sum * sum / static_cast<double>(n);
  if (depth >= config_.max_depth || n < config_.min_samples_split ||
      node_impurity <= 1e-12) {
    ctx->Release(hist);
    return node_index;
  }

  std::vector<size_t> features;
  if (config_.max_features == 0 || config_.max_features >= columns.cols()) {
    features.resize(columns.cols());
    std::iota(features.begin(), features.end(), 0);
  } else {
    TG_CHECK(ctx->rng != nullptr);
    features = ctx->rng->SampleWithoutReplacement(columns.cols(),
                                                  config_.max_features);
  }

  // O(bins) boundary scan per sampled feature. Histograms exist for every
  // feature (the sibling subtraction needs them), but only the sampled
  // subset is scanned, so the feature-sampling RNG stream matches the exact
  // engine call for call.
  SplitCandidate best;
  {
    TG_TRACE_SPAN("split_search");
    for (size_t f : features) {
      const std::vector<double>& edges = columns.BinEdges(f);
      if (edges.empty()) continue;  // constant feature
      const size_t nb = edges.size() + 1;
      const double* sums = hist + ctx->offsets[f];
      const double* counts = hist + ctx->total_bins + ctx->offsets[f];
      double left_sum = 0.0;
      double left_cnt = 0.0;
      for (size_t b = 0; b + 1 < nb; ++b) {
        left_sum += sums[b];
        left_cnt += counts[b];
        // Counts are exact small integers (each row contributes 1.0 once).
        const size_t n_left = static_cast<size_t>(left_cnt);
        const size_t n_right = n - n_left;
        if (n_left == 0 || n_right == 0) continue;
        if (n_left < config_.min_samples_leaf ||
            n_right < config_.min_samples_leaf) {
          continue;
        }
        ++ctx->split_evals;
        const double right_sum = sum - left_sum;
        const double score =
            left_sum * left_sum / static_cast<double>(n_left) +
            right_sum * right_sum / static_cast<double>(n_right);
        if (score > best.score) {
          best.found = true;
          best.score = score;
          best.feature = f;
          // Raw-value threshold (the bin's upper edge): v <= edges[b] holds
          // exactly when BinOf(v) <= b, so Predict needs no binning.
          best.threshold = edges[b];
        }
      }
    }
  }
  if (!best.found) {
    ctx->Release(hist);
    return node_index;
  }
  feature_gains_[best.feature] +=
      std::max(best.score - sum * sum / static_cast<double>(n), 0.0);

  const double* best_col = columns.Column(best.feature);
  for (size_t i = begin; i < end; ++i) {
    const size_t r = rows[i];
    ctx->side[r] = best_col[r] <= best.threshold ? 1 : 0;
  }
  auto middle = std::partition(rows.begin() + static_cast<long>(begin),
                               rows.begin() + static_cast<long>(end),
                               [&](size_t r) { return ctx->side[r] != 0; });
  const size_t mid = static_cast<size_t>(middle - rows.begin());
  TG_CHECK_GT(mid, begin);
  TG_CHECK_LT(mid, end);

  // Sibling subtraction: accumulate only the smaller child's histogram and
  // derive the larger one by subtracting it from the parent's, in place --
  // the parent's buffer becomes the larger child's.
  const size_t n_left_rows = mid - begin;
  const size_t n_right_rows = end - mid;
  const bool left_is_small = n_left_rows <= n_right_rows;
  double* small_hist = ctx->Acquire();
  if (left_is_small) {
    ctx->BuildHistogram(begin, mid, small_hist);
  } else {
    ctx->BuildHistogram(mid, end, small_hist);
  }
  kernels::Sub(hist, small_hist, 2 * ctx->total_bins);

  int left;
  int right;
  if (left_is_small) {
    left = BuildHistNode(ctx, begin, mid, depth + 1, small_hist);
    right = BuildHistNode(ctx, mid, end, depth + 1, hist);
  } else {
    left = BuildHistNode(ctx, begin, mid, depth + 1, hist);
    right = BuildHistNode(ctx, mid, end, depth + 1, small_hist);
  }
  nodes_[node_index].is_leaf = false;
  nodes_[node_index].feature = best.feature;
  nodes_[node_index].threshold = best.threshold;
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

// --- Fit / Predict -----------------------------------------------------------

void DecisionTree::Fit(const Matrix& x, const std::vector<double>& y,
                       const std::vector<size_t>& rows, Rng* rng) {
  FeatureColumns columns(x);
  if (ResolveTreeEngine(config_.engine) == TreeEngine::kExact) {
    columns.EnsureSortedOrders();
  } else {
    columns.EnsureHistBins(config_.max_bins);
  }
  Fit(columns, y, rows, rng);
}

void DecisionTree::Fit(const FeatureColumns& columns,
                       const std::vector<double>& y,
                       const std::vector<size_t>& rows, Rng* rng) {
  TG_TRACE_SPAN("tree_fit");
  TG_CHECK_EQ(columns.rows(), y.size());
  TG_CHECK(!rows.empty());
  nodes_.clear();
  feature_gains_.assign(columns.cols(), 0.0);
  std::vector<size_t> working = rows;
  const size_t n = working.size();
  const size_t total_rows = columns.rows();
  const TreeEngine engine = ResolveTreeEngine(config_.engine);

  if (engine == TreeEngine::kExact) {
    TG_CHECK_MSG(columns.has_sorted_orders(),
                 "exact engine requires FeatureColumns::EnsureSortedOrders() "
                 "before Fit");
    ExactContext ctx{columns, y, &working, rng};
    ctx.n = n;
    // Expand the global per-feature orders into this fit's row multiset:
    // count each row's multiplicity, then emit rows in global sorted order,
    // each repeated multiplicity times. Duplicates land adjacent, which is
    // exactly where a (value, row index) sort would place them.
    std::vector<uint32_t> mult(total_rows, 0);
    for (size_t r : working) {
      TG_CHECK_LT(r, total_rows);
      ++mult[static_cast<uint32_t>(r)];
    }
    const size_t d = columns.cols();
    // +4 slack: the expansion below stores four copies unconditionally and
    // advances by the actual multiplicity, so trailing rows of a block may
    // write up to four entries past its logical end (multiplicity 0 leaves k
    // at n while out[k..k+3] are still stored; overwritten by the next block,
    // absorbed by the slack on the last one). Bootstrap multiplicities are
    // ~Poisson(1), which makes a per-row copy loop mispredict constantly;
    // the unconditional stores cost nothing extra.
    ctx.order.resize(d * n + 4);
    for (size_t f = 0; f < d; ++f) {
      const uint32_t* global = columns.SortedOrder(f);
      uint32_t* out = ctx.order.data() + f * n;
      size_t k = 0;
      for (size_t i = 0; i < total_rows; ++i) {
        const uint32_t r = global[i];
        const uint32_t m = mult[r];
        out[k] = r;
        out[k + 1] = r;
        out[k + 2] = r;
        out[k + 3] = r;
        if (m > 4) {  // vanishingly rare for bootstrap samples
          for (uint32_t c = 4; c < m; ++c) out[k + c] = r;
        }
        k += m;
      }
      TG_CHECK_EQ(k, n);
    }
    ctx.scratch.resize(n);
    ctx.side.resize(total_rows);
    BuildExactNode(&ctx, 0, n, 0);
    BumpTreeCounters(ctx.split_evals, 0);
  } else {
    TG_CHECK_MSG(columns.has_hist_bins(),
                 "hist engine requires FeatureColumns::EnsureHistBins() "
                 "before Fit");
    HistContext ctx{columns, y, &working, rng};
    const size_t d = columns.cols();
    ctx.offsets.resize(d + 1);
    ctx.offsets[0] = 0;
    for (size_t f = 0; f < d; ++f) {
      ctx.offsets[f + 1] = ctx.offsets[f] + columns.NumBins(f);
    }
    ctx.total_bins = ctx.offsets[d];
    ctx.side.resize(total_rows);
    double* root_hist = ctx.Acquire();
    ctx.BuildHistogram(0, n, root_hist);
    BuildHistNode(&ctx, 0, n, 0, root_hist);
    BumpTreeCounters(ctx.split_evals, ctx.hist_builds);
  }
}

double DecisionTree::Predict(const std::vector<double>& row) const {
  return Predict(row.data());
}

double DecisionTree::Predict(const double* row) const {
  TG_CHECK(!nodes_.empty());
  int node = 0;
  while (!nodes_[node].is_leaf) {
    node = row[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

int DecisionTree::MaxDepthReached() const {
  int max_depth = 0;
  for (const TreeNode& node : nodes_) {
    max_depth = std::max(max_depth, node.depth);
  }
  return max_depth;
}

std::string DecisionTree::DebugString() const {
  std::string out;
  char line[192];
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& nd = nodes_[i];
    if (nd.is_leaf) {
      std::snprintf(line, sizeof(line), "%zu: leaf value=%.17g depth=%d\n", i,
                    nd.value, nd.depth);
    } else {
      std::snprintf(line, sizeof(line),
                    "%zu: f=%zu t=%.17g l=%d r=%d depth=%d\n", i, nd.feature,
                    nd.threshold, nd.left, nd.right, nd.depth);
    }
    out += line;
  }
  return out;
}

}  // namespace tg::ml
