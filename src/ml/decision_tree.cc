#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.h"

namespace tg::ml {
namespace {

struct SplitCandidate {
  bool found = false;
  size_t feature = 0;
  double threshold = 0.0;
  double score = -std::numeric_limits<double>::infinity();
};

}  // namespace

FeatureColumns::FeatureColumns(const Matrix& x)
    : rows_(x.rows()), cols_(x.cols()), data_(x.rows() * x.cols()) {
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = x.RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) data_[c * rows_ + r] = row[c];
  }
}

void DecisionTree::Fit(const Matrix& x, const std::vector<double>& y,
                       const std::vector<size_t>& rows, Rng* rng) {
  Fit(FeatureColumns(x), y, rows, rng);
}

void DecisionTree::Fit(const FeatureColumns& columns,
                       const std::vector<double>& y,
                       const std::vector<size_t>& rows, Rng* rng) {
  TG_CHECK_EQ(columns.rows(), y.size());
  TG_CHECK(!rows.empty());
  nodes_.clear();
  feature_gains_.assign(columns.cols(), 0.0);
  std::vector<size_t> working = rows;
  BuildNode(columns, y, &working, 0, working.size(), 0, rng);
}

int DecisionTree::BuildNode(const FeatureColumns& columns,
                            const std::vector<double>& y,
                            std::vector<size_t>* rows, size_t begin,
                            size_t end, int depth, Rng* rng) {
  const size_t n = end - begin;
  TG_CHECK_GT(n, 0u);

  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    sum += y[(*rows)[i]];
    sum_sq += y[(*rows)[i]] * y[(*rows)[i]];
  }
  const double mean = sum / static_cast<double>(n);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].value = mean;
  nodes_[node_index].depth = depth;

  const double node_impurity =
      sum_sq - sum * sum / static_cast<double>(n);  // n * variance
  if (depth >= config_.max_depth || n < config_.min_samples_split ||
      node_impurity <= 1e-12) {
    return node_index;
  }

  // Candidate features (all, or a random subset per split as in RF).
  std::vector<size_t> features;
  if (config_.max_features == 0 || config_.max_features >= columns.cols()) {
    features.resize(columns.cols());
    std::iota(features.begin(), features.end(), 0);
  } else {
    TG_CHECK(rng != nullptr);
    features =
        rng->SampleWithoutReplacement(columns.cols(), config_.max_features);
  }

  SplitCandidate best;
  std::vector<std::pair<double, double>> values(n);  // (feature value, y)
  for (size_t f : features) {
    const double* col = columns.Column(f);
    for (size_t i = 0; i < n; ++i) {
      const size_t r = (*rows)[begin + i];
      values[i] = {col[r], y[r]};
    }
    std::sort(values.begin(), values.end());
    // Prefix scan: evaluate every boundary between distinct feature values.
    double left_sum = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_sum += values[i].second;
      if (values[i].first == values[i + 1].first) continue;
      const size_t n_left = i + 1;
      const size_t n_right = n - n_left;
      if (n_left < config_.min_samples_leaf ||
          n_right < config_.min_samples_leaf) {
        continue;
      }
      const double right_sum = sum - left_sum;
      // Variance reduction is monotone in this score.
      const double score =
          left_sum * left_sum / static_cast<double>(n_left) +
          right_sum * right_sum / static_cast<double>(n_right);
      if (score > best.score) {
        best.found = true;
        best.score = score;
        best.feature = f;
        best.threshold = 0.5 * (values[i].first + values[i + 1].first);
      }
    }
  }
  if (!best.found) return node_index;
  // Variance reduction of the chosen split, attributed to its feature.
  feature_gains_[best.feature] +=
      std::max(best.score - sum * sum / static_cast<double>(n), 0.0);

  // Partition rows in place around the threshold.
  const double* best_col = columns.Column(best.feature);
  auto middle = std::partition(
      rows->begin() + static_cast<long>(begin),
      rows->begin() + static_cast<long>(end),
      [&](size_t r) { return best_col[r] <= best.threshold; });
  const size_t mid = static_cast<size_t>(middle - rows->begin());
  TG_CHECK_GT(mid, begin);
  TG_CHECK_LT(mid, end);

  const int left = BuildNode(columns, y, rows, begin, mid, depth + 1, rng);
  const int right = BuildNode(columns, y, rows, mid, end, depth + 1, rng);
  nodes_[node_index].is_leaf = false;
  nodes_[node_index].feature = best.feature;
  nodes_[node_index].threshold = best.threshold;
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

double DecisionTree::Predict(const std::vector<double>& row) const {
  return Predict(row.data());
}

double DecisionTree::Predict(const double* row) const {
  TG_CHECK(!nodes_.empty());
  int node = 0;
  while (!nodes_[node].is_leaf) {
    node = row[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

int DecisionTree::MaxDepthReached() const {
  int max_depth = 0;
  for (const TreeNode& node : nodes_) {
    max_depth = std::max(max_depth, node.depth);
  }
  return max_depth;
}

}  // namespace tg::ml
