// Quantile feature binning shared by the histogram GBDT (gbdt.cc) and the
// decision tree's histogram split engine (decision_tree.cc, TG_TREE=hist).
// Extracted verbatim from the GBDT so both produce identical bin boundaries.
#ifndef TG_ML_BINNING_H_
#define TG_ML_BINNING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tg::ml {

// Per-feature quantile bin edges over `values[0..n)`; value v falls in the
// first bin b with v <= edges[b], or in the final overflow bin. Empty when
// the column is constant (nothing to split on). At most max_bins - 1 edges,
// so codes fit max_bins bins.
std::vector<double> ComputeBinEdges(const double* values, size_t n,
                                    int max_bins);

// First edge >= value; equality goes left, matching `x <= threshold`.
uint16_t BinOf(double value, const std::vector<double>& edges);

}  // namespace tg::ml

#endif  // TG_ML_BINNING_H_
