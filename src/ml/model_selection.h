// Cross-validation utilities for choosing among prediction models (paper
// §VII-E: "Further study can ... identify the most appropriate prediction
// model based on varying dataset characteristics").
#ifndef TG_ML_MODEL_SELECTION_H_
#define TG_ML_MODEL_SELECTION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ml/tabular.h"
#include "util/status.h"

namespace tg::ml {

using RegressorFactory = std::function<std::unique_ptr<Regressor>()>;

struct CrossValidationResult {
  double mean_rmse = 0.0;
  double stddev_rmse = 0.0;
  std::vector<double> fold_rmse;
};

// K-fold cross-validation of a regressor on the dataset; folds are
// contiguous blocks of a seeded shuffle. k must be in [2, n].
Result<CrossValidationResult> KFoldCrossValidate(
    const RegressorFactory& factory, const TabularDataset& data, int folds,
    uint64_t seed = 33);

struct CandidateScore {
  std::string name;
  CrossValidationResult result;
};

// Cross-validates every candidate and returns them sorted by mean RMSE
// (best first).
Result<std::vector<CandidateScore>> RankPredictors(
    const std::vector<std::pair<std::string, RegressorFactory>>& candidates,
    const TabularDataset& data, int folds, uint64_t seed = 33);

}  // namespace tg::ml

#endif  // TG_ML_MODEL_SELECTION_H_
