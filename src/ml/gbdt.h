// XGBoost-style gradient-boosted regression trees (Chen & Guestrin 2016):
// second-order Taylor objective, leaf weight -G/(H+lambda), split gain
//   1/2 [ G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda) - G^2/(H+lambda) ] - gamma,
// histogram-binned features (quantile bin edges) for fast exact-enough
// splits, shrinkage, and optional row subsampling.
// Paper §VI-C settings: 500 trees, max depth 5.
#ifndef TG_ML_GBDT_H_
#define TG_ML_GBDT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/tabular.h"

namespace tg::ml {

struct GbdtConfig {
  int num_trees = 500;
  int max_depth = 5;
  double learning_rate = 0.1;  // shrinkage eta
  double lambda = 1.0;         // L2 on leaf weights
  double gamma = 0.0;          // complexity penalty per split
  double min_child_weight = 1.0;
  double subsample = 1.0;      // row subsample fraction per tree
  int max_bins = 64;
  uint64_t seed = 23;
};

class Gbdt : public Regressor {
 public:
  explicit Gbdt(const GbdtConfig& config = {}) : config_(config) {}

  Status Fit(const TabularDataset& data) override;
  double Predict(const std::vector<double>& row) const override;
  std::string name() const override { return "XGB"; }
  // Total split gain per feature over all boosting rounds, sum-normalized.
  std::vector<double> FeatureImportances() const override;

  size_t num_trees() const { return trees_.size(); }
  // Training RMSE after each boosting round (for convergence tests).
  const std::vector<double>& train_rmse_curve() const { return rmse_curve_; }

 private:
  struct GbdtNode {
    bool is_leaf = true;
    double value = 0.0;      // leaf weight (already shrunk)
    size_t feature = 0;
    double threshold = 0.0;  // raw-value threshold; left when <=
    int left = -1;
    int right = -1;
  };
  struct Tree {
    std::vector<GbdtNode> nodes;
    double PredictRow(const double* row) const;
  };

  GbdtConfig config_;
  double base_score_ = 0.0;
  std::vector<Tree> trees_;
  std::vector<double> rmse_curve_;
  std::vector<double> feature_gains_;
};

}  // namespace tg::ml

#endif  // TG_ML_GBDT_H_
