#include "ml/model_selection.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "numeric/stats.h"
#include "util/rng.h"

namespace tg::ml {

Result<CrossValidationResult> KFoldCrossValidate(
    const RegressorFactory& factory, const TabularDataset& data, int folds,
    uint64_t seed) {
  const size_t n = data.num_rows();
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (folds < 2 || static_cast<size_t>(folds) > n) {
    return Status::InvalidArgument("folds must be in [2, num_rows]");
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&order);

  CrossValidationResult result;
  for (int fold = 0; fold < folds; ++fold) {
    const size_t begin = n * static_cast<size_t>(fold) /
                         static_cast<size_t>(folds);
    const size_t end = n * static_cast<size_t>(fold + 1) /
                       static_cast<size_t>(folds);

    TabularDataset train;
    train.x = Matrix(n - (end - begin), data.num_features());
    train.feature_names = data.feature_names;
    TabularDataset test;
    test.x = Matrix(end - begin, data.num_features());

    size_t train_row = 0;
    size_t test_row = 0;
    for (size_t pos = 0; pos < n; ++pos) {
      const size_t source = order[pos];
      if (pos >= begin && pos < end) {
        test.x.SetRow(test_row++, data.x.Row(source));
        test.y.push_back(data.y[source]);
      } else {
        train.x.SetRow(train_row++, data.x.Row(source));
        train.y.push_back(data.y[source]);
      }
    }

    std::unique_ptr<Regressor> model = factory();
    TG_RETURN_IF_ERROR(model->Fit(train));
    result.fold_rmse.push_back(Rmse(model->PredictBatch(test.x), test.y));
  }
  result.mean_rmse = Mean(result.fold_rmse);
  result.stddev_rmse = StdDev(result.fold_rmse);
  return result;
}

Result<std::vector<CandidateScore>> RankPredictors(
    const std::vector<std::pair<std::string, RegressorFactory>>& candidates,
    const TabularDataset& data, int folds, uint64_t seed) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate predictors");
  }
  std::vector<CandidateScore> scores;
  for (const auto& [name, factory] : candidates) {
    Result<CrossValidationResult> cv =
        KFoldCrossValidate(factory, data, folds, seed);
    if (!cv.ok()) return cv.status();
    scores.push_back(CandidateScore{name, std::move(cv).value()});
  }
  std::sort(scores.begin(), scores.end(),
            [](const CandidateScore& a, const CandidateScore& b) {
              return a.result.mean_rmse < b.result.mean_rmse;
            });
  return scores;
}

}  // namespace tg::ml
