#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "ml/binning.h"
#include "numeric/kernels.h"
#include "numeric/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tg::ml {
namespace {

struct NodeStats {
  double g = 0.0;
  double h = 0.0;
};

// Same flush-once-per-event-batch pattern as the decision tree counters:
// disabled runs pay one predictable branch.
void BumpGbdtCounters(uint64_t split_evals, uint64_t hist_builds) {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter& eval_counter =
      obs::MetricsRegistry::Instance().GetCounter("tree.split_evaluations");
  static obs::Counter& hist_counter =
      obs::MetricsRegistry::Instance().GetCounter("tree.hist_builds");
  if (split_evals != 0) eval_counter.Increment(split_evals);
  if (hist_builds != 0) hist_counter.Increment(hist_builds);
}

}  // namespace

double Gbdt::Tree::PredictRow(const double* row) const {
  int node = 0;
  while (!nodes[node].is_leaf) {
    node = row[nodes[node].feature] <= nodes[node].threshold
               ? nodes[node].left
               : nodes[node].right;
  }
  return nodes[node].value;
}

Status Gbdt::Fit(const TabularDataset& data) {
  TG_TRACE_SPAN("gbdt_fit");
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (data.y.size() != data.num_rows()) {
    return Status::InvalidArgument("target size mismatch");
  }
  const size_t n = data.num_rows();
  const size_t d = data.num_features();

  trees_.clear();
  rmse_curve_.clear();
  feature_gains_.assign(d, 0.0);
  base_score_ = Mean(data.y);

  // Bin the feature matrix once (column major for histogram accumulation).
  // Features bin independently; parallel over features -- but only when the
  // n x d binning work can amortize pool dispatch (small feature counts pay
  // more queue/wakeup overhead than the fan-out saves).
  std::vector<std::vector<double>> edges(d);
  std::vector<std::vector<uint16_t>> binned(d);
  {
    TG_TRACE_SPAN("bin_build");
    ParallelForIfWorth(
        0, d, 1, n * d, [&](size_t begin, size_t end, size_t /*chunk*/) {
          std::vector<double> column(n);
          for (size_t f = begin; f < end; ++f) {
            for (size_t r = 0; r < n; ++r) column[r] = data.x(r, f);
            edges[f] = ComputeBinEdges(column.data(), n, config_.max_bins);
            binned[f].resize(n);
            for (size_t r = 0; r < n; ++r) {
              binned[f][r] = BinOf(column[r], edges[f]);
            }
          }
        });
  }

  std::vector<double> predictions(n, base_score_);
  std::vector<double> grad(n);
  Rng rng(config_.seed);

  const double lambda = config_.lambda;

  for (int round = 0; round < config_.num_trees; ++round) {
    // Squared-error objective: g_i = pred - y, h_i = 1.
    for (size_t i = 0; i < n; ++i) grad[i] = predictions[i] - data.y[i];

    // Row sample for this tree.
    std::vector<size_t> rows;
    if (config_.subsample >= 1.0) {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), 0);
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (rng.NextBernoulli(config_.subsample)) rows.push_back(i);
      }
      if (rows.empty()) rows.push_back(static_cast<size_t>(rng.NextBelow(n)));
    }

    Tree tree;
    // Recursive depth-wise build over [begin, end) index ranges.
    struct Builder {
      const GbdtConfig& config;
      const std::vector<std::vector<double>>& edges;
      const std::vector<std::vector<uint16_t>>& binned;
      const std::vector<double>& grad;
      Tree& tree;
      std::vector<size_t>& rows;
      double lambda;
      std::vector<double>& feature_gains;

      int Build(size_t begin, size_t end, int depth) {
        NodeStats total;
        for (size_t i = begin; i < end; ++i) {
          total.g += grad[rows[i]];
          total.h += 1.0;
        }
        const int node_index = static_cast<int>(tree.nodes.size());
        tree.nodes.emplace_back();
        tree.nodes[node_index].value =
            -total.g / (total.h + lambda) * config.learning_rate;

        if (depth >= config.max_depth ||
            total.h < 2.0 * config.min_child_weight) {
          return node_index;
        }

        // Best histogram split across all features. Each feature's scan is
        // independent, so the search fans out over the pool; the arg-best
        // reduction below runs in feature order with the same strict `>` as
        // a sequential scan, keeping the chosen split bit-identical for any
        // thread count.
        const double parent_score = total.g * total.g / (total.h + lambda);
        const size_t num_features = binned.size();
        std::vector<double> feature_best_gain(num_features, 0.0);
        std::vector<uint16_t> feature_best_bin(num_features, 0);
        // SoA histogram halves (gradient sums, then hessian counts) feed
        // the backend hist_accumulate kernel; the scatter adds run in the
        // same index order the old AoS loop used, so accumulated g/h -- and
        // therefore every split -- are bit-identical to it.
        const auto scan_feature = [&](size_t f, std::vector<double>* hist) {
          if (edges[f].empty()) return;
          const size_t nb = edges[f].size() + 1;
          hist->assign(2 * nb, 0.0);
          double* gsum = hist->data();
          double* hcount = hist->data() + nb;
          kernels::HistAccumulate(binned[f].data(), rows.data() + begin,
                                  end - begin, grad.data(), gsum, hcount);
          uint64_t evals = 0;
          NodeStats left;
          for (size_t b = 0; b + 1 < nb; ++b) {
            left.g += gsum[b];
            left.h += hcount[b];
            const NodeStats right{total.g - left.g, total.h - left.h};
            if (left.h < config.min_child_weight ||
                right.h < config.min_child_weight) {
              continue;
            }
            ++evals;
            const double gain =
                0.5 * (left.g * left.g / (left.h + lambda) +
                       right.g * right.g / (right.h + lambda) -
                       parent_score) -
                config.gamma;
            if (gain > feature_best_gain[f]) {
              feature_best_gain[f] = gain;
              feature_best_bin[f] = static_cast<uint16_t>(b);
            }
          }
          BumpGbdtCounters(evals, 0);
        };
        // Histogram work is (rows x features); ParallelForIfWorth fans out
        // only when the node is large enough for the dispatch to pay for
        // itself and runs inline (same chunking) otherwise.
        {
          TG_TRACE_SPAN("split_search");
          ParallelForIfWorth(
              0, num_features, 1, (end - begin) * num_features,
              [&](size_t f_begin, size_t f_end, size_t /*chunk*/) {
                std::vector<double> hist;
                for (size_t f = f_begin; f < f_end; ++f) {
                  scan_feature(f, &hist);
                }
              });
        }
        // One histogram build per node (covering all features), matching the
        // decision tree's hist engine so tree.hist_builds has uniform units.
        BumpGbdtCounters(0, 1);
        double best_gain = 0.0;
        size_t best_feature = 0;
        uint16_t best_bin = 0;
        for (size_t f = 0; f < num_features; ++f) {
          if (feature_best_gain[f] > best_gain) {
            best_gain = feature_best_gain[f];
            best_feature = f;
            best_bin = feature_best_bin[f];
          }
        }
        if (best_gain <= 0.0) return node_index;

        const auto& fbins = binned[best_feature];
        auto middle = std::partition(
            rows.begin() + static_cast<long>(begin),
            rows.begin() + static_cast<long>(end),
            [&](size_t r) { return fbins[r] <= best_bin; });
        const size_t mid = static_cast<size_t>(middle - rows.begin());
        if (mid == begin || mid == end) return node_index;
        feature_gains[best_feature] += best_gain;

        const int left_child = Build(begin, mid, depth + 1);
        const int right_child = Build(mid, end, depth + 1);
        tree.nodes[node_index].is_leaf = false;
        tree.nodes[node_index].feature = best_feature;
        tree.nodes[node_index].threshold = edges[best_feature][best_bin];
        tree.nodes[node_index].left = left_child;
        tree.nodes[node_index].right = right_child;
        return node_index;
      }
    };

    Builder builder{config_, edges,  binned,        grad,
                    tree,    rows,   lambda,        feature_gains_};
    {
      TG_TRACE_SPAN("tree_fit");
      builder.Build(0, rows.size(), 0);
    }

    // Update predictions on all rows with the new tree (disjoint writes).
    // Per-row work is one root-to-leaf descent, so the work estimate scales
    // rows by the tree depth; small datasets run inline.
    ParallelForIfWorth(
        0, n, 512, n * static_cast<size_t>(std::max(config_.max_depth, 1)),
        [&](size_t r_begin, size_t r_end, size_t /*chunk*/) {
          for (size_t r = r_begin; r < r_end; ++r) {
            predictions[r] += tree.PredictRow(data.x.RowPtr(r));
          }
        });
    trees_.push_back(std::move(tree));
    rmse_curve_.push_back(Rmse(predictions, data.y));
  }
  return Status::OK();
}

std::vector<double> Gbdt::FeatureImportances() const {
  if (feature_gains_.empty()) return {};
  double sum = 0.0;
  for (double v : feature_gains_) sum += v;
  std::vector<double> out = feature_gains_;
  if (sum > 0.0) {
    for (double& v : out) v /= sum;
  }
  return out;
}

double Gbdt::Predict(const std::vector<double>& row) const {
  TG_CHECK_MSG(!trees_.empty(), "Predict before Fit");
  double acc = base_score_;
  for (const Tree& tree : trees_) acc += tree.PredictRow(row.data());
  return acc;
}

}  // namespace tg::ml
