#include "ml/tree_engine.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tg::ml {
namespace {

// 0 = unresolved, 1 = exact, 2 = hist.
std::atomic<int> g_engine{0};

int ResolveFromEnv() {
  const char* env = std::getenv("TG_TREE");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "exact") == 0) {
    return 1;
  }
  if (std::strcmp(env, "hist") == 0) return 2;
  // Same policy as TG_ISA: a forced knob must never silently fall back.
  std::fprintf(stderr,
               "TG_TREE=%s: unknown tree engine (available: exact, hist)\n",
               env);
  std::exit(1);
}

}  // namespace

TreeEngine DefaultTreeEngine() {
  int engine = g_engine.load(std::memory_order_relaxed);
  if (engine == 0) {
    engine = ResolveFromEnv();
    int expected = 0;
    g_engine.compare_exchange_strong(expected, engine,
                                     std::memory_order_relaxed);
    engine = g_engine.load(std::memory_order_relaxed);
  }
  return engine == 2 ? TreeEngine::kHist : TreeEngine::kExact;
}

void SetDefaultTreeEngine(TreeEngine engine) {
  g_engine.store(engine == TreeEngine::kHist ? 2 : 1,
                 std::memory_order_relaxed);
}

TreeEngine ResolveTreeEngine(TreeEngineChoice choice) {
  switch (choice) {
    case TreeEngineChoice::kExact:
      return TreeEngine::kExact;
    case TreeEngineChoice::kHist:
      return TreeEngine::kHist;
    case TreeEngineChoice::kAuto:
      break;
  }
  return DefaultTreeEngine();
}

const char* TreeEngineName(TreeEngine engine) {
  return engine == TreeEngine::kHist ? "hist" : "exact";
}

}  // namespace tg::ml
