#include "gnn/sage.h"

#include <cmath>

#include "autograd/ops.h"

namespace tg::gnn {

EdgeIndex BuildEdgeIndex(const Graph& graph, bool add_self_loops) {
  EdgeIndex out;
  out.num_nodes = graph.num_nodes();
  for (const EdgeRecord& e : graph.edges()) {
    out.src.push_back(e.src);
    out.dst.push_back(e.dst);
    out.weight.push_back(std::max(e.weight, 1e-9));
    out.src.push_back(e.dst);
    out.dst.push_back(e.src);
    out.weight.push_back(std::max(e.weight, 1e-9));
  }
  if (add_self_loops) {
    for (size_t v = 0; v < graph.num_nodes(); ++v) {
      out.src.push_back(v);
      out.dst.push_back(v);
      out.weight.push_back(1.0);
    }
  }
  return out;
}

GraphSage::GraphSage(const EdgeIndex& edges, size_t in_dim,
                     const SageConfig& config, Rng* rng)
    : edges_(edges), config_(config) {
  TG_CHECK_GE(config.num_layers, 1);
  size_t dim = in_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    const size_t out_dim = (l + 1 == config.num_layers) ? config.output_dim
                                                        : config.hidden_dim;
    Layer layer;
    layer.pre = std::make_unique<nn::Linear>(dim, dim, rng);
    layer.self = std::make_unique<nn::Linear>(dim, out_dim, rng);
    layer.neigh =
        std::make_unique<nn::Linear>(dim, out_dim, rng, /*use_bias=*/false);
    layers_.push_back(std::move(layer));
    dim = out_dim;
  }

  // Per-destination normalization: 1 / sum of incoming edge weights.
  Matrix inv_deg(edges.num_nodes, 1);
  for (size_t i = 0; i < edges.dst.size(); ++i) {
    inv_deg(edges.dst[i], 0) += edges.weight[i];
  }
  for (size_t v = 0; v < edges.num_nodes; ++v) {
    inv_deg(v, 0) = inv_deg(v, 0) > 0.0 ? 1.0 / inv_deg(v, 0) : 0.0;
  }
  inv_weighted_degree_ = autograd::MakeConstant(std::move(inv_deg));
}

autograd::Var GraphSage::Aggregate(const Layer& layer,
                                   const autograd::Var& h) const {
  using namespace autograd;  // NOLINT(build/namespaces)
  // Transform each neighbor message, gather along edges, weight, and average
  // into the destination nodes.
  Var transformed = Relu(layer.pre->Forward(h));
  Var messages = GatherRows(transformed, edges_.src);
  Var weighted = MulColBroadcast(
      messages, MakeConstant(Matrix::ColumnVector(edges_.weight)));
  Var summed = ScatterAddRows(weighted, edges_.dst, edges_.num_nodes);
  return MulColBroadcast(summed, inv_weighted_degree_);
}

autograd::Var GraphSage::Encode(const autograd::Var& features) const {
  using namespace autograd;  // NOLINT(build/namespaces)
  Var h = features;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    Var combined =
        Add(layer.self->Forward(h), layer.neigh->Forward(Aggregate(layer, h)));
    h = (l + 1 == layers_.size()) ? combined : Relu(combined);
  }
  if (config_.normalize_output) {
    // Row-wise L2 normalization via 1/||h_i|| column broadcast.
    Var norms = RowsDot(h, h);
    Var inv = autograd::Exp(Scale(Log(norms, 1e-12), -0.5));
    h = MulColBroadcast(h, inv);
  }
  return h;
}

std::vector<autograd::Var> GraphSage::Parameters() const {
  std::vector<autograd::Var> params;
  for (const Layer& layer : layers_) {
    for (const auto& p : layer.pre->Parameters()) params.push_back(p);
    for (const auto& p : layer.self->Parameters()) params.push_back(p);
    for (const auto& p : layer.neigh->Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace tg::gnn
