#include "gnn/gat.h"

#include "autograd/ops.h"
#include "nn/init.h"

namespace tg::gnn {

Gat::Gat(const EdgeIndex& edges, size_t in_dim, const GatConfig& config,
         Rng* rng)
    : edges_(edges), config_(config) {
  TG_CHECK_GE(config.num_layers, 1);
  TG_CHECK_GE(config.num_heads, 1);
  size_t dim = in_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    const bool last = (l + 1 == config.num_layers);
    const size_t head_dim = last ? config.output_dim : config.hidden_dim;
    Layer layer;
    layer.concat = !last;
    for (int h = 0; h < config.num_heads; ++h) {
      Head head;
      head.transform =
          std::make_unique<nn::Linear>(dim, head_dim, rng, /*use_bias=*/false);
      head.attn_src =
          autograd::MakeParameter(nn::GlorotUniform(head_dim, 1, rng));
      head.attn_dst =
          autograd::MakeParameter(nn::GlorotUniform(head_dim, 1, rng));
      layer.heads.push_back(std::move(head));
    }
    dim = layer.concat ? head_dim * static_cast<size_t>(config.num_heads)
                       : head_dim;
    layers_.push_back(std::move(layer));
  }
}

autograd::Var Gat::RunHead(const Head& head, const autograd::Var& h) const {
  using namespace autograd;  // NOLINT(build/namespaces)
  Var wh = head.transform->Forward(h);  // nodes x head_dim
  // Per-node attention contributions, then gathered per edge.
  Var src_score = MatMul(wh, head.attn_src);  // nodes x 1
  Var dst_score = MatMul(wh, head.attn_dst);  // nodes x 1
  Var e = LeakyRelu(Add(GatherRows(src_score, edges_.src),
                        GatherRows(dst_score, edges_.dst)),
                    config_.leaky_relu_slope);
  Var alpha = SegmentSoftmax(e, edges_.dst);
  Var messages = MulColBroadcast(GatherRows(wh, edges_.src), alpha);
  return ScatterAddRows(messages, edges_.dst, edges_.num_nodes);
}

autograd::Var Gat::Encode(const autograd::Var& features) const {
  using namespace autograd;  // NOLINT(build/namespaces)
  Var h = features;
  for (const Layer& layer : layers_) {
    std::vector<Var> head_outputs;
    head_outputs.reserve(layer.heads.size());
    for (const Head& head : layer.heads) {
      head_outputs.push_back(RunHead(head, h));
    }
    Var combined;
    if (layer.concat) {
      combined = head_outputs[0];
      for (size_t i = 1; i < head_outputs.size(); ++i) {
        combined = ConcatCols(combined, head_outputs[i]);
      }
      combined = Elu(combined);
    } else {
      combined = head_outputs[0];
      for (size_t i = 1; i < head_outputs.size(); ++i) {
        combined = Add(combined, head_outputs[i]);
      }
      combined = Scale(combined, 1.0 / static_cast<double>(
                                          head_outputs.size()));
    }
    h = combined;
  }
  return h;
}

std::vector<autograd::Var> Gat::Parameters() const {
  std::vector<autograd::Var> params;
  for (const Layer& layer : layers_) {
    for (const Head& head : layer.heads) {
      for (const auto& p : head.transform->Parameters()) params.push_back(p);
      params.push_back(head.attn_src);
      params.push_back(head.attn_dst);
    }
  }
  return params;
}

}  // namespace tg::gnn
