#include "gnn/link_prediction.h"

#include "autograd/ops.h"
#include "graph/negative_sampler.h"
#include "nn/optimizer.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace tg::gnn {

LinkPredictionResult TrainLinkPrediction(
    const Graph& graph, Encoder* encoder, const Matrix& features,
    const std::vector<std::pair<NodeId, NodeId>>& labeled_negatives,
    const LinkPredictionConfig& config, Rng* rng) {
  using namespace autograd;  // NOLINT(build/namespaces)
  TG_CHECK_EQ(features.rows(), graph.num_nodes());
  TG_TRACE_SPAN("link_prediction_train");

  std::vector<std::pair<NodeId, NodeId>> positives;
  positives.reserve(graph.edges().size());
  for (const EdgeRecord& e : graph.edges()) positives.emplace_back(e.src, e.dst);

  Var feature_var = MakeConstant(features);
  nn::Adam optimizer(encoder->Parameters(), config.learning_rate, 0.9, 0.999,
                     1e-8, config.weight_decay);

  LinkPredictionResult result;
  const size_t num_sampled = static_cast<size_t>(
      config.sampled_negative_ratio * static_cast<double>(positives.size()));

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Assemble this epoch's supervision: all positives, all labeled
    // negatives, plus freshly sampled non-edges.
    std::vector<size_t> u_idx;
    std::vector<size_t> v_idx;
    std::vector<double> labels;
    auto add_pair = [&](NodeId a, NodeId b, double label) {
      u_idx.push_back(a);
      v_idx.push_back(b);
      labels.push_back(label);
    };
    for (const auto& [a, b] : positives) add_pair(a, b, 1.0);
    for (const auto& [a, b] : labeled_negatives) add_pair(a, b, 0.0);
    for (const auto& [a, b] : SampleNegativeEdges(graph, num_sampled, rng)) {
      add_pair(a, b, 0.0);
    }

    optimizer.ZeroGrad();
    Var z = encoder->Encode(feature_var);
    Var logits = RowsDot(GatherRows(z, u_idx), GatherRows(z, v_idx));
    Var loss = BceWithLogits(
        logits, MakeConstant(Matrix::ColumnVector(labels)));
    Backward(loss);
    optimizer.Step();

    result.loss_curve.push_back(loss->value()(0, 0));
    if (epoch % 50 == 0) {
      TG_LOG(Debug) << "link-prediction epoch " << epoch << " loss "
                    << result.loss_curve.back();
    }
  }

  result.embeddings = encoder->Encode(feature_var)->value();
  return result;
}

}  // namespace tg::gnn
