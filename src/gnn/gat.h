// Graph Attention Network (Velickovic et al. 2018), full batch, multi-head.
// Per edge (s -> t) and head k (paper Eq. 5):
//   e_st = LeakyReLU( a_src^T W h_s + a_dst^T W h_t )
//   alpha_st = softmax over the incoming edges of t
//   h_t' = ELU( sum_s alpha_st W h_s )
// Heads are concatenated on hidden layers and averaged on the output layer.
#ifndef TG_GNN_GAT_H_
#define TG_GNN_GAT_H_

#include <memory>
#include <vector>

#include "gnn/encoder.h"
#include "nn/linear.h"
#include "util/rng.h"

namespace tg::gnn {

struct GatConfig {
  size_t hidden_dim = 64;   // per head
  size_t output_dim = 128;  // total (averaged over heads on the last layer)
  int num_layers = 2;
  int num_heads = 2;
  double leaky_relu_slope = 0.2;
};

class Gat : public Encoder {
 public:
  Gat(const EdgeIndex& edges, size_t in_dim, const GatConfig& config,
      Rng* rng);

  autograd::Var Encode(const autograd::Var& features) const override;
  std::vector<autograd::Var> Parameters() const override;
  size_t output_dim() const override { return config_.output_dim; }

 private:
  struct Head {
    std::unique_ptr<nn::Linear> transform;  // W (no bias)
    autograd::Var attn_src;                 // (dim x 1)
    autograd::Var attn_dst;                 // (dim x 1)
  };
  struct Layer {
    std::vector<Head> heads;
    bool concat;  // concat heads (hidden) vs average (output layer)
  };

  autograd::Var RunHead(const Head& head, const autograd::Var& h) const;

  EdgeIndex edges_;
  GatConfig config_;
  std::vector<Layer> layers_;
};

}  // namespace tg::gnn

#endif  // TG_GNN_GAT_H_
