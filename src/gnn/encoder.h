// Common interface for neural graph encoders (GraphSAGE, GAT). An encoder
// maps a full-batch node-feature matrix to node embeddings; message passing
// runs over a fixed edge list captured at construction.
#ifndef TG_GNN_ENCODER_H_
#define TG_GNN_ENCODER_H_

#include <vector>

#include "autograd/tape.h"
#include "graph/graph.h"

namespace tg::gnn {

// Flat edge list with both directions plus self-loops, the form message
// passing consumes. `weight[i]` is the edge weight of (src[i] -> dst[i]).
struct EdgeIndex {
  std::vector<size_t> src;
  std::vector<size_t> dst;
  std::vector<double> weight;
  size_t num_nodes = 0;
};

// Expands a Graph into an EdgeIndex (each undirected edge becomes two
// directed edges; self-loops optionally appended with weight 1).
EdgeIndex BuildEdgeIndex(const Graph& graph, bool add_self_loops);

class Encoder {
 public:
  virtual ~Encoder() = default;

  // features: (num_nodes x in_dim) -> (num_nodes x out_dim).
  virtual autograd::Var Encode(const autograd::Var& features) const = 0;

  virtual std::vector<autograd::Var> Parameters() const = 0;

  virtual size_t output_dim() const = 0;
};

}  // namespace tg::gnn

#endif  // TG_GNN_ENCODER_H_
