// GraphSAGE with mean aggregation (Hamilton et al. 2017), full batch.
// Layer update (paper Eq. 4):
//   h_i' = ReLU( W_self h_i + W_neigh * mean_{n in N(i)} ReLU(Q h_n) + b )
// The inner ReLU(Q h_n) transform follows the paper's formulation; the mean
// uses edge weights as aggregation coefficients (normalized per node).
#ifndef TG_GNN_SAGE_H_
#define TG_GNN_SAGE_H_

#include <memory>
#include <vector>

#include "gnn/encoder.h"
#include "nn/linear.h"
#include "util/rng.h"

namespace tg::gnn {

struct SageConfig {
  size_t hidden_dim = 64;
  size_t output_dim = 128;
  int num_layers = 2;
  // L2-normalize the final embeddings (as in the original GraphSAGE).
  bool normalize_output = true;
};

class GraphSage : public Encoder {
 public:
  GraphSage(const EdgeIndex& edges, size_t in_dim, const SageConfig& config,
            Rng* rng);

  autograd::Var Encode(const autograd::Var& features) const override;
  std::vector<autograd::Var> Parameters() const override;
  size_t output_dim() const override { return config_.output_dim; }

 private:
  struct Layer {
    std::unique_ptr<nn::Linear> self;
    std::unique_ptr<nn::Linear> neigh;
    std::unique_ptr<nn::Linear> pre;  // the Q transform inside aggregation
  };

  autograd::Var Aggregate(const Layer& layer, const autograd::Var& h) const;

  EdgeIndex edges_;
  SageConfig config_;
  std::vector<Layer> layers_;
  autograd::Var inv_weighted_degree_;  // (num_nodes x 1) constant
};

}  // namespace tg::gnn

#endif  // TG_GNN_SAGE_H_
