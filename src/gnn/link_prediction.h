// Link-prediction training loop for neural graph encoders (paper §V-B).
//
// Positive pairs are the graph's retained ("model performs well") edges;
// negative pairs combine explicitly labeled negatives (below-threshold
// accuracy) with uniformly sampled non-edges resampled every epoch. The
// decoder is the dot product of the endpoint embeddings; the loss is
// binary cross entropy on the decoder logits.
#ifndef TG_GNN_LINK_PREDICTION_H_
#define TG_GNN_LINK_PREDICTION_H_

#include <utility>
#include <vector>

#include "gnn/encoder.h"
#include "graph/graph.h"
#include "numeric/matrix.h"
#include "util/rng.h"

namespace tg::gnn {

struct LinkPredictionConfig {
  int epochs = 150;
  double learning_rate = 5e-3;
  double weight_decay = 1e-5;
  // Random non-edge negatives per positive edge, on top of labeled ones.
  double sampled_negative_ratio = 1.0;
};

struct LinkPredictionResult {
  Matrix embeddings;             // num_nodes x encoder.output_dim
  std::vector<double> loss_curve;  // per-epoch training loss
};

// Trains `encoder` on the graph and returns the final node embeddings.
// `labeled_negatives` may be empty. `features` is (num_nodes x in_dim).
LinkPredictionResult TrainLinkPrediction(
    const Graph& graph, Encoder* encoder, const Matrix& features,
    const std::vector<std::pair<NodeId, NodeId>>& labeled_negatives,
    const LinkPredictionConfig& config, Rng* rng);

}  // namespace tg::gnn

#endif  // TG_GNN_LINK_PREDICTION_H_
