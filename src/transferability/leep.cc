#include "transferability/leep.h"

#include <cmath>

namespace tg {

Result<double> LeepScore(const Matrix& source_probs,
                         const std::vector<int>& labels, int num_classes) {
  const size_t n = source_probs.rows();
  const size_t z_dim = source_probs.cols();
  if (n == 0 || z_dim == 0) {
    return Status::InvalidArgument("empty source probability matrix");
  }
  if (labels.size() != n) {
    return Status::InvalidArgument("label size mismatch");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least two classes");
  }
  for (int label : labels) {
    if (label < 0 || label >= num_classes) {
      return Status::OutOfRange("label outside [0, num_classes)");
    }
  }

  // Empirical joint P(y, z) = (1/n) sum_i theta(x_i)_z * 1[y_i = y].
  Matrix joint(static_cast<size_t>(num_classes), z_dim);
  for (size_t i = 0; i < n; ++i) {
    const double* probs = source_probs.RowPtr(i);
    double* row = joint.RowPtr(static_cast<size_t>(labels[i]));
    for (size_t z = 0; z < z_dim; ++z) row[z] += probs[z];
  }
  joint *= 1.0 / static_cast<double>(n);

  // Marginal P(z) and conditional P(y | z).
  std::vector<double> marginal(z_dim, 0.0);
  for (int y = 0; y < num_classes; ++y) {
    for (size_t z = 0; z < z_dim; ++z) {
      marginal[z] += joint(static_cast<size_t>(y), z);
    }
  }
  Matrix conditional(static_cast<size_t>(num_classes), z_dim);
  for (int y = 0; y < num_classes; ++y) {
    for (size_t z = 0; z < z_dim; ++z) {
      conditional(static_cast<size_t>(y), z) =
          marginal[z] > 0.0 ? joint(static_cast<size_t>(y), z) / marginal[z]
                            : 0.0;
    }
  }

  // Average log-likelihood of the empirical predictor.
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double* probs = source_probs.RowPtr(i);
    const double* cond = conditional.RowPtr(static_cast<size_t>(labels[i]));
    double p = 0.0;
    for (size_t z = 0; z < z_dim; ++z) p += cond[z] * probs[z];
    total += std::log(std::max(p, 1e-12));
  }
  return total / static_cast<double>(n);
}

}  // namespace tg
