// PARC: Pairwise Annotation Representation Comparison (Bolya et al.,
// NeurIPS 2021). Compares the geometry of the model's feature space with the
// geometry of the label space: Spearman correlation between the off-diagonal
// entries of (1 - corr(features)) and (1 - corr(one-hot labels)), scaled by
// 100. Samples are subsampled for tractability on large datasets.
#ifndef TG_TRANSFERABILITY_PARC_H_
#define TG_TRANSFERABILITY_PARC_H_

#include <vector>

#include "numeric/matrix.h"
#include "util/status.h"

namespace tg {

struct ParcOptions {
  size_t max_samples = 256;
  uint64_t seed = 31;
};

Result<double> ParcScore(const Matrix& features,
                         const std::vector<int>& labels, int num_classes,
                         const ParcOptions& options = {});

}  // namespace tg

#endif  // TG_TRANSFERABILITY_PARC_H_
