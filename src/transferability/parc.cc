#include "transferability/parc.h"

#include <algorithm>

#include "numeric/stats.h"
#include "util/rng.h"

namespace tg {
namespace {

// Lower-triangle entries (i > j) of the pairwise correlation-distance matrix
// of the given row vectors.
std::vector<double> PairwiseCorrelationDistances(const Matrix& rows) {
  const size_t n = rows.rows();
  std::vector<double> out;
  out.reserve(n * (n - 1) / 2);
  std::vector<std::vector<double>> cache(n);
  for (size_t i = 0; i < n; ++i) cache[i] = rows.Row(i);
  for (size_t i = 1; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      out.push_back(CorrelationDistance(cache[i], cache[j]));
    }
  }
  return out;
}

}  // namespace

Result<double> ParcScore(const Matrix& features,
                         const std::vector<int>& labels, int num_classes,
                         const ParcOptions& options) {
  const size_t n = features.rows();
  if (n < 3 || features.cols() == 0) {
    return Status::InvalidArgument("need at least 3 samples with features");
  }
  if (labels.size() != n) {
    return Status::InvalidArgument("label size mismatch");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least two classes");
  }

  // Subsample for tractability (pairwise cost is quadratic).
  std::vector<size_t> keep;
  if (n > options.max_samples) {
    Rng rng(options.seed);
    keep = rng.SampleWithoutReplacement(n, options.max_samples);
    std::sort(keep.begin(), keep.end());
  } else {
    keep.resize(n);
    for (size_t i = 0; i < n; ++i) keep[i] = i;
  }

  Matrix f_sub(keep.size(), features.cols());
  Matrix y_sub(keep.size(), static_cast<size_t>(num_classes));
  for (size_t i = 0; i < keep.size(); ++i) {
    const double* src = features.RowPtr(keep[i]);
    std::copy(src, src + features.cols(), f_sub.RowPtr(i));
    const int label = labels[keep[i]];
    if (label < 0 || label >= num_classes) {
      return Status::OutOfRange("label outside [0, num_classes)");
    }
    y_sub(i, static_cast<size_t>(label)) = 1.0;
  }

  const std::vector<double> feat_dist = PairwiseCorrelationDistances(f_sub);
  const std::vector<double> label_dist = PairwiseCorrelationDistances(y_sub);
  return 100.0 * SpearmanCorrelation(feat_dist, label_dist);
}

}  // namespace tg
