// LogME: Log of Maximum Evidence (You et al., ICML 2021).
//
// For features F (n x D) extracted by a pre-trained model on the target
// dataset and one-vs-rest binary targets per class, LogME maximizes the
// marginalized label evidence p(y | F) of a Bayesian linear model with an
// isotropic Gaussian prior (precision alpha) and Gaussian noise (precision
// beta), via the classic alpha/beta fixed-point iteration run in the
// eigenspace of F^T F. The score is the per-sample log evidence averaged
// over classes; higher means more transferable.
#ifndef TG_TRANSFERABILITY_LOGME_H_
#define TG_TRANSFERABILITY_LOGME_H_

#include <vector>

#include "numeric/matrix.h"
#include "util/status.h"

namespace tg {

struct LogMeOptions {
  int max_fixed_point_iters = 11;
  double tolerance = 0.01;  // relative change in alpha/beta ratio
};

// features: n x D, labels: n integers in [0, num_classes).
Result<double> LogMeScore(const Matrix& features,
                          const std::vector<int>& labels, int num_classes,
                          const LogMeOptions& options = {});

// Evidence of a single continuous target column (used internally and for
// regression-style targets): returns per-sample log evidence.
Result<double> LogMeEvidence(const Matrix& features,
                             const std::vector<double>& targets,
                             const LogMeOptions& options = {});

}  // namespace tg

#endif  // TG_TRANSFERABILITY_LOGME_H_
