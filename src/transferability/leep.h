// LEEP: Log Expected Empirical Prediction (Nguyen et al., ICML 2020).
//
// Given a pre-trained model's soft predictions over its *source* classes on
// the target samples, LEEP forms the empirical joint P(target y, source z),
// derives the conditional P(y|z), and scores the "empirical predictor"
//   p(y | x) = sum_z P(y|z) theta(x)_z
// by its average log-likelihood on the target labels. Higher is better.
#ifndef TG_TRANSFERABILITY_LEEP_H_
#define TG_TRANSFERABILITY_LEEP_H_

#include <vector>

#include "numeric/matrix.h"
#include "util/status.h"

namespace tg {

// source_probs: n x Z rows of source-class probabilities (rows should sum to
// ~1); labels: n target labels in [0, num_classes).
Result<double> LeepScore(const Matrix& source_probs,
                         const std::vector<int>& labels, int num_classes);

}  // namespace tg

#endif  // TG_TRANSFERABILITY_LEEP_H_
