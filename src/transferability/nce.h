// NCE: Negative Conditional Entropy (Tran et al., ICCV 2019).
// Transferability is scored as -H(Y | Z), where Z are the source-model's
// hard label assignments on the target samples and Y are the target labels.
// Less residual uncertainty about Y given Z means better transfer.
#ifndef TG_TRANSFERABILITY_NCE_H_
#define TG_TRANSFERABILITY_NCE_H_

#include <vector>

#include "util/status.h"

namespace tg {

// source_labels: hard source-class assignments; target_labels: target-class
// labels. Sizes must match and be nonempty.
Result<double> NceScore(const std::vector<int>& source_labels,
                        const std::vector<int>& target_labels);

}  // namespace tg

#endif  // TG_TRANSFERABILITY_NCE_H_
