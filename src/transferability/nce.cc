#include "transferability/nce.h"

#include <cmath>
#include <map>
#include <utility>

namespace tg {

Result<double> NceScore(const std::vector<int>& source_labels,
                        const std::vector<int>& target_labels) {
  if (source_labels.empty()) {
    return Status::InvalidArgument("empty label vectors");
  }
  if (source_labels.size() != target_labels.size()) {
    return Status::InvalidArgument("label size mismatch");
  }
  const double n = static_cast<double>(source_labels.size());

  std::map<std::pair<int, int>, double> joint;  // (z, y) -> count
  std::map<int, double> z_marginal;
  for (size_t i = 0; i < source_labels.size(); ++i) {
    joint[{source_labels[i], target_labels[i]}] += 1.0;
    z_marginal[source_labels[i]] += 1.0;
  }

  // H(Y|Z) = -sum_{z,y} P(z,y) log( P(z,y) / P(z) ).
  double conditional_entropy = 0.0;
  for (const auto& [zy, count] : joint) {
    const double p_zy = count / n;
    const double p_z = z_marginal[zy.first] / n;
    conditional_entropy -= p_zy * std::log(p_zy / p_z);
  }
  return -conditional_entropy;
}

}  // namespace tg
