// H-Score (Bao et al., ICIP 2019): a fast transferability estimate
//   H(f) = tr( cov(f)^{-1} cov( E[f | y] ) ),
// the amount of feature variance explained by the class-conditional means,
// measured in the whitened feature space. Higher is better. A small ridge
// term keeps the covariance inversion well posed.
#ifndef TG_TRANSFERABILITY_HSCORE_H_
#define TG_TRANSFERABILITY_HSCORE_H_

#include <vector>

#include "numeric/matrix.h"
#include "util/status.h"

namespace tg {

struct HScoreOptions {
  double ridge = 1e-6;
};

Result<double> HScore(const Matrix& features, const std::vector<int>& labels,
                      int num_classes, const HScoreOptions& options = {});

}  // namespace tg

#endif  // TG_TRANSFERABILITY_HSCORE_H_
