#include "transferability/logme.h"

#include <cmath>

#include "numeric/linalg.h"

namespace tg {
namespace {

constexpr double kEpsilon = 1e-5;

// Shared eigendecomposition of F^T F, reused across the per-class loops.
struct FeatureSpectrum {
  std::vector<double> sigma;  // eigenvalues of F^T F (>= 0), length D
  Matrix v;                   // D x D eigenvectors
};

Result<FeatureSpectrum> Decompose(const Matrix& features) {
  Matrix gram = features.TransposedMatMul(features);
  Result<EigenDecomposition> eig = SymmetricEigen(gram);
  if (!eig.ok()) return eig.status();
  FeatureSpectrum spec;
  spec.sigma = eig.value().eigenvalues;
  for (double& s : spec.sigma) s = std::max(s, 0.0);
  spec.v = eig.value().eigenvectors;
  return spec;
}

// Evidence for one target column given the precomputed spectrum.
double EvidenceForTarget(const Matrix& features, const FeatureSpectrum& spec,
                         const std::vector<double>& y,
                         const LogMeOptions& options) {
  const size_t n = features.rows();
  const size_t d = features.cols();

  // tmp = V^T F^T y.
  std::vector<double> fty(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const double* row = features.RowPtr(r);
    const double yv = y[r];
    if (yv == 0.0) continue;
    for (size_t c = 0; c < d; ++c) fty[c] += row[c] * yv;
  }
  std::vector<double> tmp(d, 0.0);
  for (size_t c = 0; c < d; ++c) {
    double acc = 0.0;
    for (size_t rdim = 0; rdim < d; ++rdim) {
      acc += spec.v(rdim, c) * fty[rdim];
    }
    tmp[c] = acc;
  }

  double y_norm2 = 0.0;
  for (double v : y) y_norm2 += v * v;

  double alpha = 1.0;
  double beta = 1.0;
  double lam = alpha / beta;
  double alpha_de = 0.0;
  double beta_de = y_norm2;
  for (int iter = 0; iter < options.max_fixed_point_iters; ++iter) {
    double gamma = 0.0;
    alpha_de = 0.0;
    double explained = 0.0;
    for (size_t i = 0; i < d; ++i) {
      const double s = spec.sigma[i];
      const double denom = alpha + beta * s;
      gamma += beta * s / denom;
      const double m_i = beta * tmp[i] / denom;
      alpha_de += m_i * m_i;
      // beta_de = ||y - F m||^2 computed in the eigenspace:
      //   ||y||^2 - sum tmp_i^2 * beta (2 alpha + beta s_i) / denom^2.
      explained += tmp[i] * tmp[i] * beta * (2.0 * alpha + beta * s) /
                   (denom * denom);
    }
    beta_de = std::max(y_norm2 - explained, 0.0);
    alpha = gamma / (alpha_de + kEpsilon);
    beta = (static_cast<double>(n) - gamma) / (beta_de + kEpsilon);
    const double new_lam = alpha / beta;
    if (std::fabs(new_lam - lam) / lam < options.tolerance) break;
    lam = new_lam;
  }

  double log_det = 0.0;
  for (size_t i = 0; i < d; ++i) {
    log_det += std::log(alpha + beta * spec.sigma[i]);
  }
  const double evidence =
      0.5 * static_cast<double>(d) * std::log(alpha) +
      0.5 * static_cast<double>(n) * std::log(beta) - 0.5 * log_det -
      0.5 * beta * beta_de - 0.5 * alpha * alpha_de -
      0.5 * static_cast<double>(n) * std::log(2.0 * M_PI);
  return evidence / static_cast<double>(n);
}

}  // namespace

Result<double> LogMeEvidence(const Matrix& features,
                             const std::vector<double>& targets,
                             const LogMeOptions& options) {
  if (features.rows() == 0 || features.cols() == 0) {
    return Status::InvalidArgument("empty feature matrix");
  }
  if (targets.size() != features.rows()) {
    return Status::InvalidArgument("target size mismatch");
  }
  Result<FeatureSpectrum> spec = Decompose(features);
  if (!spec.ok()) return spec.status();
  return EvidenceForTarget(features, spec.value(), targets, options);
}

Result<double> LogMeScore(const Matrix& features,
                          const std::vector<int>& labels, int num_classes,
                          const LogMeOptions& options) {
  if (features.rows() == 0 || features.cols() == 0) {
    return Status::InvalidArgument("empty feature matrix");
  }
  if (labels.size() != features.rows()) {
    return Status::InvalidArgument("label size mismatch");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least two classes");
  }
  for (int label : labels) {
    if (label < 0 || label >= num_classes) {
      return Status::OutOfRange("label outside [0, num_classes)");
    }
  }
  Result<FeatureSpectrum> spec = Decompose(features);
  if (!spec.ok()) return spec.status();

  // One-vs-rest evidence per class, averaged (the official formulation).
  double total = 0.0;
  std::vector<double> y(labels.size());
  for (int k = 0; k < num_classes; ++k) {
    for (size_t i = 0; i < labels.size(); ++i) {
      y[i] = labels[i] == k ? 1.0 : 0.0;
    }
    total += EvidenceForTarget(features, spec.value(), y, options);
  }
  return total / static_cast<double>(num_classes);
}

}  // namespace tg
