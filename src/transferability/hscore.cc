#include "transferability/hscore.h"

#include "numeric/linalg.h"

namespace tg {

Result<double> HScore(const Matrix& features, const std::vector<int>& labels,
                      int num_classes, const HScoreOptions& options) {
  const size_t n = features.rows();
  const size_t d = features.cols();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("empty feature matrix");
  }
  if (labels.size() != n) {
    return Status::InvalidArgument("label size mismatch");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least two classes");
  }

  // Global mean and centered features.
  std::vector<double> mean(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = features.RowPtr(i);
    for (size_t c = 0; c < d; ++c) mean[c] += row[c];
  }
  for (double& v : mean) v /= static_cast<double>(n);

  // Class-conditional means (centered).
  Matrix class_mean(static_cast<size_t>(num_classes), d);
  std::vector<double> class_count(static_cast<size_t>(num_classes), 0.0);
  for (size_t i = 0; i < n; ++i) {
    const int y = labels[i];
    if (y < 0 || y >= num_classes) {
      return Status::OutOfRange("label outside [0, num_classes)");
    }
    class_count[static_cast<size_t>(y)] += 1.0;
    const double* row = features.RowPtr(i);
    for (size_t c = 0; c < d; ++c) {
      class_mean(static_cast<size_t>(y), c) += row[c] - mean[c];
    }
  }
  for (int y = 0; y < num_classes; ++y) {
    if (class_count[static_cast<size_t>(y)] == 0.0) continue;
    for (size_t c = 0; c < d; ++c) {
      class_mean(static_cast<size_t>(y), c) /=
          class_count[static_cast<size_t>(y)];
    }
  }

  // Total covariance and between-class covariance.
  Matrix cov(d, d);
  for (size_t i = 0; i < n; ++i) {
    const double* row = features.RowPtr(i);
    for (size_t a = 0; a < d; ++a) {
      const double da = row[a] - mean[a];
      for (size_t b = 0; b < d; ++b) {
        cov(a, b) += da * (row[b] - mean[b]);
      }
    }
  }
  cov *= 1.0 / static_cast<double>(n);
  for (size_t a = 0; a < d; ++a) cov(a, a) += options.ridge;

  Matrix between(d, d);
  for (int y = 0; y < num_classes; ++y) {
    const double weight =
        class_count[static_cast<size_t>(y)] / static_cast<double>(n);
    if (weight == 0.0) continue;
    for (size_t a = 0; a < d; ++a) {
      const double ma = class_mean(static_cast<size_t>(y), a);
      for (size_t b = 0; b < d; ++b) {
        between(a, b) += weight * ma * class_mean(static_cast<size_t>(y), b);
      }
    }
  }

  // tr(cov^{-1} between) = sum of diagonal of the solve.
  Result<Matrix> solved = CholeskySolve(cov, between);
  if (!solved.ok()) return solved.status();
  double trace = 0.0;
  for (size_t a = 0; a < d; ++a) trace += solved.value()(a, a);
  return trace;
}

}  // namespace tg
