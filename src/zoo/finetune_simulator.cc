#include "zoo/finetune_simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "numeric/stats.h"
#include "util/check.h"
#include "util/rng.h"

namespace tg::zoo {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

FineTuneSimulator::FineTuneSimulator(const SyntheticWorld& world,
                                     const FineTuneConfig& config)
    : world_(&world), config_(config) {
  const Catalog& catalog = world.catalog();
  const size_t num_datasets = catalog.datasets.size();
  const size_t num_models = catalog.models.size();
  Rng root(config.seed);

  // --- Per-dataset base accuracy and spread ---
  base_.resize(num_datasets);
  spread_.resize(num_datasets);
  Rng spread_rng = root.Fork(11);
  for (size_t d = 0; d < num_datasets; ++d) {
    const DatasetInfo& info = catalog.datasets[d];
    base_[d] = 0.92 - 0.48 * world.Difficulty(d);
    if (info.is_evaluation_target) {
      spread_[d] = config.spread_min +
                   (config.spread_max - config.spread_min) *
                       spread_rng.NextDouble();
    } else if (info.is_public) {
      // Low-variance datasets: model selection is pointless here (Fig. 6).
      spread_[d] =
          config.spread_low_variance * (0.7 + 0.6 * spread_rng.NextDouble());
    } else {
      spread_[d] = config.spread_source;
    }
  }

  // --- Accuracy tables ---
  const double nan = std::numeric_limits<double>::quiet_NaN();
  full_.assign(num_datasets, std::vector<double>(num_models, nan));
  lora_.assign(num_datasets, std::vector<double>(num_models, nan));

  Rng lora_model_rng = root.Fork(12);
  std::vector<double> lora_model_shift(num_models);
  for (size_t m = 0; m < num_models; ++m) {
    lora_model_shift[m] =
        config.lora_model_noise * lora_model_rng.NextGaussian();
  }

  for (size_t d = 0; d < num_datasets; ++d) {
    const DatasetInfo& ds = catalog.datasets[d];
    std::vector<size_t> models;
    std::vector<double> signal;
    for (size_t m = 0; m < num_models; ++m) {
      const ModelInfo& mi = catalog.models[m];
      if (mi.modality != ds.modality) continue;
      models.push_back(m);
      signal.push_back(config.weight_affinity * world.Affinity(m, d) +
                       config.weight_capacity * world.Capacity(m) +
                       config.weight_quality *
                           (Sigmoid(world.Quality(m)) - 0.5) * 2.0 +
                       config.weight_arch_bias *
                           world.ArchDomainBias(mi.architecture, ds.domain));
    }
    if (models.empty()) continue;
    // Z-score the signal over same-modality models so spread_d alone sets
    // this dataset's dispersion.
    const double mu = Mean(signal);
    const double sd = std::max(StdDev(signal), 1e-9);
    Rng pair_rng = root.Fork(1000 + d);
    // Per-pair noise shrinks with the dataset's spread so that low-variance
    // datasets really are low variance (paper: eurosat std 0.005).
    const double noise_d = std::min(config_.noise, 0.8 * spread_[d] + 0.002);
    for (size_t i = 0; i < models.size(); ++i) {
      const size_t m = models[i];
      const double z = (signal[i] - mu) / sd;
      const double acc =
          base_[d] + spread_[d] * z + noise_d * pair_rng.NextGaussian();
      full_[d][m] = std::clamp(acc, 0.02, 0.995);
      const double lora = full_[d][m] - config.lora_drop +
                          lora_model_shift[m] +
                          config.lora_pair_noise * pair_rng.NextGaussian();
      lora_[d][m] = std::clamp(lora, 0.02, 0.995);
    }
  }
}

double FineTuneSimulator::Accuracy(size_t model, size_t dataset,
                                   FineTuneMethod method) const {
  TG_CHECK_LT(dataset, full_.size());
  TG_CHECK_LT(model, full_[dataset].size());
  const double acc = method == FineTuneMethod::kFullFineTune
                         ? full_[dataset][model]
                         : lora_[dataset][model];
  TG_CHECK_MSG(!std::isnan(acc), "model/dataset modality mismatch");
  return acc;
}

std::vector<double> FineTuneSimulator::AccuracyColumn(
    size_t dataset, FineTuneMethod method) const {
  const Catalog& catalog = world_->catalog();
  std::vector<double> out;
  for (size_t m = 0; m < catalog.models.size(); ++m) {
    if (catalog.models[m].modality != catalog.datasets[dataset].modality) {
      continue;
    }
    out.push_back(Accuracy(m, dataset, method));
  }
  return out;
}

}  // namespace tg::zoo
