#include "zoo/model_zoo.h"

#include "features/domain_similarity.h"
#include "features/task2vec.h"
#include "obs/metrics.h"
#include "transferability/hscore.h"
#include "transferability/leep.h"
#include "transferability/logme.h"
#include "transferability/nce.h"
#include "transferability/parc.h"
#include "util/check.h"
#include "util/logging.h"

namespace tg::zoo {
namespace {

// One hit/miss counter pair covers all five transferability-score caches
// (LogME/LEEP/NCE/PARC/H-score): they share the zoo-wide memoization policy
// and the interesting signal is whether *any* score was recomputed.
void CountScoreCache(bool hit) {
  static obs::Counter& hits =
      obs::MetricsRegistry::Instance().GetCounter("zoo.score_cache.hit");
  static obs::Counter& misses =
      obs::MetricsRegistry::Instance().GetCounter("zoo.score_cache.miss");
  (hit ? hits : misses).Increment();
}

void CountEmbeddingCache(bool hit) {
  static obs::Counter& hits = obs::MetricsRegistry::Instance().GetCounter(
      "zoo.dataset_embedding_cache.hit");
  static obs::Counter& misses = obs::MetricsRegistry::Instance().GetCounter(
      "zoo.dataset_embedding_cache.miss");
  (hit ? hits : misses).Increment();
}

}  // namespace

ModelZoo::ModelZoo(const ModelZooConfig& config)
    : config_(config), catalog_(BuildCatalog(config.catalog)) {
  world_ = std::make_unique<SyntheticWorld>(catalog_, config.world);
  // Publish the world's pre-training accuracies into the model metadata.
  for (size_t m = 0; m < catalog_.models.size(); ++m) {
    catalog_.models[m].pretrain_accuracy = world_->PretrainAccuracy(m);
  }
  simulator_ = std::make_unique<FineTuneSimulator>(*world_, config.finetune);
  probe_ = std::make_unique<ProbeNetwork>(config.world.ambient_dim,
                                          config.probe);
}

std::vector<size_t> ModelZoo::DatasetsOfModality(Modality modality) const {
  std::vector<size_t> out;
  for (size_t d = 0; d < catalog_.datasets.size(); ++d) {
    if (catalog_.datasets[d].modality == modality) out.push_back(d);
  }
  return out;
}

std::vector<size_t> ModelZoo::ModelsOfModality(Modality modality) const {
  std::vector<size_t> out;
  for (size_t m = 0; m < catalog_.models.size(); ++m) {
    if (catalog_.models[m].modality == modality) out.push_back(m);
  }
  return out;
}

std::vector<size_t> ModelZoo::PublicDatasets(Modality modality) const {
  std::vector<size_t> out;
  for (size_t d = 0; d < catalog_.datasets.size(); ++d) {
    if (catalog_.datasets[d].modality == modality &&
        catalog_.datasets[d].is_public) {
      out.push_back(d);
    }
  }
  return out;
}

std::vector<size_t> ModelZoo::EvaluationTargets(Modality modality) const {
  std::vector<size_t> out;
  for (size_t d = 0; d < catalog_.datasets.size(); ++d) {
    if (catalog_.datasets[d].modality == modality &&
        catalog_.datasets[d].is_evaluation_target) {
      out.push_back(d);
    }
  }
  return out;
}

double ModelZoo::FineTuneAccuracy(size_t model, size_t dataset,
                                  FineTuneMethod method) const {
  return simulator_->Accuracy(model, dataset, method);
}

double ModelZoo::PretrainAccuracy(size_t model) const {
  TG_CHECK_LT(model, catalog_.models.size());
  return catalog_.models[model].pretrain_accuracy;
}

const std::vector<double>& ModelZoo::DatasetEmbedding(
    size_t dataset, DatasetRepresentation repr) {
  auto& cache = repr == DatasetRepresentation::kDomainSimilarity
                    ? domain_embeddings_
                    : task2vec_embeddings_;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache.find(dataset);
    if (it != cache.end()) {
      CountEmbeddingCache(true);
      return it->second;
    }
  }
  CountEmbeddingCache(false);
  // Compute outside the lock; concurrent misses on the same key produce
  // identical values and the first emplace wins.
  const DatasetSamples& samples = world_->Samples(dataset);
  std::vector<double> embedding;
  if (repr == DatasetRepresentation::kDomainSimilarity) {
    embedding = probe_->DatasetEmbedding(samples.ambient);
  } else {
    const Matrix probe_features = probe_->EmbedSamples(samples.ambient);
    Result<std::vector<double>> result = Task2VecEmbedding(
        probe_features, samples.labels, samples.num_classes);
    TG_CHECK_MSG(result.ok(), result.status().ToString().c_str());
    embedding = std::move(result).value();
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache.emplace(dataset, std::move(embedding)).first->second;
}

double ModelZoo::DatasetSimilarityScore(size_t a, size_t b,
                                        DatasetRepresentation repr) {
  if (a == b) return 1.0;
  return DatasetSimilarity(DatasetEmbedding(a, repr),
                           DatasetEmbedding(b, repr));
}

double ModelZoo::LogMe(size_t model, size_t dataset) {
  const uint64_t key = PairKey(model, dataset);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = logme_cache_.find(key);
    if (it != logme_cache_.end()) {
      CountScoreCache(true);
      return it->second;
    }
  }
  CountScoreCache(false);
  const DatasetSamples& samples = world_->Samples(dataset);
  const Matrix features = world_->ExtractFeatures(model, dataset);
  Result<double> score =
      LogMeScore(features, samples.labels, samples.num_classes);
  TG_CHECK_MSG(score.ok(), score.status().ToString().c_str());
  std::lock_guard<std::mutex> lock(cache_mu_);
  logme_cache_.emplace(key, score.value());
  return score.value();
}

double ModelZoo::Leep(size_t model, size_t dataset) {
  const uint64_t key = PairKey(model, dataset);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = leep_cache_.find(key);
    if (it != leep_cache_.end()) {
      CountScoreCache(true);
      return it->second;
    }
  }
  CountScoreCache(false);
  const DatasetSamples& samples = world_->Samples(dataset);
  const Matrix probs = world_->SourceProbabilities(model, dataset);
  Result<double> score = LeepScore(probs, samples.labels, samples.num_classes);
  TG_CHECK_MSG(score.ok(), score.status().ToString().c_str());
  std::lock_guard<std::mutex> lock(cache_mu_);
  leep_cache_.emplace(key, score.value());
  return score.value();
}

double ModelZoo::Nce(size_t model, size_t dataset) {
  const uint64_t key = PairKey(model, dataset);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = nce_cache_.find(key);
    if (it != nce_cache_.end()) {
      CountScoreCache(true);
      return it->second;
    }
  }
  CountScoreCache(false);
  const DatasetSamples& samples = world_->Samples(dataset);
  const std::vector<int> source = world_->SourceHardLabels(model, dataset);
  Result<double> score = NceScore(source, samples.labels);
  TG_CHECK_MSG(score.ok(), score.status().ToString().c_str());
  std::lock_guard<std::mutex> lock(cache_mu_);
  nce_cache_.emplace(key, score.value());
  return score.value();
}

double ModelZoo::Parc(size_t model, size_t dataset) {
  const uint64_t key = PairKey(model, dataset);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = parc_cache_.find(key);
    if (it != parc_cache_.end()) {
      CountScoreCache(true);
      return it->second;
    }
  }
  CountScoreCache(false);
  const DatasetSamples& samples = world_->Samples(dataset);
  const Matrix features = world_->ExtractFeatures(model, dataset);
  Result<double> score =
      ParcScore(features, samples.labels, samples.num_classes);
  TG_CHECK_MSG(score.ok(), score.status().ToString().c_str());
  std::lock_guard<std::mutex> lock(cache_mu_);
  parc_cache_.emplace(key, score.value());
  return score.value();
}

double ModelZoo::HScoreOf(size_t model, size_t dataset) {
  const uint64_t key = PairKey(model, dataset);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = hscore_cache_.find(key);
    if (it != hscore_cache_.end()) {
      CountScoreCache(true);
      return it->second;
    }
  }
  CountScoreCache(false);
  const DatasetSamples& samples = world_->Samples(dataset);
  const Matrix features = world_->ExtractFeatures(model, dataset);
  Result<double> score = HScore(features, samples.labels, samples.num_classes);
  TG_CHECK_MSG(score.ok(), score.status().ToString().c_str());
  std::lock_guard<std::mutex> lock(cache_mu_);
  hscore_cache_.emplace(key, score.value());
  return score.value();
}

}  // namespace tg::zoo
