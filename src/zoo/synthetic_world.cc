#include "zoo/synthetic_world.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "numeric/stats.h"
#include "util/check.h"

namespace tg::zoo {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

std::vector<double> NormalizedAbs(std::vector<double> v) {
  double norm = 0.0;
  for (double& x : v) {
    x = std::fabs(x);
    norm += x * x;
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  for (double& x : v) x /= norm;
  return v;
}

// Orthonormalizes the columns of a (rows x cols, rows >= cols) in place.
Matrix GramSchmidt(Matrix a) {
  const size_t rows = a.rows();
  const size_t cols = a.cols();
  for (size_t c = 0; c < cols; ++c) {
    for (size_t prev = 0; prev < c; ++prev) {
      double dot = 0.0;
      for (size_t r = 0; r < rows; ++r) dot += a(r, c) * a(r, prev);
      for (size_t r = 0; r < rows; ++r) a(r, c) -= dot * a(r, prev);
    }
    double norm = 0.0;
    for (size_t r = 0; r < rows; ++r) norm += a(r, c) * a(r, c);
    norm = std::sqrt(std::max(norm, 1e-12));
    for (size_t r = 0; r < rows; ++r) a(r, c) /= norm;
  }
  return a;
}

}  // namespace

SyntheticWorld::SyntheticWorld(const Catalog& catalog,
                               const WorldConfig& config)
    : config_(config), catalog_(&catalog) {
  TG_CHECK_GE(config.ambient_dim, config.latent_dim);
  Rng root(config.seed);

  Rng basis_rng = root.Fork(1);
  basis_ = GramSchmidt(Matrix::Gaussian(config.ambient_dim,
                                        config.latent_dim, &basis_rng));

  // --- Dataset latents: group direction + dataset-specific component ---
  std::map<std::pair<Modality, DomainGroup>, std::vector<double>> group_dirs;
  Rng group_rng = root.Fork(2);
  Rng dataset_rng = root.Fork(3);
  const double coherence = config.group_coherence;
  for (const DatasetInfo& d : catalog.datasets) {
    auto key = std::make_pair(d.modality, d.domain);
    auto it = group_dirs.find(key);
    if (it == group_dirs.end()) {
      std::vector<double> dir(config.latent_dim);
      for (double& x : dir) x = group_rng.NextGaussian();
      it = group_dirs.emplace(key, std::move(dir)).first;
    }
    std::vector<double> z(config.latent_dim);
    const double own = std::sqrt(1.0 - coherence * coherence);
    for (size_t l = 0; l < config.latent_dim; ++l) {
      z[l] = coherence * it->second[l] + own * dataset_rng.NextGaussian();
    }
    dataset_latent_.push_back(NormalizedAbs(std::move(z)));
  }

  // --- Dataset difficulty: classes raise it, samples lower it ---
  {
    std::vector<double> log_classes;
    std::vector<double> log_samples;
    for (const DatasetInfo& d : catalog.datasets) {
      log_classes.push_back(std::log(static_cast<double>(d.num_classes)));
      log_samples.push_back(
          std::log(static_cast<double>(std::max<size_t>(d.num_samples, 1))));
    }
    const std::vector<double> nc = MinMaxNormalize(log_classes);
    const std::vector<double> ns = MinMaxNormalize(log_samples);
    Rng diff_rng = root.Fork(4);
    dataset_difficulty_.resize(catalog.datasets.size());
    for (size_t i = 0; i < catalog.datasets.size(); ++i) {
      const double raw = 0.55 * nc[i] + 0.25 * (1.0 - ns[i]) +
                         0.20 * diff_rng.NextDouble();
      dataset_difficulty_[i] = std::clamp(raw, 0.0, 1.0);
    }
  }

  // --- Architecture-domain inductive-bias table ---
  {
    DomainGroup max_domain = 0;
    for (const DatasetInfo& d : catalog.datasets) {
      max_domain = std::max(max_domain, d.domain);
    }
    Rng bias_rng = root.Fork(5);
    arch_domain_bias_.assign(
        kNumArchitectures,
        std::vector<double>(static_cast<size_t>(max_domain) + 1, 0.0));
    for (auto& row : arch_domain_bias_) {
      for (double& b : row) b = bias_rng.NextGaussian(0.0, 1.0);
    }
  }

  // --- Model parameters ---
  // Capacity: normalized log parameter count within each modality.
  std::vector<double> capacity(catalog.models.size(), 0.5);
  for (Modality modality : {Modality::kImage, Modality::kText}) {
    std::vector<size_t> idx;
    std::vector<double> log_params;
    for (size_t m = 0; m < catalog.models.size(); ++m) {
      if (catalog.models[m].modality != modality) continue;
      idx.push_back(m);
      log_params.push_back(
          std::log(catalog.models[m].num_parameters_millions));
    }
    const std::vector<double> norm = MinMaxNormalize(log_params);
    for (size_t i = 0; i < idx.size(); ++i) capacity[idx[i]] = norm[i];
  }

  Rng model_rng = root.Fork(6);
  model_params_.reserve(catalog.models.size());
  pretrain_accuracy_.reserve(catalog.models.size());
  for (size_t m = 0; m < catalog.models.size(); ++m) {
    const ModelInfo& info = catalog.models[m];
    ModelParams params;
    params.capacity = capacity[m];
    params.quality = model_rng.NextGaussian();

    // Skill: the source dataset's latent plus noise -- models genuinely
    // transfer best toward tasks resembling what they were trained on.
    const std::vector<double>& source = dataset_latent_[info.source_dataset];
    std::vector<double> skill(config.latent_dim);
    for (size_t l = 0; l < config.latent_dim; ++l) {
      skill[l] = source[l] + config.skill_noise * model_rng.NextGaussian() /
                                 std::sqrt(static_cast<double>(
                                     config.latent_dim));
    }
    params.skill = NormalizedAbs(std::move(skill));

    params.projection = Matrix::Gaussian(
        config.latent_dim, config.feature_dim, &model_rng, 0.0,
        1.0 / std::sqrt(static_cast<double>(config.latent_dim)));
    params.bias.resize(config.feature_dim);
    for (double& b : params.bias) b = 0.1 * model_rng.NextGaussian();
    // Cleaner features for higher capacity / better recipes: quality leaks
    // into what LogME and friends can observe, but only weakly.
    params.feature_noise =
        0.45 * (1.0 - 0.35 * params.capacity -
                0.25 * (Sigmoid(params.quality) - 0.5));

    // Pre-training accuracy (public metadata): capacity plus a noisy echo
    // of the hidden quality, damped by source difficulty.
    const double source_ease = 1.0 - dataset_difficulty_[info.source_dataset];
    const double acc = 0.45 + 0.28 * params.capacity +
                       0.10 * Sigmoid(params.quality) + 0.12 * source_ease +
                       0.02 * model_rng.NextGaussian();
    pretrain_accuracy_.push_back(std::clamp(acc, 0.30, 0.99));
    model_params_.push_back(std::move(params));
  }

  samples_ready_.assign(catalog.datasets.size(), false);
  samples_cache_.resize(catalog.datasets.size());
}

double SyntheticWorld::Affinity(size_t model, size_t dataset) const {
  const std::vector<double>& u = model_params_[model].skill;
  const std::vector<double>& z = dataset_latent_[dataset];
  double dot = 0.0;
  for (size_t l = 0; l < u.size(); ++l) dot += u[l] * z[l];
  return std::clamp(dot, 0.0, 1.0);  // both unit non-negative vectors
}

double SyntheticWorld::Capacity(size_t model) const {
  return model_params_[model].capacity;
}

double SyntheticWorld::Quality(size_t model) const {
  return model_params_[model].quality;
}

double SyntheticWorld::ArchDomainBias(Architecture arch,
                                      DomainGroup domain) const {
  const size_t a = static_cast<size_t>(arch);
  TG_CHECK_LT(a, arch_domain_bias_.size());
  TG_CHECK_LT(static_cast<size_t>(domain), arch_domain_bias_[a].size());
  return arch_domain_bias_[a][static_cast<size_t>(domain)];
}

double SyntheticWorld::Difficulty(size_t dataset) const {
  return dataset_difficulty_[dataset];
}

double SyntheticWorld::PretrainAccuracy(size_t model) const {
  return pretrain_accuracy_[model];
}

const std::vector<double>& SyntheticWorld::DatasetLatent(
    size_t dataset) const {
  return dataset_latent_[dataset];
}

std::vector<double> SyntheticWorld::ClassCenter(size_t dataset,
                                                int label) const {
  // Deterministic per (dataset, class) so source prototypes and generated
  // samples agree without materializing huge source datasets.
  Rng rng(config_.seed ^ (0x9E3779B97F4A7C15ULL * (dataset + 1)) ^
          (0xC2B2AE3D27D4EB4FULL * static_cast<uint64_t>(label + 1)));
  const std::vector<double>& z = dataset_latent_[dataset];
  std::vector<double> center(config_.latent_dim);
  for (size_t l = 0; l < config_.latent_dim; ++l) {
    center[l] = z[l] * rng.NextGaussian() * 2.0;
  }
  return center;
}

const DatasetSamples& SyntheticWorld::Samples(size_t dataset) {
  TG_CHECK_LT(dataset, samples_cache_.size());
  std::lock_guard<std::mutex> lock(samples_mu_);
  if (samples_ready_[dataset]) return samples_cache_[dataset];

  const DatasetInfo& info = catalog_->datasets[dataset];
  const int num_classes =
      std::min(info.num_classes, config_.max_generated_classes);
  const size_t n = std::min<size_t>(
      std::max<size_t>(info.num_samples, 64), config_.max_samples_per_dataset);

  DatasetSamples samples;
  samples.num_classes = num_classes;
  samples.latent = Matrix(n, config_.latent_dim);
  samples.ambient = Matrix(n, config_.ambient_dim);
  samples.labels.resize(n);

  Rng rng(config_.seed ^ (0xA24BAED4963EE407ULL * (dataset + 17)));
  const std::vector<double>& z = dataset_latent_[dataset];
  std::vector<std::vector<double>> centers(num_classes);
  for (int y = 0; y < num_classes; ++y) centers[y] = ClassCenter(dataset, y);

  for (size_t i = 0; i < n; ++i) {
    const int y = static_cast<int>(i % static_cast<size_t>(num_classes));
    samples.labels[i] = y;
    for (size_t l = 0; l < config_.latent_dim; ++l) {
      // Within-class spread stays inside the dataset's latent directions.
      samples.latent(i, l) =
          centers[y][l] +
          config_.within_class_spread * z[l] * rng.NextGaussian();
    }
    // Ambient embedding: x = B l + noise.
    for (size_t a = 0; a < config_.ambient_dim; ++a) {
      double acc = 0.0;
      for (size_t l = 0; l < config_.latent_dim; ++l) {
        acc += basis_(a, l) * samples.latent(i, l);
      }
      samples.ambient(i, a) = acc + config_.ambient_noise * rng.NextGaussian();
    }
  }
  samples_cache_[dataset] = std::move(samples);
  samples_ready_[dataset] = true;
  return samples_cache_[dataset];
}

Matrix SyntheticWorld::ExtractFromLatent(const ModelParams& params,
                                         const Matrix& latent,
                                         uint64_t noise_stream) const {
  Rng noise(config_.seed ^ (0xD6E8FEB86659FD93ULL * (noise_stream + 3)));
  Matrix features(latent.rows(), config_.feature_dim);
  std::vector<double> scaled(config_.latent_dim);
  for (size_t i = 0; i < latent.rows(); ++i) {
    for (size_t l = 0; l < config_.latent_dim; ++l) {
      scaled[l] = params.skill[l] * latent(i, l) *
                  std::sqrt(static_cast<double>(config_.latent_dim));
    }
    for (size_t f = 0; f < config_.feature_dim; ++f) {
      double acc = params.bias[f];
      for (size_t l = 0; l < config_.latent_dim; ++l) {
        acc += scaled[l] * params.projection(l, f);
      }
      features(i, f) =
          std::tanh(acc) + params.feature_noise * noise.NextGaussian();
    }
  }
  return features;
}

Matrix SyntheticWorld::ExtractFeatures(size_t model, size_t dataset) {
  TG_CHECK_LT(model, model_params_.size());
  const DatasetSamples& samples = Samples(dataset);
  return ExtractFromLatent(model_params_[model], samples.latent,
                           model * 131071 + dataset);
}

Matrix SyntheticWorld::SourceProbabilities(size_t model, size_t dataset) {
  TG_CHECK_LT(model, model_params_.size());
  const ModelParams& params = model_params_[model];
  const size_t source = catalog_->models[model].source_dataset;
  const int k = static_cast<int>(std::min<size_t>(
      config_.max_source_prototypes,
      static_cast<size_t>(
          std::max(2, std::min(catalog_->datasets[source].num_classes,
                               config_.max_generated_classes)))));

  // Source-class prototypes in the model's feature space.
  Matrix prototypes(static_cast<size_t>(k), config_.feature_dim);
  for (int y = 0; y < k; ++y) {
    Matrix center(1, config_.latent_dim);
    const std::vector<double> c = ClassCenter(source, y);
    for (size_t l = 0; l < config_.latent_dim; ++l) center(0, l) = c[l];
    Matrix f = ExtractFromLatent(params, center,
                                 /*noise_stream=*/model * 131 + source);
    for (size_t d = 0; d < config_.feature_dim; ++d) {
      prototypes(static_cast<size_t>(y), d) = f(0, d);
    }
  }

  const Matrix features = ExtractFeatures(model, dataset);
  Matrix probs(features.rows(), static_cast<size_t>(k));
  const double temperature = 0.5 * static_cast<double>(config_.feature_dim);
  for (size_t i = 0; i < features.rows(); ++i) {
    double max_logit = -1e300;
    std::vector<double> logits(static_cast<size_t>(k));
    for (int y = 0; y < k; ++y) {
      double dist2 = 0.0;
      for (size_t d = 0; d < config_.feature_dim; ++d) {
        const double delta =
            features(i, d) - prototypes(static_cast<size_t>(y), d);
        dist2 += delta * delta;
      }
      logits[static_cast<size_t>(y)] = -dist2 / temperature;
      max_logit = std::max(max_logit, logits[static_cast<size_t>(y)]);
    }
    double total = 0.0;
    for (int y = 0; y < k; ++y) {
      const double e = std::exp(logits[static_cast<size_t>(y)] - max_logit);
      probs(i, static_cast<size_t>(y)) = e;
      total += e;
    }
    for (int y = 0; y < k; ++y) probs(i, static_cast<size_t>(y)) /= total;
  }
  return probs;
}

std::vector<int> SyntheticWorld::SourceHardLabels(size_t model,
                                                  size_t dataset) {
  const Matrix probs = SourceProbabilities(model, dataset);
  std::vector<int> labels(probs.rows());
  for (size_t i = 0; i < probs.rows(); ++i) {
    size_t best = 0;
    for (size_t y = 1; y < probs.cols(); ++y) {
      if (probs(i, y) > probs(i, best)) best = y;
    }
    labels[i] = static_cast<int>(best);
  }
  return labels;
}

}  // namespace tg::zoo
