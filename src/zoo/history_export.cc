#include "zoo/history_export.h"

#include "util/csv.h"
#include "util/string_util.h"

namespace tg::zoo {

Status ExportTrainingHistoryCsv(ModelZoo* zoo, Modality modality,
                                const std::string& path,
                                const HistoryExportOptions& options) {
  CsvWriter csv(path);
  if (!csv.ok()) return Status::Internal("cannot open for writing: " + path);

  std::vector<std::string> header = {"model", "architecture",
                                     "source_dataset", "dataset",
                                     "finetune_accuracy"};
  if (options.include_logme) header.push_back("logme");
  csv.WriteRow(header);

  for (size_t d : zoo->PublicDatasets(modality)) {
    for (size_t m : zoo->ModelsOfModality(modality)) {
      const ModelInfo& model = zoo->models()[m];
      std::vector<std::string> row = {
          model.name, ArchitectureName(model.architecture),
          zoo->datasets()[model.source_dataset].name,
          zoo->datasets()[d].name,
          FormatDouble(zoo->FineTuneAccuracy(m, d, options.method), 6)};
      if (options.include_logme) {
        row.push_back(FormatDouble(zoo->LogMe(m, d), 6));
      }
      csv.WriteRow(row);
    }
  }
  return csv.Close();
}

}  // namespace tg::zoo
