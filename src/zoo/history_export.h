// Export of the collected per-pair training history (fine-tuning accuracy +
// transferability scores) as CSV, the tabular artifact external tooling or
// notebooks would consume.
#ifndef TG_ZOO_HISTORY_EXPORT_H_
#define TG_ZOO_HISTORY_EXPORT_H_

#include <string>

#include "util/status.h"
#include "zoo/model_zoo.h"

namespace tg::zoo {

struct HistoryExportOptions {
  FineTuneMethod method = FineTuneMethod::kFullFineTune;
  // Including LogME makes the export slower on a cold cache (one LogME run
  // per pair).
  bool include_logme = true;
};

// Writes one row per (model, public dataset) pair of the modality:
//   model,architecture,source_dataset,dataset,finetune_accuracy[,logme]
Status ExportTrainingHistoryCsv(ModelZoo* zoo, Modality modality,
                                const std::string& path,
                                const HistoryExportOptions& options = {});

}  // namespace tg::zoo

#endif  // TG_ZOO_HISTORY_EXPORT_H_
