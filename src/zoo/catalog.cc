#include "zoo/catalog.h"

#include <algorithm>
#include <array>
#include <string>

#include "graph/alias_table.h"
#include "util/check.h"
#include "util/rng.h"

namespace tg::zoo {
namespace {

// --- Image domain groups ---
// 0 generic natural, 1 scenes, 2 fine-grained animals, 3 plants/food,
// 4 vehicles, 5 textures/art, 6 digits/ocr/signs, 7 medical, 8 aerial,
// 9 synthetic shapes/pose, 10 sketches/domain-shifted, 11 faces/people.
struct DatasetSeed {
  const char* name;
  size_t samples;
  int classes;
  DomainGroup domain;
};

// The paper's 8 image evaluation targets (Table III, exact counts).
constexpr DatasetSeed kImageTargets[] = {
    {"caltech101", 3060, 101, 0},
    {"cifar100", 50000, 100, 0},
    {"dtd", 1880, 47, 5},
    {"flowers", 1020, 10, 3},
    {"pets", 3680, 37, 2},
    {"smallnorb_elevation", 24300, 18, 9},
    {"stanfordcars", 8144, 196, 4},
    {"svhn", 73257, 10, 6},
};

// Additional public image datasets where model performance barely varies
// (paper Fig. 6: e.g. eurosat, std 0.005) -- kept in the graph, excluded
// from evaluation.
constexpr DatasetSeed kImageLowVariance[] = {
    {"eurosat", 27000, 10, 8},
    {"cifar10", 50000, 10, 0},
    {"mnist", 60000, 10, 6},
    {"beans", 1034, 3, 3},
};

// 61 image source datasets (pre-training corpora / similarity anchors).
constexpr DatasetSeed kImageSources[] = {
    {"imagenet", 1281167, 1000, 0},
    {"imagenet21k", 14197122, 21841, 0},
    {"places365", 1803460, 365, 1},
    {"inaturalist", 675170, 10000, 2},
    {"coco", 118287, 80, 0},
    {"openimages", 1743042, 601, 0},
    {"sun397", 108754, 397, 1},
    {"food101", 101000, 101, 3},
    {"cub200", 11788, 200, 2},
    {"fgvc_aircraft", 10000, 100, 4},
    {"oxford_buildings", 5062, 17, 1},
    {"celeba", 202599, 40, 11},
    {"ffhq", 70000, 2, 11},
    {"lsun", 1000000, 10, 1},
    {"ade20k", 25574, 150, 1},
    {"cityscapes", 25000, 30, 1},
    {"kitti", 14999, 9, 4},
    {"nyu_depth", 1449, 27, 1},
    {"pascal_voc", 11530, 20, 0},
    {"wikiart", 81444, 27, 5},
    {"sketchy", 75471, 125, 10},
    {"quickdraw", 50000000, 345, 10},
    {"domainnet_real", 175327, 345, 0},
    {"domainnet_painting", 75759, 345, 5},
    {"domainnet_clipart", 48837, 345, 10},
    {"domainnet_sketch", 70386, 345, 10},
    {"office_home", 15588, 65, 0},
    {"visda", 280157, 12, 9},
    {"web_cars", 63000, 431, 4},
    {"herbarium", 46469, 683, 3},
    {"plantvillage", 54305, 38, 3},
    {"plant_pathology", 3651, 4, 3},
    {"chest_xray", 112120, 14, 7},
    {"isic_skin", 25331, 9, 7},
    {"retinopathy", 35126, 5, 7},
    {"patch_camelyon", 327680, 2, 7},
    {"resisc45", 31500, 45, 8},
    {"aid_aerial", 10000, 30, 8},
    {"ucmerced", 2100, 21, 8},
    {"so2sat", 400673, 17, 8},
    {"bigearthnet", 590326, 43, 8},
    {"spacenet", 24586, 2, 8},
    {"clevr", 70000, 8, 9},
    {"dsprites", 737280, 6, 9},
    {"shapes3d", 480000, 6, 9},
    {"kinetics_frames", 240000, 400, 0},
    {"ucf101_frames", 13320, 101, 0},
    {"moments_frames", 802264, 339, 0},
    {"imagenet_sketch", 50889, 1000, 10},
    {"imagenet_r", 30000, 200, 10},
    {"imagenet_a", 7500, 200, 0},
    {"objectnet", 50000, 313, 0},
    {"stl10", 5000, 10, 0},
    {"tiny_imagenet", 100000, 200, 0},
    {"cinic10", 270000, 10, 0},
    {"fashion_mnist", 60000, 10, 6},
    {"emnist", 697932, 62, 6},
    {"kmnist", 60000, 10, 6},
    {"usps", 7291, 10, 6},
    {"gtsrb", 39209, 43, 6},
    {"fer2013", 35887, 7, 11},
};

// --- Text domain groups ---
// 0 web corpus/generic, 1 social media, 2 reviews/sentiment, 3 linguistic
// acceptability, 4 news/encyclopedic, 5 inference/QA.
// The paper's 8 text evaluation targets (Table III, exact counts; the
// printed class count for tweet_eval/offensive is kept as-is).
constexpr DatasetSeed kTextTargets[] = {
    {"glue/cola", 8550, 2, 3},
    {"glue/sst2", 70000, 2, 2},
    {"rotten_tomatoes", 10662, 2, 2},
    {"tweet_eval/emotion", 5050, 4, 1},
    {"tweet_eval/hate", 13000, 2, 1},
    {"tweet_eval/irony", 4600, 2, 1},
    {"tweet_eval/offensive", 24300, 18, 1},
    {"tweet_eval/sentiment", 59900, 3, 1},
};

// 16 text source datasets.
constexpr DatasetSeed kTextSources[] = {
    {"wikipedia", 6000000, 2, 4},
    {"bookcorpus", 74004228, 2, 0},
    {"c4", 364868892, 2, 0},
    {"openwebtext", 8013769, 2, 0},
    {"the_pile", 210607728, 2, 0},
    {"amazon_reviews", 3650000, 5, 2},
    {"yelp_reviews", 650000, 5, 2},
    {"imdb", 50000, 2, 2},
    {"ag_news", 127600, 4, 4},
    {"dbpedia", 630000, 14, 4},
    {"yahoo_answers", 1460000, 10, 5},
    {"snli", 570152, 3, 5},
    {"mnli", 432702, 3, 5},
    {"squad", 130319, 2, 5},
    {"common_crawl_news", 708241, 2, 4},
    {"twitter_corpus", 1600000, 3, 1},
};

struct VariantSeed {
  const char* suffix;
  double params_millions;
  int input_size;
};

struct FamilySeed {
  Architecture arch;
  std::array<VariantSeed, 4> variants;
};

constexpr FamilySeed kImageFamilies[] = {
    {Architecture::kResNet,
     {{{"18", 11.7, 224}, {"34", 21.8, 224}, {"50", 25.6, 224},
       {"101", 44.5, 224}}}},
    {Architecture::kViT,
     {{{"tiny", 5.7, 224}, {"small", 22.1, 224}, {"base", 86.6, 224},
       {"large", 304.3, 384}}}},
    {Architecture::kSwin,
     {{{"tiny", 28.3, 224}, {"small", 49.6, 224}, {"base", 87.8, 224},
       {"large", 196.5, 384}}}},
    {Architecture::kConvNeXT,
     {{{"tiny", 28.6, 224}, {"small", 50.2, 224}, {"base", 88.6, 224},
       {"large", 197.8, 384}}}},
    {Architecture::kMobileNet,
     {{{"v2-0.5", 2.0, 160}, {"v2-1.0", 3.5, 224}, {"v3-small", 2.5, 224},
       {"v3-large", 5.5, 224}}}},
    {Architecture::kEfficientNet,
     {{{"b0", 5.3, 224}, {"b2", 9.1, 260}, {"b4", 19.3, 380},
       {"b6", 43.0, 528}}}},
    {Architecture::kDenseNet,
     {{{"121", 8.0, 224}, {"161", 28.7, 224}, {"169", 14.1, 224},
       {"201", 20.0, 224}}}},
    {Architecture::kRegNet,
     {{{"y-400mf", 4.3, 224}, {"y-1.6gf", 11.2, 224}, {"y-8gf", 39.2, 224},
       {"y-32gf", 145.0, 224}}}},
};

constexpr FamilySeed kTextFamilies[] = {
    {Architecture::kBert,
     {{{"tiny", 4.4, 128}, {"small", 29.1, 512}, {"base", 110.0, 512},
       {"large", 340.0, 512}}}},
    {Architecture::kRoberta,
     {{{"small", 51.0, 512}, {"base", 125.0, 512}, {"large", 355.0, 512},
       {"xlarge", 550.0, 512}}}},
    {Architecture::kElectra,
     {{{"small", 14.0, 512}, {"base", 110.0, 512}, {"large", 335.0, 512},
       {"xlarge", 500.0, 512}}}},
    {Architecture::kFnet,
     {{{"small", 40.0, 512}, {"base", 83.0, 512}, {"large", 238.0, 512},
       {"xlarge", 400.0, 512}}}},
    {Architecture::kDistilBert,
     {{{"tiny", 15.0, 512}, {"base", 66.0, 512}, {"multi", 134.0, 512},
       {"squad", 66.4, 512}}}},
    {Architecture::kAlbert,
     {{{"base", 11.8, 512}, {"large", 17.9, 512}, {"xlarge", 58.9, 512},
       {"xxlarge", 223.0, 512}}}},
    {Architecture::kDeberta,
     {{{"small", 44.0, 512}, {"base", 139.0, 512}, {"large", 405.0, 512},
       {"xlarge", 750.0, 512}}}},
    {Architecture::kGptNeo,
     {{{"125m", 125.0, 2048}, {"350m", 350.0, 2048}, {"1.3b", 1300.0, 2048},
       {"2.7b", 2700.0, 2048}}}},
};

DatasetInfo MakeDataset(const DatasetSeed& seed, Modality modality,
                        bool is_public, bool is_target) {
  DatasetInfo info;
  info.name = seed.name;
  info.modality = modality;
  info.num_samples = seed.samples;
  info.num_classes = seed.classes;
  info.domain = seed.domain;
  info.is_public = is_public;
  info.is_evaluation_target = is_target;
  return info;
}

// Pre-training source selection: the first few "hub" corpora dominate, as
// on real model hubs where most checkpoints share ImageNet/Wikipedia-style
// pre-training.
size_t SampleSource(const std::vector<size_t>& source_indices, Rng* rng) {
  std::vector<double> weights(source_indices.size(), 1.0);
  const size_t hubs = std::min<size_t>(6, weights.size());
  for (size_t i = 0; i < hubs; ++i) weights[i] = 12.0;
  AliasTable table(weights);
  return source_indices[table.Sample(rng)];
}

void AppendModels(Modality modality, int count,
                  const FamilySeed* families, size_t num_families,
                  const std::vector<size_t>& source_indices, Rng* rng,
                  std::vector<ModelInfo>* models) {
  int made = 0;
  int copy = 0;
  while (made < count) {
    for (size_t f = 0; f < num_families && made < count; ++f) {
      for (const VariantSeed& variant : families[f].variants) {
        if (made >= count) break;
        ModelInfo m;
        m.modality = modality;
        m.architecture = families[f].arch;
        m.source_dataset = SampleSource(source_indices, rng);
        // Copies of the same family/variant differ in pre-training source,
        // hyperparameters and (slightly) parameter count, like hub uploads.
        const double jitter = 1.0 + 0.05 * rng->NextGaussian();
        m.num_parameters_millions =
            variant.params_millions * std::max(jitter, 0.5);
        m.memory_mb = m.num_parameters_millions * 4.0;  // fp32 weights
        m.input_size = variant.input_size;
        m.pretrain_accuracy = 0.0;  // filled by the synthetic world
        m.name = std::string(ArchitectureName(families[f].arch)) + "-" +
                 variant.suffix + "-v" + std::to_string(copy);
        models->push_back(std::move(m));
        ++made;
      }
    }
    ++copy;
  }
}

}  // namespace

Catalog BuildCatalog(const CatalogOptions& options) {
  Catalog catalog;
  Rng rng(options.seed);

  // --- Datasets: image public, image sources, text public, text sources ---
  for (const DatasetSeed& seed : kImageTargets) {
    catalog.datasets.push_back(
        MakeDataset(seed, Modality::kImage, /*is_public=*/true,
                    /*is_target=*/true));
  }
  for (const DatasetSeed& seed : kImageLowVariance) {
    catalog.datasets.push_back(
        MakeDataset(seed, Modality::kImage, /*is_public=*/true,
                    /*is_target=*/false));
  }
  std::vector<size_t> image_sources;
  for (const DatasetSeed& seed : kImageSources) {
    image_sources.push_back(catalog.datasets.size());
    catalog.datasets.push_back(
        MakeDataset(seed, Modality::kImage, /*is_public=*/false,
                    /*is_target=*/false));
  }
  for (const DatasetSeed& seed : kTextTargets) {
    catalog.datasets.push_back(
        MakeDataset(seed, Modality::kText, /*is_public=*/true,
                    /*is_target=*/true));
  }
  std::vector<size_t> text_sources;
  for (const DatasetSeed& seed : kTextSources) {
    text_sources.push_back(catalog.datasets.size());
    catalog.datasets.push_back(
        MakeDataset(seed, Modality::kText, /*is_public=*/false,
                    /*is_target=*/false));
  }
  // Scale check against the paper: 73 image datasets, 24 text datasets.
  TG_CHECK_EQ(image_sources.size(), 61u);
  TG_CHECK_EQ(text_sources.size(), 16u);

  // --- Models ---
  AppendModels(Modality::kImage, options.num_image_models, kImageFamilies,
               std::size(kImageFamilies), image_sources, &rng,
               &catalog.models);
  AppendModels(Modality::kText, options.num_text_models, kTextFamilies,
               std::size(kTextFamilies), text_sources, &rng, &catalog.models);
  return catalog;
}

}  // namespace tg::zoo
