#include "zoo/types.h"

namespace tg::zoo {

const char* ModalityName(Modality modality) {
  switch (modality) {
    case Modality::kImage:
      return "image";
    case Modality::kText:
      return "text";
  }
  return "?";
}

const char* ArchitectureName(Architecture arch) {
  switch (arch) {
    case Architecture::kResNet:
      return "resnet";
    case Architecture::kViT:
      return "vit";
    case Architecture::kSwin:
      return "swin";
    case Architecture::kConvNeXT:
      return "convnext";
    case Architecture::kMobileNet:
      return "mobilenet";
    case Architecture::kEfficientNet:
      return "efficientnet";
    case Architecture::kDenseNet:
      return "densenet";
    case Architecture::kRegNet:
      return "regnet";
    case Architecture::kBert:
      return "bert";
    case Architecture::kRoberta:
      return "roberta";
    case Architecture::kElectra:
      return "electra";
    case Architecture::kFnet:
      return "fnet";
    case Architecture::kDistilBert:
      return "distilbert";
    case Architecture::kAlbert:
      return "albert";
    case Architecture::kDeberta:
      return "deberta";
    case Architecture::kGptNeo:
      return "gpt-neo";
  }
  return "?";
}

const char* FineTuneMethodName(FineTuneMethod method) {
  switch (method) {
    case FineTuneMethod::kFullFineTune:
      return "full-finetune";
    case FineTuneMethod::kLora:
      return "lora";
  }
  return "?";
}

}  // namespace tg::zoo
