// ModelZoo: the top-level registry joining the catalog, the synthetic world,
// the fine-tune simulator, probe-network dataset representations, dataset
// similarity, and cached transferability scores. This is "stage 1" of the
// paper's Figure 5 pipeline: everything the graph construction and the
// prediction models consume is collected (and memoized) here.
#ifndef TG_ZOO_MODEL_ZOO_H_
#define TG_ZOO_MODEL_ZOO_H_

#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "features/probe_network.h"
#include "zoo/catalog.h"
#include "zoo/finetune_simulator.h"
#include "zoo/synthetic_world.h"
#include "zoo/types.h"

namespace tg::zoo {

enum class DatasetRepresentation { kDomainSimilarity, kTask2Vec };

struct ModelZooConfig {
  CatalogOptions catalog;
  WorldConfig world;
  FineTuneConfig finetune;
  ProbeNetworkConfig probe;
};

class ModelZoo {
 public:
  explicit ModelZoo(const ModelZooConfig& config = {});

  ModelZoo(const ModelZoo&) = delete;
  ModelZoo& operator=(const ModelZoo&) = delete;

  // --- Catalog access ---
  const Catalog& catalog() const { return catalog_; }
  const std::vector<DatasetInfo>& datasets() const {
    return catalog_.datasets;
  }
  const std::vector<ModelInfo>& models() const { return catalog_.models; }
  size_t num_datasets() const { return catalog_.datasets.size(); }
  size_t num_models() const { return catalog_.models.size(); }

  std::vector<size_t> DatasetsOfModality(Modality modality) const;
  std::vector<size_t> ModelsOfModality(Modality modality) const;
  // Public datasets of the modality (graph + history participants).
  std::vector<size_t> PublicDatasets(Modality modality) const;
  // The evaluation targets of the modality (Table III rows with variance).
  std::vector<size_t> EvaluationTargets(Modality modality) const;

  // --- Ground truth & metadata ---
  double FineTuneAccuracy(
      size_t model, size_t dataset,
      FineTuneMethod method = FineTuneMethod::kFullFineTune) const;
  double PretrainAccuracy(size_t model) const;

  // --- Dataset representations & similarity ---
  // Memoized accessors below are thread-safe: scores are deterministic per
  // key, so concurrent misses may compute redundantly but always agree, and
  // the first inserted value wins (parallel leave-one-out targets hit these
  // caches concurrently; see docs/threading.md).
  const std::vector<double>& DatasetEmbedding(size_t dataset,
                                              DatasetRepresentation repr);
  double DatasetSimilarityScore(size_t a, size_t b,
                                DatasetRepresentation repr);

  // --- Transferability scores (cached per pair) ---
  double LogMe(size_t model, size_t dataset);
  double Leep(size_t model, size_t dataset);
  double Nce(size_t model, size_t dataset);
  double Parc(size_t model, size_t dataset);
  double HScoreOf(size_t model, size_t dataset);

  SyntheticWorld& world() { return *world_; }
  const FineTuneSimulator& simulator() const { return *simulator_; }

 private:
  uint64_t PairKey(size_t model, size_t dataset) const {
    return (static_cast<uint64_t>(model) << 32) |
           static_cast<uint64_t>(dataset);
  }

  ModelZooConfig config_;
  Catalog catalog_;
  std::unique_ptr<SyntheticWorld> world_;
  std::unique_ptr<FineTuneSimulator> simulator_;
  std::unique_ptr<ProbeNetwork> probe_;

  // Guards every memoization map below. References into the maps stay valid
  // under concurrent insertion (unordered_map never moves elements).
  std::mutex cache_mu_;
  std::unordered_map<size_t, std::vector<double>> domain_embeddings_;
  std::unordered_map<size_t, std::vector<double>> task2vec_embeddings_;
  std::unordered_map<uint64_t, double> logme_cache_;
  std::unordered_map<uint64_t, double> leep_cache_;
  std::unordered_map<uint64_t, double> nce_cache_;
  std::unordered_map<uint64_t, double> parc_cache_;
  std::unordered_map<uint64_t, double> hscore_cache_;
};

}  // namespace tg::zoo

#endif  // TG_ZOO_MODEL_ZOO_H_
