// Metadata types describing the model zoo: datasets, pre-trained models and
// their architecture families (paper §IV-A). These are the "basic metadata"
// features that learning-based selection strategies consume.
#ifndef TG_ZOO_TYPES_H_
#define TG_ZOO_TYPES_H_

#include <cstddef>
#include <string>
#include <vector>

namespace tg::zoo {

enum class Modality { kImage, kText };

const char* ModalityName(Modality modality);

// Semantic domain of a dataset; datasets in the same domain have correlated
// latent task vectors in the synthetic world (and are therefore genuinely
// more similar under any representation).
using DomainGroup = int;

struct DatasetInfo {
  std::string name;
  Modality modality = Modality::kImage;
  size_t num_samples = 0;
  int num_classes = 2;
  DomainGroup domain = 0;
  // True for the paper's evaluation datasets (Table III); false for the
  // source datasets used only for pre-training and similarity computation.
  bool is_public = false;
  // Public datasets with near-constant fine-tuning accuracy (e.g. eurosat)
  // are excluded from evaluation, as in the paper's Figure 6 discussion.
  bool is_evaluation_target = false;
};

enum class Architecture {
  // Vision families.
  kResNet,
  kViT,
  kSwin,
  kConvNeXT,
  kMobileNet,
  kEfficientNet,
  kDenseNet,
  kRegNet,
  // NLP families.
  kBert,
  kRoberta,
  kElectra,
  kFnet,
  kDistilBert,
  kAlbert,
  kDeberta,
  kGptNeo,
};

const char* ArchitectureName(Architecture arch);

// Number of distinct architecture families (for one-hot metadata encoding).
constexpr int kNumArchitectures = 16;

struct ModelInfo {
  std::string name;
  Modality modality = Modality::kImage;
  Architecture architecture = Architecture::kResNet;
  // Index into the zoo's dataset list; the model was pre-trained there.
  size_t source_dataset = 0;
  double num_parameters_millions = 0.0;
  double memory_mb = 0.0;
  // Image resolution or maximum sequence length.
  int input_size = 224;
  // Accuracy the model achieved on its pre-training dataset.
  double pretrain_accuracy = 0.0;
};

// The fine-tuning procedure used to produce ground truth (paper §VII-F).
enum class FineTuneMethod {
  kFullFineTune,  // SGD, cyclical LR, all layers (the default protocol)
  kLora,          // frozen backbone + low-rank adapters
};

const char* FineTuneMethodName(FineTuneMethod method);

}  // namespace tg::zoo

#endif  // TG_ZOO_TYPES_H_
