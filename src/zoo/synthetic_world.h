// The synthetic model-zoo world: a generative latent-task model standing in
// for real pre-trained checkpoints and datasets (see DESIGN.md,
// "Substitutions").
//
// Geometry:
//   * Every dataset d has a latent task vector z_d in R^L; datasets in the
//     same semantic domain share a group direction (coherence-weighted), so
//     dataset similarity is real, not annotated.
//   * Every model m has a transfer-skill vector u_m inherited from its
//     pre-training source dataset (plus noise), a capacity (from parameter
//     count), and a hidden training-recipe quality q_m that is visible only
//     through training history -- the signal graph-based selection can
//     recover and metadata-based selection cannot.
//   * Dataset samples are Gaussian mixtures whose class centers live in the
//     latent directions weighted by z_d, embedded into an ambient space by a
//     fixed orthonormal basis B.
//   * A model's feature extractor passes latent coordinate l scaled by
//     u_m[l] through a fixed random projection + tanh, with feature noise
//     shrinking in capacity/quality. Class separation in the extracted
//     features is therefore governed by sum_l |u_m[l]| * |z_d[l]| -- the same
//     affinity that drives fine-tuning accuracy -- so estimators like LogME
//     and LEEP measure a *noisy realization* of transferability rather than
//     being handed the answer.
#ifndef TG_ZOO_SYNTHETIC_WORLD_H_
#define TG_ZOO_SYNTHETIC_WORLD_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "numeric/matrix.h"
#include "util/rng.h"
#include "zoo/catalog.h"
#include "zoo/types.h"

namespace tg::zoo {

struct WorldConfig {
  size_t latent_dim = 16;
  size_t ambient_dim = 48;
  size_t feature_dim = 32;
  // Generated samples per dataset are capped here (metadata keeps the real
  // Table III counts; the cap only bounds simulation cost).
  size_t max_samples_per_dataset = 400;
  // Classes are capped for sample generation on e.g. ImageNet-21k sources.
  int max_generated_classes = 32;
  size_t max_source_prototypes = 12;
  double group_coherence = 0.78;  // dataset latent ~ group direction
  double skill_noise = 0.35;      // model skill ~ source latent
  double within_class_spread = 0.45;
  double ambient_noise = 0.30;
  uint64_t seed = 1234;
};

struct DatasetSamples {
  Matrix latent;   // n x L latent coordinates
  Matrix ambient;  // n x A ambient features (probe-network input)
  std::vector<int> labels;
  int num_classes = 0;
};

class SyntheticWorld {
 public:
  SyntheticWorld(const Catalog& catalog, const WorldConfig& config);

  SyntheticWorld(const SyntheticWorld&) = delete;
  SyntheticWorld& operator=(const SyntheticWorld&) = delete;

  const WorldConfig& config() const { return config_; }
  const Catalog& catalog() const { return *catalog_; }

  // --- Latent quantities ---
  // Task-affinity between a model's skill vector and a dataset's latent
  // vector, in [0, 1]; the dominant driver of fine-tuning accuracy.
  double Affinity(size_t model, size_t dataset) const;
  // Normalized log-parameter-count within the model's modality, in [0, 1].
  double Capacity(size_t model) const;
  // Hidden training-recipe quality, roughly N(0, 1).
  double Quality(size_t model) const;
  // Architecture-domain inductive-bias interaction, zero-mean.
  double ArchDomainBias(Architecture arch, DomainGroup domain) const;
  // Dataset learning difficulty in [0, 1] (classes up, samples down).
  double Difficulty(size_t dataset) const;
  // Accuracy the model reached on its pre-training dataset (metadata).
  double PretrainAccuracy(size_t model) const;

  const std::vector<double>& DatasetLatent(size_t dataset) const;

  // --- Sample-level simulation ---
  // Synthetic samples (lazily generated, cached; thread-safe -- generation
  // is seeded per dataset, so concurrent callers observe identical data).
  const DatasetSamples& Samples(size_t dataset);
  // Model-extracted features on the dataset's samples: n x feature_dim.
  Matrix ExtractFeatures(size_t model, size_t dataset);
  // Soft predictions over the model's source classes on the dataset's
  // samples (for LEEP): n x K, rows sum to 1.
  Matrix SourceProbabilities(size_t model, size_t dataset);
  // Hard source-class assignments (argmax of the above; for NCE).
  std::vector<int> SourceHardLabels(size_t model, size_t dataset);

 private:
  struct ModelParams {
    std::vector<double> skill;  // |u_m|, length L, non-negative
    Matrix projection;          // L x F extractor projection
    std::vector<double> bias;   // F
    double feature_noise = 0.2;
    double capacity = 0.5;
    double quality = 0.0;
  };

  // Class center of dataset d, class y, in latent coordinates.
  std::vector<double> ClassCenter(size_t dataset, int label) const;
  Matrix ExtractFromLatent(const ModelParams& params, const Matrix& latent,
                           uint64_t noise_stream) const;

  WorldConfig config_;
  const Catalog* catalog_;
  Matrix basis_;  // A x L orthonormal columns
  std::vector<std::vector<double>> dataset_latent_;
  std::vector<double> dataset_difficulty_;
  std::vector<ModelParams> model_params_;
  std::vector<double> pretrain_accuracy_;
  // arch x domain bias table.
  std::vector<std::vector<double>> arch_domain_bias_;
  // Guards the lazily-filled sample cache (entries are immutable once
  // ready); the cache vector itself is pre-sized so references stay stable.
  std::mutex samples_mu_;
  std::vector<bool> samples_ready_;
  std::vector<DatasetSamples> samples_cache_;
};

}  // namespace tg::zoo

#endif  // TG_ZOO_SYNTHETIC_WORLD_H_
