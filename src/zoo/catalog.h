// The dataset and model rosters reproducing the paper's experimental scale:
//   * 12 public image datasets (8 evaluation targets with Table III's real
//     sample/class counts + 4 low-variance ones) and 61 image source
//     datasets (used for pre-training and dataset similarity);
//   * 8 public text datasets (Table III) and 16 text source datasets;
//   * 185 heterogeneous image models and 163 text models across 8
//     architecture families per modality, pre-trained on diverse sources.
#ifndef TG_ZOO_CATALOG_H_
#define TG_ZOO_CATALOG_H_

#include <cstdint>
#include <vector>

#include "zoo/types.h"

namespace tg::zoo {

struct Catalog {
  // Datasets of both modalities; public datasets precede source datasets
  // within each modality block.
  std::vector<DatasetInfo> datasets;
  std::vector<ModelInfo> models;
};

struct CatalogOptions {
  int num_image_models = 185;
  int num_text_models = 163;
  uint64_t seed = 7;
};

// Builds the full catalog deterministically from the options.
Catalog BuildCatalog(const CatalogOptions& options = {});

}  // namespace tg::zoo

#endif  // TG_ZOO_CATALOG_H_
