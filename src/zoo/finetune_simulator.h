// Ground-truth generator: the fine-tuning accuracy T(m, d) every selection
// strategy is ultimately judged against (the paper fine-tuned all models on
// all targets -- 1178 GPU-hours per dataset-sweep; we simulate).
//
//   T(m, d) = clamp( base_d + spread_d * zscore_d(signal(m, d)) + noise ),
//   signal  = w_aff * affinity(m, d) + w_cap * capacity(m)
//           + w_q * quality(m) + w_arch * arch_domain_bias(m, d).
//
// base_d falls with dataset difficulty; spread_d is a per-dataset dispersion
// (some public datasets, e.g. eurosat, have near-zero spread -- paper Fig. 6).
// The LoRA variant applies a systematic drop plus per-model and per-pair
// perturbations: correlated with, but not identical to, full fine-tuning
// (paper §VII-F).
#ifndef TG_ZOO_FINETUNE_SIMULATOR_H_
#define TG_ZOO_FINETUNE_SIMULATOR_H_

#include <vector>

#include "zoo/synthetic_world.h"
#include "zoo/types.h"

namespace tg::zoo {

struct FineTuneConfig {
  double weight_affinity = 1.0;
  double weight_capacity = 0.55;
  double weight_quality = 0.75;
  double weight_arch_bias = 0.35;
  double noise = 0.03;
  // Spread bounds for evaluation targets; low-variance public datasets get
  // spread_low_variance instead.
  double spread_min = 0.035;
  double spread_max = 0.12;
  double spread_low_variance = 0.006;
  double spread_source = 0.05;
  double lora_drop = 0.02;
  double lora_model_noise = 0.02;
  double lora_pair_noise = 0.025;
  uint64_t seed = 97;
};

class FineTuneSimulator {
 public:
  // Both references must outlive the simulator.
  FineTuneSimulator(const SyntheticWorld& world,
                    const FineTuneConfig& config = {});

  // Fine-tuning accuracy of the model on the dataset. The model's modality
  // must match the dataset's.
  double Accuracy(size_t model, size_t dataset,
                  FineTuneMethod method = FineTuneMethod::kFullFineTune) const;

  // Accuracy of every same-modality model on the dataset, in model order.
  std::vector<double> AccuracyColumn(
      size_t dataset,
      FineTuneMethod method = FineTuneMethod::kFullFineTune) const;

  double base_accuracy(size_t dataset) const { return base_[dataset]; }
  double spread(size_t dataset) const { return spread_[dataset]; }

 private:
  const SyntheticWorld* world_;
  FineTuneConfig config_;
  std::vector<double> base_;
  std::vector<double> spread_;
  // Full accuracy tables, indexed [dataset][model]; NaN for modality
  // mismatch.
  std::vector<std::vector<double>> full_;
  std::vector<std::vector<double>> lora_;
};

}  // namespace tg::zoo

#endif  // TG_ZOO_FINETUNE_SIMULATOR_H_
