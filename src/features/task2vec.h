// Task2Vec-style dataset embeddings (Achille et al. 2019; paper appendix A):
// the diagonal of the Fisher Information Matrix of a linear softmax head
// trained on probe features, aggregated per feature dimension. The norm
// tracks task complexity; distances track semantic task similarity.
#ifndef TG_FEATURES_TASK2VEC_H_
#define TG_FEATURES_TASK2VEC_H_

#include <vector>

#include "numeric/matrix.h"
#include "util/status.h"

namespace tg {

struct Task2VecConfig {
  int head_epochs = 30;
  double learning_rate = 0.5;
  double l2 = 1e-3;
};

// probe_features: n x p per-sample probe embeddings; labels in
// [0, num_classes). Returns a p-dimensional embedding (per-dimension Fisher
// averaged over classes), L2-normalized.
Result<std::vector<double>> Task2VecEmbedding(
    const Matrix& probe_features, const std::vector<int>& labels,
    int num_classes, const Task2VecConfig& config = {});

}  // namespace tg

#endif  // TG_FEATURES_TASK2VEC_H_
