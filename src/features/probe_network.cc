#include "features/probe_network.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace tg {

ProbeNetwork::ProbeNetwork(size_t input_dim,
                           const ProbeNetworkConfig& config)
    : config_(config) {
  Rng rng(config.seed);
  w1_ = Matrix::Gaussian(input_dim, config.hidden_dim, &rng, 0.0,
                         1.0 / std::sqrt(static_cast<double>(input_dim)));
  w2_ = Matrix::Gaussian(config.hidden_dim, config.embedding_dim, &rng, 0.0,
                         1.0 /
                             std::sqrt(static_cast<double>(config.hidden_dim)));
}

Matrix ProbeNetwork::EmbedSamples(const Matrix& ambient) const {
  TG_CHECK_EQ(ambient.cols(), w1_.rows());
  Matrix hidden = ambient.MatMul(w1_);
  for (size_t r = 0; r < hidden.rows(); ++r) {
    double* row = hidden.RowPtr(r);
    for (size_t c = 0; c < hidden.cols(); ++c) {
      row[c] = row[c] > 0.0 ? row[c] : 0.0;  // ReLU
    }
  }
  return hidden.MatMul(w2_);
}

std::vector<double> ProbeNetwork::DatasetEmbedding(
    const Matrix& ambient) const {
  const Matrix embedded = EmbedSamples(ambient);
  std::vector<double> out(config_.embedding_dim, 0.0);
  for (size_t r = 0; r < embedded.rows(); ++r) {
    const double* row = embedded.RowPtr(r);
    for (size_t c = 0; c < out.size(); ++c) out[c] += row[c];
  }
  double norm = 0.0;
  for (double v : out) norm += v * v;
  norm = std::sqrt(std::max(norm, 1e-12));
  for (double& v : out) v /= norm;
  return out;
}

}  // namespace tg
