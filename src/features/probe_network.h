// The probe (reference) network used to extract dataset representations
// (paper §IV-B; ResNet34 / GPT-Neo in the original). Here: a fixed random
// two-layer network over ambient sample features -- it is never trained, it
// only needs to map semantically similar inputs to nearby embeddings, which
// a fixed Lipschitz map does.
#ifndef TG_FEATURES_PROBE_NETWORK_H_
#define TG_FEATURES_PROBE_NETWORK_H_

#include <cstdint>
#include <vector>

#include "numeric/matrix.h"

namespace tg {

struct ProbeNetworkConfig {
  size_t hidden_dim = 192;
  // High-dimensional, as in the paper (1024-dim ResNet34 features): on the
  // ~260-node graph this is what makes feature-hungry GNN learners overfit
  // relative to the structure-only Node2Vec family (paper Fig. 9).
  size_t embedding_dim = 256;
  uint64_t seed = 55;
};

class ProbeNetwork {
 public:
  ProbeNetwork(size_t input_dim, const ProbeNetworkConfig& config = {});

  size_t embedding_dim() const { return config_.embedding_dim; }

  // Per-sample embeddings: (n x input_dim) -> (n x embedding_dim).
  Matrix EmbedSamples(const Matrix& ambient) const;

  // Domain-Similarity dataset embedding (paper Eq. 3): the aggregated
  // per-sample probe features, L2-normalized.
  std::vector<double> DatasetEmbedding(const Matrix& ambient) const;

 private:
  ProbeNetworkConfig config_;
  Matrix w1_;  // input x hidden
  Matrix w2_;  // hidden x embedding
};

}  // namespace tg

#endif  // TG_FEATURES_PROBE_NETWORK_H_
