#include "features/task2vec.h"

#include <algorithm>
#include <cmath>

namespace tg {
namespace {

// Softmax probabilities of a linear head: logits = x W (p x K weights).
void SoftmaxRow(const double* logits, size_t k, std::vector<double>* probs) {
  double max_logit = logits[0];
  for (size_t j = 1; j < k; ++j) max_logit = std::max(max_logit, logits[j]);
  double total = 0.0;
  for (size_t j = 0; j < k; ++j) {
    (*probs)[j] = std::exp(logits[j] - max_logit);
    total += (*probs)[j];
  }
  for (size_t j = 0; j < k; ++j) (*probs)[j] /= total;
}

}  // namespace

Result<std::vector<double>> Task2VecEmbedding(const Matrix& probe_features,
                                              const std::vector<int>& labels,
                                              int num_classes,
                                              const Task2VecConfig& config) {
  const size_t n = probe_features.rows();
  const size_t p = probe_features.cols();
  const size_t k = static_cast<size_t>(num_classes);
  if (n == 0 || p == 0) {
    return Status::InvalidArgument("empty probe feature matrix");
  }
  if (labels.size() != n) return Status::InvalidArgument("label size mismatch");
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least two classes");
  }
  for (int label : labels) {
    if (label < 0 || label >= num_classes) {
      return Status::OutOfRange("label outside [0, num_classes)");
    }
  }

  // --- Train the linear softmax head by full-batch gradient descent ---
  Matrix w(p, k);
  std::vector<double> logits(k);
  std::vector<double> probs(k);
  Matrix grad(p, k);
  for (int epoch = 0; epoch < config.head_epochs; ++epoch) {
    grad = Matrix(p, k);
    for (size_t i = 0; i < n; ++i) {
      const double* x = probe_features.RowPtr(i);
      for (size_t j = 0; j < k; ++j) {
        double acc = 0.0;
        for (size_t f = 0; f < p; ++f) acc += x[f] * w(f, j);
        logits[j] = acc;
      }
      SoftmaxRow(logits.data(), k, &probs);
      for (size_t j = 0; j < k; ++j) {
        const double delta =
            probs[j] - (static_cast<int>(j) == labels[i] ? 1.0 : 0.0);
        for (size_t f = 0; f < p; ++f) grad(f, j) += delta * x[f];
      }
    }
    const double scale = config.learning_rate / static_cast<double>(n);
    for (size_t f = 0; f < p; ++f) {
      for (size_t j = 0; j < k; ++j) {
        w(f, j) -= scale * (grad(f, j) + config.l2 * w(f, j));
      }
    }
  }

  // --- Diagonal Fisher of the head weights, averaged over classes ---
  std::vector<double> fisher(p, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* x = probe_features.RowPtr(i);
    for (size_t j = 0; j < k; ++j) {
      double acc = 0.0;
      for (size_t f = 0; f < p; ++f) acc += x[f] * w(f, j);
      logits[j] = acc;
    }
    SoftmaxRow(logits.data(), k, &probs);
    for (size_t j = 0; j < k; ++j) {
      const double delta =
          probs[j] - (static_cast<int>(j) == labels[i] ? 1.0 : 0.0);
      const double d2 = delta * delta;
      for (size_t f = 0; f < p; ++f) fisher[f] += d2 * x[f] * x[f];
    }
  }
  const double inv = 1.0 / (static_cast<double>(n) * static_cast<double>(k));
  for (double& v : fisher) v *= inv;

  double norm = 0.0;
  for (double v : fisher) norm += v * v;
  norm = std::sqrt(std::max(norm, 1e-12));
  for (double& v : fisher) v /= norm;
  return fisher;
}

}  // namespace tg
