// Dataset similarity phi (paper §IV-B2): derived from the correlation
// distance between dataset representations; shorter distance = greater
// similarity. Mapped into [0, 1] so it can serve directly as a D-D edge
// weight: phi = (1 + pearson) / 2.
#ifndef TG_FEATURES_DOMAIN_SIMILARITY_H_
#define TG_FEATURES_DOMAIN_SIMILARITY_H_

#include <vector>

#include "numeric/matrix.h"

namespace tg {

// Similarity of two dataset embeddings, in [0, 1].
double DatasetSimilarity(const std::vector<double>& a,
                         const std::vector<double>& b);

// Full pairwise similarity matrix (symmetric, unit diagonal).
Matrix PairwiseDatasetSimilarity(
    const std::vector<std::vector<double>>& embeddings);

}  // namespace tg

#endif  // TG_FEATURES_DOMAIN_SIMILARITY_H_
