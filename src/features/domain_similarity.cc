#include "features/domain_similarity.h"

#include <algorithm>

#include "numeric/stats.h"
#include "util/check.h"

namespace tg {

double DatasetSimilarity(const std::vector<double>& a,
                         const std::vector<double>& b) {
  // Correlation distance in [0, 2] -> similarity in [0, 1].
  const double distance = CorrelationDistance(a, b);
  return std::clamp(1.0 - distance / 2.0, 0.0, 1.0);
}

Matrix PairwiseDatasetSimilarity(
    const std::vector<std::vector<double>>& embeddings) {
  const size_t n = embeddings.size();
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) {
    out(i, i) = 1.0;
    for (size_t j = i + 1; j < n; ++j) {
      TG_CHECK_EQ(embeddings[i].size(), embeddings[j].size());
      const double sim = DatasetSimilarity(embeddings[i], embeddings[j]);
      out(i, j) = sim;
      out(j, i) = sim;
    }
  }
  return out;
}

}  // namespace tg
