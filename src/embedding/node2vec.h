// End-to-end Node2Vec / Node2Vec+ driver: walks -> skip-gram -> embeddings.
#ifndef TG_EMBEDDING_NODE2VEC_H_
#define TG_EMBEDDING_NODE2VEC_H_

#include <cstdint>

#include "embedding/random_walk.h"
#include "embedding/skipgram.h"
#include "graph/graph.h"
#include "numeric/matrix.h"

namespace tg {

struct Node2VecConfig {
  WalkConfig walk;
  SkipGramConfig skipgram;
};

// Learns an embedding per graph node (num_nodes x skipgram.dim).
// Set config.walk.extended = true for Node2Vec+.
Matrix Node2VecEmbed(const Graph& graph, const Node2VecConfig& config,
                     uint64_t seed);

}  // namespace tg

#endif  // TG_EMBEDDING_NODE2VEC_H_
