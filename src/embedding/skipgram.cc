#include "embedding/skipgram.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "graph/negative_sampler.h"
#include "numeric/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace tg {
namespace {

// Stream-id base for per-position Rng forks; far above the per-walk stream
// range used by RandomWalkGenerator::GenerateAll on the same seed.
constexpr uint64_t kPositionStreamBase = 0x5C1B6000000ULL;

// One epoch's token positions in shuffled-walk order: (walk index, offset).
std::vector<std::pair<uint32_t, uint32_t>> FlattenPositions(
    const std::vector<std::vector<uint32_t>>& corpus,
    const std::vector<size_t>& order) {
  std::vector<std::pair<uint32_t, uint32_t>> positions;
  size_t total = 0;
  for (const auto& walk : corpus) total += walk.size();
  positions.reserve(total);
  for (size_t wi : order) {
    for (size_t pos = 0; pos < corpus[wi].size(); ++pos) {
      positions.emplace_back(static_cast<uint32_t>(wi),
                             static_cast<uint32_t>(pos));
    }
  }
  return positions;
}

// Online SGD update for one token position against (input, output): sample a
// context radius, then for each context word train the positive pair plus
// `negatives` negative samples, applying the center gradient after each pair
// (word2vec update order). The pair math lives in
// kernels::FusedDotSigmoidUpdate. Shared by both parallel modes; all
// randomness comes from `prng`, which callers fork off the position's global
// index. `touched_in` / `touched_out` (nullable) flag the input/output rows
// this position wrote, feeding the sharded dirty-row merge.
// Prefetches the head of an embedding row; the hardware streamer follows the
// rest of the (64B-aligned, contiguous) row once the first lines are inbound.
inline void PrefetchRow(const double* row, size_t dim) {
  __builtin_prefetch(row, /*rw=*/1, /*locality=*/2);
  if (dim > 8) __builtin_prefetch(row + 8, /*rw=*/1, /*locality=*/2);
}

void UpdateOnePosition(const std::vector<uint32_t>& walk, uint32_t pos,
                       double lr, int window, int negatives,
                       const UnigramNegativeSampler& sampler, Rng* prng,
                       size_t dim, Matrix* input, Matrix* output,
                       std::vector<double>* center_grad_buf,
                       std::vector<uint32_t>* neg_buf, uint8_t* touched_in,
                       uint8_t* touched_out) {
  const int radius =
      1 + static_cast<int>(prng->NextBelow(static_cast<uint64_t>(window)));
  const uint32_t center = walk[pos];
  const size_t lo_ctx = pos >= static_cast<uint32_t>(radius)
                            ? pos - static_cast<uint32_t>(radius)
                            : 0;
  const size_t hi_ctx =
      std::min(walk.size(),
               static_cast<size_t>(pos) + static_cast<size_t>(radius) + 1);
  double* w = input->RowPtr(center);
  double* center_grad = center_grad_buf->data();
  if (touched_in != nullptr) touched_in[center] = 1;
  auto train_pair = [&](uint32_t context, double label) {
    kernels::FusedDotSigmoidUpdate(w, output->RowPtr(context), center_grad,
                                   dim, label, lr);
    if (touched_out != nullptr) touched_out[context] = 1;
  };
  for (size_t ctx_pos = lo_ctx; ctx_pos < hi_ctx; ++ctx_pos) {
    if (ctx_pos == pos) continue;
    std::fill(center_grad_buf->begin(), center_grad_buf->end(), 0.0);
    // Pre-draw this pair's negatives. The draws were already consecutive
    // (training a pair consumes no randomness), so batching them first
    // leaves the Rng stream -- and therefore every result -- bit-identical,
    // while letting us issue the output-row prefetches below before the
    // positive update instead of eating each row's miss inside the loop.
    // PrefetchNext additionally hides the alias-table entry miss of draw
    // k+1 under draw k.
    neg_buf->clear();
    sampler.PrefetchNext(*prng);
    for (int k = 0; k < negatives; ++k) {
      const uint32_t neg = static_cast<uint32_t>(sampler.Sample(prng));
      sampler.PrefetchNext(*prng);
      if (neg == walk[ctx_pos] || neg == center) continue;
      neg_buf->push_back(neg);
    }
    for (uint32_t neg : *neg_buf) PrefetchRow(output->RowPtr(neg), dim);
    train_pair(walk[ctx_pos], 1.0);
    for (uint32_t neg : *neg_buf) train_pair(neg, 0.0);
    kernels::Add(w, center_grad, dim);
  }
}

}  // namespace

// Shared sampling state for one Train call. Every position derives its
// learning rate from its global index and its randomness (window radius,
// negative draws) from an Rng forked off that index, so results do not
// depend on which thread processes which position.
struct SkipGramTrainer::PairStream {
  const UnigramNegativeSampler* sampler = nullptr;
  double lr0 = 0.0;
  double lr_min = 0.0;
  size_t total_work = 0;
  int window = 1;
  int negatives = 0;

  double LrAt(size_t global_position) const {
    const double progress = static_cast<double>(global_position) /
                            static_cast<double>(total_work);
    return std::max(lr_min, lr0 * (1.0 - progress));
  }
};

SkipGramTrainer::SkipGramTrainer(size_t vocab_size,
                                 const SkipGramConfig& config)
    : vocab_size_(vocab_size), config_(config) {
  TG_CHECK_GT(vocab_size, 0u);
  TG_CHECK_GT(config.dim, 0u);
  // word2vec-style init: inputs small uniform, outputs zero.
  Rng init_rng(0x5EEDF00DULL);
  const double bound = 0.5 / static_cast<double>(config.dim);
  input_ = Matrix::Uniform(vocab_size, config.dim, &init_rng, -bound, bound);
  output_ = Matrix(vocab_size, config.dim);
}

void SkipGramTrainer::Train(const std::vector<std::vector<uint32_t>>& corpus,
                            Rng* rng) {
  TG_TRACE_SPAN("skipgram_train");
  // Token frequencies drive the negative-sampling distribution.
  std::vector<double> freqs(vocab_size_, 1.0);  // +1 smoothing
  size_t total_tokens = 0;
  for (const auto& walk : corpus) {
    total_tokens += walk.size();
    for (uint32_t tok : walk) {
      TG_CHECK_LT(tok, vocab_size_);
      freqs[tok] += 1.0;
    }
  }
  if (total_tokens == 0) return;
  // The alias table is built exactly once per Train call and shared by every
  // epoch/shard (tests/kernels_test.cc pins this via the counter).
  static obs::Counter& sampler_builds =
      obs::MetricsRegistry::Instance().GetCounter("skipgram.sampler_builds");
  UnigramNegativeSampler sampler(freqs, config_.sampling_power);
  sampler_builds.Increment();

  PairStream stream;
  stream.sampler = &sampler;
  stream.lr0 = config_.initial_lr;
  stream.lr_min = config_.initial_lr * config_.min_lr_fraction;
  stream.total_work = total_tokens * static_cast<size_t>(config_.epochs);
  stream.window = config_.window;
  stream.negatives = config_.negatives;

  if (config_.parallel == SkipGramParallelMode::kHogwild) {
    TrainHogwild(corpus, stream, rng);
  } else {
    TrainSharded(corpus, stream, rng);
  }
}

void SkipGramTrainer::TrainSharded(
    const std::vector<std::vector<uint32_t>>& corpus, const PairStream& stream,
    Rng* rng) {
  const size_t dim = config_.dim;
  std::vector<size_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Replica and dirty-flag storage persists across epochs (re-copied from
  // the shared parameters each epoch without reallocating).
  std::vector<Matrix> rep_in;
  std::vector<Matrix> rep_out;
  std::vector<std::vector<uint8_t>> touched_in;
  std::vector<std::vector<uint8_t>> touched_out;

  size_t epoch_base = 0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    TG_TRACE_SPAN("skipgram_epoch");
    rng->Shuffle(&order);
    const auto positions = FlattenPositions(corpus, order);
    if (positions.empty()) continue;

    // Contiguous position blocks, one per shard; the count is clamped by
    // the data size but NEVER by the thread count (determinism contract).
    const size_t want = std::max<size_t>(1, config_.num_shards);
    const size_t block =
        (positions.size() + want - 1) / std::min(want, positions.size());
    const size_t shards = (positions.size() + block - 1) / block;

    // Each shard trains online on its own replica of the parameters.
    {
      TG_TRACE_SPAN("skipgram_replicate");
      rep_in.resize(shards);
      rep_out.resize(shards);
      touched_in.resize(shards);
      touched_out.resize(shards);
      for (size_t s = 0; s < shards; ++s) {
        rep_in[s] = input_;
        rep_out[s] = output_;
        touched_in[s].assign(vocab_size_, 0);
        touched_out[s].assign(vocab_size_, 0);
      }
    }
    ParallelFor(0, shards, 1, [&](size_t s0, size_t s1, size_t /*chunk*/) {
      TG_TRACE_SPAN("skipgram_shard_train");
      std::vector<double> center_grad(dim);
      std::vector<uint32_t> neg_buf;
      neg_buf.reserve(static_cast<size_t>(std::max(stream.negatives, 1)));
      for (size_t s = s0; s < s1; ++s) {
        const size_t lo = s * block;
        const size_t hi = std::min(positions.size(), lo + block);
        for (size_t i = lo; i < hi; ++i) {
          const auto& [wi, pos] = positions[i];
          Rng prng = rng->Fork(kPositionStreamBase + epoch_base + i);
          UpdateOnePosition(corpus[wi], pos, stream.LrAt(epoch_base + i),
                            stream.window, stream.negatives, *stream.sampler,
                            &prng, dim, &rep_in[s], &rep_out[s], &center_grad,
                            &neg_buf, touched_in[s].data(),
                            touched_out[s].data());
        }
      }
    });

    MergeShards(rep_in, rep_out, touched_in, touched_out);
    epoch_base += positions.size();
  }
}

// Parameter mixing at the epoch boundary: overwrite the shared parameters
// with the replica average, accumulating in shard order (fixed
// floating-point order). Rows no shard touched are exact copies of the base
// row in every replica, so their cross-replica average collapses to
// kernels::ReplicatedMean of the base value -- bit-identical to the full
// merge (asserted in tests/kernels_test.cc) without reading S replicas'
// worth of memory. config_.full_matrix_merge forces the reference path.
void SkipGramTrainer::MergeShards(
    const std::vector<Matrix>& rep_in, const std::vector<Matrix>& rep_out,
    const std::vector<std::vector<uint8_t>>& touched_in,
    const std::vector<std::vector<uint8_t>>& touched_out) {
  TG_TRACE_SPAN("skipgram_merge");
  const size_t dim = config_.dim;
  const size_t shards = rep_in.size();
  const double inv = 1.0 / static_cast<double>(shards);
  static obs::Counter& dirty_rows = obs::MetricsRegistry::Instance().GetCounter(
      "skipgram.merge.dirty_rows");
  static obs::Counter& clean_rows = obs::MetricsRegistry::Instance().GetCounter(
      "skipgram.merge.clean_rows");

  // Cache-blocked: rows are merged in blocks, and within a block each shard
  // replica is walked in one sequential pass rather than re-touched once per
  // row -- S short sequential streams the hardware prefetcher can follow
  // instead of S scattered reads per row. The per-row arithmetic sequence
  // (copy rep[0], add reps 1..S-1 in shard order, scale) is unchanged, so
  // the merge stays bit-identical to the unblocked form; rows merely
  // interleave, and no row reads another row's data.
  constexpr size_t kMergeRowBlock = 64;
  std::vector<uint8_t> row_dirty(kMergeRowBlock);
  const auto merge_matrix = [&](Matrix* base, const std::vector<Matrix>& rep,
                                const std::vector<std::vector<uint8_t>>&
                                    touched) {
    size_t dirty = 0;
    for (size_t r0 = 0; r0 < vocab_size_; r0 += kMergeRowBlock) {
      const size_t r1 = std::min(vocab_size_, r0 + kMergeRowBlock);
      for (size_t r = r0; r < r1; ++r) {
        bool is_dirty = config_.full_matrix_merge;
        for (size_t s = 0; s < shards && !is_dirty; ++s) {
          is_dirty = touched[s][r] != 0;
        }
        row_dirty[r - r0] = is_dirty ? 1 : 0;
        dirty += is_dirty ? 1 : 0;
      }
      for (size_t r = r0; r < r1; ++r) {
        if (row_dirty[r - r0]) {
          std::memcpy(base->RowPtr(r), rep[0].RowPtr(r),
                      dim * sizeof(double));
        } else {
          kernels::ReplicatedMean(base->RowPtr(r), shards, inv, dim);
        }
      }
      for (size_t s = 1; s < shards; ++s) {
        for (size_t r = r0; r < r1; ++r) {
          if (row_dirty[r - r0]) {
            kernels::Add(base->RowPtr(r), rep[s].RowPtr(r), dim);
          }
        }
      }
      for (size_t r = r0; r < r1; ++r) {
        if (row_dirty[r - r0]) kernels::Scale(base->RowPtr(r), inv, dim);
      }
    }
    dirty_rows.Increment(dirty);
    clean_rows.Increment(vocab_size_ - dirty);
  };
  merge_matrix(&input_, rep_in, touched_in);
  merge_matrix(&output_, rep_out, touched_out);
}

void SkipGramTrainer::TrainHogwild(
    const std::vector<std::vector<uint32_t>>& corpus, const PairStream& stream,
    Rng* rng) {
  const size_t dim = config_.dim;
  std::vector<size_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  size_t epoch_base = 0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    TG_TRACE_SPAN("skipgram_epoch");
    rng->Shuffle(&order);
    const auto positions = FlattenPositions(corpus, order);

    // Lock-free updates straight into the shared matrices; races between
    // positions touching the same rows are the accepted Hogwild tradeoff.
    ParallelFor(0, positions.size(), 256,
                [&](size_t lo, size_t hi, size_t /*chunk*/) {
                  std::vector<double> center_grad(dim);
                  std::vector<uint32_t> neg_buf;
                  neg_buf.reserve(
                      static_cast<size_t>(std::max(stream.negatives, 1)));
                  for (size_t i = lo; i < hi; ++i) {
                    const auto& [wi, pos] = positions[i];
                    Rng prng = rng->Fork(kPositionStreamBase + epoch_base + i);
                    UpdateOnePosition(corpus[wi], pos,
                                      stream.LrAt(epoch_base + i),
                                      stream.window, stream.negatives,
                                      *stream.sampler, &prng, dim, &input_,
                                      &output_, &center_grad, &neg_buf,
                                      /*touched_in=*/nullptr,
                                      /*touched_out=*/nullptr);
                  }
                });
    epoch_base += positions.size();
  }
}

double SkipGramTrainer::PairProbability(uint32_t center,
                                        uint32_t context) const {
  TG_CHECK_LT(center, vocab_size_);
  TG_CHECK_LT(context, vocab_size_);
  // Inference-quality score: exact sigmoid regardless of the training mode.
  return kernels::ExactSigmoid(kernels::Dot(
      input_.RowPtr(center), output_.RowPtr(context), config_.dim));
}

}  // namespace tg
