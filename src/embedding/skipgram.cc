#include "embedding/skipgram.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/negative_sampler.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace tg {
namespace {

double StableSigmoid(double x) {
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

// Stream-id base for per-position Rng forks; far above the per-walk stream
// range used by RandomWalkGenerator::GenerateAll on the same seed.
constexpr uint64_t kPositionStreamBase = 0x5C1B6000000ULL;

// One epoch's token positions in shuffled-walk order: (walk index, offset).
std::vector<std::pair<uint32_t, uint32_t>> FlattenPositions(
    const std::vector<std::vector<uint32_t>>& corpus,
    const std::vector<size_t>& order) {
  std::vector<std::pair<uint32_t, uint32_t>> positions;
  size_t total = 0;
  for (const auto& walk : corpus) total += walk.size();
  positions.reserve(total);
  for (size_t wi : order) {
    for (size_t pos = 0; pos < corpus[wi].size(); ++pos) {
      positions.emplace_back(static_cast<uint32_t>(wi),
                             static_cast<uint32_t>(pos));
    }
  }
  return positions;
}

// Online SGD update for one token position against (input, output): sample a
// context radius, then for each context word train the positive pair plus
// `negatives` negative samples, applying the center gradient after each pair
// (word2vec update order). Shared by both parallel modes; all randomness
// comes from `prng`, which callers fork off the position's global index.
void UpdateOnePosition(const std::vector<uint32_t>& walk, uint32_t pos,
                       double lr, int window, int negatives,
                       const UnigramNegativeSampler& sampler, Rng* prng,
                       size_t dim, Matrix* input, Matrix* output,
                       std::vector<double>* center_grad_buf) {
  const int radius =
      1 + static_cast<int>(prng->NextBelow(static_cast<uint64_t>(window)));
  const uint32_t center = walk[pos];
  const size_t lo_ctx = pos >= static_cast<uint32_t>(radius)
                            ? pos - static_cast<uint32_t>(radius)
                            : 0;
  const size_t hi_ctx =
      std::min(walk.size(),
               static_cast<size_t>(pos) + static_cast<size_t>(radius) + 1);
  double* w = input->RowPtr(center);
  std::vector<double>& center_grad = *center_grad_buf;
  auto train_pair = [&](uint32_t context, double label) {
    double* c = output->RowPtr(context);
    double dot = 0.0;
    for (size_t d = 0; d < dim; ++d) dot += w[d] * c[d];
    const double g = (label - StableSigmoid(dot)) * lr;
    for (size_t d = 0; d < dim; ++d) {
      center_grad[d] += g * c[d];
      c[d] += g * w[d];
    }
  };
  for (size_t ctx_pos = lo_ctx; ctx_pos < hi_ctx; ++ctx_pos) {
    if (ctx_pos == pos) continue;
    std::fill(center_grad.begin(), center_grad.end(), 0.0);
    train_pair(walk[ctx_pos], 1.0);
    for (int k = 0; k < negatives; ++k) {
      const uint32_t neg = static_cast<uint32_t>(sampler.Sample(prng));
      if (neg == walk[ctx_pos] || neg == center) continue;
      train_pair(neg, 0.0);
    }
    for (size_t d = 0; d < dim; ++d) w[d] += center_grad[d];
  }
}

}  // namespace

// Shared sampling state for one Train call. Every position derives its
// learning rate from its global index and its randomness (window radius,
// negative draws) from an Rng forked off that index, so results do not
// depend on which thread processes which position.
struct SkipGramTrainer::PairStream {
  const UnigramNegativeSampler* sampler = nullptr;
  double lr0 = 0.0;
  double lr_min = 0.0;
  size_t total_work = 0;
  int window = 1;
  int negatives = 0;

  double LrAt(size_t global_position) const {
    const double progress = static_cast<double>(global_position) /
                            static_cast<double>(total_work);
    return std::max(lr_min, lr0 * (1.0 - progress));
  }
};

SkipGramTrainer::SkipGramTrainer(size_t vocab_size,
                                 const SkipGramConfig& config)
    : vocab_size_(vocab_size), config_(config) {
  TG_CHECK_GT(vocab_size, 0u);
  TG_CHECK_GT(config.dim, 0u);
  // word2vec-style init: inputs small uniform, outputs zero.
  Rng init_rng(0x5EEDF00DULL);
  const double bound = 0.5 / static_cast<double>(config.dim);
  input_ = Matrix::Uniform(vocab_size, config.dim, &init_rng, -bound, bound);
  output_ = Matrix(vocab_size, config.dim);
}

void SkipGramTrainer::Train(const std::vector<std::vector<uint32_t>>& corpus,
                            Rng* rng) {
  TG_TRACE_SPAN("skipgram_train");
  // Token frequencies drive the negative-sampling distribution.
  std::vector<double> freqs(vocab_size_, 1.0);  // +1 smoothing
  size_t total_tokens = 0;
  for (const auto& walk : corpus) {
    total_tokens += walk.size();
    for (uint32_t tok : walk) {
      TG_CHECK_LT(tok, vocab_size_);
      freqs[tok] += 1.0;
    }
  }
  if (total_tokens == 0) return;
  UnigramNegativeSampler sampler(freqs, config_.sampling_power);

  PairStream stream;
  stream.sampler = &sampler;
  stream.lr0 = config_.initial_lr;
  stream.lr_min = config_.initial_lr * config_.min_lr_fraction;
  stream.total_work = total_tokens * static_cast<size_t>(config_.epochs);
  stream.window = config_.window;
  stream.negatives = config_.negatives;

  if (config_.parallel == SkipGramParallelMode::kHogwild) {
    TrainHogwild(corpus, stream, rng);
  } else {
    TrainSharded(corpus, stream, rng);
  }
}

void SkipGramTrainer::TrainSharded(
    const std::vector<std::vector<uint32_t>>& corpus, const PairStream& stream,
    Rng* rng) {
  const size_t dim = config_.dim;
  std::vector<size_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  size_t epoch_base = 0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    TG_TRACE_SPAN("skipgram_epoch");
    rng->Shuffle(&order);
    const auto positions = FlattenPositions(corpus, order);
    if (positions.empty()) continue;

    // Contiguous position blocks, one per shard; the count is clamped by
    // the data size but NEVER by the thread count (determinism contract).
    const size_t want = std::max<size_t>(1, config_.num_shards);
    const size_t block =
        (positions.size() + want - 1) / std::min(want, positions.size());
    const size_t shards = (positions.size() + block - 1) / block;

    // Each shard trains online on its own replica of the parameters.
    std::vector<Matrix> rep_in(shards, input_);
    std::vector<Matrix> rep_out(shards, output_);
    ParallelFor(0, shards, 1, [&](size_t s0, size_t s1, size_t /*chunk*/) {
      std::vector<double> center_grad(dim);
      for (size_t s = s0; s < s1; ++s) {
        const size_t lo = s * block;
        const size_t hi = std::min(positions.size(), lo + block);
        for (size_t i = lo; i < hi; ++i) {
          const auto& [wi, pos] = positions[i];
          Rng prng = rng->Fork(kPositionStreamBase + epoch_base + i);
          UpdateOnePosition(corpus[wi], pos, stream.LrAt(epoch_base + i),
                            stream.window, stream.negatives, *stream.sampler,
                            &prng, dim, &rep_in[s], &rep_out[s], &center_grad);
        }
      }
    });

    // Parameter mixing: overwrite the shared parameters with the replica
    // average, accumulating in shard order (fixed floating-point order).
    const double inv = 1.0 / static_cast<double>(shards);
    double* in = input_.data();
    double* out = output_.data();
    const size_t n = input_.size();
    for (size_t j = 0; j < n; ++j) {
      double acc_in = 0.0;
      double acc_out = 0.0;
      for (size_t s = 0; s < shards; ++s) {
        acc_in += rep_in[s].data()[j];
        acc_out += rep_out[s].data()[j];
      }
      in[j] = acc_in * inv;
      out[j] = acc_out * inv;
    }
    epoch_base += positions.size();
  }
}

void SkipGramTrainer::TrainHogwild(
    const std::vector<std::vector<uint32_t>>& corpus, const PairStream& stream,
    Rng* rng) {
  const size_t dim = config_.dim;
  std::vector<size_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  size_t epoch_base = 0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    TG_TRACE_SPAN("skipgram_epoch");
    rng->Shuffle(&order);
    const auto positions = FlattenPositions(corpus, order);

    // Lock-free updates straight into the shared matrices; races between
    // positions touching the same rows are the accepted Hogwild tradeoff.
    ParallelFor(0, positions.size(), 256,
                [&](size_t lo, size_t hi, size_t /*chunk*/) {
                  std::vector<double> center_grad(dim);
                  for (size_t i = lo; i < hi; ++i) {
                    const auto& [wi, pos] = positions[i];
                    Rng prng = rng->Fork(kPositionStreamBase + epoch_base + i);
                    UpdateOnePosition(corpus[wi], pos,
                                      stream.LrAt(epoch_base + i),
                                      stream.window, stream.negatives,
                                      *stream.sampler, &prng, dim, &input_,
                                      &output_, &center_grad);
                  }
                });
    epoch_base += positions.size();
  }
}

double SkipGramTrainer::PairProbability(uint32_t center,
                                        uint32_t context) const {
  TG_CHECK_LT(center, vocab_size_);
  TG_CHECK_LT(context, vocab_size_);
  const double* w = input_.RowPtr(center);
  const double* c = output_.RowPtr(context);
  double dot = 0.0;
  for (size_t d = 0; d < config_.dim; ++d) dot += w[d] * c[d];
  return StableSigmoid(dot);
}

}  // namespace tg
