#include "embedding/skipgram.h"

#include <algorithm>
#include <cmath>

#include "graph/negative_sampler.h"
#include "util/check.h"

namespace tg {
namespace {

double StableSigmoid(double x) {
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace

SkipGramTrainer::SkipGramTrainer(size_t vocab_size,
                                 const SkipGramConfig& config)
    : vocab_size_(vocab_size), config_(config) {
  TG_CHECK_GT(vocab_size, 0u);
  TG_CHECK_GT(config.dim, 0u);
  // word2vec-style init: inputs small uniform, outputs zero.
  Rng init_rng(0x5EEDF00DULL);
  const double bound = 0.5 / static_cast<double>(config.dim);
  input_ = Matrix::Uniform(vocab_size, config.dim, &init_rng, -bound, bound);
  output_ = Matrix(vocab_size, config.dim);
}

void SkipGramTrainer::TrainPair(uint32_t center, uint32_t context,
                                double label, double lr,
                                std::vector<double>* center_grad) {
  double* w = input_.RowPtr(center);
  double* c = output_.RowPtr(context);
  double dot = 0.0;
  for (size_t d = 0; d < config_.dim; ++d) dot += w[d] * c[d];
  const double g = (label - StableSigmoid(dot)) * lr;
  for (size_t d = 0; d < config_.dim; ++d) {
    (*center_grad)[d] += g * c[d];
    c[d] += g * w[d];
  }
}

void SkipGramTrainer::Train(const std::vector<std::vector<uint32_t>>& corpus,
                            Rng* rng) {
  // Token frequencies drive the negative-sampling distribution.
  std::vector<double> freqs(vocab_size_, 1.0);  // +1 smoothing
  size_t total_tokens = 0;
  for (const auto& walk : corpus) {
    total_tokens += walk.size();
    for (uint32_t tok : walk) {
      TG_CHECK_LT(tok, vocab_size_);
      freqs[tok] += 1.0;
    }
  }
  if (total_tokens == 0) return;
  UnigramNegativeSampler sampler(freqs, config_.sampling_power);

  std::vector<size_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  const double lr0 = config_.initial_lr;
  const double lr_min = lr0 * config_.min_lr_fraction;
  const size_t total_work =
      total_tokens * static_cast<size_t>(config_.epochs);
  size_t done = 0;
  std::vector<double> center_grad(config_.dim);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng->Shuffle(&order);
    for (size_t wi : order) {
      const auto& walk = corpus[wi];
      for (size_t pos = 0; pos < walk.size(); ++pos, ++done) {
        const double progress =
            static_cast<double>(done) / static_cast<double>(total_work);
        const double lr = std::max(lr_min, lr0 * (1.0 - progress));
        // Randomized effective window, as in word2vec.
        const int radius =
            1 + static_cast<int>(rng->NextBelow(
                    static_cast<uint64_t>(config_.window)));
        const uint32_t center = walk[pos];
        const size_t lo = pos >= static_cast<size_t>(radius)
                              ? pos - static_cast<size_t>(radius)
                              : 0;
        const size_t hi =
            std::min(walk.size(), pos + static_cast<size_t>(radius) + 1);
        for (size_t ctx_pos = lo; ctx_pos < hi; ++ctx_pos) {
          if (ctx_pos == pos) continue;
          std::fill(center_grad.begin(), center_grad.end(), 0.0);
          TrainPair(center, walk[ctx_pos], 1.0, lr, &center_grad);
          for (int k = 0; k < config_.negatives; ++k) {
            uint32_t neg = sampler.Sample(rng);
            if (neg == walk[ctx_pos] || neg == center) continue;
            TrainPair(center, neg, 0.0, lr, &center_grad);
          }
          double* w = input_.RowPtr(center);
          for (size_t d = 0; d < config_.dim; ++d) w[d] += center_grad[d];
        }
      }
    }
  }
}

double SkipGramTrainer::PairProbability(uint32_t center,
                                        uint32_t context) const {
  TG_CHECK_LT(center, vocab_size_);
  TG_CHECK_LT(context, vocab_size_);
  const double* w = input_.RowPtr(center);
  const double* c = output_.RowPtr(context);
  double dot = 0.0;
  for (size_t d = 0; d < config_.dim; ++d) dot += w[d] * c[d];
  return StableSigmoid(dot);
}

}  // namespace tg
