#include "embedding/node2vec.h"

#include "util/rng.h"

namespace tg {

Matrix Node2VecEmbed(const Graph& graph, const Node2VecConfig& config,
                     uint64_t seed) {
  Rng rng(seed);
  RandomWalkGenerator walker(graph, config.walk);
  std::vector<std::vector<NodeId>> walks = walker.GenerateAll(&rng);
  SkipGramTrainer trainer(graph.num_nodes(), config.skipgram);
  trainer.Train(walks, &rng);
  return trainer.embeddings();
}

}  // namespace tg
