// Second-order biased random walks over the model-zoo graph.
//
// Node2Vec (Grover & Leskovec 2016): given the previous node t and current
// node v, a candidate next hop x receives bias
//     1/p  if x == t            (return)
//     1    if x is adjacent to t (BFS-like)
//     1/q  otherwise            (DFS-like)
// multiplied by the edge weight w(v, x).
//
// Node2Vec+ (Liu, Hirn & Krishnan 2023) extends the rule to weighted graphs:
// whether x counts as "adjacent to t" depends on the *weight* of (x, t)
// relative to the mean incident weights of x and t, and loosely connected
// pairs interpolate between the 1/q and 1 regimes:
//     bias(x | t) = 1/q + (1 - 1/q) * min(1, w(x,t) / thr(x,t)),
//     thr(x,t) = min(mean incident weight of x, of t).
#ifndef TG_EMBEDDING_RANDOM_WALK_H_
#define TG_EMBEDDING_RANDOM_WALK_H_

#include <vector>

#include "graph/alias_table.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace tg {

struct WalkConfig {
  int walks_per_node = 10;
  int walk_length = 40;
  double p = 1.0;  // return parameter
  double q = 1.0;  // in-out parameter
  // false: classic node2vec second-order bias (edge weights still scale the
  // transition); true: node2vec+ weighted in/out classification.
  bool extended = false;
};

class RandomWalkGenerator {
 public:
  // The graph must outlive the generator.
  RandomWalkGenerator(const Graph& graph, const WalkConfig& config);

  // One walk starting at `start`. Stops early at isolated nodes.
  std::vector<NodeId> Walk(NodeId start, Rng* rng) const;

  // walks_per_node walks from every node, in node-shuffled order per pass.
  // Walks are generated in parallel on the global pool; each walk runs on an
  // Rng forked from (rng's seed, walk index), so the output is bit-identical
  // for any thread count given a fixed seed.
  std::vector<std::vector<NodeId>> GenerateAll(Rng* rng) const;

  // Exposed for tests: the unnormalized transition bias of candidate x given
  // previous node t at current node v (excludes the w(v,x) factor).
  double TransitionBias(NodeId prev, NodeId candidate) const;

 private:
  double EdgeWeightBetween(NodeId a, NodeId b) const;

  const Graph& graph_;
  WalkConfig config_;
  std::vector<AliasTable> first_step_;       // per-node first-order sampling
  std::vector<double> mean_incident_weight_;  // node2vec+ thresholds
};

}  // namespace tg

#endif  // TG_EMBEDDING_RANDOM_WALK_H_
