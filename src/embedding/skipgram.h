// Skip-gram with negative sampling (Mikolov et al. 2013) over walk corpora.
// Random-walk node embedding methods treat walks as sentences and nodes as
// words; the trained input embeddings are the node representations.
#ifndef TG_EMBEDDING_SKIPGRAM_H_
#define TG_EMBEDDING_SKIPGRAM_H_

#include <cstddef>
#include <vector>

#include "numeric/matrix.h"
#include "util/rng.h"

namespace tg {

struct SkipGramConfig {
  size_t dim = 128;
  int window = 5;        // maximum context radius; actual radius is sampled
  int negatives = 5;     // negative samples per positive pair
  int epochs = 4;
  double initial_lr = 0.025;
  double min_lr_fraction = 1e-3;  // lr decays linearly to initial*fraction
  double sampling_power = 0.75;   // unigram exponent for negatives
};

class SkipGramTrainer {
 public:
  // vocab_size must exceed every token id in the corpus.
  SkipGramTrainer(size_t vocab_size, const SkipGramConfig& config);

  // Trains on the corpus (list of token sequences). Deterministic for a
  // fixed (corpus, seed).
  void Train(const std::vector<std::vector<uint32_t>>& corpus, Rng* rng);

  // Input ("center") embeddings: vocab_size x dim.
  const Matrix& embeddings() const { return input_; }

  // Model score for a (center, context) pair: sigmoid(dot).
  double PairProbability(uint32_t center, uint32_t context) const;

 private:
  void TrainPair(uint32_t center, uint32_t context, double label, double lr,
                 std::vector<double>* center_grad);

  size_t vocab_size_;
  SkipGramConfig config_;
  Matrix input_;
  Matrix output_;
};

}  // namespace tg

#endif  // TG_EMBEDDING_SKIPGRAM_H_
