// Skip-gram with negative sampling (Mikolov et al. 2013) over walk corpora.
// Random-walk node embedding methods treat walks as sentences and nodes as
// words; the trained input embeddings are the node representations.
//
// Two parallel training modes (docs/threading.md):
//   * kSharded (default): deterministic parameter-mixing SGD. Each epoch
//     splits the shuffled position stream into a fixed number of shards;
//     every shard trains online on its own replica of the parameters (each
//     position's randomness forked from its global index), and the replicas
//     are averaged in shard order at the epoch boundary -- only over the
//     rows some shard actually touched (dirty-row merge; untouched rows are
//     provably equal across replicas, see docs/performance.md). The shard
//     count never depends on the thread count, so results are bit-identical
//     for any TG_THREADS value.
//
// Dense inner loops (dot, fused pair update, replica merge) run through the
// vectorized kernel layer in numeric/kernels.h, which also supplies the
// tabulated training sigmoid (TG_EXACT_SIGMOID escapes to the exact form).
//   * kHogwild (opt-in): lock-free asynchronous updates on the shared
//     parameters across the pool (Recht et al. 2011). Fastest and closest
//     to sequential SGD dynamics, but update interleaving makes results
//     run-to-run nondeterministic when more than one thread is used.
#ifndef TG_EMBEDDING_SKIPGRAM_H_
#define TG_EMBEDDING_SKIPGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "numeric/matrix.h"
#include "util/rng.h"

namespace tg {

enum class SkipGramParallelMode { kSharded, kHogwild };

struct SkipGramConfig {
  size_t dim = 128;
  int window = 5;        // maximum context radius; actual radius is sampled
  int negatives = 5;     // negative samples per positive pair
  int epochs = 4;
  double initial_lr = 0.025;
  double min_lr_fraction = 1e-3;  // lr decays linearly to initial*fraction
  double sampling_power = 0.75;   // unigram exponent for negatives
  SkipGramParallelMode parallel = SkipGramParallelMode::kSharded;
  // Sharded mode: parameter replicas trained per epoch (clamped to the
  // number of token positions). Part of the determinism contract -- never
  // derived from the thread count.
  size_t num_shards = 8;
  // Sharded mode: when false (default) the epoch-boundary parameter mixing
  // only gathers rows some shard actually touched across the replicas;
  // untouched rows take the same replicated-copy average from the base value
  // alone (kernels::ReplicatedMean), which is bit-identical to the
  // full-matrix merge because untouched replica rows are exact copies of the
  // base. `true` forces the full vocab x dim cross-replica merge -- the
  // pre-dirty-row reference path kept for tests and debugging
  // (tests/kernels_test.cc asserts both paths agree bit-for-bit).
  bool full_matrix_merge = false;
};

class SkipGramTrainer {
 public:
  // vocab_size must exceed every token id in the corpus.
  SkipGramTrainer(size_t vocab_size, const SkipGramConfig& config);

  // Trains on the corpus (list of token sequences). In kSharded mode the
  // result is deterministic for a fixed (corpus, seed) at any thread count;
  // in kHogwild mode it is deterministic only with a single thread.
  void Train(const std::vector<std::vector<uint32_t>>& corpus, Rng* rng);

  // Input ("center") embeddings: vocab_size x dim.
  const Matrix& embeddings() const { return input_; }

  // Model score for a (center, context) pair: sigmoid(dot).
  double PairProbability(uint32_t center, uint32_t context) const;

 private:
  struct PairStream;  // per-position sampling state (defined in the .cc)

  void TrainSharded(const std::vector<std::vector<uint32_t>>& corpus,
                    const PairStream& stream, Rng* rng);
  void TrainHogwild(const std::vector<std::vector<uint32_t>>& corpus,
                    const PairStream& stream, Rng* rng);
  // Epoch-boundary parameter mixing (dirty-row or full-matrix, per config).
  void MergeShards(const std::vector<Matrix>& rep_in,
                   const std::vector<Matrix>& rep_out,
                   const std::vector<std::vector<uint8_t>>& touched_in,
                   const std::vector<std::vector<uint8_t>>& touched_out);

  size_t vocab_size_;
  SkipGramConfig config_;
  Matrix input_;
  Matrix output_;
};

}  // namespace tg

#endif  // TG_EMBEDDING_SKIPGRAM_H_
