#include "embedding/random_walk.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace tg {
namespace {

// Stream-id base separating per-walk forks from other forks callers may
// derive from the same seed (e.g. the skip-gram position streams).
constexpr uint64_t kWalkStreamBase = 0x57A1C000ULL;

}  // namespace

RandomWalkGenerator::RandomWalkGenerator(const Graph& graph,
                                         const WalkConfig& config)
    : graph_(graph), config_(config) {
  TG_CHECK_GT(config.p, 0.0);
  TG_CHECK_GT(config.q, 0.0);
  first_step_.resize(graph.num_nodes());
  mean_incident_weight_.resize(graph.num_nodes(), 0.0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const auto& nbrs = graph.neighbors(v);
    if (nbrs.empty()) continue;
    std::vector<double> weights(nbrs.size());
    double total = 0.0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      weights[i] = std::max(nbrs[i].weight, 1e-9);
      total += weights[i];
    }
    first_step_[v] = AliasTable(weights);
    mean_incident_weight_[v] = total / static_cast<double>(nbrs.size());
  }
}

double RandomWalkGenerator::EdgeWeightBetween(NodeId a, NodeId b) const {
  // Multiple typed edges may connect the same pair; their mass adds up.
  double total = 0.0;
  const auto& smaller =
      graph_.degree(a) <= graph_.degree(b) ? graph_.neighbors(a)
                                           : graph_.neighbors(b);
  const NodeId other = graph_.degree(a) <= graph_.degree(b) ? b : a;
  for (const Neighbor& n : smaller) {
    if (n.node == other) total += std::max(n.weight, 0.0);
  }
  return total;
}

double RandomWalkGenerator::TransitionBias(NodeId prev,
                                           NodeId candidate) const {
  if (candidate == prev) return 1.0 / config_.p;
  const double w_ct = EdgeWeightBetween(candidate, prev);
  if (!config_.extended) {
    // Classic node2vec: any edge to the previous node counts as "in".
    return w_ct > 0.0 ? 1.0 : 1.0 / config_.q;
  }
  // Node2Vec+: interpolate by connection strength relative to the local
  // mean incident weights.
  const double thr = std::max(
      std::min(mean_incident_weight_[candidate], mean_incident_weight_[prev]),
      1e-12);
  const double strength = std::min(1.0, w_ct / thr);
  const double inv_q = 1.0 / config_.q;
  return inv_q + (1.0 - inv_q) * strength;
}

std::vector<NodeId> RandomWalkGenerator::Walk(NodeId start, Rng* rng) const {
  std::vector<NodeId> walk;
  walk.reserve(config_.walk_length);
  walk.push_back(start);
  if (graph_.degree(start) == 0) return walk;

  // First step: first-order weighted sampling.
  NodeId prev = start;
  NodeId cur = graph_.neighbors(start)[first_step_[start].Sample(rng)].node;
  walk.push_back(cur);

  std::vector<double> biased;
  while (static_cast<int>(walk.size()) < config_.walk_length) {
    const auto& nbrs = graph_.neighbors(cur);
    if (nbrs.empty()) break;
    biased.resize(nbrs.size());
    double total = 0.0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      biased[i] = std::max(nbrs[i].weight, 1e-9) *
                  TransitionBias(prev, nbrs[i].node);
      total += biased[i];
    }
    // Inverse-CDF over the (small) neighbor list.
    double u = rng->NextDouble() * total;
    size_t pick = nbrs.size() - 1;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      u -= biased[i];
      if (u <= 0.0) {
        pick = i;
        break;
      }
    }
    prev = cur;
    cur = nbrs[pick].node;
    walk.push_back(cur);
  }
  return walk;
}

std::vector<std::vector<NodeId>> RandomWalkGenerator::GenerateAll(
    Rng* rng) const {
  TG_TRACE_SPAN("walk_corpus");
  // The start schedule (node order per pass) is drawn sequentially from the
  // caller's rng; the walks themselves each run on an Rng forked from the
  // walk's global index, so the fan-out below is bit-identical for any
  // thread count (chunking only affects scheduling, never the streams).
  std::vector<NodeId> nodes(graph_.num_nodes());
  std::iota(nodes.begin(), nodes.end(), 0);
  std::vector<NodeId> starts;
  starts.reserve(nodes.size() * static_cast<size_t>(config_.walks_per_node));
  for (int pass = 0; pass < config_.walks_per_node; ++pass) {
    rng->Shuffle(&nodes);
    starts.insert(starts.end(), nodes.begin(), nodes.end());
  }

  std::vector<std::vector<NodeId>> walks(starts.size());
  constexpr size_t kWalkGrain = 64;
  ParallelFor(0, starts.size(), kWalkGrain,
              [&](size_t begin, size_t end, size_t /*chunk*/) {
                for (size_t i = begin; i < end; ++i) {
                  Rng walk_rng = rng->Fork(kWalkStreamBase + i);
                  walks[i] = Walk(starts[i], &walk_rng);
                }
              });
  return walks;
}

}  // namespace tg
