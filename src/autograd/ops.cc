#include "autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "numeric/kernels.h"
#include "util/check.h"

namespace tg::autograd {
namespace {

bool NeedsGrad(const Var& v) {
  return v->requires_grad() || v->has_backward();
}

// Wires up a result node: value, parents, and the backward closure (only when
// some parent participates in differentiation).
Var MakeOp(Matrix value, std::vector<Var> parents,
           std::function<void(const Matrix&)> backward) {
  bool any = false;
  for (const Var& p : parents) any = any || NeedsGrad(p);
  Var node = std::make_shared<Node>(std::move(value), /*requires_grad=*/false);
  if (any) {
    node->set_parents(std::move(parents));
    node->set_backward(std::move(backward));
  }
  return node;
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  TG_CHECK(a->value().SameShape(b->value()));
  return MakeOp(a->value() + b->value(), {a, b},
                [a, b](const Matrix& g) {
                  a->AccumulateGrad(g);
                  b->AccumulateGrad(g);
                });
}

Var Sub(const Var& a, const Var& b) {
  TG_CHECK(a->value().SameShape(b->value()));
  return MakeOp(a->value() - b->value(), {a, b},
                [a, b](const Matrix& g) {
                  a->AccumulateGrad(g);
                  b->AccumulateGrad(g * -1.0);
                });
}

Var Mul(const Var& a, const Var& b) {
  TG_CHECK(a->value().SameShape(b->value()));
  return MakeOp(a->value().Hadamard(b->value()), {a, b},
                [a, b](const Matrix& g) {
                  // Fused grad += g (*) other -- skips the two Hadamard
                  // temporaries the unfused form allocated per backward.
                  a->AccumulateGradMulAdd(g, b->value());
                  b->AccumulateGradMulAdd(g, a->value());
                });
}

Var Scale(const Var& a, double s) {
  return MakeOp(a->value() * s, {a},
                [a, s](const Matrix& g) { a->AccumulateGrad(g * s); });
}

Var MatMul(const Var& a, const Var& b) {
  return MakeOp(a->value().MatMul(b->value()), {a, b},
                [a, b](const Matrix& g) {
                  // dL/dA = G B^T ; dL/dB = A^T G.
                  a->AccumulateGrad(g.MatMulTransposed(b->value()));
                  b->AccumulateGrad(a->value().TransposedMatMul(g));
                });
}

Var AddRowBroadcast(const Var& a, const Var& bias) {
  TG_CHECK_EQ(bias->value().rows(), 1u);
  TG_CHECK_EQ(bias->value().cols(), a->value().cols());
  return MakeOp(a->value().AddRowBroadcast(bias->value()), {a, bias},
                [a, bias](const Matrix& g) {
                  a->AccumulateGrad(g);
                  bias->AccumulateGrad(g.ColSum());
                });
}

Var MulColBroadcast(const Var& a, const Var& col) {
  TG_CHECK_EQ(col->value().cols(), 1u);
  TG_CHECK_EQ(col->value().rows(), a->value().rows());
  Matrix out = a->value();
  for (size_t r = 0; r < out.rows(); ++r) {
    kernels::Scale(out.RowPtr(r), col->value()(r, 0), out.cols());
  }
  return MakeOp(std::move(out), {a, col},
                [a, col](const Matrix& g) {
                  Matrix ga = g;
                  Matrix gcol(g.rows(), 1);
                  for (size_t r = 0; r < g.rows(); ++r) {
                    gcol(r, 0) = kernels::Dot(g.RowPtr(r),
                                              a->value().RowPtr(r), g.cols());
                    kernels::Scale(ga.RowPtr(r), col->value()(r, 0), g.cols());
                  }
                  a->AccumulateGrad(ga);
                  col->AccumulateGrad(gcol);
                });
}

Var RowsDot(const Var& a, const Var& b) {
  TG_CHECK(a->value().SameShape(b->value()));
  Matrix out(a->value().rows(), 1);
  for (size_t r = 0; r < out.rows(); ++r) {
    out(r, 0) = kernels::Dot(a->value().RowPtr(r), b->value().RowPtr(r),
                             a->value().cols());
  }
  return MakeOp(std::move(out), {a, b},
                [a, b](const Matrix& g) {
                  Matrix ga(a->value().rows(), a->value().cols());
                  Matrix gb = ga;
                  for (size_t r = 0; r < g.rows(); ++r) {
                    const double s = g(r, 0);
                    kernels::Axpy(s, b->value().RowPtr(r), ga.RowPtr(r),
                                  ga.cols());
                    kernels::Axpy(s, a->value().RowPtr(r), gb.RowPtr(r),
                                  gb.cols());
                  }
                  a->AccumulateGrad(ga);
                  b->AccumulateGrad(gb);
                });
}

Var ConcatCols(const Var& a, const Var& b) {
  TG_CHECK_EQ(a->value().rows(), b->value().rows());
  const size_t ca = a->value().cols();
  const size_t cb = b->value().cols();
  Matrix out(a->value().rows(), ca + cb);
  for (size_t r = 0; r < out.rows(); ++r) {
    double* dst = out.RowPtr(r);
    const double* ar = a->value().RowPtr(r);
    const double* br = b->value().RowPtr(r);
    std::copy(ar, ar + ca, dst);
    std::copy(br, br + cb, dst + ca);
  }
  return MakeOp(std::move(out), {a, b},
                [a, b, ca, cb](const Matrix& g) {
                  Matrix ga(g.rows(), ca);
                  Matrix gb(g.rows(), cb);
                  for (size_t r = 0; r < g.rows(); ++r) {
                    const double* gr = g.RowPtr(r);
                    std::copy(gr, gr + ca, ga.RowPtr(r));
                    std::copy(gr + ca, gr + ca + cb, gb.RowPtr(r));
                  }
                  a->AccumulateGrad(ga);
                  b->AccumulateGrad(gb);
                });
}

namespace {

// Helper for f(x) ops whose derivative is a function of (x, f(x)).
Var ElementwiseOp(const Var& a, const std::function<double(double)>& fwd,
                  const std::function<double(double, double)>& dfdx) {
  Matrix out = a->value().Map(fwd);
  Matrix saved = out;  // captured by value in the closure
  return MakeOp(std::move(out), {a},
                [a, saved, dfdx](const Matrix& g) {
                  // Fill the derivative flat, then one elementwise-multiply
                  // kernel pass by g. Same single IEEE multiply per element
                  // as the old g * dfdx loop (Mul is bit-identical across
                  // every backend), but the std::function call stays out of
                  // a 2-D indexed loop and the multiply vectorizes.
                  Matrix ga(g.rows(), g.cols());
                  const size_t n = g.size();
                  const double* av = a->value().data();
                  const double* sv = saved.data();
                  double* gd = ga.data();
                  for (size_t i = 0; i < n; ++i) gd[i] = dfdx(av[i], sv[i]);
                  kernels::Mul(gd, g.data(), n);
                  a->AccumulateGrad(ga);
                });
}

}  // namespace

Var Relu(const Var& a) {
  return ElementwiseOp(
      a, [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Var LeakyRelu(const Var& a, double negative_slope) {
  return ElementwiseOp(
      a,
      [negative_slope](double x) { return x > 0.0 ? x : negative_slope * x; },
      [negative_slope](double x, double) {
        return x > 0.0 ? 1.0 : negative_slope;
      });
}

Var Sigmoid(const Var& a) {
  return ElementwiseOp(
      a,
      [](double x) {
        if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
        const double e = std::exp(x);
        return e / (1.0 + e);
      },
      [](double, double y) { return y * (1.0 - y); });
}

Var Tanh(const Var& a) {
  return ElementwiseOp(a, [](double x) { return std::tanh(x); },
                       [](double, double y) { return 1.0 - y * y; });
}

Var Exp(const Var& a) {
  return ElementwiseOp(a, [](double x) { return std::exp(x); },
                       [](double, double y) { return y; });
}

Var Log(const Var& a, double eps) {
  return ElementwiseOp(
      a, [eps](double x) { return std::log(std::max(x, eps)); },
      [eps](double x, double) { return 1.0 / std::max(x, eps); });
}

Var Elu(const Var& a) {
  return ElementwiseOp(
      a, [](double x) { return x > 0.0 ? x : std::expm1(x); },
      [](double x, double y) { return x > 0.0 ? 1.0 : y + 1.0; });
}

Var Sum(const Var& a) {
  Matrix out(1, 1, a->value().Sum());
  return MakeOp(std::move(out), {a},
                [a](const Matrix& g) {
                  a->AccumulateGrad(
                      Matrix(a->value().rows(), a->value().cols(), g(0, 0)));
                });
}

Var Mean(const Var& a) {
  const double n = static_cast<double>(a->value().size());
  TG_CHECK_GT(n, 0.0);
  Matrix out(1, 1, a->value().Sum() / n);
  return MakeOp(std::move(out), {a},
                [a, n](const Matrix& g) {
                  a->AccumulateGrad(Matrix(a->value().rows(),
                                           a->value().cols(), g(0, 0) / n));
                });
}

Var GatherRows(const Var& a, std::vector<size_t> indices) {
  Matrix out(indices.size(), a->value().cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    TG_CHECK_LT(indices[i], a->value().rows());
    const double* src = a->value().RowPtr(indices[i]);
    std::copy(src, src + out.cols(), out.RowPtr(i));
  }
  return MakeOp(std::move(out), {a},
                [a, indices = std::move(indices)](const Matrix& g) {
                  Matrix ga(a->value().rows(), a->value().cols());
                  for (size_t i = 0; i < indices.size(); ++i) {
                    kernels::Add(ga.RowPtr(indices[i]), g.RowPtr(i),
                                 g.cols());
                  }
                  a->AccumulateGrad(ga);
                });
}

Var ScatterAddRows(const Var& a, std::vector<size_t> indices,
                   size_t num_rows) {
  TG_CHECK_EQ(indices.size(), a->value().rows());
  Matrix out(num_rows, a->value().cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    TG_CHECK_LT(indices[i], num_rows);
    kernels::Add(out.RowPtr(indices[i]), a->value().RowPtr(i), out.cols());
  }
  return MakeOp(std::move(out), {a},
                [a, indices = std::move(indices)](const Matrix& g) {
                  Matrix ga(a->value().rows(), a->value().cols());
                  for (size_t i = 0; i < indices.size(); ++i) {
                    const double* src = g.RowPtr(indices[i]);
                    std::copy(src, src + ga.cols(), ga.RowPtr(i));
                  }
                  a->AccumulateGrad(ga);
                });
}

Var SegmentSoftmax(const Var& scores, std::vector<size_t> segments) {
  TG_CHECK_EQ(scores->value().cols(), 1u);
  TG_CHECK_EQ(segments.size(), scores->value().rows());
  const size_t n = segments.size();
  size_t num_segments = 0;
  for (size_t s : segments) num_segments = std::max(num_segments, s + 1);

  // Stable softmax within each segment: subtract the segment max.
  std::vector<double> seg_max(num_segments,
                              -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < n; ++i) {
    seg_max[segments[i]] =
        std::max(seg_max[segments[i]], scores->value()(i, 0));
  }
  std::vector<double> seg_sum(num_segments, 0.0);
  Matrix out(n, 1);
  for (size_t i = 0; i < n; ++i) {
    out(i, 0) = std::exp(scores->value()(i, 0) - seg_max[segments[i]]);
    seg_sum[segments[i]] += out(i, 0);
  }
  for (size_t i = 0; i < n; ++i) out(i, 0) /= seg_sum[segments[i]];

  Matrix saved = out;
  return MakeOp(std::move(out), {scores},
                [scores, saved, segments = std::move(segments),
                 num_segments](const Matrix& g) {
                  // d softmax: y_i * (g_i - sum_j in segment y_j g_j).
                  std::vector<double> seg_dot(num_segments, 0.0);
                  for (size_t i = 0; i < g.rows(); ++i) {
                    seg_dot[segments[i]] += saved(i, 0) * g(i, 0);
                  }
                  Matrix gs(g.rows(), 1);
                  for (size_t i = 0; i < g.rows(); ++i) {
                    gs(i, 0) = saved(i, 0) * (g(i, 0) - seg_dot[segments[i]]);
                  }
                  scores->AccumulateGrad(gs);
                });
}

Var BceWithLogits(const Var& logits, const Var& targets) {
  TG_CHECK(logits->value().SameShape(targets->value()));
  const size_t n = logits->value().size();
  TG_CHECK_GT(n, 0u);
  // loss_i = max(x,0) - x t + log(1 + exp(-|x|)); mean over all entries.
  double total = 0.0;
  for (size_t r = 0; r < logits->value().rows(); ++r) {
    for (size_t c = 0; c < logits->value().cols(); ++c) {
      const double x = logits->value()(r, c);
      const double t = targets->value()(r, c);
      total += std::max(x, 0.0) - x * t + std::log1p(std::exp(-std::fabs(x)));
    }
  }
  Matrix out(1, 1, total / static_cast<double>(n));
  return MakeOp(std::move(out), {logits, targets},
                [logits, targets, n](const Matrix& g) {
                  // d/dx = sigmoid(x) - t, scaled by upstream/n.
                  const double scale = g(0, 0) / static_cast<double>(n);
                  // (sigmoid(x) - t) filled flat, then one Scale kernel
                  // pass: the same multiply the old scale * (sig - t) loop
                  // performed per element, so gradients are bit-identical.
                  Matrix gl(logits->value().rows(), logits->value().cols());
                  const double* xs = logits->value().data();
                  const double* ts = targets->value().data();
                  double* gd = gl.data();
                  for (size_t i = 0; i < n; ++i) {
                    const double x = xs[i];
                    double sig;
                    if (x >= 0.0) {
                      sig = 1.0 / (1.0 + std::exp(-x));
                    } else {
                      const double e = std::exp(x);
                      sig = e / (1.0 + e);
                    }
                    gd[i] = sig - ts[i];
                  }
                  kernels::Scale(gd, scale, n);
                  logits->AccumulateGrad(gl);
                });
}

Var MseLoss(const Var& pred, const Var& target) {
  TG_CHECK(pred->value().SameShape(target->value()));
  const size_t n = pred->value().size();
  TG_CHECK_GT(n, 0u);
  Matrix diff = pred->value() - target->value();
  const double total = kernels::Dot(diff.data(), diff.data(), diff.size());
  Matrix out(1, 1, total / static_cast<double>(n));
  return MakeOp(std::move(out), {pred, target},
                [pred, target, n](const Matrix& g) {
                  const double scale = 2.0 * g(0, 0) / static_cast<double>(n);
                  Matrix diff = pred->value() - target->value();
                  pred->AccumulateGrad(diff * scale);
                  target->AccumulateGrad(diff * -scale);
                });
}

Var L2Penalty(const Var& a) {
  const double total = kernels::Dot(a->value().data(), a->value().data(),
                                    a->value().size());
  Matrix out(1, 1, 0.5 * total);
  return MakeOp(std::move(out), {a},
                [a](const Matrix& g) {
                  a->AccumulateGrad(a->value() * g(0, 0));
                });
}

}  // namespace tg::autograd
