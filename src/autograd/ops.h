// Differentiable operations over autograd Vars.
//
// Shape conventions follow the rest of the library: matrices are row-major,
// a batch of node embeddings is (num_nodes x dim), an edge list op works on
// (num_edges x dim) matrices produced by GatherRows.
#ifndef TG_AUTOGRAD_OPS_H_
#define TG_AUTOGRAD_OPS_H_

#include <cstddef>
#include <vector>

#include "autograd/tape.h"

namespace tg::autograd {

// --- Elementwise arithmetic (shapes must match) ---
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);  // Hadamard
Var Scale(const Var& a, double s);

// --- Linear algebra ---
Var MatMul(const Var& a, const Var& b);
// Adds a (1 x cols) bias row to every row of a.
Var AddRowBroadcast(const Var& a, const Var& bias);
// Multiplies row i of `a` by scalar col(i, 0); col is (rows x 1).
Var MulColBroadcast(const Var& a, const Var& col);
// Row-wise dot products of two same-shape matrices -> (rows x 1).
Var RowsDot(const Var& a, const Var& b);
// Horizontal concatenation [a | b].
Var ConcatCols(const Var& a, const Var& b);

// --- Activations ---
Var Relu(const Var& a);
Var LeakyRelu(const Var& a, double negative_slope = 0.2);
Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Exp(const Var& a);
// Natural log of max(a, eps) for numerical safety.
Var Log(const Var& a, double eps = 1e-12);
// Elu with alpha = 1 (GAT's output nonlinearity).
Var Elu(const Var& a);

// --- Reductions ---
Var Sum(const Var& a);   // -> 1x1
Var Mean(const Var& a);  // -> 1x1

// --- Row indexing (graph message passing) ---
// out[i] = a[indices[i]].
Var GatherRows(const Var& a, std::vector<size_t> indices);
// out has `num_rows` rows; out[indices[i]] += a[i].
Var ScatterAddRows(const Var& a, std::vector<size_t> indices,
                   size_t num_rows);

// Softmax over groups of rows: scores is (n x 1); rows sharing a segment id
// are normalized together (GAT attention over each node's incident edges).
Var SegmentSoftmax(const Var& scores, std::vector<size_t> segments);

// --- Losses (mean-reduced scalars) ---
// Numerically stable binary cross entropy on raw logits; targets in {0,1}.
Var BceWithLogits(const Var& logits, const Var& targets);
Var MseLoss(const Var& pred, const Var& target);
// 0.5 * ||a||_F^2, for weight decay.
Var L2Penalty(const Var& a);

}  // namespace tg::autograd

#endif  // TG_AUTOGRAD_OPS_H_
