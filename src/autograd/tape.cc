#include "autograd/tape.h"

#include <unordered_set>

#include "numeric/kernels.h"
#include "util/check.h"

namespace tg::autograd {

void Node::AccumulateGrad(const Matrix& delta) {
  if (!requires_grad_ && !has_backward()) return;
  if (grad_.empty()) grad_ = Matrix(value_.rows(), value_.cols());
  TG_CHECK(grad_.SameShape(delta));
  grad_ += delta;
}

void Node::AccumulateGradMulAdd(const Matrix& g, const Matrix& scale) {
  if (!requires_grad_ && !has_backward()) return;
  if (grad_.empty()) grad_ = Matrix(value_.rows(), value_.cols());
  TG_CHECK(grad_.SameShape(g));
  TG_CHECK(grad_.SameShape(scale));
  kernels::MulAdd(grad_.data(), g.data(), scale.data(), grad_.size());
}

Var MakeParameter(Matrix value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/true);
}

Var MakeConstant(Matrix value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/false);
}

namespace {

// Iterative post-order DFS (the DAG can be deep for multi-layer models).
void TopologicalOrder(const Var& root, std::vector<Node*>* order) {
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  // Keep shared_ptrs alive through the traversal via the parents chains;
  // raw pointers below are safe because `root` holds the whole DAG.
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents().size()) {
      Node* parent = node->parents()[next_child].get();
      ++next_child;
      if (visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Var& root) {
  TG_CHECK(root != nullptr);
  TG_CHECK_MSG(root->value().rows() == 1 && root->value().cols() == 1,
               "Backward root must be a 1x1 scalar");
  std::vector<Node*> order;
  TopologicalOrder(root, &order);

  root->AccumulateGrad(Matrix(1, 1, 1.0));
  // Post-order puts parents before children; iterate in reverse so each
  // node's gradient is complete before it is propagated.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    (*it)->RunBackward();
  }
}

}  // namespace tg::autograd
