// Reverse-mode automatic differentiation over dense matrices.
//
// The engine is a dynamically built computation DAG: every operation in
// autograd/ops.h allocates a Node holding its value, its parents, and a
// closure that distributes the upstream gradient to the parents. Backward()
// topologically sorts the DAG and runs the closures in reverse order.
//
// This is the substrate for the GNN graph learners (GraphSAGE, GAT): their
// gradients are obtained automatically and validated against numerical
// differentiation in tests, instead of hand-deriving attention backprop.
#ifndef TG_AUTOGRAD_TAPE_H_
#define TG_AUTOGRAD_TAPE_H_

#include <functional>
#include <memory>
#include <vector>

#include "numeric/matrix.h"

namespace tg::autograd {

class Node;
// A handle to a DAG node. Ops return fresh Vars; parameters are long-lived
// Vars whose values are updated in place by the optimizer.
using Var = std::shared_ptr<Node>;

class Node {
 public:
  Node(Matrix value, bool requires_grad)
      : value_(std::move(value)), requires_grad_(requires_grad) {}

  const Matrix& value() const { return value_; }
  Matrix& mutable_value() { return value_; }

  bool requires_grad() const { return requires_grad_; }

  // Gradient of the scalar loss w.r.t. this node; zeros until Backward runs.
  const Matrix& grad() const { return grad_; }

  // Adds `delta` into the gradient accumulator (lazily sized).
  void AccumulateGrad(const Matrix& delta);

  // Fused grad += g (*) scale through the kernels::MulAdd backend -- no
  // Hadamard temporary. The scalar backend performs the same mul-then-add
  // rounding sequence as AccumulateGrad(g.Hadamard(scale)), so TG_ISA=scalar
  // stays bit-identical to the unfused form; vector backends may contract to
  // FMA within the documented ulp envelope.
  void AccumulateGradMulAdd(const Matrix& g, const Matrix& scale);

  void ZeroGrad() { grad_ = Matrix(); }

  // --- Graph-construction internals (used by ops.cc) ---
  void set_parents(std::vector<Var> parents) { parents_ = std::move(parents); }
  void set_backward(std::function<void(const Matrix&)> fn) {
    backward_ = std::move(fn);
  }
  const std::vector<Var>& parents() const { return parents_; }
  bool has_backward() const { return static_cast<bool>(backward_); }
  void RunBackward() {
    if (backward_ && !grad_.empty()) backward_(grad_);
  }

 private:
  Matrix value_;
  Matrix grad_;
  bool requires_grad_;
  std::vector<Var> parents_;
  std::function<void(const Matrix&)> backward_;
};

// Creates a trainable leaf (gradient accumulated).
Var MakeParameter(Matrix value);

// Creates a constant leaf (no gradient).
Var MakeConstant(Matrix value);

// Runs reverse-mode differentiation from `root`, which must hold a 1x1
// scalar. Gradients accumulate into every reachable node that requires them;
// call ZeroGradAll (or the optimizer's ZeroGrad) between steps.
void Backward(const Var& root);

}  // namespace tg::autograd

#endif  // TG_AUTOGRAD_TAPE_H_
