// Model recommendation (paper Fig. 5, stage 4): ranks the zoo's models for a
// target dataset by predicted fine-tuning performance.
#ifndef TG_CORE_RECOMMENDER_H_
#define TG_CORE_RECOMMENDER_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "zoo/model_zoo.h"

namespace tg::core {

struct Recommendation {
  size_t model_index = 0;
  std::string model_name;
  double predicted_score = 0.0;
};

// Top-k models by predicted score from a completed evaluation.
std::vector<Recommendation> TopModels(const TargetEvaluation& evaluation,
                                      const zoo::ModelZoo& zoo, size_t k);

// Convenience wrapper: run the pipeline on the target and return the top-k
// recommendations (the public "which models should I fine-tune?" API).
std::vector<Recommendation> RecommendModels(Pipeline* pipeline,
                                            const PipelineConfig& config,
                                            size_t target_dataset, size_t k);

}  // namespace tg::core

#endif  // TG_CORE_RECOMMENDER_H_
