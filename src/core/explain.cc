#include "core/explain.h"

#include <algorithm>
#include <map>

#include "util/check.h"
#include "util/string_util.h"

namespace tg::core {
namespace {

std::string GroupOf(const std::string& feature) {
  if (StartsWith(feature, "model_emb_")) return "graph: model embedding";
  if (StartsWith(feature, "dataset_emb_")) return "graph: dataset embedding";
  if (StartsWith(feature, "arch_")) return "metadata: architecture";
  return feature;
}

}  // namespace

std::vector<FeatureAttribution> ExplainPredictor(
    const ml::Regressor& model,
    const std::vector<std::string>& feature_names, size_t top_k) {
  const std::vector<double> importances = model.FeatureImportances();
  if (importances.empty()) return {};
  TG_CHECK_EQ(importances.size(), feature_names.size());

  std::map<std::string, double> grouped;
  for (size_t f = 0; f < feature_names.size(); ++f) {
    grouped[GroupOf(feature_names[f])] += importances[f];
  }

  std::vector<FeatureAttribution> out;
  out.reserve(grouped.size());
  for (const auto& [name, importance] : grouped) {
    out.push_back(FeatureAttribution{name, importance});
  }
  std::sort(out.begin(), out.end(),
            [](const FeatureAttribution& a, const FeatureAttribution& b) {
              return a.importance > b.importance;
            });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

std::string RenderAttributions(
    const std::vector<FeatureAttribution>& attributions) {
  size_t width = 0;
  for (const auto& a : attributions) width = std::max(width, a.feature.size());
  std::string text;
  for (const auto& a : attributions) {
    text += a.feature;
    text.append(width - a.feature.size() + 2, ' ');
    text += FormatDouble(a.importance, 4);
    text += "\n";
  }
  return text;
}

}  // namespace tg::core
