#include "core/budget_search.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace tg::core {

double EstimateFineTuneCost(const zoo::ModelZoo& zoo, size_t model,
                            size_t dataset, const BudgetOptions& options) {
  const zoo::ModelInfo& m = zoo.models()[model];
  const zoo::DatasetInfo& d = zoo.datasets()[dataset];
  const double mparams = m.num_parameters_millions;
  const double msamples =
      static_cast<double>(d.num_samples) / 1e6;
  return std::max(options.min_cost_gpu_hours,
                  options.cost_per_mparam_msample * mparams * msamples);
}

double ExpectedBestOf(const std::vector<double>& means, double sigma) {
  if (means.empty()) return 0.0;
  if (sigma <= 0.0) {
    return *std::max_element(means.begin(), means.end());
  }
  // Fixed-seed Monte Carlo; deterministic and accurate enough for planning.
  Rng rng(0xBADCAB1Eu);
  const int trials = 2000;
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    double best = -1e300;
    for (double mu : means) {
      best = std::max(best, mu + sigma * rng.NextGaussian());
    }
    total += best;
  }
  return total / trials;
}

BudgetPlan PlanFineTuning(const zoo::ModelZoo& zoo,
                          const TargetEvaluation& evaluation,
                          const BudgetOptions& options) {
  TG_CHECK_EQ(evaluation.predicted.size(), evaluation.model_indices.size());
  const size_t n = evaluation.predicted.size();

  // Candidates in descending predicted-score order.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return evaluation.predicted[a] > evaluation.predicted[b];
  });

  BudgetPlan plan;
  std::vector<double> selected_means;
  for (size_t rank = 0; rank < n; ++rank) {
    if (plan.selected.size() >= options.max_models) break;
    const size_t i = order[rank];
    const size_t model = evaluation.model_indices[i];
    const double cost = EstimateFineTuneCost(
        zoo, model, evaluation.target_dataset, options);
    if (plan.total_cost_gpu_hours + cost > options.budget_gpu_hours) {
      continue;  // too expensive; cheaper lower-ranked models may still fit
    }
    // Keep the model only if it improves the expected best outcome.
    std::vector<double> with = selected_means;
    with.push_back(evaluation.predicted[i]);
    const double gain = ExpectedBestOf(with, options.prediction_noise) -
                        ExpectedBestOf(selected_means,
                                       options.prediction_noise);
    if (!plan.selected.empty() && gain <= 1e-4) continue;

    selected_means = std::move(with);
    BudgetPlanEntry entry;
    entry.model_index = model;
    entry.model_name = zoo.models()[model].name;
    entry.predicted_score = evaluation.predicted[i];
    entry.estimated_cost_gpu_hours = cost;
    plan.total_cost_gpu_hours += cost;
    plan.selected.push_back(std::move(entry));
  }
  plan.expected_best_accuracy =
      ExpectedBestOf(selected_means, options.prediction_noise);
  return plan;
}

}  // namespace tg::core
