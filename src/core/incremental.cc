#include "core/incremental.h"

#include <algorithm>

#include "util/check.h"

namespace tg::core {

IncrementalRecommender::IncrementalRecommender(zoo::ModelZoo* zoo,
                                               zoo::Modality modality,
                                               const PipelineConfig& config)
    : zoo_(zoo), modality_(modality), config_(config) {
  TG_CHECK_MSG(config.strategy.features != FeatureSet::kAllWithLogMe,
               "incremental mode does not support the LogME feature set");
  config_.graph.exclude_target.reset();  // full graph, no leave-one-out

  if (config_.strategy.UsesGraphFeatures()) {
    built_ = BuildModelZooGraph(zoo_, modality_, config_.graph);
    Pipeline pipeline(zoo_, modality_);
    embeddings_ = pipeline.EmbeddingsFor(config_, built_);
  }

  assembler_ = std::make_unique<FeatureAssembler>(
      zoo_, modality_, config_.strategy.features, config_.graph.representation,
      config_.strategy.UsesGraphFeatures() ? &built_ : nullptr,
      config_.strategy.UsesGraphFeatures() ? &embeddings_ : nullptr);

  // Train the predictor once on the entire history.
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t d : zoo_->PublicDatasets(modality_)) {
    for (size_t m : zoo_->ModelsOfModality(modality_)) {
      pairs.emplace_back(m, d);
    }
  }
  ml::TabularDataset train =
      assembler_->BuildTable(pairs, config_.graph.history_method);
  predictor_ = MakePredictor(config_.strategy.predictor, config_.predictor);
  Status fit = predictor_->Fit(train);
  TG_CHECK_MSG(fit.ok(), fit.ToString().c_str());
}

double IncrementalRecommender::ScoreExisting(size_t model, size_t dataset) {
  return predictor_->Predict(assembler_->Row(model, dataset));
}

std::vector<double> IncrementalRecommender::ApproximateEmbedding(
    const zoo::ModelInfo& info,
    const std::vector<NewModelObservation>& observations) const {
  if (!config_.strategy.UsesGraphFeatures()) return {};
  const size_t dim = embeddings_.cols();
  std::vector<double> embedding(dim, 0.0);
  double total_weight = 0.0;

  auto add_dataset = [&](size_t dataset, double weight) {
    auto it = built_.dataset_node.find(dataset);
    TG_CHECK_MSG(it != built_.dataset_node.end(),
                 "observation references a dataset outside the graph");
    const double w = std::max(weight, 1e-6);
    for (size_t c = 0; c < dim; ++c) {
      embedding[c] += w * embeddings_(it->second, c);
    }
    total_weight += w;
  };

  // The edges the new model would have: pre-training source + history.
  add_dataset(info.source_dataset, info.pretrain_accuracy);
  for (const NewModelObservation& obs : observations) {
    add_dataset(obs.dataset, obs.accuracy);
  }
  for (double& v : embedding) v /= total_weight;
  return embedding;
}

double IncrementalRecommender::ScoreNewModel(
    const zoo::ModelInfo& info,
    const std::vector<NewModelObservation>& observations,
    size_t target_dataset) {
  TG_CHECK(info.modality == modality_);
  const std::vector<double> embedding =
      ApproximateEmbedding(info, observations);
  return predictor_->Predict(
      assembler_->RowForExternalModel(info, embedding, target_dataset));
}

}  // namespace tg::core
