#include "core/graph_builder.h"

#include <algorithm>

#include "numeric/stats.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/rng.h"

namespace tg::core {

BuiltGraph BuildModelZooGraph(zoo::ModelZoo* zoo, zoo::Modality modality,
                              const GraphBuildOptions& options) {
  TG_CHECK_GT(options.history_ratio, 0.0);
  TG_TRACE_SPAN("graph_build");
  BuiltGraph built;
  Rng rng(options.seed);

  const std::vector<size_t> dataset_ids = zoo->DatasetsOfModality(modality);
  const std::vector<size_t> model_ids = zoo->ModelsOfModality(modality);
  const std::vector<size_t> public_ids = zoo->PublicDatasets(modality);

  // --- Nodes ---
  for (size_t d : dataset_ids) {
    built.dataset_node[d] =
        built.graph.AddNode(NodeType::kDataset, zoo->datasets()[d].name);
  }
  for (size_t m : model_ids) {
    built.model_node[m] =
        built.graph.AddNode(NodeType::kModel, zoo->models()[m].name);
  }

  // --- D-D similarity edges: all pairs (kept under leave-one-out) ---
  for (size_t i = 0; i < dataset_ids.size(); ++i) {
    for (size_t j = i + 1; j < dataset_ids.size(); ++j) {
      const double sim = zoo->DatasetSimilarityScore(
          dataset_ids[i], dataset_ids[j], options.representation);
      built.graph.AddUndirectedEdge(built.dataset_node[dataset_ids[i]],
                                    built.dataset_node[dataset_ids[j]],
                                    EdgeType::kDatasetDataset,
                                    std::max(sim, 1e-3));
    }
  }

  const bool loo = options.exclude_target.has_value();
  auto excluded = [&](size_t dataset) {
    return loo && *options.exclude_target == dataset;
  };

  // --- M-D training-performance edges ---
  if (options.include_accuracy_edges) {
    // Pre-training performance: model <-> its source dataset.
    for (size_t m : model_ids) {
      const size_t source = zoo->models()[m].source_dataset;
      if (excluded(source)) continue;
      built.graph.AddUndirectedEdge(built.model_node[m],
                                    built.dataset_node[source],
                                    EdgeType::kModelDatasetAccuracy,
                                    zoo->PretrainAccuracy(m));
    }
    // Fine-tuning history on public datasets, per-dataset normalized.
    for (size_t d : public_ids) {
      if (excluded(d)) continue;
      std::vector<double> accuracies;
      accuracies.reserve(model_ids.size());
      for (size_t m : model_ids) {
        accuracies.push_back(
            zoo->FineTuneAccuracy(m, d, options.history_method));
      }
      const std::vector<double> normalized = MinMaxNormalize(accuracies);
      for (size_t i = 0; i < model_ids.size(); ++i) {
        // Appendix B: only a fraction of the history may be available.
        if (options.history_ratio < 1.0 &&
            !rng.NextBernoulli(options.history_ratio)) {
          continue;
        }
        const NodeId model_node = built.model_node[model_ids[i]];
        const NodeId dataset_node = built.dataset_node[d];
        if (normalized[i] >= options.accuracy_threshold) {
          built.graph.AddUndirectedEdge(model_node, dataset_node,
                                        EdgeType::kModelDatasetAccuracy,
                                        accuracies[i]);
        } else if (normalized[i] < options.negative_threshold) {
          built.negative_edges.emplace_back(model_node, dataset_node);
        }
      }
    }
  }

  // --- M-D transferability edges (LogME) on public datasets ---
  if (options.include_transferability_edges) {
    for (size_t d : public_ids) {
      if (excluded(d)) continue;
      std::vector<double> scores;
      scores.reserve(model_ids.size());
      for (size_t m : model_ids) scores.push_back(zoo->LogMe(m, d));
      const std::vector<double> normalized = MinMaxNormalize(scores);
      for (size_t i = 0; i < model_ids.size(); ++i) {
        if (normalized[i] < options.transferability_threshold) continue;
        // Floor keeps edge weights strictly positive even when the minimum
        // score survives a very low pruning threshold.
        built.graph.AddUndirectedEdge(
            built.model_node[model_ids[i]], built.dataset_node[d],
            EdgeType::kModelDatasetTransferability,
            std::max(normalized[i], 1e-3));
      }
    }
  }

  return built;
}

}  // namespace tg::core
