#include "core/recommender.h"

#include <algorithm>
#include <numeric>

namespace tg::core {

std::vector<Recommendation> TopModels(const TargetEvaluation& evaluation,
                                      const zoo::ModelZoo& zoo, size_t k) {
  std::vector<size_t> order(evaluation.predicted.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return evaluation.predicted[a] > evaluation.predicted[b];
  });
  std::vector<Recommendation> out;
  const size_t take = std::min(k, order.size());
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    Recommendation rec;
    rec.model_index = evaluation.model_indices[order[i]];
    rec.model_name = zoo.models()[rec.model_index].name;
    rec.predicted_score = evaluation.predicted[order[i]];
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<Recommendation> RecommendModels(Pipeline* pipeline,
                                            const PipelineConfig& config,
                                            size_t target_dataset, size_t k) {
  const TargetEvaluation evaluation =
      pipeline->EvaluateTarget(config, target_dataset);
  return TopModels(evaluation, *pipeline->zoo(), k);
}

}  // namespace tg::core
