// Strategy configuration: which graph learner, which prediction model, and
// which feature set a model-selection run uses (paper §VII-A, "Summary of
// our proposed graph-learning-based strategy"). Display names follow the
// paper's convention, e.g. "TG:LR,N2V,all" or the baseline "LR{all,LogME}".
#ifndef TG_CORE_STRATEGY_H_
#define TG_CORE_STRATEGY_H_

#include <memory>
#include <string>

#include "ml/gbdt.h"
#include "ml/linear_regression.h"
#include "ml/random_forest.h"
#include "ml/tabular.h"

namespace tg::core {

enum class GraphLearner {
  kNone,
  kNode2Vec,
  kNode2VecPlus,
  kGraphSage,
  kGat,
};

enum class PredictorKind {
  kLinearRegression,
  kRandomForest,
  kXgboost,
  // Pick among the three by k-fold cross-validation on the training history
  // (paper §VII-E: "identify the most appropriate prediction model based on
  // varying dataset characteristics").
  kAuto,
};

// Which supervised features feed the prediction model.
enum class FeatureSet {
  // Basic model/dataset metadata only (the Amazon LR baseline).
  kMetadataOnly,
  // Metadata + dataset distance + LogME score (the LR{all,LogME} baseline).
  kAllWithLogMe,
  // Graph embeddings only.
  kGraphOnly,
  // Metadata + dataset distance + graph embeddings (the paper's "all").
  kAll,
};

const char* GraphLearnerName(GraphLearner learner);    // "N2V", "GAT", ...
const char* PredictorKindName(PredictorKind kind);     // "LR", "RF", "XGB"
const char* FeatureSetName(FeatureSet features);

struct PredictorSettings {
  double ridge_lambda = 1e-3;
  ml::RandomForestConfig random_forest;
  ml::GbdtConfig gbdt;
};

struct Strategy {
  PredictorKind predictor = PredictorKind::kXgboost;
  GraphLearner learner = GraphLearner::kNode2Vec;
  FeatureSet features = FeatureSet::kAll;

  // Paper-style display name.
  std::string DisplayName() const;

  bool UsesGraphFeatures() const {
    return learner != GraphLearner::kNone &&
           (features == FeatureSet::kGraphOnly ||
            features == FeatureSet::kAll);
  }
};

// Constructs the predictor. `kind` must not be kAuto -- resolve that first
// with SelectPredictorByCv.
std::unique_ptr<ml::Regressor> MakePredictor(
    PredictorKind kind, const PredictorSettings& settings = {});

// Cross-validates LR / RF / XGB (with the given settings) on the training
// table and returns the kind with the lowest mean RMSE.
PredictorKind SelectPredictorByCv(const ml::TabularDataset& train,
                                  const PredictorSettings& settings = {},
                                  int folds = 4, uint64_t seed = 41);

}  // namespace tg::core

#endif  // TG_CORE_STRATEGY_H_
