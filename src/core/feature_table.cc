#include "core/feature_table.h"

#include <cmath>

#include "numeric/stats.h"
#include "util/check.h"

namespace tg::core {
namespace {

bool IncludesMetadata(FeatureSet set) {
  return set == FeatureSet::kMetadataOnly || set == FeatureSet::kAllWithLogMe ||
         set == FeatureSet::kAll;
}

bool IncludesDistance(FeatureSet set) {
  return set == FeatureSet::kAllWithLogMe || set == FeatureSet::kAll;
}

bool IncludesLogMe(FeatureSet set) { return set == FeatureSet::kAllWithLogMe; }

bool IncludesGraph(FeatureSet set) {
  return set == FeatureSet::kGraphOnly || set == FeatureSet::kAll;
}

}  // namespace

FeatureAssembler::FeatureAssembler(zoo::ModelZoo* zoo, zoo::Modality modality,
                                   FeatureSet feature_set,
                                   zoo::DatasetRepresentation representation,
                                   const BuiltGraph* built,
                                   const Matrix* embeddings)
    : zoo_(zoo),
      modality_(modality),
      feature_set_(feature_set),
      representation_(representation),
      built_(built),
      embeddings_(embeddings) {
  if (IncludesGraph(feature_set)) {
    TG_CHECK_MSG(built_ != nullptr && embeddings_ != nullptr,
                 "graph feature set requires a built graph and embeddings");
  }
}

double FeatureAssembler::NormalizedLogMe(size_t model, size_t dataset) {
  auto it = normalized_logme_.find(dataset);
  if (it == normalized_logme_.end()) {
    const std::vector<size_t> model_ids = zoo_->ModelsOfModality(modality_);
    std::vector<double> scores;
    scores.reserve(model_ids.size());
    for (size_t m : model_ids) scores.push_back(zoo_->LogMe(m, dataset));
    const std::vector<double> normalized = MinMaxNormalize(scores);
    std::unordered_map<size_t, double> per_model;
    for (size_t i = 0; i < model_ids.size(); ++i) {
      per_model[model_ids[i]] = normalized[i];
    }
    it = normalized_logme_.emplace(dataset, std::move(per_model)).first;
  }
  auto found = it->second.find(model);
  TG_CHECK(found != it->second.end());
  return found->second;
}

namespace {

// Shared metadata block used for both zoo models and external models.
void AppendModelDatasetMetadata(const zoo::ModelInfo& m,
                                const zoo::DatasetInfo& d,
                                std::vector<double>* row) {
  for (int a = 0; a < zoo::kNumArchitectures; ++a) {
    row->push_back(static_cast<int>(m.architecture) == a ? 1.0 : 0.0);
  }
  row->push_back(std::log10(m.num_parameters_millions));
  row->push_back(std::log10(std::max(m.memory_mb, 1.0)));
  row->push_back(static_cast<double>(m.input_size) / 1000.0);
  row->push_back(m.pretrain_accuracy);
  row->push_back(
      std::log10(static_cast<double>(std::max<size_t>(d.num_samples, 1))));
  row->push_back(static_cast<double>(d.num_classes) / 100.0);
}

}  // namespace

std::vector<double> FeatureAssembler::Row(size_t model, size_t dataset) {
  const zoo::ModelInfo& m = zoo_->models()[model];
  const zoo::DatasetInfo& d = zoo_->datasets()[dataset];
  TG_CHECK(m.modality == modality_ && d.modality == modality_);

  std::vector<double> row;
  if (IncludesMetadata(feature_set_)) {
    AppendModelDatasetMetadata(m, d, &row);
  }
  if (IncludesDistance(feature_set_)) {
    // Similarity between the model's pre-training source and the dataset.
    row.push_back(zoo_->DatasetSimilarityScore(m.source_dataset, dataset,
                                               representation_));
  }
  if (IncludesLogMe(feature_set_)) {
    row.push_back(NormalizedLogMe(model, dataset));
  }
  if (IncludesGraph(feature_set_)) {
    auto m_it = built_->model_node.find(model);
    auto d_it = built_->dataset_node.find(dataset);
    TG_CHECK(m_it != built_->model_node.end());
    TG_CHECK(d_it != built_->dataset_node.end());
    for (size_t c = 0; c < embeddings_->cols(); ++c) {
      row.push_back((*embeddings_)(m_it->second, c));
    }
    for (size_t c = 0; c < embeddings_->cols(); ++c) {
      row.push_back((*embeddings_)(d_it->second, c));
    }
  }
  return row;
}

std::vector<double> FeatureAssembler::RowForExternalModel(
    const zoo::ModelInfo& info, const std::vector<double>& model_embedding,
    size_t dataset) {
  TG_CHECK_MSG(!IncludesLogMe(feature_set_),
               "external models cannot use the LogME feature set");
  const zoo::DatasetInfo& d = zoo_->datasets()[dataset];
  TG_CHECK(info.modality == modality_ && d.modality == modality_);

  std::vector<double> row;
  if (IncludesMetadata(feature_set_)) {
    AppendModelDatasetMetadata(info, d, &row);
  }
  if (IncludesDistance(feature_set_)) {
    row.push_back(zoo_->DatasetSimilarityScore(info.source_dataset, dataset,
                                               representation_));
  }
  if (IncludesGraph(feature_set_)) {
    TG_CHECK_EQ(model_embedding.size(), embeddings_->cols());
    for (double v : model_embedding) row.push_back(v);
    auto d_it = built_->dataset_node.find(dataset);
    TG_CHECK(d_it != built_->dataset_node.end());
    for (size_t c = 0; c < embeddings_->cols(); ++c) {
      row.push_back((*embeddings_)(d_it->second, c));
    }
  }
  return row;
}

std::vector<std::string> FeatureAssembler::FeatureNames() const {
  std::vector<std::string> names;
  if (IncludesMetadata(feature_set_)) {
    for (int a = 0; a < zoo::kNumArchitectures; ++a) {
      names.push_back(std::string("arch_") +
                      zoo::ArchitectureName(static_cast<zoo::Architecture>(a)));
    }
    names.push_back("log_params");
    names.push_back("log_memory");
    names.push_back("input_size");
    names.push_back("pretrain_accuracy");
    names.push_back("log_dataset_samples");
    names.push_back("dataset_classes");
  }
  if (IncludesDistance(feature_set_)) names.push_back("source_target_similarity");
  if (IncludesLogMe(feature_set_)) names.push_back("logme_normalized");
  if (IncludesGraph(feature_set_)) {
    const size_t dim = embeddings_ != nullptr ? embeddings_->cols() : 0;
    for (size_t c = 0; c < dim; ++c) {
      names.push_back("model_emb_" + std::to_string(c));
    }
    for (size_t c = 0; c < dim; ++c) {
      names.push_back("dataset_emb_" + std::to_string(c));
    }
  }
  return names;
}

ml::TabularDataset FeatureAssembler::BuildTable(
    const std::vector<std::pair<size_t, size_t>>& pairs,
    zoo::FineTuneMethod method) {
  ml::TabularDataset table;
  table.feature_names = FeatureNames();
  TG_CHECK(!pairs.empty());
  table.x = Matrix(pairs.size(), table.feature_names.size());
  table.y.resize(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto [model, dataset] = pairs[i];
    table.x.SetRow(i, Row(model, dataset));
    table.y[i] = zoo_->FineTuneAccuracy(model, dataset, method);
  }
  return table;
}

}  // namespace tg::core
