// Distributed leave-one-out sweep: N independent worker processes claim
// targets from a shared workdir, survive each other's crashes via lease
// reclaim, and a merger re-emits the final artifact bit-identically to a
// serial sweep. See docs/robustness.md for the full protocol.
//
// Workdir layout (all files published via util/atomic_file):
//   <workdir>/sweep.json                     manifest: schema, fingerprint,
//                                            build sha, target count
//   <workdir>/claims/target-<i>.free         unclaimed-target token
//   <workdir>/claims/target-<i>.<w>.lease    target i is owned by worker <w>
//   <workdir>/shards/target-<i>.json         completed evaluation of target i
//   <workdir>/shards/target-<i>.failed.json  target i failed even degraded
//   <workdir>/workers/<w>/heartbeat.json     pid/host/progress of worker <w>
//
// Claim protocol -- atomic rename, crash-safe by construction:
//   claim   rename(target-<i>.free            -> target-<i>.<me>.lease)
//   steal   rename(target-<i>.<victim>.lease  -> target-<i>.<me>.lease)
//             (only when the victim lease's mtime is older than --lease-sec)
//   release rename(target-<i>.<me>.lease      -> target-<i>.free)
//   done    publish shards/target-<i>.json, then unlink the lease
// rename(2) is atomic within a filesystem, so every transition has exactly
// one winner (losers see ENOENT) and a `kill -9` at any instant leaves the
// target either free, leased (reclaimable after the lease expires), or
// completed -- never lost, never torn. A lease acquired by rename keeps the
// source file's mtime, so owners bump it (utimensat) on acquisition and a
// renewal thread keeps bumping it every lease_sec/3 while a target is in
// flight; a stale bump loses at worst one target of duplicated work, and
// duplicated work is harmless because every worker computes bit-identical
// results and shard publication is an idempotent atomic rename.
//
// Fault sites (TG_FAULT): "claim.rename" (claim/steal/release rename fails
// transiently), "lease.renew" (a renewal tick is skipped), "shard.write"
// (shard publication fails; retried with backoff), "merge.read" (merger
// shard read fails; retried with backoff).
#ifndef TG_CORE_DISTRIBUTED_SWEEP_H_
#define TG_CORE_DISTRIBUTED_SWEEP_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "util/backoff.h"
#include "util/status.h"

namespace tg::core {

struct DistributedSweepOptions {
  std::string workdir;    // required; created if absent
  std::string worker_id;  // required; [A-Za-z0-9_-]+ (lands in file names)
  // A lease whose mtime is older than this is considered abandoned (owner
  // crashed or stalled) and may be stolen by any live worker.
  double lease_sec = 30.0;
  // Failed targets get one retry with DegradedFallbackConfig, matching
  // EvaluateAllTargetsResumable semantics.
  bool degrade_on_failure = true;
  // Retry/backoff policy for claim races and transient I/O faults. The seed
  // is XORed with a hash of worker_id so concurrent workers de-synchronize
  // deterministically.
  BackoffPolicy backoff;
  // Idle wait between scan rounds when every remaining target is owned by a
  // live lease (someone else is computing it).
  double poll_sec = 0.1;
  // Give up (incomplete, with an error) after this long without any global
  // progress: no claim, no steal, and no new shard appearing. 0 derives
  // max(60, 10 * lease_sec).
  double stall_timeout_sec = 0.0;
  // Run the background lease-renewal / heartbeat thread. Tests that
  // manipulate lease mtimes directly can turn it off.
  bool heartbeat = true;
};

// What one worker process did. `complete` means every target of the sweep
// is resolved (shard or failed-marker present) at exit -- regardless of
// which worker resolved it.
struct WorkerReport {
  size_t targets_total = 0;
  size_t evaluated = 0;        // targets this worker computed and published
  size_t claims = 0;           // free->lease transitions won
  size_t steals = 0;           // expired leases reclaimed from other workers
  size_t lease_expiries = 0;   // expired leases observed (== steals won here)
  size_t tmp_reclaimed = 0;    // orphaned .tmp debris removed at startup
  size_t retried = 0;          // targets that needed the degraded retry
  size_t degraded = 0;         // targets resolved by the fallback strategy
  size_t failed = 0;           // targets that failed even degraded
  bool drained = false;        // exited early on RequestSweepDrain (SIGTERM)
  bool complete = false;
  std::vector<std::string> errors;
};

// Merger outcome: shard-level validation problems, one line each, in target
// order. An empty `problems` means the artifact was written.
struct MergeReport {
  size_t targets_total = 0;
  size_t merged = 0;
  std::string artifact_path;
  std::vector<std::string> problems;
  bool ok() const { return problems.empty(); }
};

// --- Worker / merger entry points -------------------------------------------

// Runs one worker against the shared workdir until the sweep is resolved, a
// drain is requested, or the stall timeout fires. Status errors are setup
// failures only (bad options, manifest config/build mismatch); anything
// after setup is reported in the WorkerReport.
Result<WorkerReport> RunSweepWorker(Pipeline* pipeline,
                                    const PipelineConfig& config,
                                    const DistributedSweepOptions& options);

// Validates every shard against the expected fingerprint, build sha, and
// target roster (missing / failed / torn / stale-build / mismatched shards
// become MergeReport::problems) and, when clean, writes `out_path` in
// exactly the SaveSweepCheckpoint format -- byte-identical to the final
// checkpoint of an uninterrupted serial `sweep --checkpoint` of the same
// config on the same build. Status errors are workdir-level failures
// (unreadable manifest, config mismatch).
Result<MergeReport> MergeSweepShards(Pipeline* pipeline,
                                     const PipelineConfig& config,
                                     const std::string& workdir,
                                     const std::string& out_path);

// --- Protocol primitives (exposed for tests) --------------------------------

std::string SweepManifestPath(const std::string& workdir);
std::string SweepClaimsDir(const std::string& workdir);
std::string SweepShardsDir(const std::string& workdir);
std::string SweepFreePath(const std::string& workdir, size_t target);
std::string SweepLeasePath(const std::string& workdir, size_t target,
                           const std::string& worker);
std::string SweepShardPath(const std::string& workdir, size_t target);
std::string SweepFailedMarkerPath(const std::string& workdir, size_t target);
std::string SweepHeartbeatPath(const std::string& workdir,
                               const std::string& worker);

// Creates the directory tree, writes or validates the manifest (a manifest
// for a different fingerprint/build/target-count is InvalidArgument, never
// silently mixed), seeds claims/target-<i>.free tokens for unresolved
// targets, clears leases left behind for already-completed targets, and
// garbage-collects orphaned .tmp debris older than `lease_sec`
// (*tmp_reclaimed counts removals; also on the "sweep.tmp_reclaimed"
// metric).
Status InitializeSweepWorkdir(const std::string& workdir,
                              const std::string& fingerprint,
                              size_t num_targets, double lease_sec,
                              size_t* tmp_reclaimed);

// Claim the free token for `target`. True iff this worker won the rename;
// false on a lost race or an injected "claim.rename" fault (both are
// transient -- retry later). Bumps the lease mtime on success.
bool TryClaimFreeTarget(const std::string& workdir, size_t target,
                        const std::string& worker);

// Steal `target`'s lease iff one exists and its mtime is older than
// lease_sec. Exactly one concurrent stealer wins the rename. On success
// *victim names the previous owner.
bool TryStealExpiredLease(const std::string& workdir, size_t target,
                          const std::string& worker, double lease_sec,
                          std::string* victim);

// Graceful release: my lease becomes the free token again (drain path and
// persistent shard-write failure).
Status ReleaseLeaseToFree(const std::string& workdir, size_t target,
                          const std::string& worker);

// Bumps the mtime of an owned lease file to now. NotFound when the lease
// was stolen (the owner should stop renewing and treat its work as
// duplicated, not owned). Fault site "lease.renew".
Status RenewLease(const std::string& lease_path);

// Publishes shards/target-<i>.json (atomic; fault site "shard.write"). The
// per-target payload reuses the checkpoint encoder, so merged artifacts are
// byte-identical to serial checkpoints.
Status WriteSweepShard(const std::string& workdir, size_t target,
                       const std::string& fingerprint,
                       const TargetEvaluation& eval);

// Publishes shards/target-<i>.failed.json so a fleet never livelocks
// re-stealing a target that deterministically fails even degraded.
Status WriteSweepFailedMarker(const std::string& workdir, size_t target,
                              const std::string& fingerprint,
                              const std::string& error);

// Reads and validates one shard (fault site "merge.read"): schema,
// fingerprint, build sha, and target index must all match.
Result<TargetEvaluation> ReadSweepShard(const std::string& workdir,
                                        size_t target,
                                        const std::string& fingerprint);

// Removes *.tmp files older than `age_sec` under the workdir's claims/,
// shards/, and root directories. Returns the number removed.
size_t JanitorSweepTmpDebris(const std::string& workdir, double age_sec);

}  // namespace tg::core

#endif  // TG_CORE_DISTRIBUTED_SWEEP_H_
