// Non-learning baselines from the paper's evaluation: direct transferability
// ranking (LogME / LEEP / NCE / PARC) and random selection.
#ifndef TG_CORE_BASELINES_H_
#define TG_CORE_BASELINES_H_

#include <cstdint>

#include "core/pipeline.h"
#include "zoo/model_zoo.h"

namespace tg::core {

enum class EstimatorBaseline { kLogMe, kLeep, kNce, kParc, kHScore };

const char* EstimatorBaselineName(EstimatorBaseline baseline);

// Ranks models by the estimator's raw score on the target dataset.
TargetEvaluation EvaluateEstimatorBaseline(
    zoo::ModelZoo* zoo, size_t target_dataset, EstimatorBaseline baseline,
    zoo::FineTuneMethod evaluation_method =
        zoo::FineTuneMethod::kFullFineTune);

// Random scores (seeded); the paper's Fig. 2 "Random" strategy.
TargetEvaluation EvaluateRandomBaseline(
    zoo::ModelZoo* zoo, size_t target_dataset, uint64_t seed,
    zoo::FineTuneMethod evaluation_method =
        zoo::FineTuneMethod::kFullFineTune);

}  // namespace tg::core

#endif  // TG_CORE_BASELINES_H_
