// Leave-one-out evaluation driver: runs a strategy over every evaluation
// target of a modality and aggregates per-dataset Pearson correlations,
// the paper's headline metric (Eq. 1).
#ifndef TG_CORE_EVALUATION_H_
#define TG_CORE_EVALUATION_H_

#include <string>
#include <vector>

#include "core/pipeline.h"

namespace tg::core {

struct StrategySummary {
  std::string name;
  std::vector<std::string> target_names;
  std::vector<double> per_target_pearson;
  std::vector<double> per_target_spearman;
  double mean_pearson = 0.0;
  double mean_spearman = 0.0;
};

// Full leave-one-out sweep of one strategy.
StrategySummary EvaluateStrategy(Pipeline* pipeline,
                                 const PipelineConfig& config);

// Convenience: summary from precomputed per-target evaluations.
StrategySummary Summarize(const std::string& name,
                          const std::vector<TargetEvaluation>& evals);

}  // namespace tg::core

#endif  // TG_CORE_EVALUATION_H_
