#include "core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/sweep_checkpoint.h"
#include "util/backoff.h"
#include "numeric/pca.h"
#include "numeric/stats.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/build_info.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tg::core {
namespace {

// Constant-initialized so a SIGTERM arriving at any point of process
// lifetime can store to it; sweeps poll it between targets.
std::atomic<bool> g_sweep_drain{false};

}  // namespace

void RequestSweepDrain() {
  g_sweep_drain.store(true, std::memory_order_relaxed);
}

bool SweepDrainRequested() {
  return g_sweep_drain.load(std::memory_order_relaxed);
}

void ClearSweepDrain() {
  g_sweep_drain.store(false, std::memory_order_relaxed);
}

PipelineConfig DegradedFallbackConfig(const PipelineConfig& config) {
  PipelineConfig fallback = config;
  fallback.strategy.features = FeatureSet::kMetadataOnly;
  fallback.strategy.learner = GraphLearner::kNone;
  return fallback;
}

double TargetEvaluation::TopKMeanAccuracy(int k) const {
  TG_CHECK_GT(k, 0);
  TG_CHECK(!predicted.empty());
  std::vector<size_t> order(predicted.size());
  std::iota(order.begin(), order.end(), 0);
  // Only the top k matter; partial_sort is O(n log k) vs O(n log n).
  const size_t take = std::min<size_t>(static_cast<size_t>(k), order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<ptrdiff_t>(take), order.end(),
                    [&](size_t a, size_t b) {
                      return predicted[a] > predicted[b];
                    });
  double acc = 0.0;
  for (size_t i = 0; i < take; ++i) acc += actual[order[i]];
  return acc / static_cast<double>(take);
}

Pipeline::Pipeline(zoo::ModelZoo* zoo, zoo::Modality modality)
    : zoo_(zoo), modality_(modality) {}

std::string Pipeline::EmbeddingCacheKey(const PipelineConfig& config) const {
  const GraphBuildOptions& g = config.graph;
  std::string key = GraphLearnerName(config.strategy.learner);
  key += "|t=";
  key += g.exclude_target.has_value() ? std::to_string(*g.exclude_target)
                                      : "none";
  key += "|acc=" + std::to_string(g.accuracy_threshold);
  key += "|tr=" + std::to_string(g.transferability_threshold);
  key += "|ia=" + std::to_string(g.include_accuracy_edges);
  key += "|it=" + std::to_string(g.include_transferability_edges);
  key += "|hr=" + std::to_string(g.history_ratio);
  key += "|hm=" + std::string(zoo::FineTuneMethodName(g.history_method));
  key += "|rep=" + std::to_string(static_cast<int>(g.representation));
  key += "|gseed=" + std::to_string(g.seed);
  key += "|seed=" + std::to_string(config.seed);
  key += "|dim=" + std::to_string(config.node2vec.skipgram.dim);
  key += "|pca=" + std::to_string(config.node_feature_pca_dim);
  return key;
}

Matrix Pipeline::BuildNodeFeatures(const PipelineConfig& config,
                                   const BuiltGraph& built) {
  TG_TRACE_SPAN("node_features");
  // Feature layout: [type(2) | dataset representation | model metadata].
  // Collect the dataset representations (optionally PCA-reduced).
  std::vector<size_t> dataset_ids;
  dataset_ids.reserve(built.dataset_node.size());
  for (const auto& [dataset, node] : built.dataset_node) {
    (void)node;
    dataset_ids.push_back(dataset);
  }
  const size_t raw_dim =
      zoo_->DatasetEmbedding(dataset_ids.front(), config.graph.representation)
          .size();
  Matrix representations(dataset_ids.size(), raw_dim);
  for (size_t i = 0; i < dataset_ids.size(); ++i) {
    representations.SetRow(
        i, zoo_->DatasetEmbedding(dataset_ids[i],
                                  config.graph.representation));
  }
  if (config.node_feature_pca_dim > 0 &&
      config.node_feature_pca_dim < raw_dim) {
    Pca pca;
    Status fit = pca.Fit(representations, config.node_feature_pca_dim);
    TG_CHECK_MSG(fit.ok(), fit.ToString().c_str());
    representations = pca.Transform(representations);
  }
  const size_t repr_dim = representations.cols();

  const size_t meta_dim = static_cast<size_t>(zoo::kNumArchitectures) + 4;
  const size_t dim = 2 + repr_dim + meta_dim;
  Matrix features(built.graph.num_nodes(), dim);

  for (size_t i = 0; i < dataset_ids.size(); ++i) {
    const NodeId node = built.dataset_node.at(dataset_ids[i]);
    features(node, 0) = 1.0;
    for (size_t c = 0; c < repr_dim; ++c) {
      features(node, 2 + c) = representations(i, c);
    }
  }
  for (const auto& [model, node] : built.model_node) {
    features(node, 1) = 1.0;
    const zoo::ModelInfo& m = zoo_->models()[model];
    const size_t base = 2 + repr_dim;
    features(node, base + static_cast<size_t>(m.architecture)) = 1.0;
    features(node, base + zoo::kNumArchitectures + 0) =
        std::log10(m.num_parameters_millions) / 3.0;
    features(node, base + zoo::kNumArchitectures + 1) =
        static_cast<double>(m.input_size) / 1000.0;
    features(node, base + zoo::kNumArchitectures + 2) = m.pretrain_accuracy;
    features(node, base + zoo::kNumArchitectures + 3) =
        std::log10(std::max(m.memory_mb, 1.0)) / 4.0;
  }
  return features;
}

const Matrix& Pipeline::EmbeddingsFor(const PipelineConfig& config,
                                      const BuiltGraph& built) {
  TG_CHECK(config.strategy.learner != GraphLearner::kNone);
  static obs::Counter& cache_hit = obs::MetricsRegistry::Instance().GetCounter(
      "pipeline.embedding_cache.hit");
  static obs::Counter& cache_miss =
      obs::MetricsRegistry::Instance().GetCounter(
          "pipeline.embedding_cache.miss");
  const std::string key = EmbeddingCacheKey(config);
  {
    std::lock_guard<std::mutex> lock(embedding_mu_);
    auto it = embedding_cache_.find(key);
    if (it != embedding_cache_.end()) {
      cache_hit.Increment();
      return it->second;
    }
  }
  cache_miss.Increment();
  // Train outside the lock so concurrent targets (distinct keys in the
  // leave-one-out sweep) overlap; duplicate work on the same key is
  // deterministic-identical and the first insert wins.
  obs::WallTimer timer;
  TG_TRACE_SPAN2("embedding_train",
                 GraphLearnerName(config.strategy.learner));
  Matrix embeddings;
  switch (config.strategy.learner) {
    case GraphLearner::kNode2Vec:
    case GraphLearner::kNode2VecPlus: {
      Node2VecConfig n2v = config.node2vec;
      n2v.walk.extended =
          config.strategy.learner == GraphLearner::kNode2VecPlus;
      embeddings = Node2VecEmbed(built.graph, n2v, config.seed);
      break;
    }
    case GraphLearner::kGraphSage: {
      Rng rng(config.seed);
      const Matrix features = BuildNodeFeatures(config, built);
      gnn::EdgeIndex edges =
          gnn::BuildEdgeIndex(built.graph, /*add_self_loops=*/true);
      gnn::GraphSage encoder(edges, features.cols(), config.sage, &rng);
      embeddings = gnn::TrainLinkPrediction(built.graph, &encoder, features,
                                            built.negative_edges,
                                            config.link_prediction, &rng)
                       .embeddings;
      break;
    }
    case GraphLearner::kGat: {
      Rng rng(config.seed);
      const Matrix features = BuildNodeFeatures(config, built);
      gnn::EdgeIndex edges =
          gnn::BuildEdgeIndex(built.graph, /*add_self_loops=*/true);
      gnn::Gat encoder(edges, features.cols(), config.gat, &rng);
      embeddings = gnn::TrainLinkPrediction(built.graph, &encoder, features,
                                            built.negative_edges,
                                            config.link_prediction, &rng)
                       .embeddings;
      break;
    }
    case GraphLearner::kNone:
      break;
  }
  TG_LOG(Debug) << "graph learner " << GraphLearnerName(config.strategy.learner)
                << " trained in " << timer.ElapsedSeconds() << "s";
  std::lock_guard<std::mutex> lock(embedding_mu_);
  return embedding_cache_.emplace(key, std::move(embeddings)).first->second;
}

TargetEvaluation Pipeline::EvaluateTarget(const PipelineConfig& config,
                                          size_t target_dataset) {
  TG_CHECK_LT(target_dataset, zoo_->num_datasets());
  TG_CHECK(zoo_->datasets()[target_dataset].modality == modality_);
  TG_TRACE_SPAN2("evaluate_target", zoo_->datasets()[target_dataset].name);

  PipelineConfig cfg = config;
  cfg.graph.exclude_target = target_dataset;

  // --- Graph features (when the strategy uses them) ---
  BuiltGraph built;
  const Matrix* embeddings = nullptr;
  if (cfg.strategy.UsesGraphFeatures()) {
    built = BuildModelZooGraph(zoo_, modality_, cfg.graph);
    embeddings = &EmbeddingsFor(cfg, built);
  }

  FeatureAssembler assembler(zoo_, modality_, cfg.strategy.features,
                             cfg.graph.representation,
                             embeddings != nullptr ? &built : nullptr,
                             embeddings);

  // --- Training table: history on every public dataset except the target ---
  std::vector<std::pair<size_t, size_t>> train_pairs;
  const std::vector<size_t> model_ids = zoo_->ModelsOfModality(modality_);
  for (size_t d : zoo_->PublicDatasets(modality_)) {
    if (d == target_dataset) continue;
    for (size_t m : model_ids) train_pairs.emplace_back(m, d);
  }
  // Appendix B: when only a fraction of the training history is available,
  // the supervised table shrinks along with the graph edges.
  if (cfg.graph.history_ratio < 1.0) {
    Rng subsample_rng(cfg.graph.seed ^
                      (0x9E3779B97F4A7C15ULL * (target_dataset + 1)));
    std::vector<std::pair<size_t, size_t>> kept;
    for (const auto& pair : train_pairs) {
      if (subsample_rng.NextBernoulli(cfg.graph.history_ratio)) {
        kept.push_back(pair);
      }
    }
    if (!kept.empty()) train_pairs = std::move(kept);
  }
  ml::TabularDataset train = [&] {
    TG_TRACE_SPAN("train_table");
    return assembler.BuildTable(train_pairs, cfg.graph.history_method);
  }();
  if (cfg.use_transferability_labels) {
    for (size_t i = 0; i < train_pairs.size(); ++i) {
      train.y[i] = assembler.NormalizedLogMe(train_pairs[i].first,
                                             train_pairs[i].second);
    }
  }

  PredictorKind kind = cfg.strategy.predictor;
  if (kind == PredictorKind::kAuto) {
    kind = SelectPredictorByCv(train, cfg.predictor, /*folds=*/4, cfg.seed);
    TG_LOG(Debug) << "auto predictor for "
                  << zoo_->datasets()[target_dataset].name << ": "
                  << PredictorKindName(kind);
  }
  std::unique_ptr<ml::Regressor> predictor = MakePredictor(kind,
                                                           cfg.predictor);
  {
    TG_TRACE_SPAN2("predictor_fit", PredictorKindName(kind));
    Status fit = predictor->Fit(train);
    // Thrown, not TG_CHECKed: a singular fit on one target is a per-target
    // failure the resumable sweep can degrade around, not a process bug.
    if (!fit.ok()) {
      throw std::runtime_error("predictor fit failed: " + fit.ToString());
    }
  }

  // --- Prediction set: every model against the target ---
  TargetEvaluation eval;
  eval.target_dataset = target_dataset;
  eval.target_name = zoo_->datasets()[target_dataset].name;
  eval.model_indices = model_ids;
  eval.predicted.reserve(model_ids.size());
  eval.actual.reserve(model_ids.size());
  {
    TG_TRACE_SPAN("target_scoring");
    for (size_t m : model_ids) {
      eval.predicted.push_back(
          predictor->Predict(assembler.Row(m, target_dataset)));
      eval.actual.push_back(
          zoo_->FineTuneAccuracy(m, target_dataset, cfg.evaluation_method));
    }
  }
  eval.pearson = PearsonCorrelation(eval.predicted, eval.actual);
  eval.spearman = SpearmanCorrelation(eval.predicted, eval.actual);
  return eval;
}

std::vector<TargetEvaluation> Pipeline::EvaluateAllTargets(
    const PipelineConfig& config) {
  // The leave-one-out cells are independent (MetaGL/GLEMOS-style benchmark
  // shape): fan targets out across the pool. Every per-target computation
  // seeds its own randomness from the config, and the shared caches (zoo
  // scores, embeddings) memoize deterministic values, so the output is
  // bit-identical for any thread count.
  const std::vector<size_t> targets = zoo_->EvaluationTargets(modality_);
  TG_TRACE_SPAN("evaluate_all_targets");
  std::vector<TargetEvaluation> out(targets.size());
  ParallelFor(0, targets.size(), 1,
              [&](size_t begin, size_t end, size_t /*chunk*/) {
                for (size_t i = begin; i < end; ++i) {
                  out[i] = EvaluateTarget(config, targets[i]);
                }
              });
  return out;
}

bool Pipeline::TryEvaluateTarget(const PipelineConfig& config,
                                 size_t target_dataset, TargetEvaluation* out,
                                 std::string* error) {
  try {
    if (TG_FAULT_POINT("pipeline.target")) {
      throw std::runtime_error("injected fault at pipeline.target");
    }
    TargetEvaluation eval = EvaluateTarget(config, target_dataset);
    for (double p : eval.predicted) {
      if (!std::isfinite(p)) {
        throw std::runtime_error("non-finite prediction for " +
                                 eval.target_name);
      }
    }
    *out = std::move(eval);
    return true;
  } catch (const std::exception& e) {
    *error = e.what();
    return false;
  }
}

SweepResult Pipeline::EvaluateAllTargetsResumable(
    const PipelineConfig& config, const SweepOptions& options) {
  static obs::Counter& retries_counter =
      obs::MetricsRegistry::Instance().GetCounter("pipeline.target_retries");
  static obs::Counter& degraded_counter =
      obs::MetricsRegistry::Instance().GetCounter("pipeline.target_degraded");
  static obs::Counter& failures_counter =
      obs::MetricsRegistry::Instance().GetCounter("pipeline.target_failures");
  static obs::Counter& checkpoint_write_failures =
      obs::MetricsRegistry::Instance().GetCounter(
          "pipeline.checkpoint_write_failures");
  // Sweep heartbeat: progress gauges for /metrics and /statusz (the live
  // telemetry plane), refreshed per target. Write-only relaxed stores --
  // nothing numeric ever reads them back.
  static obs::Gauge& targets_total_gauge =
      obs::MetricsRegistry::Instance().GetGauge("sweep.targets_total");
  static obs::Gauge& targets_done_gauge =
      obs::MetricsRegistry::Instance().GetGauge("sweep.targets_done");
  static obs::Gauge& targets_retried_gauge =
      obs::MetricsRegistry::Instance().GetGauge("sweep.targets_retried");
  static obs::Gauge& targets_degraded_gauge =
      obs::MetricsRegistry::Instance().GetGauge("sweep.targets_degraded");
  static obs::Gauge& targets_failed_gauge =
      obs::MetricsRegistry::Instance().GetGauge("sweep.targets_failed");

  const std::vector<size_t> targets = zoo_->EvaluationTargets(modality_);
  TG_TRACE_SPAN("evaluate_all_targets");
  SweepResult result;
  result.evaluations.resize(targets.size());
  std::vector<char> done(targets.size(), 0);
  const std::string fingerprint = SweepFingerprint(config, modality_);

  // --- Resume: splice in completed targets from a matching checkpoint ---
  if (!options.checkpoint_path.empty()) {
    Result<SweepCheckpoint> loaded =
        LoadSweepCheckpoint(options.checkpoint_path);
    if (loaded.ok()) {
      const SweepCheckpoint& checkpoint = loaded.value();
      if (checkpoint.fingerprint != fingerprint) {
        TG_LOG(Warning) << "ignoring checkpoint " << options.checkpoint_path
                        << ": sweep config changed";
      } else if (checkpoint.build_git_sha != GetBuildInfo().git_sha) {
        TG_LOG(Warning) << "ignoring checkpoint " << options.checkpoint_path
                        << ": written by a different build ("
                        << checkpoint.build_git_sha << ")";
      } else {
        for (const TargetEvaluation& eval : checkpoint.targets) {
          for (size_t i = 0; i < targets.size(); ++i) {
            if (targets[i] == eval.target_dataset && !done[i] &&
                zoo_->datasets()[targets[i]].name == eval.target_name) {
              result.evaluations[i] = eval;
              done[i] = 1;
              ++result.resumed;
              break;
            }
          }
        }
        TG_LOG(Info) << "resumed " << result.resumed << "/" << targets.size()
                     << " targets from " << options.checkpoint_path;
      }
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      TG_LOG(Warning) << "ignoring unreadable checkpoint "
                      << options.checkpoint_path << ": "
                      << loaded.status().ToString();
    }
  }

  // Heartbeat baseline: resumed targets count as done from the start.
  size_t processed = result.resumed;
  targets_total_gauge.Set(static_cast<double>(targets.size()));
  targets_done_gauge.Set(static_cast<double>(processed));
  targets_retried_gauge.Set(0.0);
  targets_degraded_gauge.Set(0.0);
  targets_failed_gauge.Set(0.0);
  obs::EmitEvent("sweep.begin",
                 std::to_string(targets.size()) + " targets, " +
                     std::to_string(result.resumed) + " resumed");

  // Serializes result/done mutation and checkpoint writes; the heavy
  // per-target work runs outside it.
  std::mutex mu;
  auto save_checkpoint_locked = [&] {
    if (options.checkpoint_path.empty()) return;
    SweepCheckpoint checkpoint;
    checkpoint.build_git_sha = GetBuildInfo().git_sha;
    checkpoint.fingerprint = fingerprint;
    for (size_t i = 0; i < targets.size(); ++i) {
      if (done[i]) checkpoint.targets.push_back(result.evaluations[i]);
    }
    Status saved = SaveSweepCheckpoint(options.checkpoint_path, checkpoint);
    if (!saved.ok()) {
      // A failing checkpoint write degrades resumability, never results.
      checkpoint_write_failures.Increment();
      TG_LOG(Warning) << "checkpoint write failed: " << saved.ToString();
    }
  };

  auto run_target = [&](size_t i) {
    const std::string& target_name = zoo_->datasets()[targets[i]].name;
    obs::EmitEvent("sweep.target_begin", target_name);
    TargetEvaluation eval;
    std::string error;
    int retries = 0;
    bool degraded = false;
    bool ok = TryEvaluateTarget(config, targets[i], &eval, &error);
    if (!ok && options.degrade_on_failure) {
      ++retries;
      obs::EmitEvent("sweep.target_retry", target_name, error);
      // Back off briefly before the retry: transient faults (I/O pressure,
      // injected prob schedules) often clear with a pause. The delay is
      // deterministic under (config seed, target index) -- see util/backoff.
      BackoffPolicy retry_backoff;
      retry_backoff.initial_sec = 0.005;
      retry_backoff.max_sec = 0.05;
      retry_backoff.seed = config.seed ^ targets[i];
      Backoff(retry_backoff).SleepNext();
      // Degraded strategy: metadata-only features need no graph, no
      // embedding training, and no dataset representations -- the smallest
      // surface that still yields a ranking for every model.
      const PipelineConfig fallback = DegradedFallbackConfig(config);
      std::string retry_error;
      ok = TryEvaluateTarget(fallback, targets[i], &eval, &retry_error);
      if (ok) {
        degraded = true;
      } else {
        error += "; degraded retry: " + retry_error;
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    if (retries > 0) {
      result.retried += 1;
      retries_counter.Increment();
    }
    if (ok) {
      eval.retries = retries;
      eval.degraded = degraded;
      result.evaluations[i] = std::move(eval);
      done[i] = 1;
      if (degraded) {
        result.degraded += 1;
        degraded_counter.Increment();
      }
      save_checkpoint_locked();
    } else {
      TargetEvaluation& slot = result.evaluations[i];
      slot.target_dataset = targets[i];
      slot.target_name = zoo_->datasets()[targets[i]].name;
      slot.failed = true;
      slot.retries = retries;
      slot.error = error;
      result.failed += 1;
      result.complete = false;
      result.errors.push_back(slot.target_name + ": " + error);
      failures_counter.Increment();
      TG_LOG(Warning) << "target " << slot.target_name
                      << " failed: " << error;
    }
    // Heartbeat refresh: processed counts every finished attempt (ok,
    // degraded, or failed), so done/total reaches 1.0 even on lossy sweeps.
    ++processed;
    targets_done_gauge.Set(static_cast<double>(processed));
    targets_retried_gauge.Set(static_cast<double>(result.retried));
    targets_degraded_gauge.Set(static_cast<double>(result.degraded));
    targets_failed_gauge.Set(static_cast<double>(result.failed));
    obs::EmitEvent("sweep.target_end", target_name,
                   ok ? (degraded ? "degraded" : "ok") : "failed");
  };

  try {
    ParallelFor(0, targets.size(), 1,
                [&](size_t begin, size_t end, size_t /*chunk*/) {
                  for (size_t i = begin; i < end; ++i) {
                    // A drain request (SIGTERM) stops new targets; the
                    // completed ones are already checkpointed.
                    if (SweepDrainRequested()) return;
                    if (!done[i]) run_target(i);
                  }
                });
  } catch (const std::exception& e) {
    // A dispatch-level fault (thrown before any per-target guard could
    // catch it) aborted the parallel region; ParallelFor has already
    // drained every worker, so finish the stragglers serially.
    TG_LOG(Warning) << "parallel sweep aborted (" << e.what()
                    << "); finishing remaining targets serially";
    for (size_t i = 0; i < targets.size(); ++i) {
      if (SweepDrainRequested()) break;
      if (!done[i] && !result.evaluations[i].failed) run_target(i);
    }
  }
  if (SweepDrainRequested()) {
    result.drained = true;
    for (size_t i = 0; i < targets.size(); ++i) {
      if (!done[i]) result.complete = false;
    }
    obs::EmitEvent("sweep.drained",
                   std::to_string(processed) + "/" +
                       std::to_string(targets.size()) + " targets done");
  }
  obs::EmitEvent("sweep.end", std::to_string(targets.size()) + " targets, " +
                                  std::to_string(result.retried) +
                                  " retried, " +
                                  std::to_string(result.degraded) +
                                  " degraded, " +
                                  std::to_string(result.failed) + " failed");
  return result;
}

}  // namespace tg::core
