#include "core/evaluation.h"

#include "numeric/stats.h"

namespace tg::core {

StrategySummary Summarize(const std::string& name,
                          const std::vector<TargetEvaluation>& evals) {
  StrategySummary summary;
  summary.name = name;
  for (const TargetEvaluation& e : evals) {
    summary.target_names.push_back(e.target_name);
    summary.per_target_pearson.push_back(e.pearson);
    summary.per_target_spearman.push_back(e.spearman);
  }
  summary.mean_pearson = Mean(summary.per_target_pearson);
  summary.mean_spearman = Mean(summary.per_target_spearman);
  return summary;
}

StrategySummary EvaluateStrategy(Pipeline* pipeline,
                                 const PipelineConfig& config) {
  return Summarize(config.strategy.DisplayName(),
                   pipeline->EvaluateAllTargets(config));
}

}  // namespace tg::core
