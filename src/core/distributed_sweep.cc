#include "core/distributed_sweep.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep_checkpoint.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "util/atomic_file.h"
#include "util/build_info.h"
#include "util/fault.h"
#include "util/json_util.h"
#include "util/logging.h"

namespace tg::core {
namespace {

constexpr int kShardSchemaVersion = 1;
// Shard / failed-marker publication retries on transient I/O faults.
constexpr int kShardWriteAttempts = 6;
// Merger retries per shard on transient read faults (NotFound and
// InvalidArgument are permanent verdicts, never retried).
constexpr int kShardReadAttempts = 4;

uint64_t HashId(const std::string& id) {
  // FNV-1a: stable across runs, good enough to de-synchronize the backoff
  // streams of workers whose ids differ in one character.
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : id) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string ErrnoText() { return std::strerror(errno); }

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status MakeDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::Internal("mkdir " + path + ": " + ErrnoText());
}

// Seconds since `path` was last modified (wall clock -- lease expiry is
// process coordination, never part of results). Negative when unstattable.
double FileAgeSec(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1.0;
  struct timespec now;
  ::clock_gettime(CLOCK_REALTIME, &now);
  return static_cast<double>(now.tv_sec - st.st_mtim.tv_sec) +
         static_cast<double>(now.tv_nsec - st.st_mtim.tv_nsec) * 1e-9;
}

// rename(2) preserves the source's mtime, so every acquisition must bump
// the clock or the fresh owner would look expired to the next scanner.
void TouchNow(const std::string& path) {
  ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
}

double MonotonicSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string WorkersDir(const std::string& workdir) {
  return workdir + "/workers";
}

std::string WorkerDir(const std::string& workdir, const std::string& worker) {
  return WorkersDir(workdir) + "/" + worker;
}

Status ValidateWorkerId(const std::string& worker) {
  if (worker.empty()) {
    return Status::InvalidArgument("worker id must be non-empty");
  }
  for (char c : worker) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) {
      return Status::InvalidArgument(
          "worker id \"" + worker +
          "\" must match [A-Za-z0-9_-]+ (it becomes part of lease file "
          "names)");
    }
  }
  return Status::OK();
}

std::string ManifestJson(const std::string& fingerprint,
                         const std::string& build_sha, size_t num_targets) {
  std::string json = "{\"schema\":" + std::to_string(kShardSchemaVersion);
  json += ",\"build_git_sha\":" + JsonQuote(build_sha);
  json += ",\"fingerprint\":" + JsonQuote(fingerprint);
  json += ",\"num_targets\":" + std::to_string(num_targets);
  json += "}\n";
  return json;
}

// Manifest check shared by workers and the merger: a workdir initialized for
// a different config/build/roster is refused outright, never mixed.
Status ValidateManifest(const std::string& workdir,
                        const std::string& fingerprint, size_t num_targets) {
  const std::string path = SweepManifestPath(workdir);
  Result<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  Result<JsonValue> parsed = JsonValue::Parse(contents.value());
  if (!parsed.ok()) {
    return Status::InvalidArgument("sweep manifest " + path + ": " +
                                   parsed.status().message());
  }
  const JsonValue& root = parsed.value();
  const JsonValue* fp = root.Find("fingerprint");
  if (fp == nullptr || !fp->is_string() || fp->AsString() != fingerprint) {
    return Status::InvalidArgument(
        "sweep workdir " + workdir +
        " was initialized for a different configuration (fingerprint "
        "mismatch)");
  }
  const JsonValue* sha = root.Find("build_git_sha");
  const std::string my_sha = GetBuildInfo().git_sha;
  if (sha == nullptr || !sha->is_string() || sha->AsString() != my_sha) {
    return Status::InvalidArgument(
        "sweep workdir " + workdir + " belongs to build " +
        (sha != nullptr ? sha->AsString() : std::string("?")) +
        " but this binary is " + my_sha +
        " (mixed-build shards would break bit-identity)");
  }
  const JsonValue* n = root.Find("num_targets");
  if (n == nullptr || !n->is_number() ||
      n->AsDouble() != static_cast<double>(num_targets)) {
    return Status::InvalidArgument("sweep workdir " + workdir +
                                   " expects a different target roster");
  }
  return Status::OK();
}

// One parsed claims/ directory entry: "target-<i>.free" or
// "target-<i>.<owner>.lease".
struct ClaimEntry {
  size_t target = 0;
  std::string owner;  // empty for free tokens
  bool is_free = false;
};

bool ParseClaimName(const std::string& name, ClaimEntry* out) {
  constexpr const char kPrefix[] = "target-";
  if (name.rfind(kPrefix, 0) != 0) return false;
  size_t pos = sizeof(kPrefix) - 1;
  size_t digits = 0;
  size_t target = 0;
  while (pos < name.size() && name[pos] >= '0' && name[pos] <= '9') {
    target = target * 10 + static_cast<size_t>(name[pos] - '0');
    ++pos;
    ++digits;
  }
  if (digits == 0 || pos >= name.size() || name[pos] != '.') return false;
  ++pos;
  const std::string rest = name.substr(pos);
  if (rest == "free") {
    out->target = target;
    out->owner.clear();
    out->is_free = true;
    return true;
  }
  constexpr const char kLease[] = ".lease";
  const size_t lease_len = sizeof(kLease) - 1;
  if (rest.size() <= lease_len ||
      rest.compare(rest.size() - lease_len, lease_len, kLease) != 0) {
    return false;
  }
  out->target = target;
  out->owner = rest.substr(0, rest.size() - lease_len);
  out->is_free = false;
  return !out->owner.empty();
}

std::vector<ClaimEntry> ListClaims(const std::string& workdir) {
  std::vector<ClaimEntry> entries;
  DIR* dir = ::opendir(SweepClaimsDir(workdir).c_str());
  if (dir == nullptr) return entries;
  while (struct dirent* entry = ::readdir(dir)) {
    ClaimEntry parsed;
    if (ParseClaimName(entry->d_name, &parsed)) {
      entries.push_back(std::move(parsed));
    }
  }
  ::closedir(dir);
  return entries;
}

bool TargetResolved(const std::string& workdir, size_t target) {
  return PathExists(SweepShardPath(workdir, target)) ||
         PathExists(SweepFailedMarkerPath(workdir, target));
}

std::string ShardPayloadPrefix(const std::string& fingerprint,
                               size_t target) {
  std::string json = "{\"schema\":" + std::to_string(kShardSchemaVersion);
  json += ",\"build_git_sha\":" + JsonQuote(GetBuildInfo().git_sha);
  json += ",\"fingerprint\":" + JsonQuote(fingerprint);
  json += ",\"target_index\":" + std::to_string(target);
  return json;
}

// --- Lease renewal / heartbeat thread ---------------------------------------

// State shared between the worker loop and its renewer thread; everything
// below is guarded by `mu`. The renewer bumps the owned lease's mtime every
// lease_sec/4 so a live worker is never mistaken for a corpse, and publishes
// a heartbeat file so operators (and /statusz scrapers on other hosts) can
// see who is alive and how far along.
struct RenewerState {
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  std::string lease_path;  // empty between targets
  long current_target = -1;
  size_t claims = 0;
  size_t steals = 0;
  size_t lease_expiries = 0;
  size_t evaluated = 0;
  size_t failed = 0;
  size_t renew_failures = 0;
  size_t leases_lost = 0;
  bool drained = false;
};

std::string HeartbeatJson(const std::string& worker, const RenewerState& s,
                          size_t targets_total, double lease_sec) {
  char host[256] = "unknown";
  ::gethostname(host, sizeof(host) - 1);
  std::string json = "{\"worker_id\":" + JsonQuote(worker);
  json += ",\"pid\":" + std::to_string(static_cast<long>(::getpid()));
  json += ",\"host\":" + JsonQuote(host);
  json += ",\"time_unix\":" +
          std::to_string(static_cast<long long>(::time(nullptr)));
  json += ",\"lease_sec\":" + JsonNumber(lease_sec, 17);
  json += ",\"targets_total\":" + std::to_string(targets_total);
  json += ",\"claims\":" + std::to_string(s.claims);
  json += ",\"steals\":" + std::to_string(s.steals);
  json += ",\"lease_expiries\":" + std::to_string(s.lease_expiries);
  json += ",\"evaluated\":" + std::to_string(s.evaluated);
  json += ",\"failed\":" + std::to_string(s.failed);
  json += ",\"current_target\":" + std::to_string(s.current_target);
  json += ",\"drained\":" + std::string(s.drained ? "true" : "false");
  json += "}\n";
  return json;
}

void RenewerLoop(RenewerState* s, const std::string& workdir,
                 const std::string& worker, size_t targets_total,
                 double lease_sec) {
  const double interval =
      std::min(5.0, std::max(0.02, lease_sec / 4.0));
  const std::string heartbeat_path = SweepHeartbeatPath(workdir, worker);
  std::unique_lock<std::mutex> lock(s->mu);
  while (!s->stop) {
    s->cv.wait_for(lock, std::chrono::duration<double>(interval),
                   [s] { return s->stop; });
    if (s->stop) break;
    const std::string lease = s->lease_path;
    const std::string heartbeat =
        HeartbeatJson(worker, *s, targets_total, lease_sec);
    lock.unlock();
    if (!lease.empty()) {
      Status renewed = RenewLease(lease);
      if (!renewed.ok()) {
        lock.lock();
        if (renewed.code() == StatusCode::kNotFound) {
          // Stolen out from under us (we stalled past lease_sec, or the
          // mtime bump lost a race). The in-flight evaluation continues --
          // its result is bit-identical to the thief's and shard
          // publication is idempotent -- but we stop renewing a lease we
          // no longer own.
          if (s->lease_path == lease) {
            s->lease_path.clear();
            ++s->leases_lost;
          }
          lock.unlock();
          obs::EmitEvent("worker_lease_lost", worker, lease);
          lock.lock();
        } else {
          ++s->renew_failures;
        }
        lock.unlock();
      }
    }
    // Best-effort telemetry: a failing heartbeat write must never take the
    // worker down.
    (void)WriteFileAtomic(heartbeat_path, heartbeat, /*unique_temp=*/true);
    lock.lock();
  }
}

}  // namespace

// --- Paths ------------------------------------------------------------------

std::string SweepManifestPath(const std::string& workdir) {
  return workdir + "/sweep.json";
}

std::string SweepClaimsDir(const std::string& workdir) {
  return workdir + "/claims";
}

std::string SweepShardsDir(const std::string& workdir) {
  return workdir + "/shards";
}

std::string SweepFreePath(const std::string& workdir, size_t target) {
  return SweepClaimsDir(workdir) + "/target-" + std::to_string(target) +
         ".free";
}

std::string SweepLeasePath(const std::string& workdir, size_t target,
                           const std::string& worker) {
  return SweepClaimsDir(workdir) + "/target-" + std::to_string(target) + "." +
         worker + ".lease";
}

std::string SweepShardPath(const std::string& workdir, size_t target) {
  return SweepShardsDir(workdir) + "/target-" + std::to_string(target) +
         ".json";
}

std::string SweepFailedMarkerPath(const std::string& workdir, size_t target) {
  return SweepShardsDir(workdir) + "/target-" + std::to_string(target) +
         ".failed.json";
}

std::string SweepHeartbeatPath(const std::string& workdir,
                               const std::string& worker) {
  return WorkerDir(workdir, worker) + "/heartbeat.json";
}

// --- Protocol primitives ----------------------------------------------------

Status InitializeSweepWorkdir(const std::string& workdir,
                              const std::string& fingerprint,
                              size_t num_targets, double lease_sec,
                              size_t* tmp_reclaimed) {
  if (tmp_reclaimed != nullptr) *tmp_reclaimed = 0;
  if (workdir.empty()) {
    return Status::InvalidArgument("sweep workdir must be non-empty");
  }
  TG_RETURN_IF_ERROR(MakeDir(workdir));
  TG_RETURN_IF_ERROR(MakeDir(SweepClaimsDir(workdir)));
  TG_RETURN_IF_ERROR(MakeDir(SweepShardsDir(workdir)));
  TG_RETURN_IF_ERROR(MakeDir(WorkersDir(workdir)));

  const std::string manifest_path = SweepManifestPath(workdir);
  if (PathExists(manifest_path)) {
    TG_RETURN_IF_ERROR(ValidateManifest(workdir, fingerprint, num_targets));
  } else {
    // Two workers racing here write byte-identical manifests (same config,
    // same build) through the same temp name, so the loser's rename can
    // fail with ENOENT after the winner published. That race is benign:
    // whatever landed must still validate. A worker from a different
    // config lands in the validation path and is refused.
    const Status wrote = WriteFileAtomic(
        manifest_path,
        ManifestJson(fingerprint, GetBuildInfo().git_sha, num_targets),
        /*unique_temp=*/true);
    if (!wrote.ok() && !PathExists(manifest_path)) return wrote;
    TG_RETURN_IF_ERROR(ValidateManifest(workdir, fingerprint, num_targets));
  }

  // Janitor: a crash between an atomic writer's open and its rename leaves
  // `*.tmp` debris behind (deliberately -- see atomic_file.crash_before_
  // rename). Anything older than the lease horizon is dead weight.
  const size_t reclaimed = JanitorSweepTmpDebris(workdir, lease_sec);
  if (reclaimed > 0) {
    static obs::Counter& tmp_counter =
        obs::MetricsRegistry::Instance().GetCounter("sweep.tmp_reclaimed");
    tmp_counter.Increment(reclaimed);
    obs::EmitEvent("worker_tmp_reclaimed",
                   std::to_string(reclaimed) + " orphaned .tmp files",
                   workdir);
  }
  if (tmp_reclaimed != nullptr) *tmp_reclaimed = reclaimed;

  // Seed free tokens for unresolved, unclaimed targets and clear claim
  // debris for completed ones (a crash between shard publish and lease
  // unlink leaves a lease pointing at finished work).
  std::vector<uint8_t> has_free(num_targets, 0);
  std::vector<uint8_t> has_lease(num_targets, 0);
  for (const ClaimEntry& entry : ListClaims(workdir)) {
    if (entry.target >= num_targets) continue;
    if (entry.is_free) {
      has_free[entry.target] = 1;
    } else {
      has_lease[entry.target] = 1;
    }
  }
  for (size_t i = 0; i < num_targets; ++i) {
    if (TargetResolved(workdir, i)) {
      if (has_free[i]) std::remove(SweepFreePath(workdir, i).c_str());
      if (has_lease[i]) {
        for (const ClaimEntry& entry : ListClaims(workdir)) {
          if (!entry.is_free && entry.target == i) {
            std::remove(SweepLeasePath(workdir, i, entry.owner).c_str());
          }
        }
      }
      continue;
    }
    if (has_free[i] || has_lease[i]) continue;
    const Status seeded = WriteFileAtomic(SweepFreePath(workdir, i), "free\n",
                                          /*unique_temp=*/true);
    if (!seeded.ok()) {
      // Racing initializers share the token's temp name too; the seed only
      // genuinely failed if no token, lease, or shard exists afterwards
      // (a racing worker may even have claimed-and-finished it already).
      bool claimed_elsewhere = false;
      for (const ClaimEntry& entry : ListClaims(workdir)) {
        if (entry.target == i) {
          claimed_elsewhere = true;
          break;
        }
      }
      if (!claimed_elsewhere && !TargetResolved(workdir, i)) return seeded;
      continue;
    }
    // A racing worker may have published this target's shard between our
    // resolved check and the seed; retract the stale token so nobody
    // recomputes finished work. (If someone claims it first anyway, the
    // recompute is bit-identical -- wasteful, never wrong.)
    if (TargetResolved(workdir, i)) {
      std::remove(SweepFreePath(workdir, i).c_str());
    }
  }
  return Status::OK();
}

bool TryClaimFreeTarget(const std::string& workdir, size_t target,
                        const std::string& worker) {
  if (TG_FAULT_POINT("claim.rename")) return false;
  const std::string free_path = SweepFreePath(workdir, target);
  const std::string lease_path = SweepLeasePath(workdir, target, worker);
  // Plain rename(2): atomic, and with N workers renaming the same source
  // exactly one succeeds -- the losers see ENOENT. This is the entire
  // mutual-exclusion mechanism.
  if (std::rename(free_path.c_str(), lease_path.c_str()) != 0) return false;
  TouchNow(lease_path);  // rename kept the token's stale mtime
  return true;
}

bool TryStealExpiredLease(const std::string& workdir, size_t target,
                          const std::string& worker, double lease_sec,
                          std::string* victim) {
  if (victim != nullptr) victim->clear();
  // Find the current lease holder. At most one lease file exists per target
  // (it is only ever created by renaming the single free token or the
  // single previous lease).
  std::string owner;
  for (const ClaimEntry& entry : ListClaims(workdir)) {
    if (!entry.is_free && entry.target == target) {
      owner = entry.owner;
      break;
    }
  }
  if (owner.empty() || owner == worker) return false;
  const std::string victim_path = SweepLeasePath(workdir, target, owner);
  const double age = FileAgeSec(victim_path);
  if (age < lease_sec) return false;  // live owner, or lease vanished
  if (TG_FAULT_POINT("claim.rename")) return false;
  const std::string my_path = SweepLeasePath(workdir, target, worker);
  // Concurrent stealers race on the same source file: one rename wins.
  if (std::rename(victim_path.c_str(), my_path.c_str()) != 0) return false;
  TouchNow(my_path);
  if (victim != nullptr) *victim = owner;
  return true;
}

Status ReleaseLeaseToFree(const std::string& workdir, size_t target,
                          const std::string& worker) {
  if (TG_FAULT_POINT("claim.rename")) {
    // An unreleased lease is not leaked: it expires and gets stolen.
    return fault::InjectedFault("claim.rename");
  }
  const std::string lease_path = SweepLeasePath(workdir, target, worker);
  const std::string free_path = SweepFreePath(workdir, target);
  if (std::rename(lease_path.c_str(), free_path.c_str()) != 0) {
    if (errno == ENOENT) {
      return Status::NotFound("lease " + lease_path +
                              " no longer owned (stolen)");
    }
    return Status::Internal("release " + lease_path + ": " + ErrnoText());
  }
  TouchNow(free_path);
  return Status::OK();
}

Status RenewLease(const std::string& lease_path) {
  if (TG_FAULT_POINT("lease.renew")) {
    return fault::InjectedFault("lease.renew");
  }
  if (::utimensat(AT_FDCWD, lease_path.c_str(), nullptr, 0) != 0) {
    if (errno == ENOENT) {
      return Status::NotFound("lease " + lease_path + " gone");
    }
    return Status::Internal("renew " + lease_path + ": " + ErrnoText());
  }
  return Status::OK();
}

Status WriteSweepShard(const std::string& workdir, size_t target,
                       const std::string& fingerprint,
                       const TargetEvaluation& eval) {
  if (TG_FAULT_POINT("shard.write")) {
    return fault::InjectedFault("shard.write");
  }
  std::string json = ShardPayloadPrefix(fingerprint, target);
  json += ",\"target\":";
  AppendTargetEvaluationJson(eval, &json);
  json += "}\n";
  return WriteFileAtomic(SweepShardPath(workdir, target), json,
                         /*unique_temp=*/true);
}

Status WriteSweepFailedMarker(const std::string& workdir, size_t target,
                              const std::string& fingerprint,
                              const std::string& error) {
  if (TG_FAULT_POINT("shard.write")) {
    return fault::InjectedFault("shard.write");
  }
  std::string json = ShardPayloadPrefix(fingerprint, target);
  json += ",\"failed\":true,\"error\":" + JsonQuote(error);
  json += "}\n";
  return WriteFileAtomic(SweepFailedMarkerPath(workdir, target), json,
                         /*unique_temp=*/true);
}

Result<TargetEvaluation> ReadSweepShard(const std::string& workdir,
                                        size_t target,
                                        const std::string& fingerprint) {
  if (TG_FAULT_POINT("merge.read")) {
    return fault::InjectedFault("merge.read");
  }
  const std::string path = SweepShardPath(workdir, target);
  Result<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  Result<JsonValue> parsed = JsonValue::Parse(contents.value());
  if (!parsed.ok()) {
    return Status::InvalidArgument("shard " + path + ": torn or malformed: " +
                                   parsed.status().message());
  }
  const JsonValue& root = parsed.value();
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_number() ||
      schema->AsDouble() != kShardSchemaVersion) {
    return Status::InvalidArgument("shard " + path +
                                   ": unsupported schema version");
  }
  const JsonValue* sha = root.Find("build_git_sha");
  const std::string my_sha = GetBuildInfo().git_sha;
  if (sha == nullptr || !sha->is_string() || sha->AsString() != my_sha) {
    return Status::InvalidArgument(
        "shard " + path + ": stale build (shard " +
        (sha != nullptr ? sha->AsString() : std::string("?")) +
        ", merger " + my_sha + ")");
  }
  const JsonValue* fp = root.Find("fingerprint");
  if (fp == nullptr || !fp->is_string() || fp->AsString() != fingerprint) {
    return Status::InvalidArgument("shard " + path +
                                   ": configuration fingerprint mismatch");
  }
  const JsonValue* index = root.Find("target_index");
  if (index == nullptr || !index->is_number() ||
      index->AsDouble() != static_cast<double>(target)) {
    return Status::InvalidArgument("shard " + path +
                                   ": holds a different target index");
  }
  const JsonValue* inner = root.Find("target");
  if (inner == nullptr) {
    return Status::InvalidArgument("shard " + path + ": missing target");
  }
  Result<TargetEvaluation> eval = ParseTargetEvaluationJson(*inner);
  if (!eval.ok()) {
    return Status::InvalidArgument("shard " + path + ": " +
                                   eval.status().message());
  }
  return eval;
}

size_t JanitorSweepTmpDebris(const std::string& workdir, double age_sec) {
  std::vector<std::string> dirs = {workdir, SweepClaimsDir(workdir),
                                   SweepShardsDir(workdir),
                                   WorkersDir(workdir)};
  // Heartbeats live one level down: workers/<id>/heartbeat.json.tmp.
  if (DIR* workers = ::opendir(WorkersDir(workdir).c_str())) {
    while (struct dirent* entry = ::readdir(workers)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      const std::string sub = WorkersDir(workdir) + "/" + name;
      struct stat st;
      if (::stat(sub.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        dirs.push_back(sub);
      }
    }
    ::closedir(workers);
  }
  size_t reclaimed = 0;
  constexpr const char kTmp[] = ".tmp";
  const size_t tmp_len = sizeof(kTmp) - 1;
  for (const std::string& dir : dirs) {
    DIR* handle = ::opendir(dir.c_str());
    if (handle == nullptr) continue;
    while (struct dirent* entry = ::readdir(handle)) {
      const std::string name = entry->d_name;
      if (name.size() <= tmp_len ||
          name.compare(name.size() - tmp_len, tmp_len, kTmp) != 0) {
        continue;
      }
      const std::string path = dir + "/" + name;
      const double age = FileAgeSec(path);
      // Young .tmp files may belong to a live writer mid-commit; only
      // debris older than the lease horizon is provably orphaned.
      if (age < age_sec) continue;
      if (std::remove(path.c_str()) == 0) ++reclaimed;
    }
    ::closedir(handle);
  }
  return reclaimed;
}

// --- Worker -----------------------------------------------------------------

Result<WorkerReport> RunSweepWorker(Pipeline* pipeline,
                                    const PipelineConfig& config,
                                    const DistributedSweepOptions& options) {
  if (pipeline == nullptr) {
    return Status::InvalidArgument("pipeline must be non-null");
  }
  if (options.workdir.empty()) {
    return Status::InvalidArgument("--workdir is required");
  }
  TG_RETURN_IF_ERROR(ValidateWorkerId(options.worker_id));
  if (options.lease_sec <= 0.0) {
    return Status::InvalidArgument("--lease-sec must be positive");
  }

  zoo::ModelZoo* zoo = pipeline->zoo();
  const std::vector<size_t> targets =
      zoo->EvaluationTargets(pipeline->modality());
  if (targets.empty()) {
    return Status::FailedPrecondition("no evaluation targets");
  }
  const std::string fingerprint =
      SweepFingerprint(config, pipeline->modality());
  const std::string& workdir = options.workdir;
  const std::string& worker = options.worker_id;

  WorkerReport report;
  report.targets_total = targets.size();
  TG_RETURN_IF_ERROR(InitializeSweepWorkdir(
      workdir, fingerprint, targets.size(), options.lease_sec,
      &report.tmp_reclaimed));
  TG_RETURN_IF_ERROR(MakeDir(WorkerDir(workdir, worker)));

  static obs::Gauge& claims_gauge =
      obs::MetricsRegistry::Instance().GetGauge("sweep.claims");
  static obs::Gauge& steals_gauge =
      obs::MetricsRegistry::Instance().GetGauge("sweep.steals");
  static obs::Gauge& expiries_gauge =
      obs::MetricsRegistry::Instance().GetGauge("sweep.lease_expiries");
  static obs::Gauge& targets_total_gauge =
      obs::MetricsRegistry::Instance().GetGauge("sweep.targets_total");
  static obs::Gauge& targets_done_gauge =
      obs::MetricsRegistry::Instance().GetGauge("sweep.targets_done");
  targets_total_gauge.Set(static_cast<double>(targets.size()));

  RenewerState renewer;
  std::thread renewer_thread;
  if (options.heartbeat) {
    renewer_thread =
        std::thread(RenewerLoop, &renewer, workdir, worker, targets.size(),
                    options.lease_sec);
  }
  auto update_renewer = [&](const std::string& lease_path, long target) {
    std::lock_guard<std::mutex> lock(renewer.mu);
    renewer.lease_path = lease_path;
    renewer.current_target = target;
    renewer.claims = report.claims;
    renewer.steals = report.steals;
    renewer.lease_expiries = report.lease_expiries;
    renewer.evaluated = report.evaluated;
    renewer.failed = report.failed;
  };

  const uint64_t worker_hash = HashId(worker);
  BackoffPolicy idle_policy = options.backoff;
  idle_policy.seed ^= worker_hash;
  Backoff idle_backoff(idle_policy);

  obs::EmitEvent("worker_begin", worker,
                 std::to_string(targets.size()) + " targets, workdir " +
                     workdir);

  // Mirrors EvaluateAllTargetsResumable's run_target: one degraded retry,
  // then publish. Returns true iff the target is resolved (shard or failed
  // marker on disk) afterwards.
  auto run_one = [&](size_t k) -> bool {
    const size_t dataset = targets[k];
    const std::string& name = zoo->datasets()[dataset].name;
    const std::string lease_path = SweepLeasePath(workdir, k, worker);
    update_renewer(lease_path, static_cast<long>(k));
    obs::EmitEvent("worker_target_begin", worker, name);

    TargetEvaluation eval;
    std::string error;
    int retries = 0;
    bool degraded = false;
    bool ok = pipeline->TryEvaluateTarget(config, dataset, &eval, &error);
    if (!ok && options.degrade_on_failure) {
      ++retries;
      ++report.retried;
      obs::EmitEvent("worker_target_retry", worker, name + ": " + error);
      // Same deterministic pause-then-fallback as the resumable sweep, so a
      // distributed worker's degraded results are bit-identical to a serial
      // run's.
      BackoffPolicy retry_backoff;
      retry_backoff.initial_sec = 0.005;
      retry_backoff.max_sec = 0.05;
      retry_backoff.seed = config.seed ^ dataset;
      Backoff(retry_backoff).SleepNext();
      const PipelineConfig fallback = DegradedFallbackConfig(config);
      std::string retry_error;
      ok = pipeline->TryEvaluateTarget(fallback, dataset, &eval, &retry_error);
      if (ok) {
        degraded = true;
        ++report.degraded;
      } else {
        error += "; degraded retry: " + retry_error;
      }
    }

    BackoffPolicy write_policy = options.backoff;
    write_policy.seed ^= worker_hash ^ (k * 0x9e3779b97f4a7c15ull);
    Backoff write_backoff(write_policy);
    bool resolved = false;
    if (ok) {
      eval.retries = retries;
      eval.degraded = degraded;
      Status published;
      bool on_disk = false;
      for (int attempt = 0; attempt < kShardWriteAttempts; ++attempt) {
        published = WriteSweepShard(workdir, k, fingerprint, eval);
        if (published.ok()) {
          on_disk = true;
          break;
        }
        // A thief that published the (bit-identical) duplicate first can
        // make our rename fail; the shard being on disk is what matters.
        if (PathExists(SweepShardPath(workdir, k))) {
          on_disk = true;
          break;
        }
        write_backoff.SleepNext();
      }
      if (on_disk) {
        ++report.evaluated;
        resolved = true;
        obs::EmitEvent("worker_shard", worker,
                       name + (degraded ? " (degraded)" : ""));
        // Publish-then-unlink: at every instant the target shows as leased
        // or completed, never unowned-and-unfinished. ENOENT just means the
        // lease was stolen mid-flight; the duplicate shard was identical.
        std::remove(lease_path.c_str());
      } else {
        report.errors.push_back(name + ": shard write failed: " +
                                published.ToString());
        obs::EmitEvent("worker_shard_write_failed", worker,
                       name + ": " + published.ToString());
        // Hand the target back; a worker with a healthier disk can retry.
        (void)ReleaseLeaseToFree(workdir, k, worker);
      }
    } else {
      ++report.failed;
      report.errors.push_back(name + ": " + error);
      TG_LOG(Warning) << "worker " << worker << " target " << name
                      << " failed: " << error;
      Status published;
      bool on_disk = false;
      for (int attempt = 0; attempt < kShardWriteAttempts; ++attempt) {
        published = WriteSweepFailedMarker(workdir, k, fingerprint, error);
        if (published.ok() || PathExists(SweepFailedMarkerPath(workdir, k))) {
          on_disk = true;
          break;
        }
        write_backoff.SleepNext();
      }
      if (on_disk) {
        resolved = true;
        std::remove(lease_path.c_str());
      } else {
        (void)ReleaseLeaseToFree(workdir, k, worker);
      }
      obs::EmitEvent("worker_target_failed", worker, name + ": " + error);
    }
    update_renewer("", -1);
    claims_gauge.Set(static_cast<double>(report.claims));
    steals_gauge.Set(static_cast<double>(report.steals));
    expiries_gauge.Set(static_cast<double>(report.lease_expiries));
    return resolved;
  };

  const double stall_sec = options.stall_timeout_sec > 0.0
                               ? options.stall_timeout_sec
                               : std::max(60.0, 10.0 * options.lease_sec);
  double last_progress = MonotonicSec();
  size_t prev_resolved = 0;
  while (true) {
    if (SweepDrainRequested()) {
      report.drained = true;
      break;
    }
    size_t resolved = 0;
    bool progress = false;
    for (size_t k = 0; k < targets.size(); ++k) {
      // Drain finishes the in-flight target (run_one runs to completion
      // within an iteration) but claims nothing new.
      if (SweepDrainRequested()) break;
      if (TargetResolved(workdir, k)) {
        ++resolved;
        continue;
      }
      bool owned = false;
      std::string victim;
      if (TryClaimFreeTarget(workdir, k, worker)) {
        owned = true;
        ++report.claims;
        claims_gauge.Set(static_cast<double>(report.claims));
        obs::EmitEvent("worker_claim", worker,
                       "target " + std::to_string(k));
      } else if (TryStealExpiredLease(workdir, k, worker, options.lease_sec,
                                      &victim)) {
        owned = true;
        ++report.steals;
        ++report.lease_expiries;
        steals_gauge.Set(static_cast<double>(report.steals));
        expiries_gauge.Set(static_cast<double>(report.lease_expiries));
        obs::EmitEvent("worker_steal", worker,
                       "target " + std::to_string(k) + " from " + victim);
      }
      if (!owned) continue;
      progress = true;
      idle_backoff.Reset();
      if (run_one(k)) ++resolved;
    }
    targets_done_gauge.Set(static_cast<double>(resolved));
    if (SweepDrainRequested()) {
      report.drained = true;
      break;
    }
    if (resolved >= targets.size()) break;
    const double now = MonotonicSec();
    if (progress || resolved != prev_resolved) last_progress = now;
    prev_resolved = resolved;
    if (!progress) {
      if (now - last_progress > stall_sec) {
        report.errors.push_back(
            "stalled: no progress for " + std::to_string(stall_sec) +
            "s with " + std::to_string(targets.size() - resolved) +
            " unresolved targets");
        obs::EmitEvent("worker_stalled", worker,
                       std::to_string(targets.size() - resolved) +
                           " unresolved");
        break;
      }
      // Everything unresolved is leased by a live peer (or a claim race /
      // injected claim.rename fault just lost): back off with jitter, then
      // rescan -- a peer's shard, a freed token, or an expired lease will
      // show up.
      const double delay =
          std::max(options.poll_sec, idle_backoff.NextDelaySec());
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }

  // Final resolved census for the completion verdict (the loop's count can
  // be stale by one round when a peer published during our pass).
  size_t resolved = 0;
  for (size_t k = 0; k < targets.size(); ++k) {
    if (TargetResolved(workdir, k)) ++resolved;
  }
  report.complete = resolved == targets.size();
  targets_done_gauge.Set(static_cast<double>(resolved));

  if (options.heartbeat) {
    {
      std::lock_guard<std::mutex> lock(renewer.mu);
      renewer.stop = true;
    }
    renewer.cv.notify_all();
    renewer_thread.join();
  }
  {
    // Final heartbeat so the drained/complete state is visible on disk even
    // after the renewer stopped.
    std::lock_guard<std::mutex> lock(renewer.mu);
    renewer.claims = report.claims;
    renewer.steals = report.steals;
    renewer.lease_expiries = report.lease_expiries;
    renewer.evaluated = report.evaluated;
    renewer.failed = report.failed;
    renewer.current_target = -1;
    renewer.drained = report.drained;
    (void)WriteFileAtomic(
        SweepHeartbeatPath(workdir, worker),
        HeartbeatJson(worker, renewer, targets.size(), options.lease_sec),
        /*unique_temp=*/true);
  }

  obs::EmitEvent(report.drained ? "worker_drain" : "worker_done", worker,
                 std::to_string(report.evaluated) + " evaluated, " +
                     std::to_string(report.claims) + " claims, " +
                     std::to_string(report.steals) + " steals, " +
                     std::to_string(resolved) + "/" +
                     std::to_string(targets.size()) + " resolved");
  return report;
}

// --- Merger -----------------------------------------------------------------

Result<MergeReport> MergeSweepShards(Pipeline* pipeline,
                                     const PipelineConfig& config,
                                     const std::string& workdir,
                                     const std::string& out_path) {
  if (pipeline == nullptr) {
    return Status::InvalidArgument("pipeline must be non-null");
  }
  if (out_path.empty()) {
    return Status::InvalidArgument("merge output path must be non-empty");
  }
  zoo::ModelZoo* zoo = pipeline->zoo();
  const std::vector<size_t> targets =
      zoo->EvaluationTargets(pipeline->modality());
  const std::string fingerprint =
      SweepFingerprint(config, pipeline->modality());
  if (!PathExists(SweepManifestPath(workdir))) {
    return Status::NotFound(workdir + " is not an initialized sweep workdir");
  }
  TG_RETURN_IF_ERROR(ValidateManifest(workdir, fingerprint, targets.size()));

  MergeReport report;
  report.targets_total = targets.size();
  std::vector<TargetEvaluation> evals;
  evals.reserve(targets.size());
  BackoffPolicy read_policy;
  read_policy.seed = HashId("sweep-merge");
  Backoff read_backoff(read_policy);
  for (size_t i = 0; i < targets.size(); ++i) {
    const std::string& name = zoo->datasets()[targets[i]].name;
    const std::string label = "target " + std::to_string(i) + " (" + name +
                              ")";
    if (PathExists(SweepFailedMarkerPath(workdir, i))) {
      std::string why = "unreadable marker";
      Result<std::string> marker =
          ReadFileToString(SweepFailedMarkerPath(workdir, i));
      if (marker.ok()) {
        Result<JsonValue> parsed = JsonValue::Parse(marker.value());
        if (parsed.ok()) {
          if (const JsonValue* err = parsed.value().Find("error");
              err != nullptr && err->is_string()) {
            why = err->AsString();
          }
        }
      }
      report.problems.push_back(label + ": failed: " + why);
      continue;
    }
    Result<TargetEvaluation> shard = Status::NotFound("unread");
    for (int attempt = 0; attempt < kShardReadAttempts; ++attempt) {
      shard = ReadSweepShard(workdir, i, fingerprint);
      if (shard.ok()) break;
      const StatusCode code = shard.status().code();
      // Missing and malformed/mismatched are permanent verdicts; only
      // transient I/O (injected merge.read, EIO) earns a retry.
      if (code == StatusCode::kNotFound ||
          code == StatusCode::kInvalidArgument) {
        break;
      }
      read_backoff.SleepNext();
    }
    if (!shard.ok()) {
      if (shard.status().code() == StatusCode::kNotFound) {
        report.problems.push_back(label + ": missing shard");
      } else {
        report.problems.push_back(label + ": " + shard.status().message());
      }
      continue;
    }
    const TargetEvaluation& eval = shard.value();
    // Duplicate / misplaced detection: a shard file that parses cleanly but
    // describes some other target (copied artifact, index collision).
    if (eval.target_dataset != targets[i] || eval.target_name != name) {
      report.problems.push_back(label + ": shard holds " + eval.target_name +
                                " (dataset " +
                                std::to_string(eval.target_dataset) + ")");
      continue;
    }
    evals.push_back(std::move(shard).value());
  }
  if (!report.ok()) {
    obs::EmitEvent("merge_failed", std::to_string(report.problems.size()) +
                                       " problem(s)");
    return report;
  }

  // Re-serialize through the checkpoint writer: same encoder, same field
  // order, same %.17g doubles, same build sha and fingerprint -- the merged
  // artifact is byte-identical to the final checkpoint of an uninterrupted
  // serial `sweep --checkpoint` run.
  SweepCheckpoint checkpoint;
  checkpoint.build_git_sha = GetBuildInfo().git_sha;
  checkpoint.fingerprint = fingerprint;
  checkpoint.targets = std::move(evals);
  TG_RETURN_IF_ERROR(SaveSweepCheckpoint(out_path, checkpoint));
  report.merged = targets.size();
  report.artifact_path = out_path;
  obs::EmitEvent("merge_done", std::to_string(report.merged) + " shards -> " +
                                   out_path);
  return report;
}

}  // namespace tg::core
