// The end-to-end TransferGraph pipeline (paper Fig. 5, stages 2-4):
// build the graph (leave-one-out on the target), learn node embeddings with
// the configured graph learner, assemble the supervised table from training
// history, fit the prediction model, and score all models on the target.
#ifndef TG_CORE_PIPELINE_H_
#define TG_CORE_PIPELINE_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/feature_table.h"
#include "core/graph_builder.h"
#include "core/strategy.h"
#include "embedding/node2vec.h"
#include "gnn/gat.h"
#include "gnn/link_prediction.h"
#include "gnn/sage.h"
#include "zoo/model_zoo.h"

namespace tg::core {

struct PipelineConfig {
  Strategy strategy;
  GraphBuildOptions graph;
  Node2VecConfig node2vec;  // dim defaults to the paper's 128
  gnn::SageConfig sage;
  gnn::GatConfig gat;
  gnn::LinkPredictionConfig link_prediction;
  PredictorSettings predictor;
  // When > 0, dataset representations are PCA-reduced to this many
  // dimensions before becoming GNN node features (appendix A: very
  // high-dimensional representations hurt GNN learners on the small graph).
  size_t node_feature_pca_dim = 0;
  // Ground truth used to *evaluate* predictions on the target; the history
  // edges / training labels use graph.history_method (paper Fig. 11b keeps
  // an old-method graph while evaluating against new-method accuracy).
  zoo::FineTuneMethod evaluation_method = zoo::FineTuneMethod::kFullFineTune;
  // Cold-start scenario (paper §VII-C): no fine-tuning history exists, so
  // the prediction model trains on normalized LogME pseudo-labels instead of
  // fine-tuning accuracy. Combine with graph.include_accuracy_edges = false.
  bool use_transferability_labels = false;
  uint64_t seed = 2024;
};

// Outcome of scoring every model against one target dataset.
struct TargetEvaluation {
  size_t target_dataset = 0;
  std::string target_name;
  std::vector<size_t> model_indices;
  std::vector<double> predicted;
  std::vector<double> actual;
  double pearson = 0.0;
  double spearman = 0.0;

  // Mean actual fine-tuning accuracy of the k models with the highest
  // predicted scores (the paper's Fig. 2 metric).
  double TopKMeanAccuracy(int k) const;
};

class Pipeline {
 public:
  // The zoo must outlive the pipeline. One pipeline per modality.
  Pipeline(zoo::ModelZoo* zoo, zoo::Modality modality);

  // Full leave-one-out evaluation of one target dataset. Thread-safe: the
  // embedding cache and the zoo's score caches are internally synchronized.
  TargetEvaluation EvaluateTarget(const PipelineConfig& config,
                                  size_t target_dataset);

  // Evaluates every evaluation-target dataset of the modality, in parallel
  // across the global thread pool (TG_THREADS). Bit-identical results for
  // any thread count given a fixed config seed.
  std::vector<TargetEvaluation> EvaluateAllTargets(
      const PipelineConfig& config);

  // Node embeddings for the given graph/learner configuration (cached per
  // configuration; shared across prediction models and feature sets).
  const Matrix& EmbeddingsFor(const PipelineConfig& config,
                              const BuiltGraph& built);

  zoo::Modality modality() const { return modality_; }
  zoo::ModelZoo* zoo() const { return zoo_; }

 private:
  std::string EmbeddingCacheKey(const PipelineConfig& config) const;
  // Node feature matrix for GNN learners: dataset representation for
  // dataset nodes, metadata for model nodes, plus node-type indicators.
  Matrix BuildNodeFeatures(const PipelineConfig& config,
                           const BuiltGraph& built);

  zoo::ModelZoo* zoo_;
  zoo::Modality modality_;
  // Guarded by embedding_mu_: concurrent targets insert distinct keys;
  // references stay valid under unordered_map insertion.
  std::mutex embedding_mu_;
  std::unordered_map<std::string, Matrix> embedding_cache_;
};

}  // namespace tg::core

#endif  // TG_CORE_PIPELINE_H_
