// The end-to-end TransferGraph pipeline (paper Fig. 5, stages 2-4):
// build the graph (leave-one-out on the target), learn node embeddings with
// the configured graph learner, assemble the supervised table from training
// history, fit the prediction model, and score all models on the target.
#ifndef TG_CORE_PIPELINE_H_
#define TG_CORE_PIPELINE_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/feature_table.h"
#include "core/graph_builder.h"
#include "core/strategy.h"
#include "embedding/node2vec.h"
#include "gnn/gat.h"
#include "gnn/link_prediction.h"
#include "gnn/sage.h"
#include "zoo/model_zoo.h"

namespace tg::core {

struct PipelineConfig {
  Strategy strategy;
  GraphBuildOptions graph;
  Node2VecConfig node2vec;  // dim defaults to the paper's 128
  gnn::SageConfig sage;
  gnn::GatConfig gat;
  gnn::LinkPredictionConfig link_prediction;
  PredictorSettings predictor;
  // When > 0, dataset representations are PCA-reduced to this many
  // dimensions before becoming GNN node features (appendix A: very
  // high-dimensional representations hurt GNN learners on the small graph).
  size_t node_feature_pca_dim = 0;
  // Ground truth used to *evaluate* predictions on the target; the history
  // edges / training labels use graph.history_method (paper Fig. 11b keeps
  // an old-method graph while evaluating against new-method accuracy).
  zoo::FineTuneMethod evaluation_method = zoo::FineTuneMethod::kFullFineTune;
  // Cold-start scenario (paper §VII-C): no fine-tuning history exists, so
  // the prediction model trains on normalized LogME pseudo-labels instead of
  // fine-tuning accuracy. Combine with graph.include_accuracy_edges = false.
  bool use_transferability_labels = false;
  uint64_t seed = 2024;
};

// Outcome of scoring every model against one target dataset.
struct TargetEvaluation {
  size_t target_dataset = 0;
  std::string target_name;
  std::vector<size_t> model_indices;
  std::vector<double> predicted;
  std::vector<double> actual;
  double pearson = 0.0;
  double spearman = 0.0;
  // Degradation bookkeeping (resumable sweeps): whether this evaluation
  // came from the metadata-only fallback strategy, how many extra attempts
  // it took, and -- when even the fallback failed -- the error text.
  bool degraded = false;
  int retries = 0;
  bool failed = false;
  std::string error;

  // Mean actual fine-tuning accuracy of the k models with the highest
  // predicted scores (the paper's Fig. 2 metric).
  double TopKMeanAccuracy(int k) const;
};

// Knobs for EvaluateAllTargetsResumable.
struct SweepOptions {
  // When non-empty, completed targets are checkpointed here (atomically)
  // after each finish, and a matching checkpoint is loaded on entry so a
  // restarted sweep skips already-evaluated targets.
  std::string checkpoint_path;
  // When a target throws, retry it once with the degraded strategy
  // (metadata-only features, no graph learner) before declaring it failed.
  bool degrade_on_failure = true;
};

// Outcome of a resumable sweep: per-target evaluations (in
// EvaluationTargets order) plus counters describing what the fault
// machinery had to do. `complete` is false iff any target failed even
// after the degraded retry, or was left unstarted by a drain request;
// failed slots carry failed=true and the error.
struct SweepResult {
  std::vector<TargetEvaluation> evaluations;
  size_t resumed = 0;   // targets restored from the checkpoint
  size_t retried = 0;   // targets that needed a degraded retry attempt
  size_t degraded = 0;  // targets whose result came from the fallback
  size_t failed = 0;    // targets with no result at all
  std::vector<std::string> errors;
  bool complete = true;
  // True iff a drain request (RequestSweepDrain, e.g. from a SIGTERM
  // handler) stopped the sweep early; completed targets are checkpointed
  // as usual and unstarted targets are simply left for a resumed run.
  bool drained = false;
};

// Cooperative graceful-shutdown flag for sweeps. RequestSweepDrain is
// async-signal-safe (one atomic store): tg_cli's SIGTERM/SIGINT handler
// calls it so an orchestrator can drain a worker -- the in-flight target
// finishes, state is checkpointed / leases released, and the process exits
// cleanly instead of being killed mid-write.
void RequestSweepDrain();
bool SweepDrainRequested();
void ClearSweepDrain();  // tests / repeated sweeps within one process

// The smallest strategy that still yields a ranking for every model:
// metadata-only features need no graph, no embedding training, and no
// dataset representations. Both the resumable sweep's once-degraded retry
// and the distributed worker's fallback use exactly this transform so their
// degraded results are bit-identical.
PipelineConfig DegradedFallbackConfig(const PipelineConfig& config);

class Pipeline {
 public:
  // The zoo must outlive the pipeline. One pipeline per modality.
  Pipeline(zoo::ModelZoo* zoo, zoo::Modality modality);

  // Full leave-one-out evaluation of one target dataset. Thread-safe: the
  // embedding cache and the zoo's score caches are internally synchronized.
  TargetEvaluation EvaluateTarget(const PipelineConfig& config,
                                  size_t target_dataset);

  // Evaluates every evaluation-target dataset of the modality, in parallel
  // across the global thread pool (TG_THREADS). Bit-identical results for
  // any thread count given a fixed config seed.
  std::vector<TargetEvaluation> EvaluateAllTargets(
      const PipelineConfig& config);

  // EvaluateAllTargets with graceful degradation and optional resume: a
  // target that throws (I/O fault, predictor failure, non-finite
  // predictions) is retried once with the degraded strategy instead of
  // taking the sweep down; with a checkpoint path, completed targets are
  // persisted after each finish and skipped on restart. Resumed sweeps are
  // bit-identical to uninterrupted ones (asserted by
  // tests/chaos_pipeline_test.cc). See docs/robustness.md.
  SweepResult EvaluateAllTargetsResumable(const PipelineConfig& config,
                                          const SweepOptions& options);

  // EvaluateTarget with every failure mode (exceptions, injected faults,
  // non-finite predictions) converted into a false return plus error text.
  // Public so the distributed sweep worker (core/distributed_sweep.h) gets
  // exactly the resumable sweep's per-target semantics.
  bool TryEvaluateTarget(const PipelineConfig& config, size_t target_dataset,
                         TargetEvaluation* out, std::string* error);

  // Node embeddings for the given graph/learner configuration (cached per
  // configuration; shared across prediction models and feature sets).
  const Matrix& EmbeddingsFor(const PipelineConfig& config,
                              const BuiltGraph& built);

  zoo::Modality modality() const { return modality_; }
  zoo::ModelZoo* zoo() const { return zoo_; }

 private:
  std::string EmbeddingCacheKey(const PipelineConfig& config) const;
  // Node feature matrix for GNN learners: dataset representation for
  // dataset nodes, metadata for model nodes, plus node-type indicators.
  Matrix BuildNodeFeatures(const PipelineConfig& config,
                           const BuiltGraph& built);

  zoo::ModelZoo* zoo_;
  zoo::Modality modality_;
  // Guarded by embedding_mu_: concurrent targets insert distinct keys;
  // references stay valid under unordered_map insertion.
  std::mutex embedding_mu_;
  std::unordered_map<std::string, Matrix> embedding_cache_;
};

}  // namespace tg::core

#endif  // TG_CORE_PIPELINE_H_
