// Construction of the model-zoo graph from collected features (paper §V-A,
// Table II heuristics):
//   * every dataset pair gets a D-D similarity edge;
//   * models connect to datasets through training-performance edges
//     (pre-training performance on the source dataset + fine-tuning history
//     on public datasets) kept when the per-dataset min-max-normalized
//     accuracy reaches the positive threshold;
//   * models connect to public datasets through transferability-score
//     (LogME) edges kept when the normalized score reaches the threshold;
//   * pairs below the negative threshold become labeled negative pairs for
//     the link-prediction objective.
// Leave-one-out: all M-D edges incident to the target dataset are dropped;
// D-D edges remain (paper §VII-A Evaluation).
#ifndef TG_CORE_GRAPH_BUILDER_H_
#define TG_CORE_GRAPH_BUILDER_H_

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "zoo/model_zoo.h"

namespace tg::core {

struct GraphBuildOptions {
  // Positive-edge thresholds on min-max-normalized scores (Table II: 0.5).
  double accuracy_threshold = 0.5;
  double transferability_threshold = 0.5;
  // Below this normalized accuracy a history pair becomes a labeled
  // negative (Table II: 0.5).
  double negative_threshold = 0.5;
  bool include_accuracy_edges = true;
  bool include_transferability_edges = true;
  // Leave-one-out target: drop every M-D edge incident to this dataset.
  std::optional<size_t> exclude_target;
  // Fraction of the fine-tuning history available (paper appendix B).
  double history_ratio = 1.0;
  // Which fine-tuning protocol produced the history edges (paper §VII-F).
  zoo::FineTuneMethod history_method = zoo::FineTuneMethod::kFullFineTune;
  zoo::DatasetRepresentation representation =
      zoo::DatasetRepresentation::kDomainSimilarity;
  uint64_t seed = 5;
};

struct BuiltGraph {
  Graph graph;
  // Labeled negatives (model node, dataset node) for link prediction.
  std::vector<std::pair<NodeId, NodeId>> negative_edges;
  std::unordered_map<size_t, NodeId> dataset_node;  // zoo index -> node
  std::unordered_map<size_t, NodeId> model_node;
};

// Builds the graph for one modality. `zoo` is mutated only through its
// internal caches.
BuiltGraph BuildModelZooGraph(zoo::ModelZoo* zoo, zoo::Modality modality,
                              const GraphBuildOptions& options);

}  // namespace tg::core

#endif  // TG_CORE_GRAPH_BUILDER_H_
