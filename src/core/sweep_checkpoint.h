// Checkpoint persistence for the leave-one-out evaluation sweep: completed
// TargetEvaluations are saved after each target (atomically, see
// util/atomic_file.h) so an interrupted sweep resumes where it stopped
// instead of recomputing hours of work. See docs/robustness.md.
//
// The file is JSON, versioned by a schema number, and stamped with the
// build's git sha plus a fingerprint of the sweep configuration; a
// checkpoint from a different build or config is ignored (with a warning)
// rather than spliced into mismatched results, which preserves the
// bit-identity guarantee: resumed results equal an uninterrupted run.
#ifndef TG_CORE_SWEEP_CHECKPOINT_H_
#define TG_CORE_SWEEP_CHECKPOINT_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "util/json_util.h"
#include "util/status.h"

namespace tg::core {

struct SweepCheckpoint {
  std::string build_git_sha;  // from GetBuildInfo() at save time
  std::string fingerprint;    // SweepFingerprint() of the config
  std::vector<TargetEvaluation> targets;  // completed evaluations only
};

// Deterministic digest of everything that affects sweep results: modality,
// strategy, graph options, seeds, label source, evaluation method. Two
// configs with equal fingerprints produce bit-identical evaluations.
std::string SweepFingerprint(const PipelineConfig& config,
                             zoo::Modality modality);

// Serializes and atomically publishes the checkpoint (temp + fsync +
// rename); an interrupted save leaves the previous checkpoint intact.
// Fault site: "checkpoint.write".
Status SaveSweepCheckpoint(const std::string& path,
                           const SweepCheckpoint& checkpoint);

// Loads and validates a checkpoint. NotFound if the file does not exist;
// InvalidArgument on schema mismatch, malformed JSON, non-finite scores, or
// inconsistent per-target arrays (treat any error as "start fresh").
// pearson/spearman are recomputed from the stored vectors, because the JSON
// encoder flattens non-finite values. Fault site: "checkpoint.read".
Result<SweepCheckpoint> LoadSweepCheckpoint(const std::string& path);

// The per-target JSON object used inside the checkpoint's "targets" array.
// Exposed so distributed-sweep shards (core/distributed_sweep.h) carry the
// byte-identical encoding: a merge of shards re-serialized through
// SaveSweepCheckpoint reproduces a serial checkpoint exactly. Doubles at
// %.17g so values round-trip bit-for-bit.
void AppendTargetEvaluationJson(const TargetEvaluation& eval,
                                std::string* out);

// Parses and validates one such object (the inverse of the appender);
// pearson/spearman are recomputed from the stored vectors. InvalidArgument
// on any malformed, non-finite, or inconsistent field.
Result<TargetEvaluation> ParseTargetEvaluationJson(const JsonValue& entry);

}  // namespace tg::core

#endif  // TG_CORE_SWEEP_CHECKPOINT_H_
