#include "core/sweep_checkpoint.h"

#include <cmath>

#include "numeric/stats.h"
#include "util/atomic_file.h"
#include "util/build_info.h"
#include "util/fault.h"
#include "util/json_util.h"

namespace tg::core {
namespace {

constexpr int kSchemaVersion = 1;

// Doubles are emitted at %.17g so strtod round-trips them exactly --
// required for the resume bit-identity guarantee.
constexpr int kDoublePrecision = 17;

void AppendDoubleArray(const std::vector<double>& values, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += JsonNumber(values[i], kDoublePrecision);
  }
  out->push_back(']');
}

Status BadCheckpoint(const std::string& path, const std::string& why) {
  return Status::InvalidArgument("checkpoint " + path + ": " + why);
}

// Reads a JSON array of numbers into `out`, requiring every element finite
// when `finite` (scores and indices must be; NaN would poison correlations
// silently).
bool ReadDoubleArray(const JsonValue* value, bool finite,
                     std::vector<double>* out) {
  if (value == nullptr || !value->is_array()) return false;
  out->clear();
  out->reserve(value->size());
  for (size_t i = 0; i < value->size(); ++i) {
    const JsonValue& element = value->at(i);
    if (!element.is_number()) return false;
    const double v = element.AsDouble();
    if (finite && !std::isfinite(v)) return false;
    out->push_back(v);
  }
  return true;
}

}  // namespace

std::string SweepFingerprint(const PipelineConfig& config,
                             zoo::Modality modality) {
  const GraphBuildOptions& g = config.graph;
  std::string fp = ModalityName(modality);
  fp += "|f=";
  fp += FeatureSetName(config.strategy.features);
  fp += "|l=";
  fp += GraphLearnerName(config.strategy.learner);
  fp += "|p=";
  fp += PredictorKindName(config.strategy.predictor);
  fp += "|acc=" + std::to_string(g.accuracy_threshold);
  fp += "|tr=" + std::to_string(g.transferability_threshold);
  fp += "|ia=" + std::to_string(g.include_accuracy_edges);
  fp += "|it=" + std::to_string(g.include_transferability_edges);
  fp += "|hr=" + std::to_string(g.history_ratio);
  fp += "|hm=" + std::string(zoo::FineTuneMethodName(g.history_method));
  fp += "|rep=" + std::to_string(static_cast<int>(g.representation));
  fp += "|gseed=" + std::to_string(g.seed);
  fp += "|dim=" + std::to_string(config.node2vec.skipgram.dim);
  fp += "|pca=" + std::to_string(config.node_feature_pca_dim);
  fp += "|em=" + std::string(zoo::FineTuneMethodName(config.evaluation_method));
  fp += "|tl=" + std::to_string(config.use_transferability_labels);
  fp += "|seed=" + std::to_string(config.seed);
  return fp;
}

Status SaveSweepCheckpoint(const std::string& path,
                           const SweepCheckpoint& checkpoint) {
  if (TG_FAULT_POINT("checkpoint.write")) {
    return fault::InjectedFault("checkpoint.write");
  }
  std::string json = "{\"schema\":" + std::to_string(kSchemaVersion);
  json += ",\"build_git_sha\":" + JsonQuote(checkpoint.build_git_sha);
  json += ",\"fingerprint\":" + JsonQuote(checkpoint.fingerprint);
  json += ",\"targets\":[";
  for (size_t i = 0; i < checkpoint.targets.size(); ++i) {
    if (i > 0) json.push_back(',');
    AppendTargetEvaluationJson(checkpoint.targets[i], &json);
  }
  json += "]}\n";
  // unique_temp: checkpoints and merged artifacts may be written by several
  // processes racing on one path (see distributed_sweep.h); a per-writer
  // temp name keeps every replace whole-file (last-writer-wins, no torn
  // reads).
  return WriteFileAtomic(path, json, /*unique_temp=*/true);
}

Result<SweepCheckpoint> LoadSweepCheckpoint(const std::string& path) {
  if (TG_FAULT_POINT("checkpoint.read")) {
    return fault::InjectedFault("checkpoint.read");
  }
  Result<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  Result<JsonValue> parsed = JsonValue::Parse(contents.value());
  if (!parsed.ok()) {
    return BadCheckpoint(path, parsed.status().message());
  }
  const JsonValue& root = parsed.value();
  if (!root.is_object()) return BadCheckpoint(path, "root is not an object");
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_number() ||
      schema->AsDouble() != kSchemaVersion) {
    return BadCheckpoint(path, "unsupported schema version");
  }

  SweepCheckpoint checkpoint;
  if (const JsonValue* sha = root.Find("build_git_sha");
      sha != nullptr && sha->is_string()) {
    checkpoint.build_git_sha = sha->AsString();
  }
  if (const JsonValue* fp = root.Find("fingerprint");
      fp != nullptr && fp->is_string()) {
    checkpoint.fingerprint = fp->AsString();
  }
  const JsonValue* targets = root.Find("targets");
  if (targets == nullptr || !targets->is_array()) {
    return BadCheckpoint(path, "missing targets array");
  }
  for (size_t i = 0; i < targets->size(); ++i) {
    Result<TargetEvaluation> eval = ParseTargetEvaluationJson(targets->at(i));
    if (!eval.ok()) {
      return BadCheckpoint(path, eval.status().message());
    }
    checkpoint.targets.push_back(std::move(eval).value());
  }
  return checkpoint;
}

void AppendTargetEvaluationJson(const TargetEvaluation& eval,
                                std::string* out) {
  *out += "{\"target_dataset\":" + std::to_string(eval.target_dataset);
  *out += ",\"target_name\":" + JsonQuote(eval.target_name);
  *out += ",\"degraded\":" + std::string(eval.degraded ? "true" : "false");
  *out += ",\"retries\":" + std::to_string(eval.retries);
  *out += ",\"model_indices\":[";
  for (size_t m = 0; m < eval.model_indices.size(); ++m) {
    if (m > 0) out->push_back(',');
    *out += std::to_string(eval.model_indices[m]);
  }
  *out += "],\"predicted\":";
  AppendDoubleArray(eval.predicted, out);
  *out += ",\"actual\":";
  AppendDoubleArray(eval.actual, out);
  *out += "}";
}

Result<TargetEvaluation> ParseTargetEvaluationJson(const JsonValue& entry) {
  if (!entry.is_object()) {
    return Status::InvalidArgument("target not an object");
  }
  TargetEvaluation eval;
  const JsonValue* dataset = entry.Find("target_dataset");
  if (dataset == nullptr || !dataset->is_number() ||
      dataset->AsDouble() < 0.0 ||
      dataset->AsDouble() != std::floor(dataset->AsDouble())) {
    return Status::InvalidArgument("bad target_dataset");
  }
  eval.target_dataset = static_cast<size_t>(dataset->AsDouble());
  const JsonValue* name = entry.Find("target_name");
  if (name == nullptr || !name->is_string() || name->AsString().empty()) {
    return Status::InvalidArgument("bad target_name");
  }
  eval.target_name = name->AsString();
  if (const JsonValue* degraded = entry.Find("degraded");
      degraded != nullptr) {
    eval.degraded = degraded->AsBool();
  }
  if (const JsonValue* retries = entry.Find("retries"); retries != nullptr) {
    eval.retries = static_cast<int>(retries->AsDouble());
  }
  std::vector<double> indices;
  if (!ReadDoubleArray(entry.Find("model_indices"), /*finite=*/true,
                       &indices)) {
    return Status::InvalidArgument("bad model_indices");
  }
  eval.model_indices.reserve(indices.size());
  for (double v : indices) {
    if (v < 0.0 || v != std::floor(v)) {
      return Status::InvalidArgument("bad model index");
    }
    eval.model_indices.push_back(static_cast<size_t>(v));
  }
  if (!ReadDoubleArray(entry.Find("predicted"), /*finite=*/true,
                       &eval.predicted) ||
      !ReadDoubleArray(entry.Find("actual"), /*finite=*/true, &eval.actual)) {
    return Status::InvalidArgument("bad score arrays");
  }
  if (eval.predicted.size() != eval.model_indices.size() ||
      eval.actual.size() != eval.model_indices.size() ||
      eval.model_indices.empty()) {
    return Status::InvalidArgument("inconsistent per-target arrays");
  }
  // Correlations are derived state; recompute instead of trusting (or
  // round-tripping) the file.
  eval.pearson = PearsonCorrelation(eval.predicted, eval.actual);
  eval.spearman = SpearmanCorrelation(eval.predicted, eval.actual);
  return eval;
}

}  // namespace tg::core
