// Incremental model recommendation (paper §VII-G future work: "dynamic
// graph learning ... timely update of the model recommendation").
//
// The graph learner and the prediction model are trained once over the full
// zoo; when a new checkpoint is uploaded, its node embedding is approximated
// *inductively* -- as the accuracy-weighted average of the embeddings of the
// dataset nodes it would connect to (its pre-training source plus any
// observed fine-tuning results) -- and the already-trained predictor scores
// it immediately, without retraining anything.
#ifndef TG_CORE_INCREMENTAL_H_
#define TG_CORE_INCREMENTAL_H_

#include <memory>
#include <vector>

#include "core/feature_table.h"
#include "core/pipeline.h"
#include "zoo/model_zoo.h"

namespace tg::core {

// An observed fine-tuning result of a new model on a public dataset.
struct NewModelObservation {
  size_t dataset = 0;
  double accuracy = 0.0;
};

class IncrementalRecommender {
 public:
  // Builds the full (non-leave-one-out) graph, trains the graph learner and
  // the prediction model once. The config's feature set must not be
  // kAllWithLogMe (external models have no features to run LogME on).
  IncrementalRecommender(zoo::ModelZoo* zoo, zoo::Modality modality,
                         const PipelineConfig& config);

  // Predicted fine-tuning accuracy of an existing zoo model.
  double ScoreExisting(size_t model, size_t dataset);

  // Predicted fine-tuning accuracy of a model that is not in the zoo, given
  // its metadata and (possibly empty) observed history. O(observations),
  // no retraining.
  double ScoreNewModel(const zoo::ModelInfo& info,
                       const std::vector<NewModelObservation>& observations,
                       size_t target_dataset);

  // The inductive embedding a new model would receive.
  std::vector<double> ApproximateEmbedding(
      const zoo::ModelInfo& info,
      const std::vector<NewModelObservation>& observations) const;

  const Matrix& embeddings() const { return embeddings_; }
  // The trained prediction model and its feature layout (for explanation).
  const ml::Regressor& predictor() const { return *predictor_; }
  std::vector<std::string> feature_names() const {
    return assembler_->FeatureNames();
  }

 private:
  zoo::ModelZoo* zoo_;
  zoo::Modality modality_;
  PipelineConfig config_;
  BuiltGraph built_;
  Matrix embeddings_;
  std::unique_ptr<FeatureAssembler> assembler_;
  std::unique_ptr<ml::Regressor> predictor_;
};

}  // namespace tg::core

#endif  // TG_CORE_INCREMENTAL_H_
