#include "core/strategy.h"

#include "ml/model_selection.h"
#include "util/check.h"

namespace tg::core {

const char* GraphLearnerName(GraphLearner learner) {
  switch (learner) {
    case GraphLearner::kNone:
      return "none";
    case GraphLearner::kNode2Vec:
      return "N2V";
    case GraphLearner::kNode2VecPlus:
      return "N2V+";
    case GraphLearner::kGraphSage:
      return "GraphSAGE";
    case GraphLearner::kGat:
      return "GAT";
  }
  return "?";
}

const char* PredictorKindName(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kLinearRegression:
      return "LR";
    case PredictorKind::kRandomForest:
      return "RF";
    case PredictorKind::kXgboost:
      return "XGB";
    case PredictorKind::kAuto:
      return "Auto";
  }
  return "?";
}

const char* FeatureSetName(FeatureSet features) {
  switch (features) {
    case FeatureSet::kMetadataOnly:
      return "metadata";
    case FeatureSet::kAllWithLogMe:
      return "all,LogME";
    case FeatureSet::kGraphOnly:
      return "graph-only";
    case FeatureSet::kAll:
      return "all";
  }
  return "?";
}

std::string Strategy::DisplayName() const {
  if (!UsesGraphFeatures()) {
    // Learning-based baselines named after the paper's convention.
    std::string base = PredictorKindName(predictor);
    if (features == FeatureSet::kAllWithLogMe) return base + "{all,LogME}";
    return base;
  }
  std::string name = "TG:";
  name += PredictorKindName(predictor);
  name += ",";
  name += GraphLearnerName(learner);
  if (features == FeatureSet::kAll) name += ",all";
  return name;
}

std::unique_ptr<ml::Regressor> MakePredictor(
    PredictorKind kind, const PredictorSettings& settings) {
  switch (kind) {
    case PredictorKind::kLinearRegression:
      return std::make_unique<ml::LinearRegression>(settings.ridge_lambda);
    case PredictorKind::kRandomForest:
      return std::make_unique<ml::RandomForest>(settings.random_forest);
    case PredictorKind::kXgboost:
      return std::make_unique<ml::Gbdt>(settings.gbdt);
    case PredictorKind::kAuto:
      TG_CHECK_MSG(false,
                   "kAuto must be resolved with SelectPredictorByCv first");
  }
  TG_CHECK_MSG(false, "unknown predictor kind");
  return nullptr;
}

PredictorKind SelectPredictorByCv(const ml::TabularDataset& train,
                                  const PredictorSettings& settings,
                                  int folds, uint64_t seed) {
  const std::vector<std::pair<std::string, ml::RegressorFactory>> candidates =
      {{"LR",
        [&settings] {
          return std::make_unique<ml::LinearRegression>(
              settings.ridge_lambda);
        }},
       {"RF",
        [&settings] {
          return std::make_unique<ml::RandomForest>(settings.random_forest);
        }},
       {"XGB", [&settings] {
          return std::make_unique<ml::Gbdt>(settings.gbdt);
        }}};
  Result<std::vector<ml::CandidateScore>> ranked =
      ml::RankPredictors(candidates, train, folds, seed);
  TG_CHECK_MSG(ranked.ok(), ranked.status().ToString().c_str());
  const std::string& best = ranked.value().front().name;
  if (best == "LR") return PredictorKind::kLinearRegression;
  if (best == "RF") return PredictorKind::kRandomForest;
  return PredictorKind::kXgboost;
}

}  // namespace tg::core
