// Interpretability helpers (paper §VII-G "future work ... interpret and
// explain the graph learning process"): surfaces which supervised features
// drive a prediction model's scores, with graph-embedding dimensions
// aggregated into two groups (model embedding, dataset embedding) so the
// report stays human-readable.
#ifndef TG_CORE_EXPLAIN_H_
#define TG_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "ml/tabular.h"

namespace tg::core {

struct FeatureAttribution {
  std::string feature;  // feature name or aggregated group name
  double importance = 0.0;
};

// Aggregates the fitted model's per-feature importances against the feature
// names, grouping "model_emb_*" / "dataset_emb_*" / "arch_*" columns, and
// returns the top-k attributions sorted by importance. Empty when the model
// exposes no importances.
std::vector<FeatureAttribution> ExplainPredictor(
    const ml::Regressor& model, const std::vector<std::string>& feature_names,
    size_t top_k = 8);

// Renders attributions as an aligned text block (one line per feature).
std::string RenderAttributions(
    const std::vector<FeatureAttribution>& attributions);

}  // namespace tg::core

#endif  // TG_CORE_EXPLAIN_H_
