#include "core/baselines.h"

#include "numeric/stats.h"
#include "util/check.h"
#include "util/rng.h"

namespace tg::core {
namespace {

TargetEvaluation Finish(zoo::ModelZoo* zoo, size_t target,
                        std::vector<size_t> model_ids,
                        std::vector<double> predicted,
                        zoo::FineTuneMethod method) {
  TargetEvaluation eval;
  eval.target_dataset = target;
  eval.target_name = zoo->datasets()[target].name;
  eval.model_indices = std::move(model_ids);
  eval.predicted = std::move(predicted);
  eval.actual.reserve(eval.model_indices.size());
  for (size_t m : eval.model_indices) {
    eval.actual.push_back(zoo->FineTuneAccuracy(m, target, method));
  }
  eval.pearson = PearsonCorrelation(eval.predicted, eval.actual);
  eval.spearman = SpearmanCorrelation(eval.predicted, eval.actual);
  return eval;
}

}  // namespace

const char* EstimatorBaselineName(EstimatorBaseline baseline) {
  switch (baseline) {
    case EstimatorBaseline::kLogMe:
      return "LogME";
    case EstimatorBaseline::kLeep:
      return "LEEP";
    case EstimatorBaseline::kNce:
      return "NCE";
    case EstimatorBaseline::kParc:
      return "PARC";
    case EstimatorBaseline::kHScore:
      return "H-Score";
  }
  return "?";
}

TargetEvaluation EvaluateEstimatorBaseline(
    zoo::ModelZoo* zoo, size_t target_dataset, EstimatorBaseline baseline,
    zoo::FineTuneMethod evaluation_method) {
  const zoo::Modality modality = zoo->datasets()[target_dataset].modality;
  std::vector<size_t> model_ids = zoo->ModelsOfModality(modality);
  std::vector<double> predicted;
  predicted.reserve(model_ids.size());
  for (size_t m : model_ids) {
    double score = 0.0;
    switch (baseline) {
      case EstimatorBaseline::kLogMe:
        score = zoo->LogMe(m, target_dataset);
        break;
      case EstimatorBaseline::kLeep:
        score = zoo->Leep(m, target_dataset);
        break;
      case EstimatorBaseline::kNce:
        score = zoo->Nce(m, target_dataset);
        break;
      case EstimatorBaseline::kParc:
        score = zoo->Parc(m, target_dataset);
        break;
      case EstimatorBaseline::kHScore:
        score = zoo->HScoreOf(m, target_dataset);
        break;
    }
    predicted.push_back(score);
  }
  return Finish(zoo, target_dataset, std::move(model_ids),
                std::move(predicted), evaluation_method);
}

TargetEvaluation EvaluateRandomBaseline(zoo::ModelZoo* zoo,
                                        size_t target_dataset, uint64_t seed,
                                        zoo::FineTuneMethod evaluation_method) {
  const zoo::Modality modality = zoo->datasets()[target_dataset].modality;
  std::vector<size_t> model_ids = zoo->ModelsOfModality(modality);
  Rng rng(seed);
  std::vector<double> predicted(model_ids.size());
  for (double& p : predicted) p = rng.NextDouble();
  return Finish(zoo, target_dataset, std::move(model_ids),
                std::move(predicted), evaluation_method);
}

}  // namespace tg::core
