// Supervised feature assembly (paper §VI-C): one row per (model, dataset)
// pair, combining basic metadata, the source-target dataset distance, the
// LogME score (for the LR{all,LogME} baseline), and the graph-learned node
// embeddings of the model and dataset.
#ifndef TG_CORE_FEATURE_TABLE_H_
#define TG_CORE_FEATURE_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/graph_builder.h"
#include "core/strategy.h"
#include "ml/tabular.h"
#include "numeric/matrix.h"
#include "zoo/model_zoo.h"

namespace tg::core {

class FeatureAssembler {
 public:
  // `embeddings` (num graph nodes x dim, aligned with built.graph node ids)
  // may be null when the feature set uses no graph features; `built` may be
  // null in that case too. Pointers must outlive the assembler.
  FeatureAssembler(zoo::ModelZoo* zoo, zoo::Modality modality,
                   FeatureSet feature_set,
                   zoo::DatasetRepresentation representation,
                   const BuiltGraph* built, const Matrix* embeddings);

  // Feature vector for a (model, dataset) pair.
  std::vector<double> Row(size_t model, size_t dataset);

  std::vector<std::string> FeatureNames() const;
  size_t num_features() const { return FeatureNames().size(); }

  // Builds the training table over the given pairs with fine-tuning
  // accuracy labels of `method`.
  ml::TabularDataset BuildTable(
      const std::vector<std::pair<size_t, size_t>>& pairs,
      zoo::FineTuneMethod method);

  // Per-dataset min-max-normalized LogME score; used both as a feature
  // (LR{all,LogME}) and as the pseudo-label in the cold-start scenario
  // without training history (paper §VII-C).
  double NormalizedLogMe(size_t model, size_t dataset);

  // Feature row for a model that is NOT in the zoo (incremental updates):
  // metadata comes from `info`, the graph part from the supplied embedding.
  // Not supported for FeatureSet::kAllWithLogMe (no features to run LogME
  // on for an external model).
  std::vector<double> RowForExternalModel(
      const zoo::ModelInfo& info, const std::vector<double>& model_embedding,
      size_t dataset);

 private:

  zoo::ModelZoo* zoo_;
  zoo::Modality modality_;
  FeatureSet feature_set_;
  zoo::DatasetRepresentation representation_;
  const BuiltGraph* built_;
  const Matrix* embeddings_;
  // Per-dataset min-max-normalized LogME across same-modality models.
  std::unordered_map<size_t, std::unordered_map<size_t, double>>
      normalized_logme_;
};

}  // namespace tg::core

#endif  // TG_CORE_FEATURE_TABLE_H_
