// Budget-constrained fine-tuning portfolio selection, in the spirit of the
// SHiFT search engine the paper cites (§II-A): given per-model predicted
// scores and a fine-tuning budget in GPU-hours, choose which models to
// actually fine-tune.
//
// Fine-tuning cost is estimated from metadata: cost grows linearly with
// parameter count and with the target dataset's size (the quantities the
// paper names when motivating why fine-tuning everything is infeasible --
// 1178 GPU-hours for one dataset sweep).
//
// Selection maximizes the expected best outcome of the chosen set under a
// Gaussian noise model on the predictions: a greedy sweep over candidates in
// score order that keeps a model when its marginal gain per cost beats the
// current best alternative use of the remaining budget.
#ifndef TG_CORE_BUDGET_SEARCH_H_
#define TG_CORE_BUDGET_SEARCH_H_

#include <vector>

#include "core/pipeline.h"
#include "zoo/model_zoo.h"

namespace tg::core {

struct BudgetOptions {
  double budget_gpu_hours = 40.0;
  // GPU-hours per (million parameters * million samples); the default is
  // calibrated to the paper's 1178 GPU-hours for 185 models on one dataset
  // sweep (~6.4 h per fine-tuning run on average).
  double cost_per_mparam_msample = 5.0;
  double min_cost_gpu_hours = 0.25;  // floor per fine-tuning run
  // Assumed std-dev of the predicted-accuracy error; drives the value of
  // trying more than one model.
  double prediction_noise = 0.05;
  size_t max_models = 32;
};

struct BudgetPlanEntry {
  size_t model_index = 0;
  std::string model_name;
  double predicted_score = 0.0;
  double estimated_cost_gpu_hours = 0.0;
};

struct BudgetPlan {
  std::vector<BudgetPlanEntry> selected;
  double total_cost_gpu_hours = 0.0;
  // Expected max accuracy of the selected set under the noise model.
  double expected_best_accuracy = 0.0;
};

// Estimated cost of fine-tuning `model` on `dataset`.
double EstimateFineTuneCost(const zoo::ModelZoo& zoo, size_t model,
                            size_t dataset, const BudgetOptions& options);

// Builds a portfolio from a completed evaluation (predicted scores for all
// models on the target).
BudgetPlan PlanFineTuning(const zoo::ModelZoo& zoo,
                          const TargetEvaluation& evaluation,
                          const BudgetOptions& options);

// Expected value of max over k independent N(mu_i, sigma) draws, estimated
// by quasi-Monte-Carlo; exposed for tests.
double ExpectedBestOf(const std::vector<double>& means, double sigma);

}  // namespace tg::core

#endif  // TG_CORE_BUDGET_SEARCH_H_
