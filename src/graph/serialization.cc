#include "graph/serialization.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "util/atomic_file.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace tg {
namespace {

constexpr char kHeader[] = "# transfergraph v1";

const char* NodeTypeToken(NodeType type) {
  return type == NodeType::kDataset ? "dataset" : "model";
}

Result<NodeType> ParseNodeType(const std::string& token) {
  if (token == "dataset") return NodeType::kDataset;
  if (token == "model") return NodeType::kModel;
  return Status::InvalidArgument("unknown node type: " + token);
}

const char* EdgeTypeToken(EdgeType type) {
  switch (type) {
    case EdgeType::kDatasetDataset:
      return "dd";
    case EdgeType::kModelDatasetAccuracy:
      return "md_acc";
    case EdgeType::kModelDatasetTransferability:
      return "md_transfer";
  }
  return "?";
}

Result<EdgeType> ParseEdgeType(const std::string& token) {
  if (token == "dd") return EdgeType::kDatasetDataset;
  if (token == "md_acc") return EdgeType::kModelDatasetAccuracy;
  if (token == "md_transfer") return EdgeType::kModelDatasetTransferability;
  return Status::InvalidArgument("unknown edge type: " + token);
}

}  // namespace

Status WriteGraphToFile(const Graph& graph, const std::string& path) {
  if (TG_FAULT_POINT("serialization.write")) {
    return fault::InjectedFault("serialization.write");
  }
  // Write-to-temp + fsync + rename: a crash mid-export leaves the previous
  // graph file intact rather than a truncated one. Bytes are composed with
  // the exact formats the direct fprintf writer used, so output files are
  // identical to earlier releases.
  AtomicFileWriter writer(path);
  char buf[512];
  std::snprintf(buf, sizeof(buf), "%s\n", kHeader);
  writer.Append(buf);
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    std::snprintf(buf, sizeof(buf), "node\t%u\t%s\t", id,
                  NodeTypeToken(graph.node_type(id)));
    std::string line = buf;
    line += graph.node_name(id);  // names may exceed any fixed buffer
    line += '\n';
    writer.Append(line);
  }
  for (const EdgeRecord& e : graph.edges()) {
    std::snprintf(buf, sizeof(buf), "edge\t%u\t%u\t%s\t%.17g\n", e.src, e.dst,
                  EdgeTypeToken(e.type), e.weight);
    writer.Append(buf);
  }
  return writer.Commit();
}

Result<Graph> ReadGraphFromFile(const std::string& path) {
  if (TG_FAULT_POINT("serialization.read")) {
    return fault::InjectedFault("serialization.read");
  }
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return Status::NotFound("cannot open: " + path);

  Graph graph;
  char buffer[4096];
  bool first = true;
  bool saw_newline = true;
  int line_number = 0;
  auto fail = [&](const std::string& why) -> Result<Graph> {
    std::fclose(file);
    return Status::InvalidArgument(path + ":" + std::to_string(line_number) +
                                   ": " + why);
  };
  while (std::fgets(buffer, sizeof(buffer), file) != nullptr) {
    ++line_number;
    const size_t len = std::strlen(buffer);
    saw_newline = len > 0 && buffer[len - 1] == '\n';
    if (!saw_newline && len == sizeof(buffer) - 1) {
      return fail("line too long");
    }
    std::string line = Trim(buffer);
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line != kHeader) {
        std::fclose(file);
        return Status::InvalidArgument("missing header in " + path);
      }
      continue;
    }
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields[0] == "node") {
      if (fields.size() != 4) return fail("node line needs 4 fields");
      Result<NodeType> type = ParseNodeType(fields[2]);
      if (!type.ok()) return fail(type.status().message());
      uint64_t claimed_id = 0;
      if (!ParseUint64(fields[1], &claimed_id)) {
        return fail("bad node id: " + fields[1]);
      }
      // Graph::AddNode TG_CHECKs name uniqueness (programmer error for
      // in-process construction); file bytes are untrusted, so reject the
      // duplicate here with a Status instead of aborting.
      if (graph.HasNode(fields[3])) {
        return fail("duplicate node name: " + fields[3]);
      }
      const NodeId id = graph.AddNode(type.value(), fields[3]);
      if (claimed_id != id) return fail("node ids must be sequential");
    } else if (fields[0] == "edge") {
      if (fields.size() != 5) return fail("edge line needs 5 fields");
      Result<EdgeType> type = ParseEdgeType(fields[3]);
      if (!type.ok()) return fail(type.status().message());
      uint64_t src = 0;
      uint64_t dst = 0;
      if (!ParseUint64(fields[1], &src) || !ParseUint64(fields[2], &dst)) {
        return fail("bad edge endpoint");
      }
      if (src >= graph.num_nodes() || dst >= graph.num_nodes()) {
        return fail("edge endpoint out of range");
      }
      double weight = 0.0;
      if (!ParseDouble(fields[4], &weight)) {
        return fail("bad edge weight: " + fields[4]);
      }
      // Non-finite weights would silently poison every propagation pass
      // downstream; refuse them at the trust boundary.
      if (!std::isfinite(weight)) {
        return fail("edge weight not finite: " + fields[4]);
      }
      graph.AddUndirectedEdge(static_cast<NodeId>(src),
                              static_cast<NodeId>(dst), type.value(), weight);
    } else {
      return fail("unknown record type: " + fields[0]);
    }
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) return Status::Internal("read error on " + path);
  if (first) return Status::InvalidArgument("empty file: " + path);
  if (!saw_newline) {
    return Status::InvalidArgument(path + ": truncated final record (no "
                                   "trailing newline)");
  }
  return graph;
}

}  // namespace tg
