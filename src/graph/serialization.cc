#include "graph/serialization.h"

#include <cstdio>
#include <string>

#include "util/string_util.h"

namespace tg {
namespace {

constexpr char kHeader[] = "# transfergraph v1";

const char* NodeTypeToken(NodeType type) {
  return type == NodeType::kDataset ? "dataset" : "model";
}

Result<NodeType> ParseNodeType(const std::string& token) {
  if (token == "dataset") return NodeType::kDataset;
  if (token == "model") return NodeType::kModel;
  return Status::InvalidArgument("unknown node type: " + token);
}

const char* EdgeTypeToken(EdgeType type) {
  switch (type) {
    case EdgeType::kDatasetDataset:
      return "dd";
    case EdgeType::kModelDatasetAccuracy:
      return "md_acc";
    case EdgeType::kModelDatasetTransferability:
      return "md_transfer";
  }
  return "?";
}

Result<EdgeType> ParseEdgeType(const std::string& token) {
  if (token == "dd") return EdgeType::kDatasetDataset;
  if (token == "md_acc") return EdgeType::kModelDatasetAccuracy;
  if (token == "md_transfer") return EdgeType::kModelDatasetTransferability;
  return Status::InvalidArgument("unknown edge type: " + token);
}

}  // namespace

Status WriteGraphToFile(const Graph& graph, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  std::fprintf(file, "%s\n", kHeader);
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    std::fprintf(file, "node\t%u\t%s\t%s\n", id,
                 NodeTypeToken(graph.node_type(id)),
                 graph.node_name(id).c_str());
  }
  for (const EdgeRecord& e : graph.edges()) {
    std::fprintf(file, "edge\t%u\t%u\t%s\t%.17g\n", e.src, e.dst,
                 EdgeTypeToken(e.type), e.weight);
  }
  if (std::fclose(file) != 0) return Status::Internal("fclose failed");
  return Status::OK();
}

Result<Graph> ReadGraphFromFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return Status::NotFound("cannot open: " + path);

  Graph graph;
  char buffer[4096];
  bool first = true;
  int line_number = 0;
  while (std::fgets(buffer, sizeof(buffer), file) != nullptr) {
    ++line_number;
    std::string line = Trim(buffer);
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line != kHeader) {
        std::fclose(file);
        return Status::InvalidArgument("missing header in " + path);
      }
      continue;
    }
    const std::vector<std::string> fields = Split(line, '\t');
    auto fail = [&](const std::string& why) -> Result<Graph> {
      std::fclose(file);
      return Status::InvalidArgument(path + ":" +
                                     std::to_string(line_number) + ": " +
                                     why);
    };
    if (fields[0] == "node") {
      if (fields.size() != 4) return fail("node line needs 4 fields");
      Result<NodeType> type = ParseNodeType(fields[2]);
      if (!type.ok()) return fail(type.status().message());
      const NodeId id = graph.AddNode(type.value(), fields[3]);
      if (id != static_cast<NodeId>(std::stoul(fields[1]))) {
        return fail("node ids must be sequential");
      }
    } else if (fields[0] == "edge") {
      if (fields.size() != 5) return fail("edge line needs 5 fields");
      Result<EdgeType> type = ParseEdgeType(fields[3]);
      if (!type.ok()) return fail(type.status().message());
      const unsigned long src = std::stoul(fields[1]);
      const unsigned long dst = std::stoul(fields[2]);
      if (src >= graph.num_nodes() || dst >= graph.num_nodes()) {
        return fail("edge endpoint out of range");
      }
      graph.AddUndirectedEdge(static_cast<NodeId>(src),
                              static_cast<NodeId>(dst), type.value(),
                              std::stod(fields[4]));
    } else {
      return fail("unknown record type: " + fields[0]);
    }
  }
  std::fclose(file);
  if (first) return Status::InvalidArgument("empty file: " + path);
  return graph;
}

}  // namespace tg
