// Plain-text (TSV) persistence for model-zoo graphs so constructed graphs
// can be inspected, versioned, or exchanged with other tooling.
//
// Format:
//   # transfergraph v1
//   node\t<id>\t<type>\t<name>
//   edge\t<src>\t<dst>\t<type>\t<weight>
#ifndef TG_GRAPH_SERIALIZATION_H_
#define TG_GRAPH_SERIALIZATION_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace tg {

Status WriteGraphToFile(const Graph& graph, const std::string& path);

Result<Graph> ReadGraphFromFile(const std::string& path);

}  // namespace tg

#endif  // TG_GRAPH_SERIALIZATION_H_
