#include "graph/alias_table.h"

#include <limits>

#include "util/check.h"

namespace tg {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  TG_CHECK_GT(n, 0u);
  TG_CHECK_LT(n, static_cast<size_t>(std::numeric_limits<uint32_t>::max()));
  double total = 0.0;
  for (double w : weights) {
    TG_CHECK_GE(w, 0.0);
    total += w;
  }
  TG_CHECK_GT(total, 0.0);

  entries_.assign(n, Entry{0.0, 0});

  // Scale and classify in one pass; the worklists can only shrink from here
  // (one index retires per pairing step), so reserving n up front makes the
  // whole construction allocation-stable.
  const double scale = static_cast<double>(n) / total;
  std::vector<double> scaled(n);
  std::vector<size_t> small;
  std::vector<size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * scale;
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    entries_[s].probability = scaled[s];
    entries_[s].alias = static_cast<uint32_t>(l);
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are 1.0 up to roundoff.
  for (size_t i : large) entries_[i].probability = 1.0;
  for (size_t i : small) entries_[i].probability = 1.0;
}

size_t AliasTable::Sample(Rng* rng) const {
  TG_CHECK(!empty());
  const size_t column = static_cast<size_t>(rng->NextBelow(entries_.size()));
  const Entry& entry = entries_[column];
  // Same draw order and select condition as the branching form
  // (d < p ? column : alias), written as index arithmetic so it lowers to a
  // conditional move; the unsigned difference wraps cleanly when alias <
  // column.
  const size_t take_alias =
      static_cast<size_t>(rng->NextDouble() >= entry.probability);
  return column +
         take_alias * (static_cast<size_t>(entry.alias) - column);
}

void AliasTable::PrefetchNext(const Rng& rng) const {
  if (entries_.empty()) return;
  Rng peek = rng;
  const size_t column = static_cast<size_t>(peek.NextBelow(entries_.size()));
  __builtin_prefetch(&entries_[column], /*rw=*/0, /*locality=*/1);
}

}  // namespace tg
