#include "graph/alias_table.h"

#include "util/check.h"

namespace tg {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  TG_CHECK_GT(n, 0u);
  double total = 0.0;
  for (double w : weights) {
    TG_CHECK_GE(w, 0.0);
    total += w;
  }
  TG_CHECK_GT(total, 0.0);

  probabilities_.assign(n, 0.0);
  aliases_.assign(n, 0);

  // Scale and classify in one pass; the worklists can only shrink from here
  // (one index retires per pairing step), so reserving n up front makes the
  // whole construction allocation-stable.
  const double scale = static_cast<double>(n) / total;
  std::vector<double> scaled(n);
  std::vector<size_t> small;
  std::vector<size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * scale;
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    probabilities_[s] = scaled[s];
    aliases_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are 1.0 up to roundoff.
  for (size_t i : large) probabilities_[i] = 1.0;
  for (size_t i : small) probabilities_[i] = 1.0;
}

size_t AliasTable::Sample(Rng* rng) const {
  TG_CHECK(!empty());
  const size_t column = static_cast<size_t>(rng->NextBelow(size()));
  return rng->NextDouble() < probabilities_[column] ? column
                                                    : aliases_[column];
}

}  // namespace tg
