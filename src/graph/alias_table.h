// Walker/Vose alias method: O(n) construction, O(1) sampling from a discrete
// distribution. Used for weighted next-hop selection in Node2Vec(+) walks and
// for the unigram^0.75 negative-sampling table in skip-gram training.
//
// Layout: one array of {probability, alias} entries rather than two parallel
// arrays, so each Sample touches a single cache line instead of two; the
// select itself is branch-free (index arithmetic the compiler lowers to a
// conditional move), keeping the hot loop free of a data-dependent branch
// that mispredicts ~p*(1-p) of the time. PrefetchNext lets a caller that
// knows it will sample again overlap that entry's cache miss with other work
// (see the skip-gram negative-sampling loop).
#ifndef TG_GRAPH_ALIAS_TABLE_H_
#define TG_GRAPH_ALIAS_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace tg {

class AliasTable {
 public:
  AliasTable() = default;
  // Weights must be non-negative with a positive sum; at most 2^32 - 1
  // entries (alias indices are stored as uint32_t to keep entries 16 bytes).
  explicit AliasTable(const std::vector<double>& weights);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  // Samples an index with probability proportional to its weight. Consumes
  // exactly one NextBelow and one NextDouble, in that order.
  size_t Sample(Rng* rng) const;

  // Prefetches the entry the NEXT Sample(rng) call will read, by peeking the
  // column draw on a copy of the generator (the argument is not advanced).
  // Purely a cache hint: results are identical with or without it.
  void PrefetchNext(const Rng& rng) const;

 private:
  struct Entry {
    double probability;
    uint32_t alias;
  };

  std::vector<Entry> entries_;
};

}  // namespace tg

#endif  // TG_GRAPH_ALIAS_TABLE_H_
