// Walker/Vose alias method: O(n) construction, O(1) sampling from a discrete
// distribution. Used for weighted next-hop selection in Node2Vec(+) walks and
// for the unigram^0.75 negative-sampling table in skip-gram training.
#ifndef TG_GRAPH_ALIAS_TABLE_H_
#define TG_GRAPH_ALIAS_TABLE_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace tg {

class AliasTable {
 public:
  AliasTable() = default;
  // Weights must be non-negative with a positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  bool empty() const { return probabilities_.empty(); }
  size_t size() const { return probabilities_.size(); }

  // Samples an index with probability proportional to its weight.
  size_t Sample(Rng* rng) const;

 private:
  std::vector<double> probabilities_;
  std::vector<size_t> aliases_;
};

}  // namespace tg

#endif  // TG_GRAPH_ALIAS_TABLE_H_
