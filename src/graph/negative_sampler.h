// Negative sampling utilities:
//   * UnigramNegativeSampler: degree^power distribution over nodes, the
//     word2vec-style table used by skip-gram training (power 0.75).
//   * SampleNegativeEdges: uniform non-edges for link-prediction training.
#ifndef TG_GRAPH_NEGATIVE_SAMPLER_H_
#define TG_GRAPH_NEGATIVE_SAMPLER_H_

#include <utility>
#include <vector>

#include "graph/alias_table.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace tg {

class UnigramNegativeSampler {
 public:
  // Node frequencies are (weighted) degrees raised to `power`.
  UnigramNegativeSampler(const Graph& graph, double power = 0.75);
  // Directly from token frequencies (skip-gram over an arbitrary corpus).
  UnigramNegativeSampler(const std::vector<double>& frequencies, double power);

  NodeId Sample(Rng* rng) const;

  // Cache hint: prefetch the alias-table entry the next Sample(rng) call
  // will read (peeks on a copy; `rng` is not advanced). See AliasTable.
  void PrefetchNext(const Rng& rng) const { table_.PrefetchNext(rng); }

 private:
  AliasTable table_;
};

// Samples `count` (src, dst) pairs that are not edges in the graph (and not
// self loops). Pairs may repeat across calls but not within one call.
std::vector<std::pair<NodeId, NodeId>> SampleNegativeEdges(const Graph& graph,
                                                           size_t count,
                                                           Rng* rng);

}  // namespace tg

#endif  // TG_GRAPH_NEGATIVE_SAMPLER_H_
