// The model-zoo graph (paper §V-A): nodes are datasets and models, edges
// carry one of three semantics —
//   * kDatasetDataset:            dataset similarity phi
//   * kModelDatasetAccuracy:      training performance (pre-train/fine-tune)
//   * kModelDatasetTransferability: scores from estimators such as LogME
// Weights are the respective scores (a weighted adjacency, paper Def. III.1
// with edge labels), not a binary adjacency.
#ifndef TG_GRAPH_GRAPH_H_
#define TG_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace tg {

using NodeId = uint32_t;

enum class NodeType { kDataset, kModel };

enum class EdgeType {
  kDatasetDataset,
  kModelDatasetAccuracy,
  kModelDatasetTransferability,
};

const char* NodeTypeName(NodeType type);
const char* EdgeTypeName(EdgeType type);

struct Neighbor {
  NodeId node;
  double weight;
  EdgeType type;
};

struct EdgeRecord {
  NodeId src;
  NodeId dst;
  double weight;
  EdgeType type;
};

// A weighted, typed graph stored as adjacency lists. Edges added with
// AddUndirectedEdge appear in both endpoint adjacency lists and are counted
// once in undirected_edge_count. Node names are unique.
class Graph {
 public:
  Graph() = default;

  // Adds a node; aborts if the name already exists (names key the catalog).
  NodeId AddNode(NodeType type, const std::string& name);

  // Adds an undirected weighted edge (stored in both adjacency lists).
  void AddUndirectedEdge(NodeId a, NodeId b, EdgeType type, double weight);

  size_t num_nodes() const { return node_types_.size(); }
  size_t num_undirected_edges() const { return edges_.size(); }

  NodeType node_type(NodeId id) const { return node_types_[id]; }
  const std::string& node_name(NodeId id) const { return node_names_[id]; }

  // Looks a node up by name.
  Result<NodeId> FindNode(const std::string& name) const;
  bool HasNode(const std::string& name) const;

  const std::vector<Neighbor>& neighbors(NodeId id) const {
    TG_CHECK_LT(id, adjacency_.size());
    return adjacency_[id];
  }
  size_t degree(NodeId id) const { return neighbors(id).size(); }

  // Sum of incident edge weights.
  double WeightedDegree(NodeId id) const;

  // All undirected edges, each listed once as added.
  const std::vector<EdgeRecord>& edges() const { return edges_; }

  std::vector<NodeId> NodesOfType(NodeType type) const;

  // True if an edge of any type exists between a and b.
  bool HasEdgeBetween(NodeId a, NodeId b) const;

  // Number of connected components (ignoring edge types/weights).
  size_t CountConnectedComponents() const;

 private:
  std::vector<NodeType> node_types_;
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> name_to_id_;
  std::vector<std::vector<Neighbor>> adjacency_;
  std::vector<EdgeRecord> edges_;
};

}  // namespace tg

#endif  // TG_GRAPH_GRAPH_H_
