#include "graph/graph.h"

#include <algorithm>

namespace tg {

const char* NodeTypeName(NodeType type) {
  switch (type) {
    case NodeType::kDataset:
      return "dataset";
    case NodeType::kModel:
      return "model";
  }
  return "?";
}

const char* EdgeTypeName(EdgeType type) {
  switch (type) {
    case EdgeType::kDatasetDataset:
      return "dataset-dataset";
    case EdgeType::kModelDatasetAccuracy:
      return "model-dataset-accuracy";
    case EdgeType::kModelDatasetTransferability:
      return "model-dataset-transferability";
  }
  return "?";
}

NodeId Graph::AddNode(NodeType type, const std::string& name) {
  TG_CHECK_MSG(name_to_id_.find(name) == name_to_id_.end(),
               ("duplicate node name: " + name).c_str());
  const NodeId id = static_cast<NodeId>(node_types_.size());
  node_types_.push_back(type);
  node_names_.push_back(name);
  name_to_id_[name] = id;
  adjacency_.emplace_back();
  return id;
}

void Graph::AddUndirectedEdge(NodeId a, NodeId b, EdgeType type,
                              double weight) {
  TG_CHECK_LT(a, num_nodes());
  TG_CHECK_LT(b, num_nodes());
  TG_CHECK_NE(a, b);
  adjacency_[a].push_back(Neighbor{b, weight, type});
  adjacency_[b].push_back(Neighbor{a, weight, type});
  edges_.push_back(EdgeRecord{a, b, weight, type});
}

Result<NodeId> Graph::FindNode(const std::string& name) const {
  auto it = name_to_id_.find(name);
  if (it == name_to_id_.end()) {
    return Status::NotFound("node not in graph: " + name);
  }
  return it->second;
}

bool Graph::HasNode(const std::string& name) const {
  return name_to_id_.find(name) != name_to_id_.end();
}

double Graph::WeightedDegree(NodeId id) const {
  double acc = 0.0;
  for (const Neighbor& n : neighbors(id)) acc += n.weight;
  return acc;
}

std::vector<NodeId> Graph::NodesOfType(NodeType type) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < num_nodes(); ++id) {
    if (node_types_[id] == type) out.push_back(id);
  }
  return out;
}

bool Graph::HasEdgeBetween(NodeId a, NodeId b) const {
  const auto& smaller =
      degree(a) <= degree(b) ? adjacency_[a] : adjacency_[b];
  const NodeId other = degree(a) <= degree(b) ? b : a;
  return std::any_of(smaller.begin(), smaller.end(),
                     [other](const Neighbor& n) { return n.node == other; });
}

size_t Graph::CountConnectedComponents() const {
  std::vector<bool> visited(num_nodes(), false);
  size_t components = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < num_nodes(); ++start) {
    if (visited[start]) continue;
    ++components;
    stack.push_back(start);
    visited[start] = true;
    while (!stack.empty()) {
      NodeId cur = stack.back();
      stack.pop_back();
      for (const Neighbor& n : adjacency_[cur]) {
        if (!visited[n.node]) {
          visited[n.node] = true;
          stack.push_back(n.node);
        }
      }
    }
  }
  return components;
}

}  // namespace tg
