#include "graph/negative_sampler.h"

#include <cmath>
#include <set>

#include "util/check.h"

namespace tg {

namespace {

std::vector<double> DegreesPowered(const Graph& graph, double power) {
  std::vector<double> freqs(graph.num_nodes());
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    // +1 smoothing keeps isolated nodes sampleable.
    freqs[id] = std::pow(static_cast<double>(graph.degree(id)) + 1.0, power);
  }
  return freqs;
}

std::vector<double> Powered(const std::vector<double>& frequencies,
                            double power) {
  std::vector<double> powered(frequencies.size());
  for (size_t i = 0; i < frequencies.size(); ++i) {
    powered[i] = std::pow(frequencies[i], power);
  }
  return powered;
}

}  // namespace

UnigramNegativeSampler::UnigramNegativeSampler(const Graph& graph,
                                               double power)
    : table_(DegreesPowered(graph, power)) {}

// Member-init so the table is built exactly once (no default-construct +
// move-assign). Callers (e.g. SkipGramTrainer::Train) construct one sampler
// per training run, never per epoch.
UnigramNegativeSampler::UnigramNegativeSampler(
    const std::vector<double>& frequencies, double power)
    : table_(Powered(frequencies, power)) {}

NodeId UnigramNegativeSampler::Sample(Rng* rng) const {
  return static_cast<NodeId>(table_.Sample(rng));
}

std::vector<std::pair<NodeId, NodeId>> SampleNegativeEdges(const Graph& graph,
                                                           size_t count,
                                                           Rng* rng) {
  const size_t n = graph.num_nodes();
  TG_CHECK_GT(n, 1u);
  std::vector<std::pair<NodeId, NodeId>> out;
  std::set<std::pair<NodeId, NodeId>> seen;
  out.reserve(count);
  size_t attempts = 0;
  const size_t max_attempts = count * 200 + 1000;
  while (out.size() < count && attempts < max_attempts) {
    ++attempts;
    NodeId a = static_cast<NodeId>(rng->NextBelow(n));
    NodeId b = static_cast<NodeId>(rng->NextBelow(n));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (seen.count({a, b}) > 0) continue;
    if (graph.HasEdgeBetween(a, b)) continue;
    seen.insert({a, b});
    out.emplace_back(a, b);
  }
  return out;
}

}  // namespace tg
