// Graph-property statistics matching the paper's Table II.
#ifndef TG_GRAPH_GRAPH_STATS_H_
#define TG_GRAPH_GRAPH_STATS_H_

#include <cstddef>
#include <string>

#include "graph/graph.h"

namespace tg {

struct GraphStats {
  size_t num_nodes = 0;
  size_t num_dataset_nodes = 0;
  size_t num_model_nodes = 0;
  double average_degree = 0.0;
  // Dataset-dataset similarity pairs, counted as ordered pairs to match the
  // paper's Table II convention (73*72 = 5256 for the image graph).
  size_t dataset_dataset_edges = 0;
  size_t model_dataset_accuracy_edges = 0;
  size_t model_dataset_transferability_edges = 0;
  size_t connected_components = 0;

  std::string ToString() const;
};

GraphStats ComputeGraphStats(const Graph& graph);

}  // namespace tg

#endif  // TG_GRAPH_GRAPH_STATS_H_
