#include "graph/graph_stats.h"

#include "util/string_util.h"

namespace tg {

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_nodes = graph.num_nodes();
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    if (graph.node_type(id) == NodeType::kDataset) {
      ++stats.num_dataset_nodes;
    } else {
      ++stats.num_model_nodes;
    }
  }
  size_t degree_total = 0;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    degree_total += graph.degree(id);
  }
  if (graph.num_nodes() > 0) {
    stats.average_degree =
        static_cast<double>(degree_total) /
        static_cast<double>(graph.num_nodes());
  }
  for (const EdgeRecord& e : graph.edges()) {
    switch (e.type) {
      case EdgeType::kDatasetDataset:
        // Ordered-pair convention: one undirected similarity edge counts as
        // two directed pairs (matches Table II's 73*72 for the image graph).
        stats.dataset_dataset_edges += 2;
        break;
      case EdgeType::kModelDatasetAccuracy:
        ++stats.model_dataset_accuracy_edges;
        break;
      case EdgeType::kModelDatasetTransferability:
        ++stats.model_dataset_transferability_edges;
        break;
    }
  }
  stats.connected_components = graph.CountConnectedComponents();
  return stats;
}

std::string GraphStats::ToString() const {
  std::string out;
  out += "nodes=" + std::to_string(num_nodes);
  out += " (datasets=" + std::to_string(num_dataset_nodes);
  out += ", models=" + std::to_string(num_model_nodes) + ")";
  out += " avg_degree=" + FormatDouble(average_degree, 1);
  out += " dd_edges=" + std::to_string(dataset_dataset_edges);
  out += " md_acc_edges=" + std::to_string(model_dataset_accuracy_edges);
  out += " md_transfer_edges=" +
         std::to_string(model_dataset_transferability_edges);
  out += " components=" + std::to_string(connected_components);
  return out;
}

}  // namespace tg
