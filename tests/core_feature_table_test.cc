#include <memory>

#include <gtest/gtest.h>

#include "core/feature_table.h"

namespace tg::core {
namespace {

class FeatureTableTest : public ::testing::Test {
 protected:
  FeatureTableTest() {
    zoo::ModelZooConfig config;
    config.catalog.num_image_models = 30;
    config.catalog.num_text_models = 16;
    config.world.max_samples_per_dataset = 80;
    zoo_ = std::make_unique<zoo::ModelZoo>(config);
    model_ = zoo_->ModelsOfModality(zoo::Modality::kImage)[0];
    dataset_ = zoo_->PublicDatasets(zoo::Modality::kImage)[0];
  }

  FeatureAssembler MakeAssembler(FeatureSet set, const BuiltGraph* built,
                                 const Matrix* embeddings) {
    return FeatureAssembler(zoo_.get(), zoo::Modality::kImage, set,
                            zoo::DatasetRepresentation::kDomainSimilarity,
                            built, embeddings);
  }

  std::unique_ptr<zoo::ModelZoo> zoo_;
  size_t model_ = 0;
  size_t dataset_ = 0;
};

TEST_F(FeatureTableTest, MetadataOnlyDimensions) {
  FeatureAssembler assembler =
      MakeAssembler(FeatureSet::kMetadataOnly, nullptr, nullptr);
  // 16 arch one-hot + 5 model scalars + 2 dataset scalars... metadata layout:
  // arch(16) + log_params + log_memory + input + pretrain + log_samples +
  // classes = 22.
  EXPECT_EQ(assembler.FeatureNames().size(),
            static_cast<size_t>(zoo::kNumArchitectures) + 6);
  EXPECT_EQ(assembler.Row(model_, dataset_).size(),
            assembler.FeatureNames().size());
}

TEST_F(FeatureTableTest, AllWithLogMeAddsTwoFeatures) {
  FeatureAssembler meta =
      MakeAssembler(FeatureSet::kMetadataOnly, nullptr, nullptr);
  FeatureAssembler all =
      MakeAssembler(FeatureSet::kAllWithLogMe, nullptr, nullptr);
  EXPECT_EQ(all.FeatureNames().size(), meta.FeatureNames().size() + 2);
  // LogME feature is last and normalized into [0, 1].
  std::vector<double> row = all.Row(model_, dataset_);
  EXPECT_GE(row.back(), 0.0);
  EXPECT_LE(row.back(), 1.0);
}

TEST_F(FeatureTableTest, GraphFeaturesConcatenateBothEmbeddings) {
  BuiltGraph built = BuildModelZooGraph(zoo_.get(), zoo::Modality::kImage,
                                        GraphBuildOptions{});
  Matrix embeddings(built.graph.num_nodes(), 8, 0.25);
  FeatureAssembler assembler =
      MakeAssembler(FeatureSet::kGraphOnly, &built, &embeddings);
  EXPECT_EQ(assembler.FeatureNames().size(), 16u);
  std::vector<double> row = assembler.Row(model_, dataset_);
  EXPECT_EQ(row.size(), 16u);
  for (double v : row) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST_F(FeatureTableTest, AllFeatureSetLayout) {
  BuiltGraph built = BuildModelZooGraph(zoo_.get(), zoo::Modality::kImage,
                                        GraphBuildOptions{});
  Matrix embeddings(built.graph.num_nodes(), 4);
  FeatureAssembler assembler =
      MakeAssembler(FeatureSet::kAll, &built, &embeddings);
  // metadata(22) + distance(1) + 2*4 embeddings = 31; no LogME feature.
  EXPECT_EQ(assembler.FeatureNames().size(), 22u + 1u + 8u);
  const auto names = assembler.FeatureNames();
  EXPECT_EQ(names[22], "source_target_similarity");
}

TEST_F(FeatureTableTest, BuildTableLabelsAreFineTuneAccuracy) {
  FeatureAssembler assembler =
      MakeAssembler(FeatureSet::kMetadataOnly, nullptr, nullptr);
  std::vector<std::pair<size_t, size_t>> pairs = {
      {model_, dataset_},
      {zoo_->ModelsOfModality(zoo::Modality::kImage)[1], dataset_}};
  ml::TabularDataset table =
      assembler.BuildTable(pairs, zoo::FineTuneMethod::kFullFineTune);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(table.y[0],
                   zoo_->FineTuneAccuracy(model_, dataset_));
}

TEST_F(FeatureTableTest, ExternalRowMatchesInternalRowForSameModel) {
  // A clone of an existing zoo model (same metadata, its own embedding row)
  // must produce bit-identical features through the external path; the two
  // code paths must never diverge.
  BuiltGraph built = BuildModelZooGraph(zoo_.get(), zoo::Modality::kImage,
                                        GraphBuildOptions{});
  Matrix embeddings(built.graph.num_nodes(), 6);
  Rng rng(5);
  for (size_t r = 0; r < embeddings.rows(); ++r) {
    for (size_t c = 0; c < embeddings.cols(); ++c) {
      embeddings(r, c) = rng.NextGaussian();
    }
  }
  FeatureAssembler assembler =
      MakeAssembler(FeatureSet::kAll, &built, &embeddings);

  const zoo::ModelInfo& info = zoo_->models()[model_];
  const NodeId node = built.model_node.at(model_);
  std::vector<double> model_embedding(6);
  for (size_t c = 0; c < 6; ++c) model_embedding[c] = embeddings(node, c);

  const std::vector<double> internal = assembler.Row(model_, dataset_);
  const std::vector<double> external =
      assembler.RowForExternalModel(info, model_embedding, dataset_);
  ASSERT_EQ(internal.size(), external.size());
  for (size_t c = 0; c < internal.size(); ++c) {
    EXPECT_DOUBLE_EQ(internal[c], external[c]) << "feature " << c;
  }
}

TEST_F(FeatureTableTest, DistanceFeatureReflectsSourceSimilarity) {
  FeatureAssembler assembler =
      MakeAssembler(FeatureSet::kAllWithLogMe, nullptr, nullptr);
  const size_t source = zoo_->models()[model_].source_dataset;
  std::vector<double> row = assembler.Row(model_, dataset_);
  const double expected = zoo_->DatasetSimilarityScore(
      source, dataset_, zoo::DatasetRepresentation::kDomainSimilarity);
  // Distance feature sits right before the LogME feature.
  EXPECT_DOUBLE_EQ(row[row.size() - 2], expected);
}

}  // namespace
}  // namespace tg::core
